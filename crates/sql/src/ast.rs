//! The parsed query representation.

use std::fmt;

use trapp_expr::{ColumnRef, Expr};

/// The aggregation functions of TRAPP/AG.
///
/// The five standard relational aggregates (§4) plus `MEDIAN`, which the
/// paper lists as a natural extension (§8.1, citing [FMP+00]); TRAPP
/// implements it via bounded order statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggregateFunc {
    /// `COUNT(*)` or `COUNT(expr)`.
    Count,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MEDIAN(expr)` — extension.
    Median,
}

impl AggregateFunc {
    /// Parses a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<AggregateFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggregateFunc::Count,
            "MIN" => AggregateFunc::Min,
            "MAX" => AggregateFunc::Max,
            "SUM" => AggregateFunc::Sum,
            "AVG" => AggregateFunc::Avg,
            "MEDIAN" => AggregateFunc::Median,
            _ => return None,
        })
    }
}

impl fmt::Display for AggregateFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggregateFunc::Count => "COUNT",
            AggregateFunc::Min => "MIN",
            AggregateFunc::Max => "MAX",
            AggregateFunc::Sum => "SUM",
            AggregateFunc::Avg => "AVG",
            AggregateFunc::Median => "MEDIAN",
        };
        write!(f, "{s}")
    }
}

/// A parsed TRAPP/AG query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// The outermost aggregate.
    pub agg: AggregateFunc,
    /// The aggregation argument; `None` for `COUNT(*)`.
    pub arg: Option<Expr<ColumnRef>>,
    /// The precision constraint `R` (`WITHIN R`), or `None` for `R = ∞`.
    pub within: Option<f64>,
    /// The response-time budget in milliseconds (`DEADLINE D`), or `None`
    /// for no budget. TRAPP bounds precision and lets cost float; a
    /// deadline bounds *time* and — under a best-effort service — lets
    /// precision float instead (the BlinkDB-style contract).
    pub deadline: Option<f64>,
    /// Tables in the `FROM` clause (more than one ⇒ a join query, §7).
    pub tables: Vec<String>,
    /// The `WHERE` predicate, if any (selection and/or join condition).
    pub predicate: Option<Expr<ColumnRef>>,
    /// `GROUP BY` columns (extension; must be exact-valued columns).
    pub group_by: Vec<ColumnRef>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT {}(", self.agg)?;
        match &self.arg {
            Some(e) => write!(f, "{e}")?,
            None => write!(f, "*")?,
        }
        write!(f, ")")?;
        if let Some(r) = self.within {
            write!(f, " WITHIN {r}")?;
        }
        if let Some(d) = self.deadline {
            write!(f, " DEADLINE {d}")?;
        }
        write!(f, " FROM {}", self.tables.join(", "))?;
        if let Some(p) = &self.predicate {
            write!(f, " WHERE {p}")?;
        }
        if !self.group_by.is_empty() {
            let cols: Vec<String> = self.group_by.iter().map(|c| c.to_string()).collect();
            write!(f, " GROUP BY {}", cols.join(", "))?;
        }
        Ok(())
    }
}
