//! Recursive-descent parser for the TRAPP/AG dialect.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query      := SELECT agg '(' ( '*' | expr ) ')' [WITHIN number]
//!               [DEADLINE number]
//!               FROM ident (',' ident)*
//!               [WHERE expr]
//!               [GROUP BY column (',' column)*]
//! expr       := or_expr
//! or_expr    := and_expr (OR and_expr)*
//! and_expr   := not_expr (AND not_expr)*
//! not_expr   := NOT not_expr | cmp_expr
//! cmp_expr   := add_expr [cmp_op add_expr]
//! add_expr   := mul_expr (('+'|'-') mul_expr)*
//! mul_expr   := unary (('*'|'/') unary)*
//! unary      := '-' unary | primary
//! primary    := number | string | TRUE | FALSE | column | '(' expr ')'
//! column     := ident ['.' ident]
//! ```

use trapp_expr::{BinaryOp, ColumnRef, Expr, UnaryOp};
use trapp_types::{TrappError, Value};

use crate::ast::{AggregateFunc, Query};
use crate::token::{lex, SpannedTok, Tok};

/// Parses one TRAPP/AG query.
pub fn parse_query(src: &str) -> Result<Query, TrappError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].offset
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> TrappError {
        TrappError::Parse {
            message: message.into(),
            offset: self.offset(),
        }
    }

    /// `true` (and consume) if the next token is the given keyword.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Tok::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.bump();
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), TrappError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {}", self.peek().describe())))
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), TrappError> {
        if self.eat(&tok) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                tok.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_eof(&mut self) -> Result<(), TrappError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(self.err(format!(
                "unexpected trailing input: {}",
                self.peek().describe()
            )))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, TrappError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                if is_reserved(&s) {
                    return Err(self.err(format!("expected {what}, found reserved word `{s}`")));
                }
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn query(&mut self) -> Result<Query, TrappError> {
        self.expect_keyword("SELECT")?;

        // Aggregate function name.
        let agg = match self.peek().clone() {
            Tok::Ident(name) => match AggregateFunc::from_name(&name) {
                Some(a) => {
                    self.bump();
                    a
                }
                None => {
                    return Err(self.err(format!(
                    "expected an aggregate function (COUNT/MIN/MAX/SUM/AVG/MEDIAN), found `{name}`"
                )))
                }
            },
            other => {
                return Err(self.err(format!(
                    "expected an aggregate function, found {}",
                    other.describe()
                )))
            }
        };

        self.expect(Tok::LParen)?;
        let arg = if matches!(self.peek(), Tok::Star) {
            if agg != AggregateFunc::Count {
                return Err(self.err(format!("`*` is only valid in COUNT(*), not {agg}(*)")));
            }
            self.bump();
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(Tok::RParen)?;

        let within = if self.eat_keyword("WITHIN") {
            let off = self.offset();
            match self.bump() {
                Tok::Number(r) => {
                    if r < 0.0 {
                        return Err(TrappError::NegativePrecision(r));
                    }
                    Some(r)
                }
                other => {
                    return Err(TrappError::Parse {
                        message: format!(
                            "WITHIN expects a non-negative number, found {}",
                            other.describe()
                        ),
                        offset: off,
                    })
                }
            }
        } else {
            None
        };

        // `DEADLINE D`: a response-time budget in milliseconds. Zero is
        // legal (answer from cache only); negative budgets are rejected
        // like negative precision constraints.
        let deadline = if self.eat_keyword("DEADLINE") {
            let off = self.offset();
            match self.bump() {
                Tok::Number(d) => {
                    if d.is_nan() || d < 0.0 {
                        return Err(TrappError::Parse {
                            message: format!(
                                "DEADLINE must be a non-negative number of ms, got {d}"
                            ),
                            offset: off,
                        });
                    }
                    Some(d)
                }
                other => {
                    return Err(TrappError::Parse {
                        message: format!(
                            "DEADLINE expects a non-negative number of ms, found {}",
                            other.describe()
                        ),
                        offset: off,
                    })
                }
            }
        } else {
            None
        };

        self.expect_keyword("FROM")?;
        let mut tables = vec![self.ident("table name")?];
        while self.eat(&Tok::Comma) {
            tables.push(self.ident("table name")?);
        }

        let predicate = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.column_ref()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }

        Ok(Query {
            agg,
            arg,
            within,
            deadline,
            tables,
            predicate,
            group_by,
        })
    }

    fn column_ref(&mut self) -> Result<ColumnRef, TrappError> {
        let first = self.ident("column name")?;
        if self.eat(&Tok::Dot) {
            let second = self.ident("column name")?;
            Ok(ColumnRef::qualified(first, second))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }

    // ---- expression precedence climbing ----

    fn expr(&mut self) -> Result<Expr<ColumnRef>, TrappError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr<ColumnRef>, TrappError> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::or(lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr<ColumnRef>, TrappError> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr<ColumnRef>, TrappError> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::unary(UnaryOp::Not, inner));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr<ColumnRef>, TrappError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => BinaryOp::Eq,
            Tok::Ne => BinaryOp::Ne,
            Tok::Lt => BinaryOp::Lt,
            Tok::Le => BinaryOp::Le,
            Tok::Gt => BinaryOp::Gt,
            Tok::Ge => BinaryOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::binary(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr<ColumnRef>, TrappError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinaryOp::Add,
                Tok::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr<ColumnRef>, TrappError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinaryOp::Mul,
                Tok::Slash => BinaryOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr<ColumnRef>, TrappError> {
        if self.eat(&Tok::Minus) {
            let inner = self.unary()?;
            // Constant-fold negation of numeric literals so `-3` is the
            // literal −3 rather than Neg(3); folds recursively through
            // `- -3` as the inner unary already folded.
            if let Expr::Literal(Value::Float(v)) = inner {
                return Ok(Expr::Literal(Value::Float(-v)));
            }
            return Ok(Expr::unary(UnaryOp::Neg, inner));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr<ColumnRef>, TrappError> {
        match self.peek().clone() {
            Tok::Number(n) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(n)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("TRUE") => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("FALSE") => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            Tok::Ident(_) => Ok(Expr::Column(self.column_ref()?)),
            other => Err(self.err(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

/// Words that cannot be used as bare identifiers.
fn is_reserved(word: &str) -> bool {
    const RESERVED: [&str; 13] = [
        "SELECT", "FROM", "WHERE", "WITHIN", "DEADLINE", "AND", "OR", "NOT", "GROUP", "BY", "TRUE",
        "FALSE", "AS",
    ];
    RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_forms() {
        // Q1-style.
        let q = parse_query("SELECT MIN(bandwidth) WITHIN 10 FROM links").unwrap();
        assert_eq!(q.agg, AggregateFunc::Min);
        assert_eq!(q.within, Some(10.0));
        assert_eq!(q.tables, vec!["links"]);
        assert!(q.predicate.is_none());

        // Q4-style with conjunction.
        let q = parse_query(
            "SELECT MIN(traffic) WITHIN 10 FROM links WHERE bandwidth > 50 AND latency < 10",
        )
        .unwrap();
        assert_eq!(
            q.predicate.unwrap().to_string(),
            "((bandwidth > 50) AND (latency < 10))"
        );

        // Q5-style COUNT.
        let q = parse_query("SELECT COUNT(*) WITHIN 1 FROM links WHERE latency > 10").unwrap();
        assert_eq!(q.agg, AggregateFunc::Count);
        assert!(q.arg.is_none());

        // Q6-style AVG.
        let q = parse_query("SELECT AVG(latency) WITHIN 2 FROM links WHERE traffic > 100").unwrap();
        assert_eq!(q.agg, AggregateFunc::Avg);
        assert_eq!(q.arg.unwrap().to_string(), "latency");
    }

    #[test]
    fn within_is_optional_and_validated() {
        let q = parse_query("SELECT SUM(x) FROM t").unwrap();
        assert_eq!(q.within, None);
        assert!(parse_query("SELECT SUM(x) WITHIN -1 FROM t").is_err());
        assert!(parse_query("SELECT SUM(x) WITHIN abc FROM t").is_err());
        let q = parse_query("SELECT SUM(x) WITHIN 0 FROM t").unwrap();
        assert_eq!(q.within, Some(0.0));
    }

    #[test]
    fn deadline_is_optional_and_validated() {
        let q = parse_query("SELECT SUM(x) FROM t").unwrap();
        assert_eq!(q.deadline, None);
        let q = parse_query("SELECT SUM(x) WITHIN 2 DEADLINE 50 FROM t").unwrap();
        assert_eq!(q.within, Some(2.0));
        assert_eq!(q.deadline, Some(50.0));
        // DEADLINE without WITHIN: bound time, let precision float.
        let q = parse_query("SELECT SUM(x) DEADLINE 0 FROM t").unwrap();
        assert_eq!(q.within, None);
        assert_eq!(q.deadline, Some(0.0));
        assert!(parse_query("SELECT SUM(x) DEADLINE -5 FROM t").is_err());
        assert!(parse_query("SELECT SUM(x) DEADLINE soon FROM t").is_err());
        // DEADLINE is reserved: not usable as a bare identifier.
        assert!(parse_query("SELECT SUM(x) FROM deadline").is_err());
        // Clause order is WITHIN then DEADLINE, mirroring Display.
        assert!(parse_query("SELECT SUM(x) DEADLINE 5 WITHIN 2 FROM t").is_err());
    }

    #[test]
    fn precedence_is_sql_like() {
        let q =
            parse_query("SELECT SUM(x) FROM t WHERE a + b * 2 > 4 OR NOT c = 1 AND d < 2").unwrap();
        // OR binds loosest; AND tighter; NOT applies to the comparison.
        assert_eq!(
            q.predicate.unwrap().to_string(),
            "(((a + (b * 2)) > 4) OR ((NOT (c = 1)) AND (d < 2)))"
        );
    }

    #[test]
    fn unary_minus_and_parens() {
        // `-2` constant-folds into the literal −2; `-(x + 1)` stays a
        // unary negation of an expression.
        let q = parse_query("SELECT SUM(x) FROM t WHERE -(x + 1) < -2").unwrap();
        assert_eq!(q.predicate.unwrap().to_string(), "((-(x + 1)) < -2)");
    }

    #[test]
    fn aggregate_over_expression() {
        let q = parse_query("SELECT SUM(latency * 2 + 1) FROM links").unwrap();
        assert_eq!(q.arg.unwrap().to_string(), "((latency * 2) + 1)");
    }

    #[test]
    fn joins_and_qualified_columns() {
        let q = parse_query("SELECT SUM(a.x) FROM a, b WHERE a.id = b.id AND b.y > 5").unwrap();
        assert_eq!(q.tables, vec!["a", "b"]);
        assert_eq!(
            q.predicate.unwrap().to_string(),
            "((a.id = b.id) AND (b.y > 5))"
        );
    }

    #[test]
    fn group_by_parses() {
        let q = parse_query("SELECT AVG(x) WITHIN 1 FROM t GROUP BY region, site").unwrap();
        assert_eq!(q.group_by.len(), 2);
        assert_eq!(q.group_by[0].column, "region");
        // WHERE before GROUP BY.
        let q = parse_query("SELECT AVG(x) FROM t WHERE x > 1 GROUP BY region").unwrap();
        assert!(q.predicate.is_some());
        assert_eq!(q.group_by.len(), 1);
    }

    #[test]
    fn count_star_restrictions() {
        assert!(parse_query("SELECT MIN(*) FROM t").is_err());
        assert!(parse_query("SELECT COUNT(x) FROM t").unwrap().arg.is_some());
    }

    #[test]
    fn error_messages_carry_position_and_context() {
        let e = parse_query("SELECT FOO(x) FROM t").unwrap_err();
        assert!(e.to_string().contains("aggregate function"));
        let e = parse_query("SELECT SUM(x) t").unwrap_err();
        assert!(e.to_string().contains("FROM"));
        let e = parse_query("SELECT SUM(x) FROM t WHERE").unwrap_err();
        assert!(e.to_string().contains("expression"));
        let e = parse_query("SELECT SUM(x) FROM t extra").unwrap_err();
        assert!(e.to_string().contains("trailing"));
        let e = parse_query("SELECT SUM(x) FROM select").unwrap_err();
        assert!(e.to_string().contains("reserved"));
    }

    #[test]
    fn booleans_and_strings_in_predicates() {
        let q = parse_query("SELECT COUNT(*) FROM t WHERE up = TRUE AND name = 'n1'").unwrap();
        assert_eq!(
            q.predicate.unwrap().to_string(),
            "((up = true) AND (name = 'n1'))"
        );
    }

    #[test]
    fn display_roundtrip_reparses() {
        let cases = [
            "SELECT MIN(bandwidth) WITHIN 10 FROM links",
            "SELECT AVG(latency) WITHIN 2 FROM links WHERE traffic > 100",
            "SELECT COUNT(*) FROM links WHERE latency > 10",
            "SELECT SUM(x + 1) FROM a, b WHERE a.id = b.id GROUP BY region",
            "SELECT SUM(x) WITHIN 2 DEADLINE 50 FROM t",
            "SELECT COUNT(*) DEADLINE 25 FROM t WHERE x > 1",
        ];
        for src in cases {
            let q1 = parse_query(src).unwrap();
            let q2 = parse_query(&q1.to_string()).unwrap();
            assert_eq!(q1, q2, "roundtrip failed for {src}");
        }
    }
}
