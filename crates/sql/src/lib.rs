//! # trapp-sql
//!
//! The TRAPP/AG query language (§4 of the paper):
//!
//! ```sql
//! SELECT AGGREGATE(expr) WITHIN R
//! FROM T [, T2]
//! WHERE predicate
//! [GROUP BY col, ...]
//! ```
//!
//! `AGGREGATE` is one of `COUNT`, `MIN`, `MAX`, `SUM`, `AVG` (plus `MEDIAN`,
//! implemented from the paper's §8.1 future-work list via bounded order
//! statistics). `WITHIN R` is the **precision constraint**: the bounded
//! answer `[L_A, H_A]` must satisfy `H_A − L_A ≤ R`. Omitting it means
//! `R = ∞` (pure cache answer); `WITHIN 0` forces an exact answer.
//!
//! The implementation is a hand-written lexer ([`token`]) and recursive-
//! descent parser ([`parser`]) producing [`ast::Query`] over
//! [`trapp_expr::Expr`] trees. Errors carry byte offsets into the source.
//!
//! ```
//! use trapp_sql::parse_query;
//! let q = parse_query(
//!     "SELECT AVG(latency) WITHIN 2 FROM links WHERE traffic > 100",
//! ).unwrap();
//! assert_eq!(q.within, Some(2.0));
//! assert_eq!(q.tables, vec!["links".to_string()]);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod ast;
pub mod parser;
pub mod token;

pub use ast::{AggregateFunc, Query};
pub use parser::parse_query;
