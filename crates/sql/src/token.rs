//! The lexer: source text → tokens with byte offsets.

use trapp_types::TrappError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are recognized case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl Tok {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Number(n) => format!("number `{n}`"),
            Tok::Str(s) => format!("string '{s}'"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Star => "`*`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Slash => "`/`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Ne => "`<>`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// A token plus the byte offset where it starts.
#[derive(Clone, Debug, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Byte offset into the source.
    pub offset: usize,
}

fn err(message: impl Into<String>, offset: usize) -> TrappError {
    TrappError::Parse {
        message: message.into(),
        offset,
    }
}

/// Lexes a full query string.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, TrappError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // SQL line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(SpannedTok {
                    tok: Tok::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                out.push(SpannedTok {
                    tok: Tok::RParen,
                    offset: i,
                });
                i += 1;
            }
            ',' => {
                out.push(SpannedTok {
                    tok: Tok::Comma,
                    offset: i,
                });
                i += 1;
            }
            '.' if !bytes
                .get(i + 1)
                .map(|b| b.is_ascii_digit())
                .unwrap_or(false) =>
            {
                out.push(SpannedTok {
                    tok: Tok::Dot,
                    offset: i,
                });
                i += 1;
            }
            '*' => {
                out.push(SpannedTok {
                    tok: Tok::Star,
                    offset: i,
                });
                i += 1;
            }
            '+' => {
                out.push(SpannedTok {
                    tok: Tok::Plus,
                    offset: i,
                });
                i += 1;
            }
            '-' => {
                out.push(SpannedTok {
                    tok: Tok::Minus,
                    offset: i,
                });
                i += 1;
            }
            '/' => {
                out.push(SpannedTok {
                    tok: Tok::Slash,
                    offset: i,
                });
                i += 1;
            }
            '=' => {
                out.push(SpannedTok {
                    tok: Tok::Eq,
                    offset: i,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(SpannedTok {
                        tok: Tok::Ne,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(err("unexpected `!` (did you mean `!=`?)", i));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(SpannedTok {
                        tok: Tok::Le,
                        offset: i,
                    });
                    i += 2;
                }
                Some(b'>') => {
                    out.push(SpannedTok {
                        tok: Tok::Ne,
                        offset: i,
                    });
                    i += 2;
                }
                _ => {
                    out.push(SpannedTok {
                        tok: Tok::Lt,
                        offset: i,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(SpannedTok {
                        tok: Tok::Ge,
                        offset: i,
                    });
                    i += 2;
                } else {
                    out.push(SpannedTok {
                        tok: Tok::Gt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let seg_start = i;
                loop {
                    match bytes.get(i) {
                        None => return Err(err("unterminated string literal", start)),
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                i += 2; // escaped quote, keep scanning
                            } else {
                                break;
                            }
                        }
                        Some(_) => i += 1,
                    }
                }
                // Slice at quote boundaries (always ASCII), which keeps
                // multi-byte UTF-8 content intact; then unescape ''.
                let s = src[seg_start..i].replace("''", "'");
                i += 1; // closing quote
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    offset: start,
                });
            }
            c if c.is_ascii_digit() || (c == '.') => {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_digit() {
                        i += 1;
                    } else if b == '.' && !saw_dot && !saw_exp {
                        saw_dot = true;
                        i += 1;
                    } else if (b == 'e' || b == 'E')
                        && !saw_exp
                        && i > start
                        && bytes
                            .get(i + 1)
                            .map(|&n| n.is_ascii_digit() || n == b'-' || n == b'+')
                            .unwrap_or(false)
                    {
                        saw_exp = true;
                        i += 1;
                        if bytes[i] == b'-' || bytes[i] == b'+' {
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = &src[start..i];
                let n: f64 = text
                    .parse()
                    .map_err(|_| err(format!("invalid number `{text}`"), start))?;
                out.push(SpannedTok {
                    tok: Tok::Number(n),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(src[start..i].to_owned()),
                    offset: start,
                });
            }
            other => return Err(err(format!("unexpected character `{other}`"), i)),
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        offset: src.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_a_full_query() {
        let t = toks("SELECT MIN(bandwidth) WITHIN 10 FROM links WHERE x >= 1.5");
        assert_eq!(
            t,
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("MIN".into()),
                Tok::LParen,
                Tok::Ident("bandwidth".into()),
                Tok::RParen,
                Tok::Ident("WITHIN".into()),
                Tok::Number(10.0),
                Tok::Ident("FROM".into()),
                Tok::Ident("links".into()),
                Tok::Ident("WHERE".into()),
                Tok::Ident("x".into()),
                Tok::Ge,
                Tok::Number(1.5),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks("< <= > >= = <> != + - * / ( ) , ."),
            vec![
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Eq,
                Tok::Ne,
                Tok::Ne,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::LParen,
                Tok::RParen,
                Tok::Comma,
                Tok::Dot,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("1 2.5 .75 1e3 2.5e-2"),
            vec![
                Tok::Number(1.0),
                Tok::Number(2.5),
                Tok::Number(0.75),
                Tok::Number(1000.0),
                Tok::Number(0.025),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            toks("'hello' 'it''s'"),
            vec![Tok::Str("hello".into()), Tok::Str("it's".into()), Tok::Eof]
        );
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("SELECT -- the aggregate\n1"),
            vec![Tok::Ident("SELECT".into()), Tok::Number(1.0), Tok::Eof]
        );
    }

    #[test]
    fn qualified_names_produce_dot() {
        assert_eq!(
            toks("links.latency"),
            vec![
                Tok::Ident("links".into()),
                Tok::Dot,
                Tok::Ident("latency".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn error_positions_are_byte_offsets() {
        let e = lex("ok $").unwrap_err();
        match e {
            TrappError::Parse { offset, .. } => assert_eq!(offset, 3),
            other => panic!("unexpected error {other}"),
        }
    }
}
