//! Property test: pretty-printing a parsed query and re-parsing it yields
//! the same AST (display/parse are mutually consistent), over randomly
//! generated query structures.

use proptest::prelude::*;
use trapp_expr::{BinaryOp, ColumnRef, Expr, UnaryOp};
use trapp_sql::{parse_query, AggregateFunc, Query};
use trapp_types::Value;

fn arb_agg() -> impl Strategy<Value = AggregateFunc> {
    prop_oneof![
        Just(AggregateFunc::Count),
        Just(AggregateFunc::Min),
        Just(AggregateFunc::Max),
        Just(AggregateFunc::Sum),
        Just(AggregateFunc::Avg),
        Just(AggregateFunc::Median),
    ]
}

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not reserved", |s| {
        ![
            "select", "from", "where", "within", "deadline", "and", "or", "not", "group", "by",
            "true", "false", "as",
        ]
        .contains(&s.as_str())
    })
}

fn arb_column() -> impl Strategy<Value = ColumnRef> {
    (arb_ident(), proptest::option::of(arb_ident())).prop_map(|(c, t)| ColumnRef {
        table: t,
        column: c,
    })
}

/// Numeric literals restricted to values that roundtrip through Display
/// (finite, reasonably sized).
fn arb_number() -> impl Strategy<Value = f64> {
    (-1e6f64..1e6).prop_map(|v| (v * 100.0).round() / 100.0)
}

fn arb_num_expr() -> impl Strategy<Value = Expr<ColumnRef>> {
    let leaf = prop_oneof![
        arb_number().prop_map(|v| Expr::Literal(Value::Float(v))),
        arb_column().prop_map(Expr::Column),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinaryOp::Add),
                    Just(BinaryOp::Sub),
                    Just(BinaryOp::Mul),
                    Just(BinaryOp::Div),
                ]
            )
                .prop_map(|(a, b, op)| Expr::binary(op, a, b)),
            inner.prop_map(|x| Expr::unary(UnaryOp::Neg, x)),
        ]
    })
}

fn arb_predicate() -> impl Strategy<Value = Expr<ColumnRef>> {
    let cmp = (
        arb_num_expr(),
        arb_num_expr(),
        prop_oneof![
            Just(BinaryOp::Eq),
            Just(BinaryOp::Ne),
            Just(BinaryOp::Lt),
            Just(BinaryOp::Le),
            Just(BinaryOp::Gt),
            Just(BinaryOp::Ge),
        ],
    )
        .prop_map(|(a, b, op)| Expr::binary(op, a, b));
    cmp.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
            inner.prop_map(|x| Expr::unary(UnaryOp::Not, x)),
        ]
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        arb_agg(),
        proptest::option::of(arb_num_expr()),
        proptest::option::of(0.0f64..1e4),
        proptest::option::of(0.0f64..1e4),
        proptest::collection::vec(arb_ident(), 1..=2),
        proptest::option::of(arb_predicate()),
        proptest::collection::vec(arb_column(), 0..=2),
    )
        .prop_map(
            |(agg, arg, within, deadline, mut tables, predicate, group_by)| {
                tables.dedup();
                // COUNT may drop its argument (COUNT(*)); others need one.
                let arg = if agg == AggregateFunc::Count {
                    arg
                } else {
                    Some(arg.unwrap_or(Expr::Column(ColumnRef::bare("x"))))
                };
                let within = within.map(|w| (w * 100.0).round() / 100.0);
                let deadline = deadline.map(|d| (d * 100.0).round() / 100.0);
                Query {
                    agg,
                    arg,
                    within,
                    deadline,
                    tables,
                    predicate,
                    group_by,
                }
            },
        )
}

/// The parser constant-folds `-literal`; normalize generated trees the same
/// way so structural comparison is meaningful.
fn normalize(e: &Expr<ColumnRef>) -> Expr<ColumnRef> {
    match e {
        Expr::Unary(UnaryOp::Neg, x) => {
            let x = normalize(x);
            if let Expr::Literal(Value::Float(v)) = x {
                Expr::Literal(Value::Float(-v))
            } else {
                Expr::unary(UnaryOp::Neg, x)
            }
        }
        Expr::Unary(op, x) => Expr::unary(*op, normalize(x)),
        Expr::Binary(op, a, b) => Expr::binary(*op, normalize(a), normalize(b)),
        other => other.clone(),
    }
}

fn normalize_query(q: &Query) -> Query {
    Query {
        arg: q.arg.as_ref().map(normalize),
        predicate: q.predicate.as_ref().map(normalize),
        ..q.clone()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_roundtrip(q in arb_query()) {
        let q = normalize_query(&q);
        let rendered = q.to_string();
        let reparsed = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("failed to reparse `{rendered}`: {e}"));
        prop_assert_eq!(&q, &reparsed, "source: {}", rendered);
        // And a second roundtrip is a fixed point.
        prop_assert_eq!(rendered.clone(), reparsed.to_string());
    }
}
