//! Data caches: bounded tables + the query processor (§3, Figure 3).
//!
//! A [`CacheNode`] owns a `trapp-core` [`QuerySession`] whose tables hold
//! the *materialized* bounds. Each bounded cell is backed by one replicated
//! object with a time-varying [`BoundFunction`]; before a query runs, the
//! cache evaluates every bound function at the current time and writes the
//! resulting intervals into the table (§3.2: "we assume that any
//! time-varying bound functions have been evaluated at the current time
//! `T_c`").
//!
//! Query-initiated refreshes flow through an internal transport-backed
//! oracle (`SystemOracle`), which routes
//! each `(table, tuple, column)` request to the owning source via the
//! transport, hands the exact value to the executor, and records the new
//! bound function for installation after the query completes.

use std::collections::HashMap;

use trapp_bounds::BoundFunction;
use trapp_core::executor::{QueryResult, QuerySession, RefreshOracle};
use trapp_types::{BoundedValue, CacheId, ObjectId, SourceId, TrappError, TupleId};

use crate::clock::SimClock;
use crate::message::{Refresh, RefreshKind};
use crate::stats::CacheStats;
use crate::transport::Transport;

/// Identifies one bounded cell of one cached table.
pub type CellKey = (String, TupleId, usize);

/// Where a replicated object lives and which cell it backs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectRoute {
    /// The owning source.
    pub source: SourceId,
    /// The backed cell.
    pub cell: CellKey,
}

/// A TRAPP data cache.
pub struct CacheNode {
    id: CacheId,
    session: QuerySession,
    clock: SimClock,
    /// object → route (source + cell).
    routes: HashMap<ObjectId, ObjectRoute>,
    /// cell → object (reverse index used by the oracle).
    by_cell: HashMap<CellKey, ObjectId>,
    /// Current bound function per object.
    bounds: HashMap<ObjectId, BoundFunction>,
    stats: CacheStats,
}

impl CacheNode {
    /// Creates a cache over an empty catalog.
    pub fn new(id: CacheId, clock: SimClock) -> CacheNode {
        CacheNode {
            id,
            session: QuerySession::with_catalog(trapp_storage::Catalog::new()),
            clock,
            routes: HashMap::new(),
            by_cell: HashMap::new(),
            bounds: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// This cache's id.
    pub fn id(&self) -> CacheId {
        self.id
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The underlying query session (configuration, catalog access).
    pub fn session_mut(&mut self) -> &mut QuerySession {
        &mut self.session
    }

    /// Immutable session access.
    pub fn session(&self) -> &QuerySession {
        &self.session
    }

    /// Adds a cached table.
    pub fn add_table(&mut self, table: trapp_storage::Table) -> Result<(), TrappError> {
        self.session.catalog_mut().add_table(table)
    }

    /// Binds `object` (owned by `source`) to a bounded cell. The cell's
    /// bound stays unknown until a subscription refresh is installed.
    pub fn bind_object(
        &mut self,
        object: ObjectId,
        source: SourceId,
        table: impl Into<String>,
        tuple: TupleId,
        column: usize,
    ) -> Result<(), TrappError> {
        let cell: CellKey = (table.into(), tuple, column);
        // Validate the cell exists and is bounded.
        let t = self.session.catalog().table(&cell.0)?;
        let def = t.schema().column_at(column)?;
        if !def.bounded {
            return Err(TrappError::BoundednessViolation(format!(
                "column {} of {} is exact; only bounded cells back replicated objects",
                def.name, cell.0
            )));
        }
        t.row(tuple)?;
        self.routes.insert(
            object,
            ObjectRoute {
                source,
                cell: cell.clone(),
            },
        );
        self.by_cell.insert(cell, object);
        Ok(())
    }

    /// Installs a refresh (any kind): records the bound function and pins
    /// the cell to the refreshed exact value (the bound at `T_r` is the
    /// point `V(T_r)`; it widens again at the next materialization).
    pub fn install_refresh(&mut self, refresh: Refresh) -> Result<(), TrappError> {
        let route = self.routes.get(&refresh.object).ok_or_else(|| {
            TrappError::RefreshFailed(format!("{} is not bound here", refresh.object))
        })?;
        let (table, tuple, column) = route.cell.clone();
        self.bounds.insert(refresh.object, refresh.bound);
        self.session
            .catalog_mut()
            .table_mut(&table)?
            .refresh_cell(tuple, column, refresh.value)?;
        match refresh.kind {
            RefreshKind::ValueInitiated => self.stats.value_initiated += 1,
            RefreshKind::QueryInitiated => self.stats.query_initiated += 1,
            RefreshKind::Subscription => self.stats.subscriptions += 1,
            RefreshKind::PreRefresh => self.stats.pre_refreshes += 1,
        }
        Ok(())
    }

    /// Evaluates every bound function at the current time and writes the
    /// intervals into the cached tables.
    pub fn materialize(&mut self) -> Result<(), TrappError> {
        let now = self.clock.now();
        for (object, bound) in &self.bounds {
            let route = self
                .routes
                .get(object)
                .ok_or_else(|| TrappError::Internal(format!("{object} has bound but no route")))?;
            let (table, tuple, column) = route.cell.clone();
            let iv = bound.interval_at(now);
            self.session
                .catalog_mut()
                .table_mut(&table)?
                .update_cell(tuple, column, BoundedValue::Bounded(iv))?;
        }
        Ok(())
    }

    /// Executes a query: materializes bounds at the current time, runs the
    /// `trapp-core` executor with a transport-backed oracle, installs the
    /// new bound functions received from sources, and updates statistics.
    pub fn execute_query(
        &mut self,
        sql: &str,
        transport: &dyn Transport,
    ) -> Result<QueryResult, TrappError> {
        self.materialize()?;
        let mut oracle = SystemOracle {
            cache: self.id,
            now: self.clock.now(),
            by_cell: &self.by_cell,
            routes: &self.routes,
            transport,
            received: Vec::new(),
        };
        let result = self.session.execute_sql(sql, &mut oracle);
        // Install bound functions from whatever refreshes arrived, even on
        // error paths (the exact values are already in the table; the bound
        // functions must follow or the next materialization would resurrect
        // stale bounds).
        let received = oracle.received;
        for refresh in received {
            self.bounds.insert(refresh.object, refresh.bound);
            self.stats.query_initiated += 1;
        }
        let result = result?;
        self.stats.queries += 1;
        self.stats.refresh_cost += result.refresh_cost;
        Ok(result)
    }
}

/// The transport-backed [`RefreshOracle`].
struct SystemOracle<'a> {
    cache: CacheId,
    now: f64,
    by_cell: &'a HashMap<CellKey, ObjectId>,
    routes: &'a HashMap<ObjectId, ObjectRoute>,
    transport: &'a dyn Transport,
    received: Vec<Refresh>,
}

impl RefreshOracle for SystemOracle<'_> {
    fn refresh(
        &mut self,
        table: &str,
        tid: TupleId,
        columns: &[usize],
    ) -> Result<Vec<f64>, TrappError> {
        let mut out = Vec::with_capacity(columns.len());
        for &column in columns {
            let key: CellKey = (table.to_owned(), tid, column);
            let object = self.by_cell.get(&key).ok_or_else(|| {
                TrappError::RefreshFailed(format!(
                    "no replicated object backs {table}[{tid}].{column}"
                ))
            })?;
            let route = &self.routes[object];
            let refresh =
                self.transport
                    .request_refresh(route.source, self.cache, *object, self.now)?;
            out.push(refresh.value);
            self.received.push(refresh);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;
    use crate::transport::DirectTransport;
    use trapp_bounds::BoundShape;
    use trapp_storage::{ColumnDef, Schema, Table};
    use trapp_types::{Value, ValueType};

    /// One source, one cache, two objects backing a 2-row table.
    fn setup() -> (SimClock, CacheNode, DirectTransport) {
        let clock = SimClock::new();
        let mut cache = CacheNode::new(CacheId::new(1), clock.clone());

        let schema = Schema::new(vec![
            ColumnDef::exact("name", ValueType::Str),
            ColumnDef::bounded_float("temp"),
        ])
        .unwrap();
        let mut table = Table::new("sensors", schema);
        let t1 = table
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Str("a".into())),
                    BoundedValue::bounded(0.0, 0.0).unwrap(),
                ],
                2.0,
            )
            .unwrap();
        let t2 = table
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Str("b".into())),
                    BoundedValue::bounded(0.0, 0.0).unwrap(),
                ],
                3.0,
            )
            .unwrap();
        cache.add_table(table).unwrap();

        let mut source = Source::new(SourceId::new(1), BoundShape::Sqrt);
        source.register_object(ObjectId::new(1), 20.0).unwrap();
        source.register_object(ObjectId::new(2), 25.0).unwrap();

        cache
            .bind_object(ObjectId::new(1), SourceId::new(1), "sensors", t1, 1)
            .unwrap();
        cache
            .bind_object(ObjectId::new(2), SourceId::new(1), "sensors", t2, 1)
            .unwrap();

        let mut transport = DirectTransport::new();
        let src = transport.add_source(source);
        {
            let mut s = src.lock();
            for obj in [ObjectId::new(1), ObjectId::new(2)] {
                let r = s.subscribe(CacheId::new(1), obj, 1.0, 0.0).unwrap();
                cache.install_refresh(r).unwrap();
            }
        }
        (clock, cache, transport)
    }

    #[test]
    fn materialization_widens_with_time() {
        let (clock, mut cache, _t) = setup();
        cache.materialize().unwrap();
        let t = cache.session().catalog().table("sensors").unwrap();
        assert_eq!(t.interval(TupleId::new(1), 1).unwrap().width(), 0.0);

        clock.advance(4.0);
        cache.materialize().unwrap();
        let t = cache.session().catalog().table("sensors").unwrap();
        // ±1·√4 = ±2 → width 4.
        assert_eq!(t.interval(TupleId::new(1), 1).unwrap().width(), 4.0);
    }

    #[test]
    fn query_from_cache_alone_when_precision_allows() {
        let (clock, mut cache, transport) = setup();
        clock.advance(4.0);
        let r = cache
            .execute_query("SELECT SUM(temp) WITHIN 10 FROM sensors", &transport)
            .unwrap();
        // Total width = 8 ≤ 10: no refreshes.
        assert!(r.satisfied);
        assert!(r.refreshed.is_empty());
        assert_eq!(transport.messages(), 0);
        assert_eq!(r.answer.range.midpoint(), 45.0);
    }

    #[test]
    fn tight_precision_pulls_query_initiated_refreshes() {
        let (clock, mut cache, transport) = setup();
        clock.advance(4.0);
        let r = cache
            .execute_query("SELECT SUM(temp) WITHIN 1 FROM sensors", &transport)
            .unwrap();
        assert!(r.satisfied);
        assert!(!r.refreshed.is_empty());
        assert!(transport.messages() > 0);
        assert_eq!(cache.stats().query_initiated, r.refreshed.len() as u64);
        // Exact answer: 20 + 25.
        assert!(r.answer.range.contains(45.0));
        assert!(r.answer.width() <= 1.0);
    }

    #[test]
    fn value_initiated_refresh_updates_cache() {
        let (clock, mut cache, transport) = setup();
        clock.advance(1.0);
        // Push an escaping update through the source.
        let src = transport.source(SourceId::new(1)).unwrap();
        let refreshes = src
            .lock()
            .apply_update(ObjectId::new(1), 50.0, clock.now())
            .unwrap();
        assert_eq!(refreshes.len(), 1);
        for (cache_id, r) in refreshes {
            assert_eq!(cache_id, CacheId::new(1));
            cache.install_refresh(r).unwrap();
        }
        assert_eq!(cache.stats().value_initiated, 1);
        cache.materialize().unwrap();
        let t = cache.session().catalog().table("sensors").unwrap();
        let iv = t.interval(TupleId::new(1), 1).unwrap();
        assert!(iv.contains(50.0));
        assert!(iv.is_point()); // refreshed at the current instant
    }

    #[test]
    fn binding_validates_cells() {
        let (_c, mut cache, _t) = setup();
        // Column 0 is exact.
        assert!(cache
            .bind_object(ObjectId::new(9), SourceId::new(1), "sensors", TupleId::new(1), 0)
            .is_err());
        // Unknown tuple.
        assert!(cache
            .bind_object(ObjectId::new(9), SourceId::new(1), "sensors", TupleId::new(99), 1)
            .is_err());
        // Unknown table.
        assert!(cache
            .bind_object(ObjectId::new(9), SourceId::new(1), "nope", TupleId::new(1), 1)
            .is_err());
    }

    #[test]
    fn refreshes_for_unbound_objects_fail() {
        let (_c, mut cache, _t) = setup();
        let r = Refresh {
            object: ObjectId::new(42),
            value: 1.0,
            bound: BoundFunction::exact(1.0, 0.0).unwrap(),
            kind: RefreshKind::ValueInitiated,
        };
        assert!(cache.install_refresh(r).is_err());
    }
}
