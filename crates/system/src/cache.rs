//! Data caches: bounded tables + the query processor (§3, Figure 3).
//!
//! A [`CacheNode`] owns a `trapp-core` [`QuerySession`] whose tables hold
//! the *materialized* bounds. Each bounded cell is backed by one replicated
//! object with a time-varying [`BoundFunction`]; before a query runs, the
//! cache evaluates every bound function at the current time and writes the
//! resulting intervals into the table (§3.2: "we assume that any
//! time-varying bound functions have been evaluated at the current time
//! `T_c`").
//!
//! Query-initiated refreshes flow through an internal transport-backed
//! oracle (`SystemOracle`), which routes
//! each `(table, tuple, column)` request to the owning source via the
//! transport, hands the exact value to the executor, and records the new
//! bound function for installation after the query completes.

use std::collections::HashMap;

use trapp_bounds::BoundFunction;
use trapp_core::executor::{QueryResult, QuerySession, RefreshOracle};
use trapp_types::{BoundedValue, CacheId, ObjectId, SourceId, TrappError, TupleId};

use crate::clock::SimClock;
use crate::message::{Refresh, RefreshKind};
use crate::stats::CacheStats;
use crate::transport::Transport;

/// Identifies one bounded cell of one cached table.
pub type CellKey = (String, TupleId, usize);

/// Where a replicated object lives and which cell it backs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectRoute {
    /// The owning source.
    pub source: SourceId,
    /// The backed cell.
    pub cell: CellKey,
}

/// A TRAPP data cache.
pub struct CacheNode {
    id: CacheId,
    session: QuerySession,
    clock: SimClock,
    /// object → route (source + cell).
    routes: HashMap<ObjectId, ObjectRoute>,
    /// cell → object (reverse index used by the oracle).
    by_cell: HashMap<CellKey, ObjectId>,
    /// Current bound function per object.
    bounds: HashMap<ObjectId, BoundFunction>,
    /// Sequence of the last installed refresh per object (see
    /// [`Refresh::seq`]); installs arriving out of order are skipped.
    installed_seq: HashMap<ObjectId, u64>,
    /// The instant of the last full materialization, if any.
    materialized_at: Option<f64>,
    /// Objects whose bound changed since the last materialization. While
    /// the clock stands still, re-materializing only has to re-evaluate
    /// these — the incremental path that keeps repeat plan passes O(Δ)
    /// instead of O(objects).
    dirty_bounds: std::collections::HashSet<ObjectId>,
    /// When `true` (the default), a CHOOSE_REFRESH plan is served with one
    /// transport round-trip per *source*; when `false`, one per *object*
    /// (the seed's behavior, kept as a measurable baseline).
    batch_refreshes: bool,
    stats: CacheStats,
}

impl CacheNode {
    /// Creates a cache over an empty catalog.
    pub fn new(id: CacheId, clock: SimClock) -> CacheNode {
        CacheNode {
            id,
            session: QuerySession::with_catalog(trapp_storage::Catalog::new()),
            clock,
            routes: HashMap::new(),
            by_cell: HashMap::new(),
            bounds: HashMap::new(),
            installed_seq: HashMap::new(),
            materialized_at: None,
            dirty_bounds: std::collections::HashSet::new(),
            batch_refreshes: true,
            stats: CacheStats::default(),
        }
    }

    /// This cache's id.
    pub fn id(&self) -> CacheId {
        self.id
    }

    /// Chooses between batched (per-source) and per-object refresh
    /// round-trips for query-initiated refreshes.
    pub fn set_batch_refreshes(&mut self, on: bool) {
        self.batch_refreshes = on;
    }

    /// Where `object` lives and which cell it backs, if bound here.
    pub fn route(&self, object: ObjectId) -> Option<&ObjectRoute> {
        self.routes.get(&object)
    }

    /// Iterates all bound objects with their routes.
    pub fn objects(&self) -> impl Iterator<Item = (ObjectId, &ObjectRoute)> {
        self.routes.iter().map(|(&o, r)| (o, r))
    }

    /// The replicated objects backing `tid`'s bounded cells, with their
    /// owning sources — what a refresh of the tuple must fetch.
    pub fn objects_backing(
        &self,
        table: &str,
        tuple: TupleId,
    ) -> Result<Vec<(ObjectId, SourceId)>, TrappError> {
        let columns = self
            .session
            .catalog()
            .table(table)?
            .schema()
            .bounded_columns();
        columns
            .into_iter()
            .map(|col| {
                let key: CellKey = (table.to_owned(), tuple, col);
                let object = self.by_cell.get(&key).ok_or_else(|| {
                    TrappError::RefreshFailed(format!(
                        "no replicated object backs {table}[{tuple}].{col}"
                    ))
                })?;
                Ok((*object, self.routes[object].source))
            })
            .collect()
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The underlying query session (configuration, catalog access).
    pub fn session_mut(&mut self) -> &mut QuerySession {
        &mut self.session
    }

    /// Immutable session access.
    pub fn session(&self) -> &QuerySession {
        &self.session
    }

    /// Adds a cached table.
    pub fn add_table(&mut self, table: trapp_storage::Table) -> Result<(), TrappError> {
        self.session.catalog_mut().add_table(table)
    }

    /// Binds `object` (owned by `source`) to a bounded cell. The cell's
    /// bound stays unknown until a subscription refresh is installed.
    pub fn bind_object(
        &mut self,
        object: ObjectId,
        source: SourceId,
        table: impl Into<String>,
        tuple: TupleId,
        column: usize,
    ) -> Result<(), TrappError> {
        let cell: CellKey = (table.into(), tuple, column);
        // Validate the cell exists and is bounded.
        let t = self.session.catalog().table(&cell.0)?;
        let def = t.schema().column_at(column)?;
        if !def.bounded {
            return Err(TrappError::BoundednessViolation(format!(
                "column {} of {} is exact; only bounded cells back replicated objects",
                def.name, cell.0
            )));
        }
        t.row(tuple)?;
        self.routes.insert(
            object,
            ObjectRoute {
                source,
                cell: cell.clone(),
            },
        );
        self.by_cell.insert(cell, object);
        Ok(())
    }

    /// Installs a refresh (any kind): records the bound function and pins
    /// the cell to the refreshed exact value (the bound at `T_r` is the
    /// point `V(T_r)`; it widens again at the next materialization).
    ///
    /// Installs are *ordered*: a refresh whose [`Refresh::seq`] is behind
    /// one already installed for the object is stale — a newer bound from
    /// the source has already landed, e.g. a value-initiated refresh that
    /// raced a concurrently fetched query refresh — and is skipped, so the
    /// cache can never regress behind the Refresh Monitor's tracked bound.
    pub fn install_refresh(&mut self, refresh: Refresh) -> Result<(), TrappError> {
        let route = self.routes.get(&refresh.object).ok_or_else(|| {
            TrappError::RefreshFailed(format!("{} is not bound here", refresh.object))
        })?;
        if self
            .installed_seq
            .get(&refresh.object)
            .is_some_and(|&last| refresh.seq < last)
        {
            self.stats.stale_skipped += 1;
            return Ok(());
        }
        self.installed_seq.insert(refresh.object, refresh.seq);
        let (table, tuple, column) = route.cell.clone();
        self.bounds.insert(refresh.object, refresh.bound);
        self.dirty_bounds.insert(refresh.object);
        self.session
            .catalog_mut()
            .table_mut(&table)?
            .refresh_cell(tuple, column, refresh.value)?;
        match refresh.kind {
            RefreshKind::ValueInitiated => self.stats.value_initiated += 1,
            RefreshKind::QueryInitiated => self.stats.query_initiated += 1,
            RefreshKind::Subscription => self.stats.subscriptions += 1,
            RefreshKind::PreRefresh => self.stats.pre_refreshes += 1,
        }
        Ok(())
    }

    /// Evaluates bound functions at the current time and writes the
    /// intervals into the cached tables.
    ///
    /// Incremental: while the clock stands still only the bounds that
    /// changed since the last call (new installs) are re-evaluated, so a
    /// query's second plan pass — and every further query in the same
    /// instant — pays O(changed) instead of O(objects). A clock advance
    /// re-evaluates everything (every bound re-widened). The written
    /// intervals are identical either way; `Table::update_cell` skips
    /// no-op writes, so unchanged cells also leave table versions (and
    /// thus memoized band views) untouched.
    pub fn materialize(&mut self) -> Result<(), TrappError> {
        let now = self.clock.now();
        if self.materialized_at == Some(now) {
            if self.dirty_bounds.is_empty() {
                return Ok(());
            }
            // Remove each object only after its cell is written, so a
            // failure leaves it (and everything not yet reached) dirty
            // for the next call instead of silently skipped.
            let dirty: Vec<ObjectId> = self.dirty_bounds.iter().copied().collect();
            for object in dirty {
                self.materialize_object(object, now)?;
                self.dirty_bounds.remove(&object);
            }
            return Ok(());
        }
        let objects: Vec<ObjectId> = self.bounds.keys().copied().collect();
        for object in objects {
            self.materialize_object(object, now)?;
        }
        self.dirty_bounds.clear();
        self.materialized_at = Some(now);
        Ok(())
    }

    /// Writes one object's bound interval at `now` into its cell.
    fn materialize_object(&mut self, object: ObjectId, now: f64) -> Result<(), TrappError> {
        let bound = self
            .bounds
            .get(&object)
            .ok_or_else(|| TrappError::Internal(format!("{object} marked dirty without bound")))?;
        let route = self
            .routes
            .get(&object)
            .ok_or_else(|| TrappError::Internal(format!("{object} has bound but no route")))?;
        let (table, tuple, column) = route.cell.clone();
        let iv = bound.interval_at(now);
        self.session.catalog_mut().table_mut(&table)?.update_cell(
            tuple,
            column,
            BoundedValue::Bounded(iv),
        )
    }

    /// Executes a query from SQL text; see [`CacheNode::execute`].
    pub fn execute_query(
        &mut self,
        sql: &str,
        transport: &dyn Transport,
    ) -> Result<QueryResult, TrappError> {
        let query = trapp_sql::parse_query(sql)?;
        self.execute(&query, transport)
    }

    /// Executes a parsed query: materializes bounds at the current time,
    /// runs the `trapp-core` executor with a transport-backed oracle,
    /// installs the new bound functions received from sources, and updates
    /// statistics.
    pub fn execute(
        &mut self,
        query: &trapp_sql::Query,
        transport: &dyn Transport,
    ) -> Result<QueryResult, TrappError> {
        let result =
            self.with_oracle(transport, |session, oracle| session.execute(query, oracle))?;
        self.stats.queries += 1;
        self.stats.refresh_cost += result.refresh_cost;
        Ok(result)
    }

    /// Executes a parsed `GROUP BY` query through the same
    /// materialize/execute/install pipeline as [`CacheNode::execute`],
    /// returning one result per group in key-sorted order. Used as the
    /// locked fallback for grouped queries in iterative execution mode
    /// (batch mode plans grouped queries ahead via
    /// [`trapp_core::query_plan`] instead).
    pub fn execute_grouped(
        &mut self,
        query: &trapp_sql::Query,
        transport: &dyn Transport,
    ) -> Result<Vec<trapp_core::GroupResult>, TrappError> {
        let groups = self.with_oracle(transport, |session, oracle| {
            session.execute_grouped(query, oracle)
        })?;
        self.stats.queries += 1;
        self.stats.refresh_cost += groups.iter().map(|g| g.result.refresh_cost).sum::<f64>();
        Ok(groups)
    }

    /// Shared execution harness: materializes bounds, runs `f` with a
    /// transport-backed oracle, and installs the bound functions of every
    /// refresh that arrived — even on error paths (the exact values are
    /// already in the table; the bound functions must follow or the next
    /// materialization would resurrect stale bounds). Sequence-stale
    /// refreshes are skipped like in [`CacheNode::install_refresh`].
    fn with_oracle<R>(
        &mut self,
        transport: &dyn Transport,
        f: impl FnOnce(&mut QuerySession, &mut SystemOracle) -> Result<R, TrappError>,
    ) -> Result<R, TrappError> {
        self.materialize()?;
        let mut oracle = SystemOracle {
            cache: self.id,
            now: self.clock.now(),
            by_cell: &self.by_cell,
            routes: &self.routes,
            transport,
            batch: self.batch_refreshes,
            received: Vec::new(),
        };
        let result = f(&mut self.session, &mut oracle);
        let received = oracle.received;
        for refresh in received {
            if self
                .installed_seq
                .get(&refresh.object)
                .is_some_and(|&last| refresh.seq < last)
            {
                self.stats.stale_skipped += 1;
                continue;
            }
            self.installed_seq.insert(refresh.object, refresh.seq);
            self.bounds.insert(refresh.object, refresh.bound);
            self.dirty_bounds.insert(refresh.object);
            self.stats.query_initiated += 1;
        }
        result
    }
}

/// The transport-backed [`RefreshOracle`].
struct SystemOracle<'a> {
    cache: CacheId,
    now: f64,
    by_cell: &'a HashMap<CellKey, ObjectId>,
    routes: &'a HashMap<ObjectId, ObjectRoute>,
    transport: &'a dyn Transport,
    batch: bool,
    received: Vec<Refresh>,
}

impl SystemOracle<'_> {
    /// The object backing `table[tid].column`, with its owning source.
    fn object_at(
        &self,
        table: &str,
        tid: TupleId,
        column: usize,
    ) -> Result<(ObjectId, SourceId), TrappError> {
        let key: CellKey = (table.to_owned(), tid, column);
        let object = self.by_cell.get(&key).ok_or_else(|| {
            TrappError::RefreshFailed(format!(
                "no replicated object backs {table}[{tid}].{column}"
            ))
        })?;
        Ok((*object, self.routes[object].source))
    }
}

impl RefreshOracle for SystemOracle<'_> {
    fn refresh(
        &mut self,
        table: &str,
        tid: TupleId,
        columns: &[usize],
    ) -> Result<Vec<f64>, TrappError> {
        let mut out = Vec::with_capacity(columns.len());
        for &column in columns {
            let (object, source) = self.object_at(table, tid, column)?;
            let refresh = self
                .transport
                .request_refresh(source, self.cache, object, self.now)?;
            out.push(refresh.value);
            self.received.push(refresh);
        }
        Ok(out)
    }

    /// Serves a whole refresh plan with one round-trip per source: the
    /// plan's `(tuple, column)` cells are resolved to objects, grouped by
    /// owning source, fetched via [`Transport::request_refresh_batch`],
    /// and scattered back into per-tuple value rows.
    fn refresh_batch(
        &mut self,
        table: &str,
        tids: &[TupleId],
        columns: &[usize],
    ) -> Result<Vec<Vec<f64>>, TrappError> {
        if !self.batch {
            // Per-object baseline: identical traffic shape to the seed.
            return tids
                .iter()
                .map(|&tid| self.refresh(table, tid, columns))
                .collect();
        }
        // Resolve every cell up front; slot maps (tuple row, column slot)
        // to its position in the per-source request vectors.
        let mut per_source: HashMap<SourceId, Vec<ObjectId>> = HashMap::new();
        let mut slots: Vec<Vec<(SourceId, usize)>> = Vec::with_capacity(tids.len());
        for &tid in tids {
            let mut row = Vec::with_capacity(columns.len());
            for &column in columns {
                let (object, source) = self.object_at(table, tid, column)?;
                let bucket = per_source.entry(source).or_default();
                bucket.push(object);
                row.push((source, bucket.len() - 1));
            }
            slots.push(row);
        }
        // One round-trip per source. BTree order keeps the request
        // sequence deterministic.
        let ordered: std::collections::BTreeMap<SourceId, Vec<ObjectId>> =
            per_source.into_iter().collect();
        let mut responses: HashMap<SourceId, Vec<Refresh>> = HashMap::new();
        for (source, objects) in ordered {
            let refreshes = self
                .transport
                .request_refresh_batch(source, self.cache, &objects, self.now)?;
            if refreshes.len() != objects.len() {
                return Err(TrappError::RefreshFailed(format!(
                    "source {source} returned {} refreshes for {} objects",
                    refreshes.len(),
                    objects.len()
                )));
            }
            // Record each source's refreshes the moment they arrive: if a
            // *later* source's batch fails, these have still mutated their
            // source's monitor state, and the error-path install in
            // `execute` must see them or cache and monitor diverge.
            self.received.extend(refreshes.iter().copied());
            responses.insert(source, refreshes);
        }
        let out = slots
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|(source, idx)| responses[&source][idx].value)
                    .collect()
            })
            .collect();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;
    use crate::transport::DirectTransport;
    use trapp_bounds::BoundShape;
    use trapp_storage::{ColumnDef, Schema, Table};
    use trapp_types::{Value, ValueType};

    /// One source, one cache, two objects backing a 2-row table.
    fn setup() -> (SimClock, CacheNode, DirectTransport) {
        let clock = SimClock::new();
        let mut cache = CacheNode::new(CacheId::new(1), clock.clone());

        let schema = Schema::new(vec![
            ColumnDef::exact("name", ValueType::Str),
            ColumnDef::bounded_float("temp"),
        ])
        .unwrap();
        let mut table = Table::new("sensors", schema);
        let t1 = table
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Str("a".into())),
                    BoundedValue::bounded(0.0, 0.0).unwrap(),
                ],
                2.0,
            )
            .unwrap();
        let t2 = table
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Str("b".into())),
                    BoundedValue::bounded(0.0, 0.0).unwrap(),
                ],
                3.0,
            )
            .unwrap();
        cache.add_table(table).unwrap();

        let mut source = Source::new(SourceId::new(1), BoundShape::Sqrt);
        source.register_object(ObjectId::new(1), 20.0).unwrap();
        source.register_object(ObjectId::new(2), 25.0).unwrap();

        cache
            .bind_object(ObjectId::new(1), SourceId::new(1), "sensors", t1, 1)
            .unwrap();
        cache
            .bind_object(ObjectId::new(2), SourceId::new(1), "sensors", t2, 1)
            .unwrap();

        let mut transport = DirectTransport::new();
        let src = transport.add_source(source);
        {
            let mut s = src.lock();
            for obj in [ObjectId::new(1), ObjectId::new(2)] {
                let r = s.subscribe(CacheId::new(1), obj, 1.0, 0.0).unwrap();
                cache.install_refresh(r).unwrap();
            }
        }
        (clock, cache, transport)
    }

    #[test]
    fn materialization_widens_with_time() {
        let (clock, mut cache, _t) = setup();
        cache.materialize().unwrap();
        let t = cache.session().catalog().table("sensors").unwrap();
        assert_eq!(t.interval(TupleId::new(1), 1).unwrap().width(), 0.0);

        clock.advance(4.0);
        cache.materialize().unwrap();
        let t = cache.session().catalog().table("sensors").unwrap();
        // ±1·√4 = ±2 → width 4.
        assert_eq!(t.interval(TupleId::new(1), 1).unwrap().width(), 4.0);
    }

    #[test]
    fn query_from_cache_alone_when_precision_allows() {
        let (clock, mut cache, transport) = setup();
        clock.advance(4.0);
        let r = cache
            .execute_query("SELECT SUM(temp) WITHIN 10 FROM sensors", &transport)
            .unwrap();
        // Total width = 8 ≤ 10: no refreshes.
        assert!(r.satisfied);
        assert!(r.refreshed.is_empty());
        assert_eq!(transport.messages(), 0);
        assert_eq!(r.answer.range.midpoint(), 45.0);
    }

    #[test]
    fn tight_precision_pulls_query_initiated_refreshes() {
        let (clock, mut cache, transport) = setup();
        clock.advance(4.0);
        let r = cache
            .execute_query("SELECT SUM(temp) WITHIN 1 FROM sensors", &transport)
            .unwrap();
        assert!(r.satisfied);
        assert!(!r.refreshed.is_empty());
        assert!(transport.messages() > 0);
        assert_eq!(cache.stats().query_initiated, r.refreshed.len() as u64);
        // Exact answer: 20 + 25.
        assert!(r.answer.range.contains(45.0));
        assert!(r.answer.width() <= 1.0);
    }

    #[test]
    fn value_initiated_refresh_updates_cache() {
        let (clock, mut cache, transport) = setup();
        clock.advance(1.0);
        // Push an escaping update through the source.
        let src = transport.source(SourceId::new(1)).unwrap();
        let refreshes = src
            .lock()
            .apply_update(ObjectId::new(1), 50.0, clock.now())
            .unwrap();
        assert_eq!(refreshes.len(), 1);
        for (cache_id, r) in refreshes {
            assert_eq!(cache_id, CacheId::new(1));
            cache.install_refresh(r).unwrap();
        }
        assert_eq!(cache.stats().value_initiated, 1);
        cache.materialize().unwrap();
        let t = cache.session().catalog().table("sensors").unwrap();
        let iv = t.interval(TupleId::new(1), 1).unwrap();
        assert!(iv.contains(50.0));
        assert!(iv.is_point()); // refreshed at the current instant
    }

    #[test]
    fn binding_validates_cells() {
        let (_c, mut cache, _t) = setup();
        // Column 0 is exact.
        assert!(cache
            .bind_object(
                ObjectId::new(9),
                SourceId::new(1),
                "sensors",
                TupleId::new(1),
                0
            )
            .is_err());
        // Unknown tuple.
        assert!(cache
            .bind_object(
                ObjectId::new(9),
                SourceId::new(1),
                "sensors",
                TupleId::new(99),
                1
            )
            .is_err());
        // Unknown table.
        assert!(cache
            .bind_object(
                ObjectId::new(9),
                SourceId::new(1),
                "nope",
                TupleId::new(1),
                1
            )
            .is_err());
    }

    #[test]
    fn refreshes_for_unbound_objects_fail() {
        let (_c, mut cache, _t) = setup();
        let r = Refresh {
            object: ObjectId::new(42),
            value: 1.0,
            bound: BoundFunction::exact(1.0, 0.0).unwrap(),
            kind: RefreshKind::ValueInitiated,
            seq: 0,
        };
        assert!(cache.install_refresh(r).is_err());
    }

    /// Installs are ordered by [`Refresh::seq`]: a refresh that arrives
    /// after a newer one for the same object (a fetch racing an update)
    /// must not regress the cache behind the monitor's tracked bound.
    #[test]
    fn stale_refresh_installs_are_skipped() {
        let (clock, mut cache, transport) = setup();
        clock.advance(1.0);
        let src = transport.source(SourceId::new(1)).unwrap();

        // A query refresh is served first (seq k)…
        let older = src
            .lock()
            .serve_refresh(CacheId::new(1), ObjectId::new(1), 1.0)
            .unwrap();
        // …then an escaping update issues a newer bound (seq k+1), which
        // reaches the cache *before* the query refresh does.
        let newer = src
            .lock()
            .apply_update(ObjectId::new(1), 500.0, 1.0)
            .unwrap()
            .remove(0)
            .1;
        assert!(newer.seq > older.seq);
        cache.install_refresh(newer).unwrap();
        cache.install_refresh(older).unwrap(); // late arrival: skipped

        assert_eq!(cache.stats().stale_skipped, 1);
        cache.materialize().unwrap();
        let t = cache.session().catalog().table("sensors").unwrap();
        let iv = t.interval(TupleId::new(1), 1).unwrap();
        assert!(
            iv.contains(500.0),
            "stale install must not evict the newer bound: {iv}"
        );

        // Same-seq duplicates (coalesced installs) remain idempotent.
        cache.install_refresh(newer).unwrap();
        assert_eq!(cache.stats().stale_skipped, 1);
    }
}
