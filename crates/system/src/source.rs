//! Data sources and their Refresh Monitors (§3, Figure 3).
//!
//! A source owns the master copy `Vᵢ` of each of its objects. Its Refresh
//! Monitor "keeps track of the bounds for each of its data objects in each
//! relevant cache" and is responsible for detecting, on every update,
//! whether some cache's bound is violated — and if so, pushing a
//! value-initiated refresh with a fresh bound function.
//!
//! Width parameters follow Appendix A: each (cache, object) pair has an
//! [`AdaptiveWidth`] controller that widens after value-initiated refreshes
//! and narrows after query-initiated ones.

use std::collections::HashMap;

use trapp_bounds::{AdaptiveWidth, BoundFunction, BoundShape};
use trapp_types::{CacheId, ObjectId, SourceId, TrappError};

use crate::message::{Refresh, RefreshKind};

/// Per-(cache, object) monitor state.
#[derive(Clone, Debug)]
struct Tracked {
    bound: BoundFunction,
    width: AdaptiveWidth,
    /// Sequence of the last refresh issued for this (cache, object); every
    /// outgoing [`Refresh`] is stamped so the cache can order concurrent
    /// installs (see [`Refresh::seq`]).
    seq: u64,
}

/// Counters kept by each source.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Updates applied to master values.
    pub updates: u64,
    /// Value-initiated refreshes pushed.
    pub value_initiated: u64,
    /// Query-initiated refreshes served.
    pub query_initiated: u64,
    /// Batched refresh requests served (each covering ≥ 1 object).
    pub batches_served: u64,
    /// §8.3 pre-refreshes pushed.
    pub pre_refreshes: u64,
}

/// A data source: master values plus the Refresh Monitor.
#[derive(Debug)]
pub struct Source {
    id: SourceId,
    shape: BoundShape,
    masters: HashMap<ObjectId, f64>,
    tracked: HashMap<(CacheId, ObjectId), Tracked>,
    stats: SourceStats,
}

impl Source {
    /// Creates a source issuing bounds of the given shape (the paper's
    /// recommendation is [`BoundShape::Sqrt`]).
    pub fn new(id: SourceId, shape: BoundShape) -> Source {
        Source {
            id,
            shape,
            masters: HashMap::new(),
            tracked: HashMap::new(),
            stats: SourceStats::default(),
        }
    }

    /// This source's id.
    pub fn id(&self) -> SourceId {
        self.id
    }

    /// Statistics so far.
    pub fn stats(&self) -> SourceStats {
        self.stats
    }

    /// Registers (or overwrites) a master object.
    pub fn register_object(&mut self, object: ObjectId, value: f64) -> Result<(), TrappError> {
        if value.is_nan() {
            return Err(TrappError::NanValue);
        }
        self.masters.insert(object, value);
        Ok(())
    }

    /// The current master value.
    pub fn master(&self, object: ObjectId) -> Result<f64, TrappError> {
        self.masters
            .get(&object)
            .copied()
            .ok_or_else(|| TrappError::RefreshFailed(format!("{object} not at source {}", self.id)))
    }

    /// Subscribes a cache to an object: installs monitor state and returns
    /// the initial refresh to deliver.
    pub fn subscribe(
        &mut self,
        cache: CacheId,
        object: ObjectId,
        initial_width: f64,
        now: f64,
    ) -> Result<Refresh, TrappError> {
        let value = self.master(object)?;
        let width = AdaptiveWidth::with_defaults(initial_width)?;
        let bound = BoundFunction::new(value, width.width(), now, self.shape)?;
        // Re-subscription continues the sequence so installs delivered out
        // of order around it still resolve correctly.
        let seq = self.tracked.get(&(cache, object)).map_or(0, |t| t.seq + 1);
        self.tracked
            .insert((cache, object), Tracked { bound, width, seq });
        Ok(Refresh {
            object,
            value,
            bound,
            kind: RefreshKind::Subscription,
            seq,
        })
    }

    /// Applies an update to a master value; returns the value-initiated
    /// refreshes (one per cache whose bound the new value escapes).
    pub fn apply_update(
        &mut self,
        object: ObjectId,
        value: f64,
        now: f64,
    ) -> Result<Vec<(CacheId, Refresh)>, TrappError> {
        if value.is_nan() {
            return Err(TrappError::NanValue);
        }
        if !self.masters.contains_key(&object) {
            return Err(TrappError::RefreshFailed(format!(
                "{object} not at source {}",
                self.id
            )));
        }
        self.masters.insert(object, value);
        self.stats.updates += 1;

        let mut out = Vec::new();
        for ((cache, obj), t) in self.tracked.iter_mut() {
            if *obj != object {
                continue;
            }
            if t.bound.violated_by(value, now) {
                t.width.on_value_initiated_refresh();
                t.bound = BoundFunction::new(value, t.width.width(), now, self.shape)?;
                t.seq += 1;
                self.stats.value_initiated += 1;
                out.push((
                    *cache,
                    Refresh {
                        object,
                        value,
                        bound: t.bound,
                        kind: RefreshKind::ValueInitiated,
                        seq: t.seq,
                    },
                ));
            }
        }
        Ok(out)
    }

    /// Serves a query-initiated refresh: returns the exact master value
    /// with a fresh (narrowed) bound, updating the monitor state.
    pub fn serve_refresh(
        &mut self,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Result<Refresh, TrappError> {
        let value = self.master(object)?;
        let t = self.tracked.get_mut(&(cache, object)).ok_or_else(|| {
            TrappError::RefreshFailed(format!(
                "{cache} is not subscribed to {object} at source {}",
                self.id
            ))
        })?;
        t.width.on_query_initiated_refresh();
        t.bound = BoundFunction::new(value, t.width.width(), now, self.shape)?;
        t.seq += 1;
        self.stats.query_initiated += 1;
        Ok(Refresh {
            object,
            value,
            bound: t.bound,
            kind: RefreshKind::QueryInitiated,
            seq: t.seq,
        })
    }

    /// Serves one batched query-initiated refresh covering many objects in
    /// a single round-trip (the batched-transport fast path): each object
    /// gets the same treatment as [`Source::serve_refresh`], but the whole
    /// batch counts as one served batch. Fails atomically — if any object
    /// is unknown or unsubscribed, no monitor state is touched.
    pub fn serve_refresh_batch(
        &mut self,
        cache: CacheId,
        objects: &[ObjectId],
        now: f64,
    ) -> Result<Vec<Refresh>, TrappError> {
        // Validate up front so a bad object mid-batch cannot leave half the
        // batch's width controllers narrowed.
        for &object in objects {
            self.master(object)?;
            if !self.tracked.contains_key(&(cache, object)) {
                return Err(TrappError::RefreshFailed(format!(
                    "{cache} is not subscribed to {object} at source {}",
                    self.id
                )));
            }
        }
        let out = objects
            .iter()
            .map(|&object| self.serve_refresh(cache, object, now))
            .collect::<Result<Vec<_>, _>>()?;
        self.stats.batches_served += 1;
        Ok(out)
    }

    /// Performs a §8.3 pre-refresh: re-centers the bound on the current
    /// master value *without* treating it as a width signal — pre-refreshes
    /// are scheduling hints, not evidence that the width was wrong, so the
    /// adaptive controller is left untouched.
    pub fn pre_refresh(
        &mut self,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Result<Refresh, TrappError> {
        let value = self.master(object)?;
        let t = self.tracked.get_mut(&(cache, object)).ok_or_else(|| {
            TrappError::RefreshFailed(format!(
                "{cache} is not subscribed to {object} at source {}",
                self.id
            ))
        })?;
        t.bound = BoundFunction::new(value, t.width.width(), now, self.shape)?;
        t.seq += 1;
        self.stats.pre_refreshes += 1;
        Ok(Refresh {
            object,
            value,
            bound: t.bound,
            kind: RefreshKind::PreRefresh,
            seq: t.seq,
        })
    }

    /// The bound currently tracked for `(cache, object)` — what the Refresh
    /// Monitor believes the cache holds.
    pub fn tracked_bound(&self, cache: CacheId, object: ObjectId) -> Option<&BoundFunction> {
        self.tracked.get(&(cache, object)).map(|t| &t.bound)
    }

    /// Objects whose master value sits close to the edge of a cache's bound
    /// (within `margin` fraction of the half-width) — the §8.3
    /// *pre-refresh / piggybacking* candidates.
    pub fn near_edge(&self, cache: CacheId, now: f64, margin: f64) -> Vec<ObjectId> {
        let mut out = Vec::new();
        for ((c, obj), t) in &self.tracked {
            if *c != cache {
                continue;
            }
            let Some(&v) = self.masters.get(obj) else {
                continue;
            };
            let iv = t.bound.interval_at(now);
            let half = iv.width() / 2.0;
            if half <= 0.0 {
                continue;
            }
            let dist_to_edge = (iv.hi() - v).min(v - iv.lo());
            if dist_to_edge <= margin * half {
                out.push(*obj);
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source() -> Source {
        let mut s = Source::new(SourceId::new(1), BoundShape::Sqrt);
        s.register_object(ObjectId::new(1), 100.0).unwrap();
        s
    }

    #[test]
    fn subscription_installs_zero_width_bound() {
        let mut s = source();
        let r = s
            .subscribe(CacheId::new(1), ObjectId::new(1), 2.0, 0.0)
            .unwrap();
        assert_eq!(r.kind, RefreshKind::Subscription);
        assert_eq!(r.value, 100.0);
        assert!(r.bound.interval_at(0.0).is_point());
        // The bound widens over time: at t = 4, ±2·√4 = ±4.
        let iv = r.bound.interval_at(4.0);
        assert_eq!((iv.lo(), iv.hi()), (96.0, 104.0));
    }

    #[test]
    fn small_updates_stay_inside_the_bound() {
        let mut s = source();
        s.subscribe(CacheId::new(1), ObjectId::new(1), 2.0, 0.0)
            .unwrap();
        // At t = 4 the bound is [96, 104]; 103 stays inside.
        let refreshes = s.apply_update(ObjectId::new(1), 103.0, 4.0).unwrap();
        assert!(refreshes.is_empty());
        assert_eq!(s.master(ObjectId::new(1)).unwrap(), 103.0);
    }

    #[test]
    fn escaping_update_triggers_value_initiated_refresh_and_widens() {
        let mut s = source();
        s.subscribe(CacheId::new(1), ObjectId::new(1), 2.0, 0.0)
            .unwrap();
        let refreshes = s.apply_update(ObjectId::new(1), 110.0, 4.0).unwrap();
        assert_eq!(refreshes.len(), 1);
        let (cache, r) = refreshes[0];
        assert_eq!(cache, CacheId::new(1));
        assert_eq!(r.kind, RefreshKind::ValueInitiated);
        assert_eq!(r.value, 110.0);
        // Appendix A: the width parameter doubled (default grow factor 2).
        assert_eq!(r.bound.width_param(), 4.0);
        assert_eq!(s.stats().value_initiated, 1);
    }

    #[test]
    fn query_refresh_narrows_width() {
        let mut s = source();
        s.subscribe(CacheId::new(1), ObjectId::new(1), 2.0, 0.0)
            .unwrap();
        let r = s
            .serve_refresh(CacheId::new(1), ObjectId::new(1), 3.0)
            .unwrap();
        assert_eq!(r.kind, RefreshKind::QueryInitiated);
        // Default shrink factor 0.7.
        assert!((r.bound.width_param() - 1.4).abs() < 1e-12);
        assert_eq!(s.stats().query_initiated, 1);
        // Unsubscribed caches cannot pull.
        assert!(s
            .serve_refresh(CacheId::new(9), ObjectId::new(1), 3.0)
            .is_err());
    }

    #[test]
    fn multiple_caches_tracked_independently() {
        let mut s = source();
        s.subscribe(CacheId::new(1), ObjectId::new(1), 2.0, 0.0)
            .unwrap();
        s.subscribe(CacheId::new(2), ObjectId::new(1), 50.0, 0.0)
            .unwrap();
        // At t=4: cache 1's bound is ±4 (violated by 110), cache 2's is
        // ±100 (not violated).
        let refreshes = s.apply_update(ObjectId::new(1), 110.0, 4.0).unwrap();
        assert_eq!(refreshes.len(), 1);
        assert_eq!(refreshes[0].0, CacheId::new(1));
    }

    #[test]
    fn near_edge_flags_pre_refresh_candidates() {
        let mut s = source();
        s.register_object(ObjectId::new(2), 200.0).unwrap();
        s.subscribe(CacheId::new(1), ObjectId::new(1), 2.0, 0.0)
            .unwrap();
        s.subscribe(CacheId::new(1), ObjectId::new(2), 2.0, 0.0)
            .unwrap();
        // At t = 4 bounds are ±4. Move object 1 near its edge (103.9),
        // object 2 stays centered.
        s.apply_update(ObjectId::new(1), 103.9, 4.0).unwrap();
        let near = s.near_edge(CacheId::new(1), 4.0, 0.1);
        assert_eq!(near, vec![ObjectId::new(1)]);
    }

    #[test]
    fn unknown_objects_error() {
        let mut s = source();
        assert!(s.master(ObjectId::new(9)).is_err());
        assert!(s.apply_update(ObjectId::new(9), 1.0, 0.0).is_err());
        assert!(s
            .subscribe(CacheId::new(1), ObjectId::new(9), 1.0, 0.0)
            .is_err());
        assert!(s.register_object(ObjectId::new(3), f64::NAN).is_err());
    }
}
