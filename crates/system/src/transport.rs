//! Transports: how query-initiated refresh requests reach sources.
//!
//! * [`DirectTransport`] — synchronous function calls into shared sources;
//!   fully deterministic, zero overhead; the default for tests and
//!   reproducible experiments.
//! * [`ChannelTransport`] — every source runs on its own OS thread behind
//!   `crossbeam` channels, with optional per-request simulated latency.
//!   This preserves the actor structure of a real deployment: concurrent
//!   caches block only on their own replies while sources serve requests
//!   in arrival order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use trapp_types::{CacheId, ObjectId, SourceId, TrappError};

use crate::message::Refresh;
use crate::source::Source;

/// A refresh-request pathway from caches to sources.
///
/// # Message accounting
///
/// [`Transport::messages`] counts *round-trips*, identically on every
/// implementation: each [`Transport::request_refresh`] call is one
/// round-trip, and each non-empty [`Transport::request_refresh_batch`]
/// call is one round-trip regardless of how many objects it covers (an
/// empty batch is free). Updates pushed via [`Transport::apply_update`]
/// are not refresh round-trips and are never counted.
pub trait Transport: Send + Sync {
    /// Performs one query-initiated refresh round-trip.
    fn request_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Result<Refresh, TrappError>;

    /// Performs one *batched* query-initiated refresh round-trip: all
    /// `objects` (owned by `source`) are refreshed in a single message
    /// exchange. Returns one [`Refresh`] per object, in request order.
    fn request_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: &[ObjectId],
        now: f64,
    ) -> Result<Vec<Refresh>, TrappError>;

    /// Applies an update to a master value at `source`, returning the
    /// value-initiated refreshes it triggered (one per cache whose bound
    /// the new value escapes).
    fn apply_update(
        &self,
        source: SourceId,
        object: ObjectId,
        value: f64,
        now: f64,
    ) -> Result<Vec<(CacheId, Refresh)>, TrappError>;

    /// Number of refresh round-trips served so far.
    fn messages(&self) -> u64;
}

impl<T: Transport + ?Sized> Transport for Box<T> {
    fn request_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Result<Refresh, TrappError> {
        (**self).request_refresh(source, cache, object, now)
    }

    fn request_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: &[ObjectId],
        now: f64,
    ) -> Result<Vec<Refresh>, TrappError> {
        (**self).request_refresh_batch(source, cache, objects, now)
    }

    fn apply_update(
        &self,
        source: SourceId,
        object: ObjectId,
        value: f64,
        now: f64,
    ) -> Result<Vec<(CacheId, Refresh)>, TrappError> {
        (**self).apply_update(source, object, value, now)
    }

    fn messages(&self) -> u64 {
        (**self).messages()
    }
}

/// Synchronous, deterministic transport over shared sources.
#[derive(Clone, Default)]
pub struct DirectTransport {
    sources: HashMap<SourceId, Arc<Mutex<Source>>>,
    messages: Arc<AtomicU64>,
}

impl DirectTransport {
    /// An empty transport.
    pub fn new() -> DirectTransport {
        DirectTransport::default()
    }

    /// Registers a source, returning the shared handle for driver-side
    /// updates.
    pub fn add_source(&mut self, source: Source) -> Arc<Mutex<Source>> {
        let id = source.id();
        let arc = Arc::new(Mutex::new(source));
        self.sources.insert(id, arc.clone());
        arc
    }

    /// The shared handle for `id`.
    pub fn source(&self, id: SourceId) -> Option<Arc<Mutex<Source>>> {
        self.sources.get(&id).cloned()
    }
}

impl Transport for DirectTransport {
    fn request_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Result<Refresh, TrappError> {
        let src = self
            .sources
            .get(&source)
            .ok_or_else(|| TrappError::RefreshFailed(format!("unknown source {source}")))?;
        self.messages.fetch_add(1, Ordering::Relaxed);
        src.lock().serve_refresh(cache, object, now)
    }

    fn request_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: &[ObjectId],
        now: f64,
    ) -> Result<Vec<Refresh>, TrappError> {
        if objects.is_empty() {
            return Ok(Vec::new());
        }
        let src = self
            .sources
            .get(&source)
            .ok_or_else(|| TrappError::RefreshFailed(format!("unknown source {source}")))?;
        self.messages.fetch_add(1, Ordering::Relaxed);
        src.lock().serve_refresh_batch(cache, objects, now)
    }

    fn apply_update(
        &self,
        source: SourceId,
        object: ObjectId,
        value: f64,
        now: f64,
    ) -> Result<Vec<(CacheId, Refresh)>, TrappError> {
        let src = self
            .sources
            .get(&source)
            .ok_or_else(|| TrappError::RefreshFailed(format!("unknown source {source}")))?;
        src.lock().apply_update(object, value, now)
    }

    fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }
}

enum SourceRequest {
    Refresh {
        cache: CacheId,
        object: ObjectId,
        now: f64,
        reply: Sender<Result<Refresh, TrappError>>,
    },
    RefreshBatch {
        cache: CacheId,
        objects: Vec<ObjectId>,
        now: f64,
        reply: Sender<Result<Vec<Refresh>, TrappError>>,
    },
    Update {
        object: ObjectId,
        value: f64,
        now: f64,
        reply: Sender<Result<Vec<(CacheId, Refresh)>, TrappError>>,
    },
    Shutdown,
}

/// One source actor: a thread draining a request channel.
struct SourceActor {
    tx: Sender<SourceRequest>,
    handle: Option<JoinHandle<()>>,
}

/// Threaded transport: each source behind its own channel + thread.
pub struct ChannelTransport {
    actors: HashMap<SourceId, SourceActor>,
    latency: Duration,
    messages: Arc<AtomicU64>,
}

impl ChannelTransport {
    /// Creates a threaded transport with the given simulated one-way
    /// latency applied by each source before replying (use
    /// `Duration::ZERO` for none).
    pub fn new(latency: Duration) -> ChannelTransport {
        ChannelTransport {
            actors: HashMap::new(),
            latency,
            messages: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Spawns a source actor thread.
    pub fn add_source(&mut self, mut source: Source) {
        let id = source.id();
        let (tx, rx) = unbounded::<SourceRequest>();
        let latency = self.latency;
        let handle = std::thread::spawn(move || {
            while let Ok(req) = rx.recv() {
                match req {
                    SourceRequest::Refresh {
                        cache,
                        object,
                        now,
                        reply,
                    } => {
                        if !latency.is_zero() {
                            std::thread::sleep(latency);
                        }
                        let _ = reply.send(source.serve_refresh(cache, object, now));
                    }
                    SourceRequest::RefreshBatch {
                        cache,
                        objects,
                        now,
                        reply,
                    } => {
                        // One latency charge for the whole batch: the point
                        // of batching is that n objects share one
                        // round-trip.
                        if !latency.is_zero() {
                            std::thread::sleep(latency);
                        }
                        let _ = reply.send(source.serve_refresh_batch(cache, &objects, now));
                    }
                    SourceRequest::Update {
                        object,
                        value,
                        now,
                        reply,
                    } => {
                        let _ = reply.send(source.apply_update(object, value, now));
                    }
                    SourceRequest::Shutdown => break,
                }
            }
        });
        if let Some(replaced) = self.actors.insert(
            id,
            SourceActor {
                tx,
                handle: Some(handle),
            },
        ) {
            // Re-registering a source id must not leak the old actor's
            // thread past this transport: shut it down and join it now.
            shutdown_actor(replaced);
        }
    }

    fn actor(&self, source: SourceId) -> Result<&SourceActor, TrappError> {
        self.actors
            .get(&source)
            .ok_or_else(|| TrappError::RefreshFailed(format!("unknown source {source}")))
    }
}

/// Asks one actor to stop and joins its thread.
fn shutdown_actor(mut actor: SourceActor) {
    let _ = actor.tx.send(SourceRequest::Shutdown);
    if let Some(h) = actor.handle.take() {
        let _ = h.join();
    }
}

impl Transport for ChannelTransport {
    fn request_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Result<Refresh, TrappError> {
        let actor = self.actor(source)?;
        let (reply, rx) = unbounded();
        actor
            .tx
            .send(SourceRequest::Refresh {
                cache,
                object,
                now,
                reply,
            })
            .map_err(|_| TrappError::RefreshFailed("source actor gone".into()))?;
        self.messages.fetch_add(1, Ordering::Relaxed);
        rx.recv()
            .map_err(|_| TrappError::RefreshFailed("source actor dropped reply".into()))?
    }

    fn request_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: &[ObjectId],
        now: f64,
    ) -> Result<Vec<Refresh>, TrappError> {
        if objects.is_empty() {
            return Ok(Vec::new());
        }
        let actor = self.actor(source)?;
        let (reply, rx) = unbounded();
        actor
            .tx
            .send(SourceRequest::RefreshBatch {
                cache,
                objects: objects.to_vec(),
                now,
                reply,
            })
            .map_err(|_| TrappError::RefreshFailed("source actor gone".into()))?;
        self.messages.fetch_add(1, Ordering::Relaxed);
        rx.recv()
            .map_err(|_| TrappError::RefreshFailed("source actor dropped reply".into()))?
    }

    fn apply_update(
        &self,
        source: SourceId,
        object: ObjectId,
        value: f64,
        now: f64,
    ) -> Result<Vec<(CacheId, Refresh)>, TrappError> {
        let actor = self.actor(source)?;
        let (reply, rx) = unbounded();
        actor
            .tx
            .send(SourceRequest::Update {
                object,
                value,
                now,
                reply,
            })
            .map_err(|_| TrappError::RefreshFailed("source actor gone".into()))?;
        rx.recv()
            .map_err(|_| TrappError::RefreshFailed("source actor dropped reply".into()))?
    }

    fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        for (_, actor) in self.actors.drain() {
            shutdown_actor(actor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::RefreshKind;
    use trapp_bounds::BoundShape;

    fn mk_source(id: u64) -> Source {
        let mut s = Source::new(SourceId::new(id), BoundShape::Sqrt);
        s.register_object(ObjectId::new(1), 10.0).unwrap();
        s
    }

    #[test]
    fn direct_round_trip() {
        let mut t = DirectTransport::new();
        let src = t.add_source(mk_source(1));
        src.lock()
            .subscribe(CacheId::new(1), ObjectId::new(1), 1.0, 0.0)
            .unwrap();
        let r = t
            .request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
            .unwrap();
        assert_eq!(r.value, 10.0);
        assert_eq!(r.kind, RefreshKind::QueryInitiated);
        assert_eq!(t.messages(), 1);
        assert!(t
            .request_refresh(SourceId::new(9), CacheId::new(1), ObjectId::new(1), 1.0)
            .is_err());
    }

    #[test]
    fn channel_round_trip_and_updates() {
        let mut t = ChannelTransport::new(Duration::ZERO);
        let mut s = mk_source(1);
        s.subscribe(CacheId::new(1), ObjectId::new(1), 1.0, 0.0)
            .unwrap();
        t.add_source(s);

        // Query-initiated pull through the thread.
        let r = t
            .request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
            .unwrap();
        assert_eq!(r.value, 10.0);

        // Update that escapes the (narrow) bound → value-initiated push.
        let refreshes = t
            .apply_update(SourceId::new(1), ObjectId::new(1), 99.0, 2.0)
            .unwrap();
        assert_eq!(refreshes.len(), 1);
        assert_eq!(refreshes[0].1.kind, RefreshKind::ValueInitiated);
        assert_eq!(t.messages(), 1); // updates are not refresh round-trips
    }

    #[test]
    fn channel_transport_is_concurrent() {
        let mut t = ChannelTransport::new(Duration::from_millis(1));
        for id in 1..=4u64 {
            let mut s = mk_source(id);
            s.subscribe(CacheId::new(1), ObjectId::new(1), 1.0, 0.0)
                .unwrap();
            t.add_source(s);
        }
        let t = Arc::new(t);
        let mut handles = Vec::new();
        for id in 1..=4u64 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    t.request_refresh(SourceId::new(id), CacheId::new(1), ObjectId::new(1), 1.0)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.messages(), 20);
    }
}
