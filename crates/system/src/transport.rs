//! Transports: how query-initiated refresh requests reach sources.
//!
//! * [`DirectTransport`] — synchronous function calls into shared sources;
//!   fully deterministic, zero overhead; the default for tests and
//!   reproducible experiments.
//! * [`ChannelTransport`] — every source runs on its own OS thread behind
//!   `crossbeam` channels, with optional per-request simulated latency.
//!   This preserves the actor structure of a real deployment, but costs
//!   one thread per source: fan-out scales with topology size, not
//!   hardware.
//! * [`CompletionTransport`] — the completion-based transport: a small
//!   shared [`FetchPool`] of demux threads multiplexes *all* source
//!   actors, and requests are submitted nonblockingly, resolving through
//!   [`Completion`] handles. Thousands of sources, `O(pool)` threads;
//!   per-source FIFO ordering is preserved so [`Refresh::seq`] stamping
//!   matches the thread-per-source actors exactly.
//!
//! Every transport also exposes the nonblocking half of the API
//! ([`Transport::submit_refresh`] / [`Transport::submit_refresh_batch`]):
//! callers submit all their per-source requests first, then wait on the
//! completions, so independent round-trips overlap instead of
//! serializing. Blocking transports default to resolving the completion
//! inline, which keeps them bit-equivalent with sequential execution.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use trapp_types::{CacheId, ObjectId, SourceId, TrappError};

use crate::fetch_pool::{ActorHandle, FetchPool};
use crate::message::Refresh;
use crate::source::Source;

/// A pending transport reply: the nonblocking submit API returns one of
/// these, and the result arrives when the source (or its simulated
/// network) finishes. [`Completion::wait`] blocks until then.
pub struct Completion<T> {
    inner: CompletionInner<T>,
}

enum CompletionInner<T> {
    /// Resolved at submit time (blocking transports, early errors) — no
    /// channel allocated.
    Ready(Result<T, TrappError>),
    /// In flight; the transport resolves it through a channel.
    Pending(Receiver<Result<T, TrappError>>),
    /// A completion that must not be observable before `ready_at` — how
    /// chaos latency injection simulates wire delay on the *reply* path
    /// without blocking the submitter. The wrapped completion may itself
    /// be ready or pending; waiters see it only once the delay elapses.
    Delayed {
        ready_at: Instant,
        inner: Box<Completion<T>>,
    },
}

impl<T> Completion<T> {
    /// A completion that already holds its result — how blocking
    /// transports satisfy the nonblocking API.
    pub fn ready(result: Result<T, TrappError>) -> Completion<T> {
        Completion {
            inner: CompletionInner::Ready(result),
        }
    }

    /// An unresolved completion plus the sender that resolves it.
    pub fn pending() -> (CompletionSender<T>, Completion<T>) {
        let (tx, rx) = unbounded();
        (
            CompletionSender { tx },
            Completion {
                inner: CompletionInner::Pending(rx),
            },
        )
    }

    /// Wraps `inner` so its result only becomes observable at `ready_at`:
    /// until then [`Completion::poll`] reports in-flight and
    /// [`Completion::wait_timeout`] can expire, exactly as if the reply
    /// were still on the wire. Used by chaos latency injection to make
    /// deadline/straggler paths reachable even on blocking transports
    /// (whose completions otherwise resolve inline at submit).
    pub fn delayed_until(ready_at: Instant, inner: Completion<T>) -> Completion<T> {
        Completion {
            inner: CompletionInner::Delayed {
                ready_at,
                inner: Box::new(inner),
            },
        }
    }

    /// Blocks until the result is delivered. A transport torn down before
    /// resolving the request surfaces as [`TrappError::RefreshFailed`].
    pub fn wait(self) -> Result<T, TrappError> {
        match self.inner {
            CompletionInner::Ready(result) => result,
            CompletionInner::Pending(rx) => rx.recv().map_err(|_| {
                TrappError::RefreshFailed("transport dropped the completion".into())
            })?,
            CompletionInner::Delayed { ready_at, inner } => {
                let now = Instant::now();
                if ready_at > now {
                    std::thread::sleep(ready_at - now);
                }
                inner.wait()
            }
        }
    }

    /// Blocks for at most `timeout`. `Ok(result)` when the completion
    /// resolved (or the transport dropped it — surfaced as
    /// [`TrappError::RefreshFailed`], same as [`Completion::wait`]);
    /// `Err(self)` when the deadline expired with the request still in
    /// flight, handing the completion back so the caller can park it and
    /// still install the refresh if it lands later.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<T, TrappError>, Completion<T>> {
        match self.inner {
            CompletionInner::Ready(result) => Ok(result),
            CompletionInner::Pending(rx) => match rx.recv_timeout(timeout) {
                Ok(result) => Ok(result),
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Ok(Err(
                    TrappError::RefreshFailed("transport dropped the completion".into()),
                )),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(Completion {
                    inner: CompletionInner::Pending(rx),
                }),
            },
            CompletionInner::Delayed { ready_at, inner } => {
                let now = Instant::now();
                let remaining = ready_at.saturating_duration_since(now);
                if remaining >= timeout {
                    // The delay outlasts the caller's patience: burn the
                    // whole timeout and hand the still-delayed completion
                    // back for parking.
                    std::thread::sleep(timeout);
                    return Err(Completion {
                        inner: CompletionInner::Delayed { ready_at, inner },
                    });
                }
                std::thread::sleep(remaining);
                inner.wait_timeout(timeout - remaining)
            }
        }
    }

    /// Nonblocking probe: `Ok(result)` if the completion has resolved
    /// (or was dropped), `Err(self)` if it is still in flight.
    pub fn poll(self) -> Result<Result<T, TrappError>, Completion<T>> {
        match self.inner {
            CompletionInner::Ready(result) => Ok(result),
            CompletionInner::Pending(rx) => match rx.try_recv() {
                Ok(result) => Ok(result),
                Err(crossbeam::channel::TryRecvError::Disconnected) => Ok(Err(
                    TrappError::RefreshFailed("transport dropped the completion".into()),
                )),
                Err(crossbeam::channel::TryRecvError::Empty) => Err(Completion {
                    inner: CompletionInner::Pending(rx),
                }),
            },
            CompletionInner::Delayed { ready_at, inner } => {
                if Instant::now() < ready_at {
                    return Err(Completion {
                        inner: CompletionInner::Delayed { ready_at, inner },
                    });
                }
                inner.poll()
            }
        }
    }
}

/// Resolves a [`Completion`]. Dropping it unresolved makes the paired
/// [`Completion::wait`] report a refresh failure.
pub struct CompletionSender<T> {
    tx: Sender<Result<T, TrappError>>,
}

impl<T> CompletionSender<T> {
    /// Delivers the result to the waiting side.
    pub fn complete(self, result: Result<T, TrappError>) {
        let _ = self.tx.send(result);
    }
}

/// A refresh-request pathway from caches to sources.
///
/// # Message accounting
///
/// [`Transport::messages`] counts *round-trips*, identically on every
/// implementation: each [`Transport::request_refresh`] call is one
/// round-trip, and each non-empty [`Transport::request_refresh_batch`]
/// call is one round-trip regardless of how many objects it covers (an
/// empty batch is free). The nonblocking submit variants count at submit
/// time. Updates pushed via [`Transport::apply_update`] are not refresh
/// round-trips and are never counted.
pub trait Transport: Send + Sync {
    /// Performs one query-initiated refresh round-trip.
    fn request_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Result<Refresh, TrappError>;

    /// Performs one *batched* query-initiated refresh round-trip: all
    /// `objects` (owned by `source`) are refreshed in a single message
    /// exchange. Returns one [`Refresh`] per object, in request order.
    fn request_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: &[ObjectId],
        now: f64,
    ) -> Result<Vec<Refresh>, TrappError>;

    /// Nonblocking [`Transport::request_refresh`]: submits the request and
    /// returns immediately; the refresh arrives through the completion.
    /// Blocking transports resolve it inline before returning.
    fn submit_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Completion<Refresh> {
        Completion::ready(self.request_refresh(source, cache, object, now))
    }

    /// Nonblocking [`Transport::request_refresh_batch`]. Submitting several
    /// sources' batches before waiting overlaps their round-trips.
    fn submit_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: Vec<ObjectId>,
        now: f64,
    ) -> Completion<Vec<Refresh>> {
        Completion::ready(self.request_refresh_batch(source, cache, &objects, now))
    }

    /// Applies an update to a master value at `source`, returning the
    /// value-initiated refreshes it triggered (one per cache whose bound
    /// the new value escapes).
    fn apply_update(
        &self,
        source: SourceId,
        object: ObjectId,
        value: f64,
        now: f64,
    ) -> Result<Vec<(CacheId, Refresh)>, TrappError>;

    /// Nonblocking *batched* [`Transport::apply_update`], mirroring
    /// [`Transport::submit_refresh_batch`]: all `updates` to objects
    /// owned by `source` are applied in submission order with one
    /// completion for the whole batch, so a write-heavy driver stops
    /// paying one blocking round-trip per write — submit every
    /// per-source batch, then wait once per batch. Returns the
    /// concatenated value-initiated refreshes; on the first failing
    /// update the batch stops and the completion reports the error
    /// (updates already applied keep their effects, exactly as separate
    /// `apply_update` calls would). Blocking transports resolve it
    /// inline.
    fn submit_update_batch(
        &self,
        source: SourceId,
        updates: Vec<(ObjectId, f64)>,
        now: f64,
    ) -> Completion<Vec<(CacheId, Refresh)>> {
        let mut out = Vec::new();
        for (object, value) in updates {
            match self.apply_update(source, object, value, now) {
                Ok(refreshes) => out.extend(refreshes),
                Err(e) => return Completion::ready(Err(e)),
            }
        }
        Completion::ready(Ok(out))
    }

    /// Number of refresh round-trips served so far.
    fn messages(&self) -> u64;
}

impl<T: Transport + ?Sized> Transport for Box<T> {
    fn request_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Result<Refresh, TrappError> {
        (**self).request_refresh(source, cache, object, now)
    }

    fn request_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: &[ObjectId],
        now: f64,
    ) -> Result<Vec<Refresh>, TrappError> {
        (**self).request_refresh_batch(source, cache, objects, now)
    }

    fn submit_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Completion<Refresh> {
        (**self).submit_refresh(source, cache, object, now)
    }

    fn submit_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: Vec<ObjectId>,
        now: f64,
    ) -> Completion<Vec<Refresh>> {
        (**self).submit_refresh_batch(source, cache, objects, now)
    }

    fn apply_update(
        &self,
        source: SourceId,
        object: ObjectId,
        value: f64,
        now: f64,
    ) -> Result<Vec<(CacheId, Refresh)>, TrappError> {
        (**self).apply_update(source, object, value, now)
    }

    fn submit_update_batch(
        &self,
        source: SourceId,
        updates: Vec<(ObjectId, f64)>,
        now: f64,
    ) -> Completion<Vec<(CacheId, Refresh)>> {
        (**self).submit_update_batch(source, updates, now)
    }

    fn messages(&self) -> u64 {
        (**self).messages()
    }
}

/// Synchronous, deterministic transport over shared sources.
#[derive(Clone, Default)]
pub struct DirectTransport {
    sources: HashMap<SourceId, Arc<Mutex<Source>>>,
    messages: Arc<AtomicU64>,
}

impl DirectTransport {
    /// An empty transport.
    pub fn new() -> DirectTransport {
        DirectTransport::default()
    }

    /// Registers a source, returning the shared handle for driver-side
    /// updates.
    pub fn add_source(&mut self, source: Source) -> Arc<Mutex<Source>> {
        let id = source.id();
        let arc = Arc::new(Mutex::new(source));
        self.sources.insert(id, arc.clone());
        arc
    }

    /// The shared handle for `id`.
    pub fn source(&self, id: SourceId) -> Option<Arc<Mutex<Source>>> {
        self.sources.get(&id).cloned()
    }
}

impl Transport for DirectTransport {
    fn request_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Result<Refresh, TrappError> {
        let src = self
            .sources
            .get(&source)
            .ok_or_else(|| TrappError::RefreshFailed(format!("unknown source {source}")))?;
        self.messages.fetch_add(1, Ordering::Relaxed);
        src.lock().serve_refresh(cache, object, now)
    }

    fn request_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: &[ObjectId],
        now: f64,
    ) -> Result<Vec<Refresh>, TrappError> {
        if objects.is_empty() {
            return Ok(Vec::new());
        }
        let src = self
            .sources
            .get(&source)
            .ok_or_else(|| TrappError::RefreshFailed(format!("unknown source {source}")))?;
        self.messages.fetch_add(1, Ordering::Relaxed);
        src.lock().serve_refresh_batch(cache, objects, now)
    }

    fn apply_update(
        &self,
        source: SourceId,
        object: ObjectId,
        value: f64,
        now: f64,
    ) -> Result<Vec<(CacheId, Refresh)>, TrappError> {
        let src = self
            .sources
            .get(&source)
            .ok_or_else(|| TrappError::RefreshFailed(format!("unknown source {source}")))?;
        src.lock().apply_update(object, value, now)
    }

    fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }
}

enum SourceRequest {
    Refresh {
        cache: CacheId,
        object: ObjectId,
        now: f64,
        reply: CompletionSender<Refresh>,
    },
    RefreshBatch {
        cache: CacheId,
        objects: Vec<ObjectId>,
        now: f64,
        reply: CompletionSender<Vec<Refresh>>,
    },
    Update {
        object: ObjectId,
        value: f64,
        now: f64,
        reply: CompletionSender<Vec<(CacheId, Refresh)>>,
    },
    UpdateBatch {
        updates: Vec<(ObjectId, f64)>,
        now: f64,
        reply: CompletionSender<Vec<(CacheId, Refresh)>>,
    },
}

/// Applies a whole update batch against one source's state, in order,
/// stopping at the first failure — the shared actor-side half of
/// [`Transport::submit_update_batch`].
fn apply_update_batch(
    source: &mut Source,
    updates: Vec<(ObjectId, f64)>,
    now: f64,
) -> Result<Vec<(CacheId, Refresh)>, TrappError> {
    let mut out = Vec::new();
    for (object, value) in updates {
        out.extend(source.apply_update(object, value, now)?);
    }
    Ok(out)
}

/// One source actor: a thread draining a request channel.
struct SourceActor {
    tx: Sender<SourceRequest>,
    handle: JoinHandle<()>,
}

/// Threaded transport: each source behind its own channel + thread.
pub struct ChannelTransport {
    actors: HashMap<SourceId, SourceActor>,
    latency: Duration,
    messages: Arc<AtomicU64>,
}

impl ChannelTransport {
    /// Creates a threaded transport with the given simulated one-way
    /// latency applied by each source before replying (use
    /// `Duration::ZERO` for none).
    pub fn new(latency: Duration) -> ChannelTransport {
        ChannelTransport {
            actors: HashMap::new(),
            latency,
            messages: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Spawns a source actor thread.
    pub fn add_source(&mut self, mut source: Source) {
        let id = source.id();
        let (tx, rx) = unbounded::<SourceRequest>();
        let latency = self.latency;
        let handle = std::thread::spawn(move || {
            while let Ok(req) = rx.recv() {
                match req {
                    SourceRequest::Refresh {
                        cache,
                        object,
                        now,
                        reply,
                    } => {
                        if !latency.is_zero() {
                            std::thread::sleep(latency);
                        }
                        reply.complete(source.serve_refresh(cache, object, now));
                    }
                    SourceRequest::RefreshBatch {
                        cache,
                        objects,
                        now,
                        reply,
                    } => {
                        // One latency charge for the whole batch: the point
                        // of batching is that n objects share one
                        // round-trip.
                        if !latency.is_zero() {
                            std::thread::sleep(latency);
                        }
                        reply.complete(source.serve_refresh_batch(cache, &objects, now));
                    }
                    SourceRequest::Update {
                        object,
                        value,
                        now,
                        reply,
                    } => {
                        reply.complete(source.apply_update(object, value, now));
                    }
                    SourceRequest::UpdateBatch {
                        updates,
                        now,
                        reply,
                    } => {
                        reply.complete(apply_update_batch(&mut source, updates, now));
                    }
                }
            }
        });
        if let Some(replaced) = self.actors.insert(id, SourceActor { tx, handle }) {
            // Re-registering a source id must not leak the old actor's
            // thread past this transport: drain it and join it now.
            shutdown_actor(replaced);
        }
    }

    fn actor(&self, source: SourceId) -> Result<&SourceActor, TrappError> {
        self.actors
            .get(&source)
            .ok_or_else(|| TrappError::RefreshFailed(format!("unknown source {source}")))
    }
}

/// Stops one actor by *closing its channel* and joining the thread. The
/// actor loop exits only when the channel is closed **and drained**, so
/// every request accepted before shutdown — including nonblocking submits
/// still in flight — is served, counted, and answered exactly once before
/// the join returns. (A poison message would instead race ahead of queued
/// requests it should drain behind.)
fn shutdown_actor(actor: SourceActor) {
    let SourceActor { tx, handle } = actor;
    drop(tx);
    let _ = handle.join();
}

impl Transport for ChannelTransport {
    fn request_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Result<Refresh, TrappError> {
        self.submit_refresh(source, cache, object, now).wait()
    }

    fn request_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: &[ObjectId],
        now: f64,
    ) -> Result<Vec<Refresh>, TrappError> {
        self.submit_refresh_batch(source, cache, objects.to_vec(), now)
            .wait()
    }

    fn submit_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Completion<Refresh> {
        let actor = match self.actor(source) {
            Ok(actor) => actor,
            Err(e) => return Completion::ready(Err(e)),
        };
        let (reply, completion) = Completion::pending();
        if actor
            .tx
            .send(SourceRequest::Refresh {
                cache,
                object,
                now,
                reply,
            })
            .is_err()
        {
            return Completion::ready(Err(TrappError::RefreshFailed("source actor gone".into())));
        }
        self.messages.fetch_add(1, Ordering::Relaxed);
        completion
    }

    fn submit_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: Vec<ObjectId>,
        now: f64,
    ) -> Completion<Vec<Refresh>> {
        if objects.is_empty() {
            return Completion::ready(Ok(Vec::new()));
        }
        let actor = match self.actor(source) {
            Ok(actor) => actor,
            Err(e) => return Completion::ready(Err(e)),
        };
        let (reply, completion) = Completion::pending();
        if actor
            .tx
            .send(SourceRequest::RefreshBatch {
                cache,
                objects,
                now,
                reply,
            })
            .is_err()
        {
            return Completion::ready(Err(TrappError::RefreshFailed("source actor gone".into())));
        }
        self.messages.fetch_add(1, Ordering::Relaxed);
        completion
    }

    fn apply_update(
        &self,
        source: SourceId,
        object: ObjectId,
        value: f64,
        now: f64,
    ) -> Result<Vec<(CacheId, Refresh)>, TrappError> {
        let actor = self.actor(source)?;
        let (reply, completion) = Completion::pending();
        actor
            .tx
            .send(SourceRequest::Update {
                object,
                value,
                now,
                reply,
            })
            .map_err(|_| TrappError::RefreshFailed("source actor gone".into()))?;
        completion.wait()
    }

    fn submit_update_batch(
        &self,
        source: SourceId,
        updates: Vec<(ObjectId, f64)>,
        now: f64,
    ) -> Completion<Vec<(CacheId, Refresh)>> {
        if updates.is_empty() {
            return Completion::ready(Ok(Vec::new()));
        }
        let actor = match self.actor(source) {
            Ok(actor) => actor,
            Err(e) => return Completion::ready(Err(e)),
        };
        let (reply, completion) = Completion::pending();
        if actor
            .tx
            .send(SourceRequest::UpdateBatch {
                updates,
                now,
                reply,
            })
            .is_err()
        {
            return Completion::ready(Err(TrappError::RefreshFailed("source actor gone".into())));
        }
        completion
    }

    fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        for (_, actor) in self.actors.drain() {
            shutdown_actor(actor);
        }
    }
}

/// One source multiplexed on the shared pool: its state plus its FIFO
/// submission handle.
struct CompletionActor {
    source: Arc<Mutex<Source>>,
    handle: ActorHandle,
}

/// Completion-based transport: every source is an actor on a shared
/// [`FetchPool`], requests are submitted nonblockingly and resolve through
/// [`Completion`]s. Total threads are `O(pool)` regardless of how many
/// sources (or how many transports share the pool) exist.
///
/// Semantics relative to [`ChannelTransport`]:
///
/// * **Per-source FIFO is preserved** — refresh requests to one source are
///   served in submission order, so [`Refresh::seq`] stamping (and hence
///   install ordering) is identical to the thread-per-source actors.
/// * **Latency costs no threads** — simulated one-way latency is a timer
///   deadline, not a sleeping thread: a request spends `latency` "on the
///   wire", then enters its source's queue. A thousand concurrent
///   in-flight requests occupy zero pool threads while in transit.
/// * **Updates may overtake in-flight refreshes** — [`apply_update`] is
///   driver-side and enters the source queue immediately, ahead of
///   refreshes still in transit. Real networks reorder this way too; the
///   refresh sequencing invariants ([`Refresh::seq`] ordering, the
///   gateway's epoch guard) make the interleaving safe.
///
/// [`apply_update`]: Transport::apply_update
pub struct CompletionTransport {
    actors: HashMap<SourceId, CompletionActor>,
    latency: Duration,
    pool: FetchPool,
    messages: Arc<AtomicU64>,
}

impl CompletionTransport {
    /// Creates a transport over an existing (possibly shared) pool, with
    /// the given simulated one-way latency per refresh request.
    pub fn new(latency: Duration, pool: FetchPool) -> CompletionTransport {
        CompletionTransport {
            actors: HashMap::new(),
            latency,
            pool,
            messages: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Convenience: a transport over its own private pool of `threads`
    /// demux workers.
    pub fn with_pool_size(latency: Duration, threads: usize) -> CompletionTransport {
        CompletionTransport::new(latency, FetchPool::new(threads))
    }

    /// The pool this transport submits to.
    pub fn pool(&self) -> &FetchPool {
        &self.pool
    }

    /// Registers a source as a pool actor, returning the shared handle for
    /// driver-side inspection (like [`DirectTransport::add_source`]).
    pub fn add_source(&mut self, source: Source) -> Arc<Mutex<Source>> {
        let id = source.id();
        let arc = Arc::new(Mutex::new(source));
        self.actors.insert(
            id,
            CompletionActor {
                source: arc.clone(),
                handle: self.pool.register(),
            },
        );
        arc
    }

    fn actor(&self, source: SourceId) -> Result<&CompletionActor, TrappError> {
        self.actors
            .get(&source)
            .ok_or_else(|| TrappError::RefreshFailed(format!("unknown source {source}")))
    }

    /// Submits a job against one source's state, after the simulated wire
    /// latency when `delayed`.
    fn dispatch(
        &self,
        actor: &CompletionActor,
        delayed: bool,
        job: impl FnOnce(&mut Source) + Send + 'static,
    ) {
        let source = actor.source.clone();
        let run = move || job(&mut source.lock());
        if delayed && !self.latency.is_zero() {
            actor.handle.submit_after(self.latency, run);
        } else {
            actor.handle.submit(run);
        }
    }
}

impl Transport for CompletionTransport {
    fn request_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Result<Refresh, TrappError> {
        self.submit_refresh(source, cache, object, now).wait()
    }

    fn request_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: &[ObjectId],
        now: f64,
    ) -> Result<Vec<Refresh>, TrappError> {
        self.submit_refresh_batch(source, cache, objects.to_vec(), now)
            .wait()
    }

    fn submit_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Completion<Refresh> {
        let actor = match self.actor(source) {
            Ok(actor) => actor,
            Err(e) => return Completion::ready(Err(e)),
        };
        self.messages.fetch_add(1, Ordering::Relaxed);
        let (reply, completion) = Completion::pending();
        self.dispatch(actor, true, move |s| {
            reply.complete(s.serve_refresh(cache, object, now));
        });
        completion
    }

    fn submit_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: Vec<ObjectId>,
        now: f64,
    ) -> Completion<Vec<Refresh>> {
        if objects.is_empty() {
            return Completion::ready(Ok(Vec::new()));
        }
        let actor = match self.actor(source) {
            Ok(actor) => actor,
            Err(e) => return Completion::ready(Err(e)),
        };
        self.messages.fetch_add(1, Ordering::Relaxed);
        let (reply, completion) = Completion::pending();
        self.dispatch(actor, true, move |s| {
            reply.complete(s.serve_refresh_batch(cache, &objects, now));
        });
        completion
    }

    fn apply_update(
        &self,
        source: SourceId,
        object: ObjectId,
        value: f64,
        now: f64,
    ) -> Result<Vec<(CacheId, Refresh)>, TrappError> {
        let actor = self.actor(source)?;
        let (reply, completion) = Completion::pending();
        self.dispatch(actor, false, move |s| {
            reply.complete(s.apply_update(object, value, now));
        });
        completion.wait()
    }

    fn submit_update_batch(
        &self,
        source: SourceId,
        updates: Vec<(ObjectId, f64)>,
        now: f64,
    ) -> Completion<Vec<(CacheId, Refresh)>> {
        if updates.is_empty() {
            return Completion::ready(Ok(Vec::new()));
        }
        let actor = match self.actor(source) {
            Ok(actor) => actor,
            Err(e) => return Completion::ready(Err(e)),
        };
        let (reply, completion) = Completion::pending();
        self.dispatch(actor, false, move |s| {
            reply.complete(apply_update_batch(s, updates, now));
        });
        completion
    }

    fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::RefreshKind;
    use std::time::Instant;
    use trapp_bounds::BoundShape;

    fn mk_source(id: u64) -> Source {
        let mut s = Source::new(SourceId::new(id), BoundShape::Sqrt);
        s.register_object(ObjectId::new(1), 10.0).unwrap();
        s
    }

    fn subscribed_source(id: u64) -> Source {
        let mut s = mk_source(id);
        s.subscribe(CacheId::new(1), ObjectId::new(1), 1.0, 0.0)
            .unwrap();
        s
    }

    #[test]
    fn direct_round_trip() {
        let mut t = DirectTransport::new();
        let src = t.add_source(mk_source(1));
        src.lock()
            .subscribe(CacheId::new(1), ObjectId::new(1), 1.0, 0.0)
            .unwrap();
        let r = t
            .request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
            .unwrap();
        assert_eq!(r.value, 10.0);
        assert_eq!(r.kind, RefreshKind::QueryInitiated);
        assert_eq!(t.messages(), 1);
        assert!(t
            .request_refresh(SourceId::new(9), CacheId::new(1), ObjectId::new(1), 1.0)
            .is_err());
    }

    #[test]
    fn channel_round_trip_and_updates() {
        let mut t = ChannelTransport::new(Duration::ZERO);
        t.add_source(subscribed_source(1));

        // Query-initiated pull through the thread.
        let r = t
            .request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
            .unwrap();
        assert_eq!(r.value, 10.0);

        // Update that escapes the (narrow) bound → value-initiated push.
        let refreshes = t
            .apply_update(SourceId::new(1), ObjectId::new(1), 99.0, 2.0)
            .unwrap();
        assert_eq!(refreshes.len(), 1);
        assert_eq!(refreshes[0].1.kind, RefreshKind::ValueInitiated);
        assert_eq!(t.messages(), 1); // updates are not refresh round-trips
    }

    #[test]
    fn channel_transport_is_concurrent() {
        let mut t = ChannelTransport::new(Duration::from_millis(1));
        for id in 1..=4u64 {
            t.add_source(subscribed_source(id));
        }
        let t = Arc::new(t);
        let mut handles = Vec::new();
        for id in 1..=4u64 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    t.request_refresh(SourceId::new(id), CacheId::new(1), ObjectId::new(1), 1.0)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.messages(), 20);
    }

    /// Replacing a source actor must drain every in-flight nonblocking
    /// submit before the join: each accepted request is served, counted,
    /// and answered exactly once — none lost, none duplicated.
    #[test]
    fn channel_replacement_drains_inflight_submits() {
        let mut t = ChannelTransport::new(Duration::from_millis(2));
        t.add_source(subscribed_source(1));

        let completions: Vec<Completion<Refresh>> = (0..5)
            .map(|i| {
                t.submit_refresh(
                    SourceId::new(1),
                    CacheId::new(1),
                    ObjectId::new(1),
                    1.0 + i as f64,
                )
            })
            .collect();
        // Replace the actor while the five submits are still queued behind
        // its simulated latency: add_source joins the old thread, which
        // must first drain them all.
        t.add_source(subscribed_source(1));

        let seqs: Vec<u64> = completions
            .into_iter()
            .map(|c| c.wait().expect("drained before join").seq)
            .collect();
        // Subscription stamped seq 0; five serves exactly once each, in
        // submission order.
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(t.messages(), 5, "each submit counted exactly once");

        // The replacement actor serves fresh requests.
        let r = t
            .request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 9.0)
            .unwrap();
        assert_eq!(r.value, 10.0);
        assert_eq!(t.messages(), 6);
    }

    #[test]
    fn completion_round_trip_and_updates() {
        let mut t = CompletionTransport::with_pool_size(Duration::ZERO, 2);
        t.add_source(subscribed_source(1));

        let r = t
            .request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
            .unwrap();
        assert_eq!(r.value, 10.0);
        assert_eq!(r.kind, RefreshKind::QueryInitiated);

        let refreshes = t
            .apply_update(SourceId::new(1), ObjectId::new(1), 99.0, 2.0)
            .unwrap();
        assert_eq!(refreshes.len(), 1);
        assert_eq!(refreshes[0].1.kind, RefreshKind::ValueInitiated);
        assert_eq!(t.messages(), 1);

        assert!(t
            .request_refresh(SourceId::new(9), CacheId::new(1), ObjectId::new(1), 1.0)
            .is_err());
        let batch = t
            .request_refresh_batch(SourceId::new(1), CacheId::new(1), &[ObjectId::new(1)], 3.0)
            .unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].value, 99.0);
    }

    /// Submitted batches to distinct sources spend their latency on the
    /// timer concurrently: 4 × 50 ms of simulated wire time must resolve
    /// in well under the 200 ms a serialized transport would need, with
    /// only 2 pool threads. (The upper bound leaves 100 ms of scheduler
    /// slack so a loaded CI machine cannot trip it spuriously.)
    #[test]
    fn completion_submits_overlap_latency() {
        let latency = Duration::from_millis(50);
        let mut t = CompletionTransport::with_pool_size(latency, 2);
        for id in 1..=4u64 {
            t.add_source(subscribed_source(id));
        }
        let started = Instant::now();
        let completions: Vec<Completion<Vec<Refresh>>> = (1..=4u64)
            .map(|id| {
                t.submit_refresh_batch(
                    SourceId::new(id),
                    CacheId::new(1),
                    vec![ObjectId::new(1)],
                    1.0,
                )
            })
            .collect();
        for c in completions {
            assert_eq!(c.wait().unwrap().len(), 1);
        }
        let elapsed = started.elapsed();
        assert!(elapsed >= latency, "latency must apply: {elapsed:?}");
        assert!(
            elapsed < 3 * latency,
            "round-trips must overlap, not serialize (4 × {latency:?} serial): {elapsed:?}"
        );
        assert_eq!(t.messages(), 4);
    }

    /// One completion per update *batch*: every update in the batch is
    /// applied in submission order (the refresh seq stamps come back
    /// consecutive), the triggered value-initiated refreshes are
    /// concatenated, and the final master value is the last write — on
    /// the default (inline) path, the channel actor, and the completion
    /// pool alike.
    #[test]
    fn update_batches_apply_in_order_on_every_transport() {
        let updates = vec![
            (ObjectId::new(1), 500.0),
            (ObjectId::new(1), -500.0),
            (ObjectId::new(1), 123.0),
        ];
        let check = |t: &dyn Transport| {
            let refreshes = t
                .submit_update_batch(SourceId::new(1), updates.clone(), 1.0)
                .wait()
                .unwrap();
            // Narrow √t bounds at t=1: every jump escapes → 3 refreshes.
            assert_eq!(refreshes.len(), 3);
            let seqs: Vec<u64> = refreshes.iter().map(|(_, r)| r.seq).collect();
            assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "{seqs:?}");
            let last = t
                .request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 2.0)
                .unwrap();
            assert_eq!(last.value, 123.0, "batch must apply in order");
            // An unknown source resolves to an error, not a hang.
            assert!(t
                .submit_update_batch(SourceId::new(9), updates.clone(), 1.0)
                .wait()
                .is_err());
        };

        let mut direct = DirectTransport::new();
        direct.add_source(subscribed_source(1));
        check(&direct);

        let mut channel = ChannelTransport::new(Duration::ZERO);
        channel.add_source(subscribed_source(1));
        check(&channel);

        let mut completion = CompletionTransport::with_pool_size(Duration::ZERO, 2);
        completion.add_source(subscribed_source(1));
        check(&completion);
    }

    /// Per-source FIFO with sources ≫ pool threads: every source's
    /// refreshes are served exactly once, in submission order — the seq
    /// stamps come back strictly consecutive.
    #[test]
    fn completion_preserves_per_source_fifo_under_contention() {
        const SOURCES: u64 = 32;
        const ROUNDS: u64 = 8;
        let mut t = CompletionTransport::with_pool_size(Duration::from_micros(500), 2);
        for id in 1..=SOURCES {
            t.add_source(subscribed_source(id));
        }
        // Interleave submissions across all sources, round-robin.
        let mut completions: Vec<Vec<Completion<Refresh>>> =
            (0..SOURCES).map(|_| Vec::new()).collect();
        for round in 0..ROUNDS {
            for id in 1..=SOURCES {
                completions[(id - 1) as usize].push(t.submit_refresh(
                    SourceId::new(id),
                    CacheId::new(1),
                    ObjectId::new(1),
                    1.0 + round as f64,
                ));
            }
        }
        for (idx, per_source) in completions.into_iter().enumerate() {
            let seqs: Vec<u64> = per_source
                .into_iter()
                .map(|c| c.wait().expect("served").seq)
                .collect();
            assert_eq!(
                seqs,
                (1..=ROUNDS).collect::<Vec<_>>(),
                "source {} served out of order",
                idx + 1
            );
        }
        assert_eq!(t.messages(), SOURCES * ROUNDS);
    }

    #[test]
    fn delayed_completion_hides_result_until_ready() {
        let delay = Duration::from_millis(40);
        let c = Completion::delayed_until(Instant::now() + delay, Completion::<u32>::ready(Ok(7)));
        // Polling before the deadline reports in-flight.
        let c = match c.poll() {
            Err(c) => c,
            Ok(_) => panic!("delayed completion resolved early"),
        };
        // A short wait_timeout expires and hands the completion back,
        // exactly like a pending reply still on the wire.
        let c = match c.wait_timeout(Duration::from_millis(5)) {
            Err(c) => c,
            Ok(_) => panic!("wait_timeout beat the injected delay"),
        };
        // A full wait blocks through the delay and sees the result.
        let started = Instant::now();
        assert_eq!(c.wait().unwrap(), 7);
        assert!(
            started.elapsed() >= Duration::from_millis(10),
            "wait returned before the injected delay elapsed"
        );
    }

    #[test]
    fn delayed_completion_wait_timeout_resolves_past_delay() {
        let c = Completion::delayed_until(
            Instant::now() + Duration::from_millis(5),
            Completion::<u32>::ready(Ok(3)),
        );
        // Timeout longer than the delay: resolves through to the result.
        match c.wait_timeout(Duration::from_millis(500)) {
            Ok(r) => assert_eq!(r.unwrap(), 3),
            Err(_) => panic!("timeout should outlast the delay"),
        }
    }
}
