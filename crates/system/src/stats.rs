//! System-wide statistics.
//!
//! The quantities the paper's experiments (and Appendix A's width-tuning
//! discussion) care about: how many refreshes of each kind flowed, what the
//! query-initiated ones cost, and how many messages crossed the network.

use std::fmt;

/// Counters kept by each cache.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    /// Queries executed.
    pub queries: u64,
    /// Value-initiated refreshes installed.
    pub value_initiated: u64,
    /// Query-initiated refreshes installed.
    pub query_initiated: u64,
    /// Subscription (initial) refreshes installed.
    pub subscriptions: u64,
    /// §8.3 pre-refreshes installed.
    pub pre_refreshes: u64,
    /// Refreshes skipped as sequence-stale (a newer bound was already
    /// installed; see [`crate::message::Refresh::seq`]).
    pub stale_skipped: u64,
    /// Total refresh cost paid by queries.
    pub refresh_cost: f64,
}

/// An aggregate snapshot across the whole simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SystemStats {
    /// Updates applied at sources.
    pub updates: u64,
    /// Value-initiated refreshes pushed by sources.
    pub value_initiated: u64,
    /// Query-initiated refreshes served by sources.
    pub query_initiated: u64,
    /// Queries executed at caches.
    pub queries: u64,
    /// Total refresh cost paid by queries.
    pub refresh_cost: f64,
    /// Refresh round-trips over the transport.
    pub messages: u64,
}

impl SystemStats {
    /// Total refreshes of both kinds — the quantity the adaptive width
    /// controller tries to minimize (Appendix A).
    pub fn total_refreshes(&self) -> u64 {
        self.value_initiated + self.query_initiated
    }
}

impl fmt::Display for SystemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "updates={} refreshes(value={}, query={}) queries={} cost={:.2} messages={}",
            self.updates,
            self.value_initiated,
            self.query_initiated,
            self.queries,
            self.refresh_cost,
            self.messages
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_display() {
        let s = SystemStats {
            updates: 10,
            value_initiated: 3,
            query_initiated: 4,
            queries: 2,
            refresh_cost: 12.5,
            messages: 4,
        };
        assert_eq!(s.total_refreshes(), 7);
        let text = s.to_string();
        assert!(text.contains("value=3"));
        assert!(text.contains("cost=12.50"));
    }
}
