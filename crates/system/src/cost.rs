//! Refresh cost models (§3, §4, §8.2).
//!
//! The paper assumes "a known quantitative cost associated with refreshing
//! data objects from their sources, and this cost may vary for each data
//! item … although in practice it is likely that the cost of refreshing an
//! object depends only on which source it comes from." Planning treats
//! costs as additive (§4's simplifying assumption); the *accounting* side
//! here additionally supports the §8.2 batching amortization so the
//! ablations can measure what additivity gives away.

use std::collections::HashMap;

use trapp_types::{ObjectId, SourceId, TrappError};

/// How much one query-initiated refresh costs.
#[derive(Clone, Debug)]
pub enum CostModel {
    /// Every refresh costs the same.
    Uniform(f64),
    /// Cost depends on the source (the paper's "likely in practice" case),
    /// with a default for unlisted sources.
    PerSource {
        /// Source-specific costs.
        costs: HashMap<SourceId, f64>,
        /// Cost for sources not in the map.
        default: f64,
    },
    /// Fully per-object costs (the paper's general case), with a default.
    PerObject {
        /// Object-specific costs.
        costs: HashMap<ObjectId, f64>,
        /// Cost for objects not in the map.
        default: f64,
    },
}

impl CostModel {
    /// Uniform cost 1.
    pub fn unit() -> CostModel {
        CostModel::Uniform(1.0)
    }

    /// The cost of refreshing `object` at `source`.
    pub fn cost(&self, source: SourceId, object: ObjectId) -> f64 {
        match self {
            CostModel::Uniform(c) => *c,
            CostModel::PerSource { costs, default } => {
                costs.get(&source).copied().unwrap_or(*default)
            }
            CostModel::PerObject { costs, default } => {
                costs.get(&object).copied().unwrap_or(*default)
            }
        }
    }

    /// Validates that every configured cost is a non-negative real.
    pub fn validate(&self) -> Result<(), TrappError> {
        let check = |c: f64| {
            if c.is_nan() || c < 0.0 {
                Err(TrappError::InvalidCost(c))
            } else {
                Ok(())
            }
        };
        match self {
            CostModel::Uniform(c) => check(*c),
            CostModel::PerSource { costs, default } => {
                check(*default)?;
                costs.values().try_for_each(|&c| check(c))
            }
            CostModel::PerObject { costs, default } => {
                check(*default)?;
                costs.values().try_for_each(|&c| check(c))
            }
        }
    }

    /// The §8.2 batching amortization: refreshes grouped by source, the
    /// first at full price, subsequent ones in the same batch multiplied by
    /// `discount ∈ [0, 1]`. `discount = 1` recovers additive costs.
    pub fn batch_cost(&self, refreshes: &[(SourceId, ObjectId)], discount: f64) -> f64 {
        let mut per_source: HashMap<SourceId, Vec<ObjectId>> = HashMap::new();
        for &(s, o) in refreshes {
            per_source.entry(s).or_default().push(o);
        }
        let mut total = 0.0;
        for (s, objs) in per_source {
            // Charge the most expensive object in the batch at full price
            // (conservative), discount the rest.
            let mut costs: Vec<f64> = objs.iter().map(|&o| self.cost(s, o)).collect();
            costs.sort_by(|a, b| b.total_cmp(a));
            for (i, c) in costs.into_iter().enumerate() {
                total += if i == 0 { c } else { c * discount };
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_lookup() {
        let m = CostModel::Uniform(3.0);
        assert_eq!(m.cost(SourceId::new(1), ObjectId::new(1)), 3.0);

        let m = CostModel::PerSource {
            costs: [(SourceId::new(1), 5.0)].into_iter().collect(),
            default: 2.0,
        };
        assert_eq!(m.cost(SourceId::new(1), ObjectId::new(9)), 5.0);
        assert_eq!(m.cost(SourceId::new(2), ObjectId::new(9)), 2.0);

        let m = CostModel::PerObject {
            costs: [(ObjectId::new(7), 9.0)].into_iter().collect(),
            default: 1.0,
        };
        assert_eq!(m.cost(SourceId::new(1), ObjectId::new(7)), 9.0);
        assert_eq!(m.cost(SourceId::new(1), ObjectId::new(8)), 1.0);
    }

    #[test]
    fn validation_rejects_bad_costs() {
        assert!(CostModel::Uniform(-1.0).validate().is_err());
        assert!(CostModel::Uniform(1.0).validate().is_ok());
        let m = CostModel::PerObject {
            costs: [(ObjectId::new(1), f64::NAN)].into_iter().collect(),
            default: 1.0,
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn batching_discounts_same_source_refreshes() {
        let m = CostModel::Uniform(4.0);
        let refreshes = [
            (SourceId::new(1), ObjectId::new(1)),
            (SourceId::new(1), ObjectId::new(2)),
            (SourceId::new(2), ObjectId::new(3)),
        ];
        // Source 1: 4 + 4·0.5; source 2: 4 → 10.
        assert_eq!(m.batch_cost(&refreshes, 0.5), 10.0);
        // discount = 1 recovers additive costs.
        assert_eq!(m.batch_cost(&refreshes, 1.0), 12.0);
        // discount = 0: one full-price refresh per source.
        assert_eq!(m.batch_cost(&refreshes, 0.0), 8.0);
    }

    #[test]
    fn batching_charges_most_expensive_full_price() {
        let m = CostModel::PerObject {
            costs: [(ObjectId::new(1), 10.0), (ObjectId::new(2), 2.0)]
                .into_iter()
                .collect(),
            default: 1.0,
        };
        let refreshes = [
            (SourceId::new(1), ObjectId::new(2)),
            (SourceId::new(1), ObjectId::new(1)),
        ];
        // 10 (full) + 2·0.5 = 11, regardless of listing order.
        assert_eq!(m.batch_cost(&refreshes, 0.5), 11.0);
    }
}
