//! The simulation driver: one cache, many sources, a shared clock.
//!
//! Experiments (and the examples) need a convenient way to stand up the
//! Figure 3 architecture: declare tables, attach each bounded cell to a
//! replicated object at some source, stream updates, and run queries. The
//! [`SimulationBuilder`] / [`Simulation`] pair provides exactly that over
//! the deterministic [`DirectTransport`].

use std::collections::HashMap;

use trapp_bounds::BoundShape;
use trapp_core::executor::QueryResult;
use trapp_storage::Table;
use trapp_types::{BoundedValue, CacheId, ObjectId, SourceId, TrappError, TupleId};

use crate::cache::CacheNode;
use crate::clock::SimClock;
use crate::cost::CostModel;
use crate::source::Source;
use crate::stats::SystemStats;
use crate::transport::{DirectTransport, Transport};

/// Builder for a single-cache simulation.
pub struct SimulationBuilder {
    shape: BoundShape,
    initial_width: f64,
    cost_model: CostModel,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        SimulationBuilder {
            shape: BoundShape::Sqrt,
            initial_width: 1.0,
            cost_model: CostModel::unit(),
        }
    }
}

impl SimulationBuilder {
    /// Starts a builder with √t bounds, width 1, unit costs.
    pub fn new() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// Sets the bound shape issued by all sources.
    pub fn shape(mut self, shape: BoundShape) -> Self {
        self.shape = shape;
        self
    }

    /// Sets the initial adaptive width parameter.
    pub fn initial_width(mut self, w: f64) -> Self {
        self.initial_width = w;
        self
    }

    /// Sets the refresh cost model.
    pub fn cost_model(mut self, m: CostModel) -> Self {
        self.cost_model = m;
        self
    }

    /// Builds the (initially empty) simulation.
    pub fn build(self) -> Result<Simulation, TrappError> {
        self.cost_model.validate()?;
        let clock = SimClock::new();
        Ok(Simulation {
            cache: CacheNode::new(CacheId::new(1), clock.clone()),
            clock,
            transport: DirectTransport::new(),
            shape: self.shape,
            initial_width: self.initial_width,
            cost_model: self.cost_model,
            source_of: HashMap::new(),
            next_object: 1,
        })
    }
}

/// A running single-cache TRAPP system.
pub struct Simulation {
    /// The shared clock (advance it to let bounds widen).
    pub clock: SimClock,
    /// The data cache, with its query session.
    pub cache: CacheNode,
    /// The transport, holding all sources.
    pub transport: DirectTransport,
    shape: BoundShape,
    initial_width: f64,
    cost_model: CostModel,
    source_of: HashMap<ObjectId, SourceId>,
    next_object: u64,
}

impl Simulation {
    /// Starts a builder.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::new()
    }

    /// Registers a new source.
    pub fn add_source(&mut self, id: SourceId) {
        self.transport.add_source(Source::new(id, self.shape));
    }

    /// Registers a cached table (rows are added via [`Simulation::add_row`]).
    pub fn add_table(&mut self, table: Table) -> Result<(), TrappError> {
        self.cache.add_table(table)
    }

    /// Inserts a row whose bounded cells hold `initial` master values, all
    /// owned by `source`: registers one replicated object per bounded cell,
    /// subscribes the cache, and prices the tuple with the cost model.
    ///
    /// `cells` uses exact values for exact columns and exact floats as the
    /// *initial master values* for bounded columns.
    pub fn add_row(
        &mut self,
        table: &str,
        source: SourceId,
        cells: Vec<BoundedValue>,
    ) -> Result<TupleId, TrappError> {
        let now = self.clock.now();
        let src = self
            .transport
            .source(source)
            .ok_or_else(|| TrappError::RefreshFailed(format!("unknown source {source}")))?;

        // Identify bounded columns and their initial values.
        let bounded_cols = self
            .cache
            .session()
            .catalog()
            .table(table)?
            .schema()
            .bounded_columns();

        // Insert the row (bounded cells as points at the initial values —
        // the subscription refresh re-pins them immediately).
        let tid = {
            let t = self.cache.session_mut().catalog_mut().table_mut(table)?;
            t.insert(cells.clone())?
        };

        let mut tuple_cost = 0.0;
        for &col in &bounded_cols {
            let initial = cells
                .get(col)
                .ok_or_else(|| TrappError::SchemaViolation("row arity".into()))?
                .as_interval()?
                .midpoint();
            let object = ObjectId::new(self.next_object);
            self.next_object += 1;

            src.lock().register_object(object, initial)?;
            self.cache.bind_object(object, source, table, tid, col)?;
            let refresh = src
                .lock()
                .subscribe(self.cache.id(), object, self.initial_width, now)?;
            self.cache.install_refresh(refresh)?;
            self.source_of.insert(object, source);
            tuple_cost += self.cost_model.cost(source, object);
        }

        self.cache
            .session_mut()
            .catalog_mut()
            .table_mut(table)?
            .set_cost(tid, tuple_cost.max(f64::MIN_POSITIVE))?;
        Ok(tid)
    }

    /// Applies an update to a replicated object's master value, delivering
    /// any value-initiated refreshes to the cache.
    pub fn apply_update(&mut self, object: ObjectId, value: f64) -> Result<usize, TrappError> {
        let source = *self
            .source_of
            .get(&object)
            .ok_or_else(|| TrappError::RefreshFailed(format!("{object} is not replicated")))?;
        let src = self
            .transport
            .source(source)
            .ok_or_else(|| TrappError::RefreshFailed(format!("unknown source {source}")))?;
        let refreshes = src.lock().apply_update(object, value, self.clock.now())?;
        let n = refreshes.len();
        for (cache_id, refresh) in refreshes {
            debug_assert_eq!(cache_id, self.cache.id());
            self.cache.install_refresh(refresh)?;
        }
        Ok(n)
    }

    /// Runs a query at the cache.
    pub fn run_query(&mut self, sql: &str) -> Result<QueryResult, TrappError> {
        self.cache.execute_query(sql, &self.transport)
    }

    /// Chooses between batched (per-source) and per-object refresh
    /// round-trips; see [`CacheNode::set_batch_refreshes`].
    pub fn set_batch_refreshes(&mut self, on: bool) {
        self.cache.set_batch_refreshes(on);
    }

    /// §8.3 pre-refreshing: every source re-centers the bounds of objects
    /// whose master value sits within `margin` (fraction of the half-width)
    /// of the bound's edge. Returns the number of pre-refreshes pushed.
    ///
    /// Call this "when system load is low" (the paper's framing) — e.g.
    /// between query bursts — to avert imminent value-initiated refreshes.
    pub fn pre_refresh_near_edge(&mut self, margin: f64) -> Result<usize, TrappError> {
        let now = self.clock.now();
        let cache_id = self.cache.id();
        let distinct: std::collections::BTreeSet<SourceId> =
            self.source_of.values().copied().collect();
        let mut pushed = 0usize;
        for source in distinct {
            let Some(src) = self.transport.source(source) else {
                continue;
            };
            let candidates = src.lock().near_edge(cache_id, now, margin);
            for object in candidates {
                let refresh = src.lock().pre_refresh(cache_id, object, now)?;
                self.cache.install_refresh(refresh)?;
                pushed += 1;
            }
        }
        Ok(pushed)
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> SystemStats {
        let cache = self.cache.stats();
        let mut updates = 0;
        let mut value_initiated = 0;
        let mut query_initiated = 0;
        let distinct: std::collections::BTreeSet<SourceId> =
            self.source_of.values().copied().collect();
        for source in distinct {
            if let Some(src) = self.transport.source(source) {
                let s = src.lock().stats();
                updates += s.updates;
                value_initiated += s.value_initiated;
                query_initiated += s.query_initiated;
            }
        }
        SystemStats {
            updates,
            value_initiated,
            query_initiated,
            queries: cache.queries,
            refresh_cost: cache.refresh_cost,
            messages: self.transport.messages(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trapp_storage::{ColumnDef, Schema};
    use trapp_types::{Value, ValueType};

    fn build_sim() -> Simulation {
        let mut sim = Simulation::builder().initial_width(2.0).build().unwrap();
        sim.add_source(SourceId::new(1));
        sim.add_source(SourceId::new(2));
        let schema = Schema::new(vec![
            ColumnDef::exact("link", ValueType::Str),
            ColumnDef::bounded_float("latency"),
        ])
        .unwrap();
        sim.add_table(Table::new("links", schema)).unwrap();
        for (i, (name, lat)) in [("a", 10.0), ("b", 20.0), ("c", 30.0)].iter().enumerate() {
            let source = SourceId::new(1 + (i as u64) % 2);
            sim.add_row(
                "links",
                source,
                vec![
                    BoundedValue::Exact(Value::Str((*name).into())),
                    BoundedValue::exact_f64(*lat).unwrap(),
                ],
            )
            .unwrap();
        }
        sim
    }

    #[test]
    fn fresh_subscription_answers_exactly_from_cache() {
        let mut sim = build_sim();
        let r = sim
            .run_query("SELECT SUM(latency) WITHIN 0 FROM links")
            .unwrap();
        assert!(r.satisfied);
        assert_eq!(r.answer.range.lo(), 60.0);
        assert_eq!(r.refresh_cost, 0.0); // bounds still have zero width
    }

    #[test]
    fn time_widens_bounds_and_queries_pay_for_precision() {
        let mut sim = build_sim();
        sim.clock.advance(25.0); // ±2·√25 = ±10 per cell
        let loose = sim
            .run_query("SELECT SUM(latency) WITHIN 100 FROM links")
            .unwrap();
        assert!(loose.satisfied);
        assert!(loose.refreshed.is_empty());

        let tight = sim
            .run_query("SELECT SUM(latency) WITHIN 5 FROM links")
            .unwrap();
        assert!(tight.satisfied);
        assert!(!tight.refreshed.is_empty());
        assert!(sim.stats().query_initiated > 0);
    }

    #[test]
    fn updates_escaping_bounds_push_refreshes() {
        let mut sim = build_sim();
        sim.clock.advance(1.0); // ±2 bounds
        let pushed = sim.apply_update(ObjectId::new(1), 17.0).unwrap();
        assert_eq!(pushed, 1);
        // Small update stays inside the (re-widened) bound.
        sim.clock.advance(0.01);
        let pushed = sim.apply_update(ObjectId::new(1), 17.1).unwrap();
        assert_eq!(pushed, 0);
        let stats = sim.stats();
        assert_eq!(stats.updates, 2);
        assert_eq!(stats.value_initiated, 1);
    }

    #[test]
    fn query_answers_track_updates() {
        let mut sim = build_sim();
        sim.clock.advance(1.0);
        sim.apply_update(ObjectId::new(1), 50.0).unwrap(); // was 10
        let r = sim
            .run_query("SELECT SUM(latency) WITHIN 0 FROM links")
            .unwrap();
        assert_eq!(r.answer.range.lo(), 100.0); // 50 + 20 + 30
    }

    #[test]
    fn unknown_object_updates_fail() {
        let mut sim = build_sim();
        assert!(sim.apply_update(ObjectId::new(99), 1.0).is_err());
    }

    /// §8.3: pre-refreshing near-edge objects averts the value-initiated
    /// refresh that a continued drift would have triggered.
    #[test]
    fn pre_refresh_averts_value_initiated_refresh() {
        // Run the same drift twice, with and without pre-refreshing.
        let run = |pre: bool| -> (u64, u64) {
            let mut sim = build_sim(); // initial width 2 → bound ±2·√Δt
            sim.clock.advance(1.0);
            // Drift object 1 to the edge of its ±2 bound, then past it.
            sim.apply_update(ObjectId::new(1), 11.8).unwrap();
            if pre {
                let pushed = sim.pre_refresh_near_edge(0.2).unwrap();
                assert!(pushed >= 1);
            }
            sim.clock.advance(0.2);
            sim.apply_update(ObjectId::new(1), 12.4).unwrap();
            let s = sim.stats();
            (s.value_initiated, sim.cache.stats().pre_refreshes)
        };
        let (vi_without, pre_without) = run(false);
        let (vi_with, pre_with) = run(true);
        assert_eq!(pre_without, 0);
        assert!(pre_with >= 1);
        assert!(
            vi_with < vi_without,
            "pre-refresh should avert the escape: {vi_with} vs {vi_without}"
        );
    }

    #[test]
    fn pre_refresh_ignores_centered_objects() {
        let mut sim = build_sim();
        sim.clock.advance(1.0);
        // No drift: nothing is near an edge.
        assert_eq!(sim.pre_refresh_near_edge(0.2).unwrap(), 0);
    }
}
