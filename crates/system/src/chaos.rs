//! Deterministic fault injection: [`ChaosTransport`] wraps any
//! [`Transport`] and injects per-source failures, seeded latency, and
//! scripted outage windows into the **query-initiated refresh plane**.
//!
//! Two properties make it usable in tests and benches:
//!
//! * **Determinism** — every probabilistic failure *and every injected
//!   delay* is a pure function of `(seed, source, global op counter)` via
//!   a splitmix64 draw (delays use a distinct salt so failure and delay
//!   schedules are independent), so a seeded schedule replays
//!   bit-identically; scripted outages are expressed in *operation
//!   counts* (down from op N to op M), not wall time.
//! * **Fail-at-send only** — an injected failure rejects the request
//!   *before* it reaches the source. TRAPP's core invariant is that every
//!   refresh a source *serves* must install at the cache (the source's
//!   Refresh Monitor re-centers its bound on serve; dropping the reply
//!   would desync cache and monitor and permit wrong answers). Chaos
//!   therefore never serves-then-drops: the source either never sees the
//!   request, or the reply is delivered intact.
//!
//! The update plane ([`Transport::apply_update`] /
//! [`Transport::submit_update_batch`]) passes through untouched: masters
//! keep moving and value-initiated refreshes keep flowing, so ground
//! truth stays well-defined while the pull path is under fault load.
//! A shared [`ChaosControl`] handle lets a driver (e.g. the availability
//! bench) force sources down and back up mid-run, on top of the seeded
//! schedule.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use trapp_types::{CacheId, ObjectId, SourceId, TrappError};

use crate::message::Refresh;
use crate::transport::{Completion, Transport};

/// A scripted outage: the matching source(s) reject every refresh request
/// whose global operation number falls in `[from_op, to_op)`.
#[derive(Clone, Debug)]
pub struct OutageWindow {
    /// The source taken down, or `None` for a total outage of all sources.
    pub source: Option<SourceId>,
    /// First refresh operation (inclusive, global counter) that fails.
    pub from_op: u64,
    /// First refresh operation (exclusive) that succeeds again.
    pub to_op: u64,
}

/// A per-source wire-delay distribution: every admitted refresh operation
/// is charged `base` plus a deterministic uniform draw in `[0, jitter)`.
/// The draw is a pure function of `(seed, source, op)` under a salt
/// distinct from the failure draws, so latency and failure schedules are
/// independent and both replay bit-identically.
#[derive(Clone, Copy, Debug, Default)]
pub struct DelaySpec {
    /// Fixed delay charged to every admitted operation.
    pub base: Duration,
    /// Upper bound (exclusive) of the uniform jitter added on top.
    pub jitter: Duration,
}

impl DelaySpec {
    /// A constant delay with no jitter.
    pub fn fixed(base: Duration) -> DelaySpec {
        DelaySpec {
            base,
            jitter: Duration::ZERO,
        }
    }

    /// The deterministic delay for operation `op` against `source`.
    pub fn sample(&self, seed: u64, source: SourceId, op: u64) -> Duration {
        if self.jitter.is_zero() {
            return self.base;
        }
        let u = draw(seed ^ DELAY_SALT, source, op);
        self.base + Duration::from_nanos((self.jitter.as_nanos() as f64 * u) as u64)
    }
}

/// Salt xor-ed into the seed for delay draws so they are decorrelated
/// from the failure draws at the same `(source, op)`.
const DELAY_SALT: u64 = 0x9D5C_0FF0_DE1A_F00D;

/// Seeded fault schedule for a [`ChaosTransport`].
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed for the deterministic per-operation failure and delay draws.
    pub seed: u64,
    /// Failure probability applied to every source without an override.
    pub default_fail_p: f64,
    /// Per-source failure probability overrides.
    pub fail_p: Vec<(SourceId, f64)>,
    /// Extra wire latency charged to every refresh request that is *not*
    /// failed. `Duration::ZERO` for none. Blocking request paths sleep at
    /// send; nonblocking submits delay the *completion* instead, so
    /// submitters overlap the injected latency exactly as they would real
    /// wire delay.
    pub added_latency: Duration,
    /// Delay distribution applied to every source without an override, on
    /// top of [`ChaosConfig::added_latency`]. `None` for no seeded delay.
    pub default_delay: Option<DelaySpec>,
    /// Per-source delay distribution overrides (slow-source chaos).
    pub delay: Vec<(SourceId, DelaySpec)>,
    /// Scripted outage windows, checked against the global op counter.
    pub outages: Vec<OutageWindow>,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            default_fail_p: 0.0,
            fail_p: Vec::new(),
            added_latency: Duration::ZERO,
            default_delay: None,
            delay: Vec::new(),
            outages: Vec::new(),
        }
    }
}

impl ChaosConfig {
    /// The failure probability in effect for `source`.
    pub fn fail_p_for(&self, source: SourceId) -> f64 {
        self.fail_p
            .iter()
            .find(|(s, _)| *s == source)
            .map(|&(_, p)| p)
            .unwrap_or(self.default_fail_p)
    }

    /// The delay distribution in effect for `source`, if any.
    pub fn delay_for(&self, source: SourceId) -> Option<DelaySpec> {
        self.delay
            .iter()
            .find(|(s, _)| *s == source)
            .map(|&(_, d)| d)
            .or(self.default_delay)
    }
}

/// Shared runtime handle over one chaos schedule: op/failure counters
/// plus a manual kill switch for scripting wall-clock outages from a
/// driver. Clone the `Arc` freely; all wrapped transports sharing it
/// advance one global op counter.
#[derive(Default)]
pub struct ChaosControl {
    ops: AtomicU64,
    injected: AtomicU64,
    delayed: AtomicU64,
    forced_down: Mutex<HashSet<SourceId>>,
}

impl ChaosControl {
    /// A fresh control with zeroed counters and nothing forced down.
    pub fn new() -> ChaosControl {
        ChaosControl::default()
    }

    /// Refresh operations that have passed through the chaos layer.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// How many of those operations were failed by injection.
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// How many admitted operations were charged a nonzero wire delay.
    pub fn injected_delays(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }

    /// Forces `source` down: every refresh request fails with
    /// [`TrappError::SourceUnavailable`] until [`ChaosControl::restore`].
    pub fn force_down(&self, source: SourceId) {
        self.forced_down.lock().insert(source);
    }

    /// Lifts a manual [`ChaosControl::force_down`].
    pub fn restore(&self, source: SourceId) {
        self.forced_down.lock().remove(&source);
    }

    /// Whether `source` is currently manually forced down.
    pub fn is_forced_down(&self, source: SourceId) -> bool {
        self.forced_down.lock().contains(&source)
    }
}

/// SplitMix64 — the standard 64-bit finalizer; good enough to turn
/// `(seed, source, op)` into an i.i.d.-looking uniform draw with no
/// external RNG dependency. Public so other layers (e.g. retry backoff
/// jitter) can derive deterministic pseudo-random values from a counter
/// without pulling in an RNG.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from `(seed, source, op)`.
fn draw(seed: u64, source: SourceId, op: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(source.raw().wrapping_mul(0xA24B_AED4_963E_E407)) ^ op);
    // 53 significand bits, same construction as rand's `f64` conversion.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic, seed-driven fault-injecting wrapper over any
/// [`Transport`]. See the module docs for the fault model.
pub struct ChaosTransport<T> {
    inner: T,
    cfg: ChaosConfig,
    control: Arc<ChaosControl>,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` under `cfg`, sharing `control` with the driver (and
    /// with sibling transports — e.g. one per shard — that must advance
    /// the same op counter).
    pub fn new(inner: T, cfg: ChaosConfig, control: Arc<ChaosControl>) -> ChaosTransport<T> {
        ChaosTransport {
            inner,
            cfg,
            control,
        }
    }

    /// The shared control handle.
    pub fn control(&self) -> Arc<ChaosControl> {
        self.control.clone()
    }

    /// One refresh send: advances the global op counter and decides
    /// whether this operation is failed by the schedule. On admission,
    /// returns the wire delay the schedule charges this operation
    /// (`Duration::ZERO` for none); the caller applies it — blocking
    /// request paths sleep, nonblocking submits delay the completion.
    fn admit(&self, source: SourceId) -> Result<Duration, TrappError> {
        let op = self.control.ops.fetch_add(1, Ordering::Relaxed);
        if self.control.is_forced_down(source) {
            self.control.injected.fetch_add(1, Ordering::Relaxed);
            return Err(TrappError::SourceUnavailable(source));
        }
        for w in &self.cfg.outages {
            let matches = w.source.is_none_or(|s| s == source);
            if matches && (w.from_op..w.to_op).contains(&op) {
                self.control.injected.fetch_add(1, Ordering::Relaxed);
                return Err(TrappError::SourceUnavailable(source));
            }
        }
        let p = self.cfg.fail_p_for(source);
        if p > 0.0 && draw(self.cfg.seed, source, op) < p {
            self.control.injected.fetch_add(1, Ordering::Relaxed);
            return Err(TrappError::RefreshFailed(format!(
                "injected fault for {source} at op {op}"
            )));
        }
        let mut lat = self.cfg.added_latency;
        if let Some(spec) = self.cfg.delay_for(source) {
            lat += spec.sample(self.cfg.seed, source, op);
        }
        if !lat.is_zero() {
            self.control.delayed.fetch_add(1, Ordering::Relaxed);
        }
        Ok(lat)
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn request_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Result<Refresh, TrappError> {
        let lat = self.admit(source)?;
        if !lat.is_zero() {
            std::thread::sleep(lat);
        }
        self.inner.request_refresh(source, cache, object, now)
    }

    fn request_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: &[ObjectId],
        now: f64,
    ) -> Result<Vec<Refresh>, TrappError> {
        if objects.is_empty() {
            return Ok(Vec::new());
        }
        let lat = self.admit(source)?;
        if !lat.is_zero() {
            std::thread::sleep(lat);
        }
        self.inner
            .request_refresh_batch(source, cache, objects, now)
    }

    fn submit_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Completion<Refresh> {
        let lat = match self.admit(source) {
            Ok(lat) => lat,
            Err(e) => return Completion::ready(Err(e)),
        };
        let c = self.inner.submit_refresh(source, cache, object, now);
        if lat.is_zero() {
            c
        } else {
            Completion::delayed_until(std::time::Instant::now() + lat, c)
        }
    }

    fn submit_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: Vec<ObjectId>,
        now: f64,
    ) -> Completion<Vec<Refresh>> {
        if objects.is_empty() {
            return Completion::ready(Ok(Vec::new()));
        }
        let lat = match self.admit(source) {
            Ok(lat) => lat,
            Err(e) => return Completion::ready(Err(e)),
        };
        let c = self.inner.submit_refresh_batch(source, cache, objects, now);
        if lat.is_zero() {
            c
        } else {
            Completion::delayed_until(std::time::Instant::now() + lat, c)
        }
    }

    fn apply_update(
        &self,
        source: SourceId,
        object: ObjectId,
        value: f64,
        now: f64,
    ) -> Result<Vec<(CacheId, Refresh)>, TrappError> {
        self.inner.apply_update(source, object, value, now)
    }

    fn submit_update_batch(
        &self,
        source: SourceId,
        updates: Vec<(ObjectId, f64)>,
        now: f64,
    ) -> Completion<Vec<(CacheId, Refresh)>> {
        self.inner.submit_update_batch(source, updates, now)
    }

    fn messages(&self) -> u64 {
        self.inner.messages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;
    use crate::transport::DirectTransport;
    use trapp_bounds::BoundShape;

    fn transport_with_source(id: u64) -> DirectTransport {
        let mut t = DirectTransport::new();
        let mut s = Source::new(SourceId::new(id), BoundShape::Sqrt);
        s.register_object(ObjectId::new(1), 10.0).unwrap();
        s.subscribe(CacheId::new(1), ObjectId::new(1), 1.0, 0.0)
            .unwrap();
        t.add_source(s);
        t
    }

    fn run_schedule(seed: u64, p: f64, ops: usize) -> Vec<bool> {
        let chaos = ChaosTransport::new(
            transport_with_source(1),
            ChaosConfig {
                seed,
                default_fail_p: p,
                ..ChaosConfig::default()
            },
            Arc::new(ChaosControl::new()),
        );
        (0..ops)
            .map(|_| {
                chaos
                    .request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
                    .is_ok()
            })
            .collect()
    }

    #[test]
    fn seeded_schedules_replay_bit_identically() {
        let a = run_schedule(42, 0.3, 200);
        let b = run_schedule(42, 0.3, 200);
        assert_eq!(a, b, "same seed must replay the same failures");
        let c = run_schedule(43, 0.3, 200);
        assert_ne!(a, c, "different seed must produce a different schedule");
        let fails = a.iter().filter(|ok| !**ok).count();
        assert!(
            (20..=100).contains(&fails),
            "p=0.3 over 200 ops should fail roughly 60 times, got {fails}"
        );
    }

    #[test]
    fn outage_window_is_exact_in_op_counts() {
        let chaos = ChaosTransport::new(
            transport_with_source(1),
            ChaosConfig {
                outages: vec![OutageWindow {
                    source: Some(SourceId::new(1)),
                    from_op: 3,
                    to_op: 6,
                }],
                ..ChaosConfig::default()
            },
            Arc::new(ChaosControl::new()),
        );
        let results: Vec<bool> = (0..10)
            .map(|_| {
                chaos
                    .request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
                    .is_ok()
            })
            .collect();
        assert_eq!(
            results,
            vec![true, true, true, false, false, false, true, true, true, true]
        );
        // Outage failures carry the typed unavailable error.
        assert_eq!(chaos.control().injected_failures(), 3);
    }

    #[test]
    fn manual_force_down_and_restore() {
        let control = Arc::new(ChaosControl::new());
        let chaos = ChaosTransport::new(
            transport_with_source(1),
            ChaosConfig::default(),
            control.clone(),
        );
        let src = SourceId::new(1);
        assert!(chaos
            .request_refresh(src, CacheId::new(1), ObjectId::new(1), 1.0)
            .is_ok());
        control.force_down(src);
        let err = chaos
            .request_refresh(src, CacheId::new(1), ObjectId::new(1), 2.0)
            .unwrap_err();
        assert_eq!(err, TrappError::SourceUnavailable(src));
        control.restore(src);
        assert!(chaos
            .request_refresh(src, CacheId::new(1), ObjectId::new(1), 3.0)
            .is_ok());
    }

    #[test]
    fn update_plane_is_never_failed() {
        let control = Arc::new(ChaosControl::new());
        let chaos = ChaosTransport::new(
            transport_with_source(1),
            ChaosConfig {
                default_fail_p: 1.0,
                ..ChaosConfig::default()
            },
            control.clone(),
        );
        let src = SourceId::new(1);
        control.force_down(src);
        // Refresh pulls all fail...
        assert!(chaos
            .request_refresh(src, CacheId::new(1), ObjectId::new(1), 1.0)
            .is_err());
        // ...but masters keep moving and pushes keep flowing.
        let refreshes = chaos
            .apply_update(src, ObjectId::new(1), 99.0, 2.0)
            .unwrap();
        assert_eq!(refreshes.len(), 1);
        assert!(chaos
            .submit_update_batch(src, vec![(ObjectId::new(1), 123.0)], 3.0)
            .wait()
            .is_ok());
    }

    #[test]
    fn delay_schedule_is_deterministic_and_per_source() {
        let spec = DelaySpec {
            base: Duration::from_micros(100),
            jitter: Duration::from_micros(900),
        };
        let slow = SourceId::new(2);
        let fast = SourceId::new(1);
        let a: Vec<Duration> = (0..64).map(|op| spec.sample(7, slow, op)).collect();
        let b: Vec<Duration> = (0..64).map(|op| spec.sample(7, slow, op)).collect();
        assert_eq!(a, b, "same (seed, source, op) must draw the same delay");
        let c: Vec<Duration> = (0..64).map(|op| spec.sample(8, slow, op)).collect();
        assert_ne!(a, c, "different seed must draw a different schedule");
        let d: Vec<Duration> = (0..64).map(|op| spec.sample(7, fast, op)).collect();
        assert_ne!(a, d, "different source must draw a different schedule");
        for lat in &a {
            assert!(*lat >= spec.base && *lat < spec.base + spec.jitter);
        }
        // Delay draws are decorrelated from failure draws: a source with
        // fail_p = 0.5 and a delay spec fails some ops and delays others
        // independently.
        assert_ne!(
            draw(7, slow, 0),
            draw(7 ^ DELAY_SALT, slow, 0),
            "delay salt must decorrelate the two schedules"
        );
    }

    #[test]
    fn submit_paths_delay_the_completion_not_the_submitter() {
        let chaos = ChaosTransport::new(
            transport_with_source(1),
            ChaosConfig {
                default_delay: Some(DelaySpec::fixed(Duration::from_millis(30))),
                ..ChaosConfig::default()
            },
            Arc::new(ChaosControl::new()),
        );
        let started = std::time::Instant::now();
        let c = chaos.submit_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0);
        assert!(
            started.elapsed() < Duration::from_millis(25),
            "submit must not block on the injected delay"
        );
        // The reply is in flight until the delay elapses...
        let c = match c.wait_timeout(Duration::from_millis(2)) {
            Err(c) => c,
            Ok(_) => panic!("completion resolved before the injected delay"),
        };
        // ...then lands intact (chaos never serves-then-drops).
        assert!(c.wait().is_ok());
        assert_eq!(chaos.control().injected_delays(), 1);
        // The update plane is exempt from delay injection.
        let started = std::time::Instant::now();
        chaos
            .apply_update(SourceId::new(1), ObjectId::new(1), 42.0, 2.0)
            .unwrap();
        assert!(started.elapsed() < Duration::from_millis(25));
        assert_eq!(chaos.control().injected_delays(), 1);
    }
}
