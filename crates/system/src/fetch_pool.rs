//! The shared fetch pool: a small, fixed set of demux threads that
//! multiplexes *any* number of actors (source mailboxes) over completion
//! queues — the execution substrate of
//! [`CompletionTransport`](crate::transport::CompletionTransport).
//!
//! The thread-per-source actor model
//! ([`ChannelTransport`](crate::transport::ChannelTransport)) costs one OS
//! thread per source per shard; fan-out then scales with topology size,
//! not with hardware. The pool inverts that: every actor owns only a FIFO
//! job queue, and `O(pool)` worker threads drain whichever queues have
//! work. Thousands of sources, a handful of threads.
//!
//! Two invariants the transport layer leans on:
//!
//! * **Per-actor FIFO** — jobs submitted to one actor run in submission
//!   order, and never concurrently with each other. A `scheduled` flag
//!   ensures at most one worker serves an actor at a time; the worker
//!   drains the actor's queue in order before moving on. This is what
//!   keeps `Refresh::seq` stamping identical to the thread-per-source
//!   actors.
//! * **Exactly-once drain** — every accepted job runs exactly once, even
//!   across pool shutdown: dropping the pool flushes delayed jobs into
//!   their actor queues, closes the ready channel, and joins the workers
//!   after they have drained everything already dispatched. A submission
//!   that races shutdown runs inline on the submitting thread.
//!
//! Delayed submission ([`ActorHandle::submit_after`]) models network
//! transit: a single timer thread holds a deadline heap and moves each job
//! into its actor's queue when the deadline passes — so thousands of
//! in-flight "on the wire" requests cost zero blocked threads, where the
//! thread-per-source transport burns one sleeping thread per concurrent
//! request. Deadlines break ties by submission sequence, so equal delays
//! preserve per-actor FIFO.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

/// A unit of work bound to one actor's FIFO queue.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One actor: a FIFO of pending jobs plus the flag that guarantees at most
/// one worker serves the queue at a time.
#[derive(Default)]
struct ActorQueue {
    ops: Mutex<VecDeque<Job>>,
    scheduled: AtomicBool,
}

/// Drains `actor`'s queue in FIFO order. Exits once the queue is observed
/// empty *and* the `scheduled` claim has been handed back (or taken over
/// by a concurrent submitter, which re-dispatches the actor).
fn run_actor(actor: &ActorQueue) {
    loop {
        let job = actor.ops.lock().pop_front();
        match job {
            Some(job) => job(),
            None => {
                actor.scheduled.store(false, Ordering::SeqCst);
                // A submitter may have enqueued between our failed pop and
                // the store; if so, and nobody re-claimed the actor yet,
                // re-claim it ourselves and keep draining — otherwise the
                // job would sit in a queue no worker ever visits.
                if actor.ops.lock().is_empty() || actor.scheduled.swap(true, Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// A job waiting on the timer thread's deadline heap.
struct Timed {
    at: Instant,
    seq: u64,
    actor: Arc<ActorQueue>,
    job: Job,
}

impl PartialEq for Timed {
    fn eq(&self, other: &Timed) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Timed {}
impl PartialOrd for Timed {
    fn partial_cmp(&self, other: &Timed) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timed {
    /// Reversed so `BinaryHeap` (a max-heap) pops the *earliest* deadline;
    /// ties break by submission sequence, preserving per-actor FIFO for
    /// equal delays.
    fn cmp(&self, other: &Timed) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Default)]
struct TimerQueue {
    heap: BinaryHeap<Timed>,
    next_seq: u64,
    shutdown: bool,
}

struct PoolShared {
    /// `None` once the pool has shut down; submissions then run inline.
    ready: Mutex<Option<Sender<Arc<ActorQueue>>>>,
    timer: Mutex<TimerQueue>,
    timer_wake: Condvar,
}

/// Pushes a job onto an actor's queue and dispatches the actor to the
/// worker pool if nobody is serving it. After shutdown the job runs inline
/// so every accepted job still completes exactly once.
fn enqueue(shared: &PoolShared, actor: &Arc<ActorQueue>, job: Job) {
    actor.ops.lock().push_back(job);
    if !actor.scheduled.swap(true, Ordering::SeqCst) {
        let dispatched = shared
            .ready
            .lock()
            .as_ref()
            .is_some_and(|tx| tx.send(actor.clone()).is_ok());
        if !dispatched {
            run_actor(actor);
        }
    }
}

fn timer_loop(shared: &PoolShared) {
    let mut q = shared.timer.lock();
    loop {
        if q.shutdown {
            return;
        }
        let now = Instant::now();
        match q.heap.peek() {
            None => shared.timer_wake.wait(&mut q),
            Some(t) if t.at <= now => {
                let t = q.heap.pop().expect("peeked entry");
                drop(q);
                enqueue(shared, &t.actor, t.job);
                q = shared.timer.lock();
            }
            Some(t) => {
                let sleep = t.at - now;
                shared.timer_wake.wait_for(&mut q, sleep);
            }
        }
    }
}

struct PoolCore {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    timer_thread: Mutex<Option<JoinHandle<()>>>,
    /// The receiving end of the ready channel, kept so
    /// [`FetchPool::resize`] can spawn additional workers after startup.
    ready_rx: Receiver<Arc<ActorQueue>>,
    /// Configured worker count; workers retire when `live` exceeds it.
    target: Arc<AtomicUsize>,
    /// Workers currently alive (spawned and not yet retired/joined).
    live: Arc<AtomicUsize>,
    /// Monotonic spawn counter, for worker thread names.
    spawned: AtomicUsize,
}

/// Claims a retirement slot: true when the live worker count exceeds the
/// target and this worker successfully decremented it (and must exit).
fn should_retire(live: &AtomicUsize, target: &AtomicUsize) -> bool {
    loop {
        let l = live.load(Ordering::SeqCst);
        if l <= target.load(Ordering::SeqCst) {
            return false;
        }
        if live
            .compare_exchange(l, l - 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            return true;
        }
    }
}

/// One demux worker: serves ready actors until the channel closes
/// (shutdown) or the pool shrinks below the live count. The retire check
/// runs *after* each served actor, so a received actor is never dropped.
fn worker_loop(rx: Receiver<Arc<ActorQueue>>, live: Arc<AtomicUsize>, target: Arc<AtomicUsize>) {
    loop {
        match rx.recv() {
            Ok(actor) => {
                run_actor(&actor);
                if should_retire(&live, &target) {
                    return;
                }
            }
            Err(_) => {
                live.fetch_sub(1, Ordering::SeqCst);
                return;
            }
        }
    }
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        // Deterministic drain, in an order that preserves per-actor FIFO:
        //
        // 1. Stop **and join** the timer thread first — it may be between
        //    popping a due job and enqueuing it, and flushing the heap
        //    around that window could deliver a later-deadline job ahead
        //    of an earlier one for the same actor.
        {
            let mut q = self.shared.timer.lock();
            q.shutdown = true;
        }
        self.shared.timer_wake.notify_all();
        if let Some(handle) = self.timer_thread.lock().take() {
            let _ = handle.join();
        }
        // 2. With the timer quiesced, flush every still-delayed job into
        //    its actor queue in deadline order.
        let pending: Vec<Timed> = {
            let mut q = self.shared.timer.lock();
            let mut v = std::mem::take(&mut q.heap).into_sorted_vec();
            // `Ord` is reversed (earliest = greatest), so ascending order
            // is latest-first; reverse to deliver in deadline order.
            v.reverse();
            v
        };
        for t in pending {
            enqueue(&self.shared, &t.actor, t.job);
        }
        // 3. Close the ready channel — workers drain whatever was
        //    dispatched, then exit — and join them.
        *self.shared.ready.lock() = None;
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

/// A shared pool of demux threads multiplexing many actors. Cheap to
/// clone (all clones share the same threads); the threads are joined when
/// the last clone drops. See the module docs.
#[derive(Clone)]
pub struct FetchPool {
    core: Arc<PoolCore>,
}

impl FetchPool {
    /// Starts a pool with `threads` demux workers (clamped to ≥ 1) plus
    /// one timer thread for delayed submissions.
    pub fn new(threads: usize) -> FetchPool {
        let demux_threads = threads.max(1);
        let (tx, rx) = unbounded::<Arc<ActorQueue>>();
        let shared = Arc::new(PoolShared {
            ready: Mutex::new(Some(tx)),
            timer: Mutex::new(TimerQueue::default()),
            timer_wake: Condvar::new(),
        });
        let timer_shared = shared.clone();
        let timer_thread = std::thread::Builder::new()
            .name("trapp-fetch-timer".into())
            .spawn(move || timer_loop(&timer_shared))
            .expect("spawn fetch-pool timer");
        let pool = FetchPool {
            core: Arc::new(PoolCore {
                shared,
                workers: Mutex::new(Vec::with_capacity(demux_threads)),
                timer_thread: Mutex::new(Some(timer_thread)),
                ready_rx: rx,
                target: Arc::new(AtomicUsize::new(0)),
                live: Arc::new(AtomicUsize::new(0)),
                spawned: AtomicUsize::new(0),
            }),
        };
        pool.resize(demux_threads);
        pool
    }

    /// Number of demux worker threads the pool is configured for (the
    /// timer thread is extra). After a shrinking [`FetchPool::resize`]
    /// this is the *target*; surplus workers retire as work flows.
    pub fn threads(&self) -> usize {
        self.core.target.load(Ordering::SeqCst)
    }

    /// Demux workers currently alive. Equals [`FetchPool::threads`] except
    /// transiently after a shrink, when surplus workers are still draining
    /// toward retirement.
    pub fn live_threads(&self) -> usize {
        self.core.live.load(Ordering::SeqCst)
    }

    /// Resizes the pool to `threads` demux workers (clamped to ≥ 1), live.
    /// Growth spawns workers immediately; shrinking is lazy — each surplus
    /// worker retires after finishing its current actor, so no accepted
    /// job is ever dropped and nothing blocks. Driving this from a load
    /// signal (queue depth, fetch latency) is how the service adapts its
    /// fetch parallelism to demand.
    pub fn resize(&self, threads: usize) {
        let want = threads.max(1);
        self.core.target.store(want, Ordering::SeqCst);
        let mut workers = self.core.workers.lock();
        // Prune handles of already-retired workers so repeated resizes
        // don't accumulate dead JoinHandles.
        workers.retain(|h| !h.is_finished());
        loop {
            let l = self.core.live.load(Ordering::SeqCst);
            if l >= want {
                break;
            }
            if self
                .core
                .live
                .compare_exchange(l, l + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue;
            }
            let rx = self.core.ready_rx.clone();
            let live = self.core.live.clone();
            let target = self.core.target.clone();
            let id = self.core.spawned.fetch_add(1, Ordering::SeqCst);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("trapp-fetch-{id}"))
                    .spawn(move || worker_loop(rx, live, target))
                    .expect("spawn fetch-pool worker"),
            );
        }
    }

    /// Registers a new actor and returns its submission handle.
    pub fn register(&self) -> ActorHandle {
        ActorHandle {
            queue: Arc::new(ActorQueue::default()),
            shared: self.core.shared.clone(),
        }
    }
}

/// One actor's submission handle: jobs submitted here run on the pool in
/// FIFO order, never concurrently with each other.
pub struct ActorHandle {
    queue: Arc<ActorQueue>,
    shared: Arc<PoolShared>,
}

impl ActorHandle {
    /// Submits a job to run as soon as a worker reaches this actor.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        enqueue(&self.shared, &self.queue, Box::new(job));
    }

    /// Submits a job to enter this actor's queue after `delay` (simulated
    /// network transit — the job spends `delay` "on the wire" without
    /// blocking any thread). Equal delays preserve submission order;
    /// unequal delays deliver in deadline order, like a real network.
    pub fn submit_after(&self, delay: Duration, job: impl FnOnce() + Send + 'static) {
        if delay.is_zero() {
            return self.submit(job);
        }
        let mut q = self.shared.timer.lock();
        if q.shutdown {
            drop(q);
            return self.submit(job);
        }
        let seq = q.next_seq;
        q.next_seq += 1;
        q.heap.push(Timed {
            at: Instant::now() + delay,
            seq,
            actor: self.queue.clone(),
            job: Box::new(job),
        });
        drop(q);
        self.shared.timer_wake.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn per_actor_fifo_with_one_worker() {
        let pool = FetchPool::new(1);
        let a = pool.register();
        let b = pool.register();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..50 {
            let (la, lb) = (log.clone(), log.clone());
            a.submit(move || la.lock().push(("a", i)));
            b.submit(move || lb.lock().push(("b", i)));
        }
        // Drop synchronizes: every submitted job has run afterwards.
        drop(pool);
        let log = log.lock();
        for actor in ["a", "b"] {
            let order: Vec<i32> = log
                .iter()
                .filter(|(who, _)| *who == actor)
                .map(|&(_, i)| i)
                .collect();
            assert_eq!(order, (0..50).collect::<Vec<_>>(), "{actor} out of order");
        }
    }

    #[test]
    fn equal_delays_preserve_submission_order() {
        let pool = FetchPool::new(2);
        let a = pool.register();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..20 {
            let l = log.clone();
            a.submit_after(Duration::from_millis(2), move || l.lock().push(i));
        }
        drop(pool);
        assert_eq!(*log.lock(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn shutdown_flushes_delayed_jobs_exactly_once() {
        let pool = FetchPool::new(2);
        let a = pool.register();
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let r = ran.clone();
            // Far future: only the shutdown flush can run these.
            a.submit_after(Duration::from_secs(3600), move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(ran.load(Ordering::SeqCst), 10);
        // Submissions after shutdown run inline rather than vanish.
        let r = ran.clone();
        a.submit(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn resize_grows_and_shrinks_without_losing_jobs() {
        let pool = FetchPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.live_threads(), 1);

        // Grow: new workers spawn immediately.
        pool.resize(4);
        assert_eq!(pool.threads(), 4);
        assert_eq!(pool.live_threads(), 4);

        // Work flows through the grown pool.
        let ran = Arc::new(AtomicUsize::new(0));
        let actors: Vec<ActorHandle> = (0..8).map(|_| pool.register()).collect();
        for actor in &actors {
            for _ in 0..16 {
                let r = ran.clone();
                actor.submit(move || {
                    r.fetch_add(1, Ordering::SeqCst);
                });
            }
        }

        // Shrink: target drops at once; surplus workers retire as they
        // finish actors, and every accepted job still runs.
        pool.resize(2);
        assert_eq!(pool.threads(), 2);
        for actor in &actors {
            for _ in 0..16 {
                let r = ran.clone();
                actor.submit(move || {
                    r.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        drop(pool);
        assert_eq!(ran.load(Ordering::SeqCst), 8 * 32);
    }

    #[test]
    fn resize_clamps_to_one_worker() {
        let pool = FetchPool::new(2);
        pool.resize(0);
        assert_eq!(pool.threads(), 1);
        let ran = Arc::new(AtomicUsize::new(0));
        let a = pool.register();
        let r = ran.clone();
        a.submit(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        drop(pool);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn many_actors_share_few_threads() {
        let pool = FetchPool::new(2);
        let actors: Vec<ActorHandle> = (0..64).map(|_| pool.register()).collect();
        let ran = Arc::new(AtomicUsize::new(0));
        for actor in &actors {
            for _ in 0..8 {
                let r = ran.clone();
                actor.submit(move || {
                    r.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        drop(pool);
        assert_eq!(ran.load(Ordering::SeqCst), 64 * 8);
    }
}
