//! Messages exchanged between sources and caches.

use trapp_bounds::BoundFunction;
use trapp_types::ObjectId;

/// Why a refresh was sent (§3.1, §8.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RefreshKind {
    /// The cache subscribed to the object (initial bound installation).
    Subscription,
    /// The master value escaped the cached bound; the source must push.
    ValueInitiated,
    /// A query's CHOOSE_REFRESH plan pulled the master value.
    QueryInitiated,
    /// A §8.3 *pre-refresh*: the source proactively re-centered a bound
    /// whose master value was drifting close to the edge, to avert an
    /// imminent value-initiated refresh (piggybacking / low-load pushes).
    PreRefresh,
}

/// A refresh message: the master value at refresh time plus the new bound
/// function that replaces the cache's old one.
///
/// Note the compact encoding the paper highlights (Appendix A): the bound
/// function travels as just `(V(Tᵣ), W, Tᵣ, shape)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Refresh {
    /// The refreshed object.
    pub object: ObjectId,
    /// `V(Tᵣ)` — exact master value at refresh time.
    pub value: f64,
    /// The new bound function (zero width at `Tᵣ`, diverging after).
    pub bound: BoundFunction,
    /// Why this refresh was sent.
    pub kind: RefreshKind,
    /// Per-(cache, object) issue sequence, stamped by the source's Refresh
    /// Monitor. Caches install refreshes idempotently in sequence order:
    /// a refresh that arrives after a newer one (possible when refreshes
    /// are fetched concurrently) is recognized as stale and skipped, so
    /// the cache's bound can never regress behind what the source tracks.
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use trapp_bounds::BoundShape;

    #[test]
    fn refresh_carries_consistent_bound() {
        let bound = BoundFunction::new(42.0, 1.5, 10.0, BoundShape::Sqrt).unwrap();
        let r = Refresh {
            object: ObjectId::new(7),
            value: 42.0,
            bound,
            kind: RefreshKind::ValueInitiated,
            seq: 1,
        };
        // At refresh time the bound pins the exact value.
        let iv = r.bound.interval_at(10.0);
        assert!(iv.is_point());
        assert_eq!(iv.lo(), r.value);
    }
}
