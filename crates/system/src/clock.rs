//! A shared simulated clock.
//!
//! TRAPP bound functions are functions of time; experiments need a clock
//! they can advance deterministically, shared between sources, caches, and
//! the driver. Time is stored in integer microseconds (atomics compose
//! better than locked floats) and exposed as `f64` seconds — the unit all
//! bound functions use.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cloneable handle to a shared monotonic clock.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock starting at t = 0.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current time in seconds.
    pub fn now(&self) -> f64 {
        self.micros.load(Ordering::Acquire) as f64 / 1e6
    }

    /// Advances the clock by `dt` seconds (negative or NaN are ignored).
    pub fn advance(&self, dt: f64) {
        if dt.is_finite() && dt > 0.0 {
            self.micros
                .fetch_add((dt * 1e6).round() as u64, Ordering::AcqRel);
        }
    }

    /// Sets the clock forward to `t` seconds if `t` is ahead of now.
    pub fn advance_to(&self, t: f64) {
        if !t.is_finite() {
            return;
        }
        let target = (t * 1e6).round() as u64;
        let mut cur = self.micros.load(Ordering::Acquire);
        while target > cur {
            match self.micros.compare_exchange_weak(
                cur,
                target,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(1.5);
        assert!((c.now() - 1.5).abs() < 1e-9);
        c.advance(-5.0); // ignored
        c.advance(f64::NAN); // ignored
        assert!((c.now() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(2.0);
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = SimClock::new();
        c.advance_to(5.0);
        assert!((c.now() - 5.0).abs() < 1e-9);
        c.advance_to(3.0); // behind: no-op
        assert!((c.now() - 5.0).abs() < 1e-9);
        c.advance_to(f64::INFINITY); // ignored
        assert!((c.now() - 5.0).abs() < 1e-9);
    }
}
