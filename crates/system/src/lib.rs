//! # trapp-system
//!
//! The TRAPP replication substrate (§3, Figure 3): **data sources** hold
//! master values and run **Refresh Monitors**; **data caches** hold bounds
//! and run the query processor from `trapp-core`. The two halves cooperate
//! through two message flows:
//!
//! * **value-initiated refreshes** — a source applies an update, notices a
//!   cache's bound is violated, and pushes a fresh bound (§3.1);
//! * **query-initiated refreshes** — a cache executing a query with a
//!   precision constraint pulls master values for the tuples its
//!   CHOOSE_REFRESH plan selected (§4).
//!
//! Bounds are the time-parameterized `√t` functions of `trapp-bounds`, with
//! per-(cache, object) [`trapp_bounds::AdaptiveWidth`] controllers on the
//! source side (Appendix A): widen on escapes, narrow on query refreshes.
//!
//! Three transports are provided:
//!
//! * [`transport::DirectTransport`] — synchronous, single-threaded,
//!   deterministic; used by tests and the reproducible experiments;
//! * [`transport::ChannelTransport`] — each source runs on its own OS
//!   thread behind `crossbeam` channels with optional simulated latency;
//!   the actor structure of a real deployment, at one thread per source;
//! * [`transport::CompletionTransport`] — the scalable variant: a shared
//!   [`fetch_pool::FetchPool`] of demux threads multiplexes every source
//!   actor over completion queues, so fan-out costs `O(pool)` threads no
//!   matter how many sources exist. All transports also expose the
//!   nonblocking [`transport::Transport::submit_refresh_batch`] API so
//!   callers can overlap independent round-trips.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod chaos;
pub mod clock;
pub mod cost;
pub mod fetch_pool;
pub mod message;
pub mod sim;
pub mod source;
pub mod stats;
pub mod transport;

pub use cache::CacheNode;
pub use chaos::{splitmix64, ChaosConfig, ChaosControl, ChaosTransport, DelaySpec, OutageWindow};
pub use clock::SimClock;
pub use cost::CostModel;
pub use fetch_pool::FetchPool;
pub use message::{Refresh, RefreshKind};
pub use sim::{Simulation, SimulationBuilder};
pub use source::Source;
pub use stats::SystemStats;
pub use transport::{
    ChannelTransport, Completion, CompletionSender, CompletionTransport, DirectTransport, Transport,
};
