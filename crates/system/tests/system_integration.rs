//! System-level integration tests: the full Figure 3 architecture over the
//! *threaded* transport, and the Refresh-Monitor consistency invariant —
//! the source's tracked bound must always equal what the cache holds, or
//! the "guaranteed to contain the master value" contract silently breaks.

use std::time::Duration;

use trapp_bounds::BoundShape;
use trapp_storage::{ColumnDef, Schema, Table};
use trapp_system::{CacheNode, ChannelTransport, SimClock, Source, Transport};
use trapp_types::{BoundedValue, CacheId, ObjectId, SourceId, Value, ValueType};

fn sensor_schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        ColumnDef::exact("name", ValueType::Str),
        ColumnDef::bounded_float("temp"),
    ])
    .unwrap()
}

/// Builds a cache over `n` objects spread across `sources` threaded
/// sources, returning `(clock, cache, transport)`.
fn threaded_setup(n: usize, sources: usize) -> (SimClock, CacheNode, ChannelTransport) {
    let clock = SimClock::new();
    let mut cache = CacheNode::new(CacheId::new(1), clock.clone());
    let mut table = Table::new("sensors", sensor_schema());
    let mut tids = Vec::new();
    for i in 0..n {
        let tid = table
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Str(format!("s{i}"))),
                    BoundedValue::bounded(0.0, 0.0).unwrap(),
                ],
                1.0 + (i % 5) as f64,
            )
            .unwrap();
        tids.push(tid);
    }
    cache.add_table(table).unwrap();

    let mut transport = ChannelTransport::new(Duration::from_micros(200));
    for s in 0..sources {
        let sid = SourceId::new(s as u64 + 1);
        let mut source = Source::new(sid, BoundShape::Sqrt);
        for (i, &tid) in tids.iter().enumerate() {
            if i % sources != s {
                continue;
            }
            let obj = ObjectId::new(i as u64 + 1);
            source.register_object(obj, 20.0 + i as f64).unwrap();
            cache.bind_object(obj, sid, "sensors", tid, 1).unwrap();
            let refresh = source.subscribe(CacheId::new(1), obj, 1.0, 0.0).unwrap();
            cache.install_refresh(refresh).unwrap();
        }
        transport.add_source(source);
    }
    (clock, cache, transport)
}

#[test]
fn queries_work_over_the_threaded_transport() {
    let (clock, mut cache, transport) = threaded_setup(12, 3);
    clock.advance(9.0); // bounds now ±3 per object

    // Loose query: cache only.
    let r = cache
        .execute_query("SELECT SUM(temp) WITHIN 100 FROM sensors", &transport)
        .unwrap();
    assert!(r.satisfied);
    assert_eq!(transport.messages(), 0);

    // Tight query: refreshes travel through the source threads.
    let r = cache
        .execute_query("SELECT SUM(temp) WITHIN 2 FROM sensors", &transport)
        .unwrap();
    assert!(r.satisfied);
    assert!(r.answer.width() <= 2.0);
    assert!(transport.messages() > 0);
    // True sum: Σ (20 + i) for i in 0..12 = 240 + 66.
    assert!(r.answer.range.contains(306.0));
}

#[test]
fn exact_answers_match_across_transport_kinds() {
    let (clock, mut cache, transport) = threaded_setup(8, 2);
    clock.advance(4.0);
    let r = cache
        .execute_query("SELECT MAX(temp) WITHIN 0 FROM sensors", &transport)
        .unwrap();
    assert!(r.answer.is_exact());
    assert_eq!(r.answer.range.lo(), 27.0); // 20 + 7
}

/// Batched refresh accounting: a tight query whose CHOOSE_REFRESH plan
/// spans every source issues exactly one round-trip per source — on both
/// transports — while the per-object baseline issues one per object.
#[test]
fn multi_source_plan_is_one_round_trip_per_source() {
    // 12 objects across 3 sources; WITHIN 0 forces a full refresh.
    let (clock, mut cache, transport) = threaded_setup(12, 3);
    clock.advance(9.0);
    let r = cache
        .execute_query("SELECT SUM(temp) WITHIN 0 FROM sensors", &transport)
        .unwrap();
    assert!(r.satisfied);
    assert_eq!(r.refreshed.len(), 12, "full refresh expected");
    assert_eq!(
        transport.messages(),
        3,
        "one batched round-trip per source, not one per object"
    );

    // Same plan over the per-object baseline: 12 round-trips.
    let (clock, mut cache, transport) = threaded_setup(12, 3);
    cache.set_batch_refreshes(false);
    clock.advance(9.0);
    let r = cache
        .execute_query("SELECT SUM(temp) WITHIN 0 FROM sensors", &transport)
        .unwrap();
    assert!(r.satisfied);
    assert_eq!(transport.messages(), 12);
}

/// The same one-round-trip-per-source accounting on the synchronous
/// transport, and identical answers either way.
#[test]
fn batching_counts_match_across_transports_and_preserves_answers() {
    let build = |batch: bool| {
        let mut sim = trapp_system::Simulation::builder()
            .initial_width(2.0)
            .build()
            .unwrap();
        for s in 1..=3u64 {
            sim.add_source(SourceId::new(s));
        }
        sim.add_table(Table::new("sensors", sensor_schema()))
            .unwrap();
        for i in 0..9u64 {
            sim.add_row(
                "sensors",
                SourceId::new(1 + i % 3),
                vec![
                    BoundedValue::Exact(Value::Str(format!("s{i}"))),
                    BoundedValue::exact_f64(5.0 * i as f64).unwrap(),
                ],
            )
            .unwrap();
        }
        sim.set_batch_refreshes(batch);
        sim.clock.advance(4.0);
        sim
    };

    let mut batched = build(true);
    let rb = batched
        .run_query("SELECT SUM(temp) WITHIN 0 FROM sensors")
        .unwrap();
    assert_eq!(batched.stats().messages, 3);

    let mut baseline = build(false);
    let ro = baseline
        .run_query("SELECT SUM(temp) WITHIN 0 FROM sensors")
        .unwrap();
    assert_eq!(baseline.stats().messages, 9);

    assert_eq!(
        rb.answer.range, ro.answer.range,
        "batching must not change answers"
    );
    assert_eq!(rb.refreshed, ro.refreshed);
    assert_eq!(rb.refresh_cost, ro.refresh_cost);
    // Source-side accounting: same refreshes served, batches only counted
    // on the batched run.
    let count = |sim: &trapp_system::Simulation| {
        (1..=3u64)
            .map(|s| {
                let src = sim.transport.source(SourceId::new(s)).unwrap();
                let st = src.lock().stats();
                (st.query_initiated, st.batches_served)
            })
            .fold((0, 0), |acc, (q, b)| (acc.0 + q, acc.1 + b))
    };
    assert_eq!(count(&batched), (9, 3));
    assert_eq!(count(&baseline), (9, 0));
}

/// Re-registering a source id must shut down and join the old actor
/// thread (no detached `JoinHandle`s), and the replacement must serve.
#[test]
fn replaced_source_actor_is_joined_and_replacement_serves() {
    let mut transport = ChannelTransport::new(Duration::ZERO);
    let mut old = Source::new(SourceId::new(1), BoundShape::Sqrt);
    old.register_object(ObjectId::new(1), 1.0).unwrap();
    old.subscribe(CacheId::new(1), ObjectId::new(1), 1.0, 0.0)
        .unwrap();
    transport.add_source(old);

    let mut new = Source::new(SourceId::new(1), BoundShape::Sqrt);
    new.register_object(ObjectId::new(1), 2.0).unwrap();
    new.subscribe(CacheId::new(1), ObjectId::new(1), 1.0, 0.0)
        .unwrap();
    transport.add_source(new); // joins the old actor internally

    let r = transport
        .request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 0.5)
        .unwrap();
    assert_eq!(r.value, 2.0, "requests must reach the replacement source");
    let rs = transport
        .request_refresh_batch(SourceId::new(1), CacheId::new(1), &[ObjectId::new(1)], 0.5)
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(transport.messages(), 2);
}

/// The Refresh Monitor invariant: after any interleaving of updates,
/// queries, and clock advances, the bound the source tracks for
/// (cache, object) is identical to the bound function the cache holds —
/// which is what makes value-initiated refresh detection sound.
#[test]
fn monitor_view_matches_cache_view() {
    let clock = SimClock::new();
    let mut sim = trapp_system::Simulation::builder()
        .initial_width(1.5)
        .build()
        .unwrap();
    let _ = clock;
    sim.add_source(SourceId::new(1));
    sim.add_table(Table::new("sensors", sensor_schema()))
        .unwrap();
    let mut values = Vec::new();
    for i in 0..6 {
        sim.add_row(
            "sensors",
            SourceId::new(1),
            vec![
                BoundedValue::Exact(Value::Str(format!("s{i}"))),
                BoundedValue::exact_f64(10.0 * i as f64).unwrap(),
            ],
        )
        .unwrap();
        values.push(10.0 * i as f64);
    }

    for tick in 1..=40u64 {
        sim.clock.advance(0.5);
        // Drift a rotating object, sometimes escaping.
        let k = (tick % 6) as usize;
        values[k] += if tick % 7 == 0 { 9.0 } else { 0.3 };
        sim.apply_update(ObjectId::new(k as u64 + 1), values[k])
            .unwrap();
        if tick % 8 == 0 {
            sim.run_query("SELECT SUM(temp) WITHIN 3 FROM sensors")
                .unwrap();
        }
        if tick % 11 == 0 {
            sim.pre_refresh_near_edge(0.25).unwrap();
        }

        // Invariant: master values always inside the cache's materialized
        // bounds (checked via a WITHIN ∞ query answer containing the truth).
        let r = sim.run_query("SELECT SUM(temp) FROM sensors").unwrap();
        let truth: f64 = values.iter().sum();
        assert!(
            r.answer.range.lo() <= truth + 1e-9 && truth <= r.answer.range.hi() + 1e-9,
            "tick {tick}: {} excludes {truth}",
            r.answer
        );

        // Invariant: the source's tracked bound equals the cache-installed
        // bound for every object.
        let src = sim.transport.source(SourceId::new(1)).unwrap();
        let src = src.lock();
        for (i, _) in values.iter().enumerate() {
            let obj = ObjectId::new(i as u64 + 1);
            let tracked = src.tracked_bound(CacheId::new(1), obj).unwrap();
            let now = sim.clock.now();
            let master = src.master(obj).unwrap();
            assert!(
                tracked.interval_at(now).contains(master),
                "tick {tick}: monitor bound for {obj} excludes master {master}"
            );
        }
    }
    let stats = sim.stats();
    assert!(
        stats.value_initiated > 0,
        "drift must have escaped at least once"
    );
    assert!(stats.query_initiated > 0);
}
