//! Property test: classification soundness. For random predicate trees and
//! random bounded rows,
//!
//! * a tuple classified `T+` satisfies the predicate under *every* sampled
//!   realization of its bounds;
//! * a tuple classified `T−` satisfies it under none;
//! * (`T?` tuples may go either way — that's what `T?` means.)
//!
//! This is the semantic content of the Figure 8 / Appendix D translation:
//! `Certain ⇒ always true`, `¬Possible ⇒ always false`.

use proptest::prelude::*;
use trapp_expr::{eval, Band, BinaryOp, ColumnRef, Expr, UnaryOp};
use trapp_storage::{ColumnDef, Row, Schema};
use trapp_types::{BoundedValue, Tri, Value};

fn schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        ColumnDef::bounded_float("x"),
        ColumnDef::bounded_float("y"),
        ColumnDef::bounded_float("z"),
    ])
    .unwrap()
}

fn col(name: &str) -> Expr<ColumnRef> {
    Expr::Column(ColumnRef::bare(name))
}

/// Random numeric atoms: columns or small literals.
fn arb_atom() -> impl Strategy<Value = Expr<ColumnRef>> {
    prop_oneof![
        Just(col("x")),
        Just(col("y")),
        Just(col("z")),
        (-20.0f64..20.0).prop_map(|v| Expr::Literal(Value::Float(v))),
    ]
}

fn arb_numeric() -> impl Strategy<Value = Expr<ColumnRef>> {
    arb_atom().prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinaryOp::Add),
                    Just(BinaryOp::Sub),
                    Just(BinaryOp::Mul),
                ]
            )
                .prop_map(|(a, b, op)| Expr::binary(op, a, b)),
            inner.prop_map(|x| Expr::unary(UnaryOp::Neg, x)),
        ]
    })
}

fn arb_predicate() -> impl Strategy<Value = Expr<ColumnRef>> {
    let cmp = (
        arb_numeric(),
        arb_numeric(),
        prop_oneof![
            Just(BinaryOp::Lt),
            Just(BinaryOp::Le),
            Just(BinaryOp::Gt),
            Just(BinaryOp::Ge),
            Just(BinaryOp::Eq),
            Just(BinaryOp::Ne),
        ],
    )
        .prop_map(|(a, b, op)| Expr::binary(op, a, b));
    cmp.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
            inner.prop_map(|x| Expr::unary(UnaryOp::Not, x)),
        ]
    })
}

/// A row of bounds plus per-column sample fractions for realizations.
fn arb_row() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((-10.0f64..10.0, 0.0f64..8.0), 3)
        .prop_map(|v| v.into_iter().map(|(lo, w)| (lo, lo + w)).collect())
}

fn bounded_row(bounds: &[(f64, f64)]) -> Row {
    Row::new(
        &schema(),
        bounds
            .iter()
            .map(|&(lo, hi)| BoundedValue::bounded(lo, hi).unwrap())
            .collect(),
    )
    .unwrap()
}

fn realized_row(bounds: &[(f64, f64)], fracs: &[f64]) -> Row {
    Row::new(
        &schema(),
        bounds
            .iter()
            .zip(fracs)
            .map(|(&(lo, hi), &f)| BoundedValue::exact_f64(lo + (hi - lo) * f).unwrap())
            .collect(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn certain_and_impossible_are_sound(
        pred in arb_predicate(),
        bounds in arb_row(),
        fracs in proptest::collection::vec(proptest::collection::vec(0.0f64..=1.0, 3), 8),
    ) {
        let pred = pred.bind(&schema()).unwrap();
        let row = bounded_row(&bounds);
        // Division or other evaluation errors mean the predicate is not
        // classifiable — skip those trees (the planner rejects them).
        let Ok(result) = eval(&pred, &row) else { return Ok(()); };
        let Ok(tri) = result.as_tri() else { return Ok(()); };
        let band = Band::from_tri(tri);

        for f in &fracs {
            let real = realized_row(&bounds, f);
            let Ok(rv) = eval(&pred, &real) else { continue };
            let Ok(rt) = rv.as_tri() else { continue };
            prop_assert_ne!(rt, Tri::Maybe, "exact rows classify definitely");
            match band {
                Band::Plus => prop_assert_eq!(
                    rt, Tri::True,
                    "T+ tuple failed under realization {:?}", f
                ),
                Band::Minus => prop_assert_eq!(
                    rt, Tri::False,
                    "T− tuple passed under realization {:?}", f
                ),
                Band::Question => {}
            }
        }
    }

    /// Numeric expressions: the interval result contains the realized value
    /// for every sampled realization (interval-arithmetic soundness at the
    /// expression-tree level).
    #[test]
    fn expression_intervals_contain_realizations(
        expr in arb_numeric(),
        bounds in arb_row(),
        fracs in proptest::collection::vec(proptest::collection::vec(0.0f64..=1.0, 3), 8),
    ) {
        let expr = expr.bind(&schema()).unwrap();
        let row = bounded_row(&bounds);
        let Ok(result) = eval(&expr, &row) else { return Ok(()); };
        let Ok(iv) = result.as_interval() else { return Ok(()); };
        for f in &fracs {
            let real = realized_row(&bounds, f);
            let Ok(rv) = eval(&expr, &real) else { continue };
            let Ok(p) = rv.as_interval() else { continue };
            let v = p.lo();
            let slack = 1e-6 * (1.0 + v.abs() + iv.width().abs().min(1e12));
            prop_assert!(
                iv.lo() - slack <= v && v <= iv.hi() + slack,
                "{v} escaped {iv} under {:?}", f
            );
        }
    }
}
