//! Appendix D refinement: bounds implied by the predicate itself.
//!
//! When the selection predicate restricts the *aggregation column*, tuples in
//! `T?` carry extra information: Figure 2's example aggregates `latency`
//! under `latency > 10`, so a `T?` tuple with bound `[9, 11]` can only
//! contribute a value in `[10, 11]` *if it contributes at all*. The paper
//! (Appendix D, final paragraph) shrinks such bounds before they enter the
//! answer computation or CHOOSE_REFRESH.
//!
//! [`implied_interval`] computes a conservative interval `S` such that every
//! assignment satisfying the predicate puts the target column inside `S`:
//!
//! * comparisons where one side is *exactly* the target column and the other
//!   is a constant contribute a half-line;
//! * `AND` intersects, `OR` hulls, `NOT` flips comparisons via rewriting;
//! * anything not understood contributes the full line (always sound).

use trapp_types::{Interval, Value};

use crate::ast::{BinaryOp, Expr, UnaryOp};

/// A conservative interval containing the target column's value whenever the
/// predicate holds. Returns [`Interval::UNBOUNDED`] when the predicate
/// implies no usable restriction.
///
/// Soundness, not tightness, is the contract: callers may intersect the
/// result with a tuple's bound; if the intersection is empty the tuple
/// cannot satisfy the predicate at all.
pub fn implied_interval(predicate: &Expr<usize>, target_column: usize) -> Interval {
    implied(predicate, target_column, false)
}

/// Recursive worker; `negated` tracks an odd number of enclosing `NOT`s.
///
/// De Morgan requires the pending negation to distribute into the operands
/// of AND/OR: `¬(a AND b)` implies the hull of what `¬a` and `¬b` imply,
/// and `¬(a OR b)` the intersection.
fn implied(expr: &Expr<usize>, col: usize, negated: bool) -> Interval {
    match expr {
        Expr::Unary(UnaryOp::Not, inner) => implied(inner, col, !negated),
        Expr::Binary(BinaryOp::And, a, b) if !negated => {
            let ia = implied(a, col, false);
            let ib = implied(b, col, false);
            // An empty intersection means the predicate is unsatisfiable;
            // any interval is then vacuously sound — keep one side.
            ia.intersect(ib).unwrap_or(ia)
        }
        Expr::Binary(BinaryOp::And, a, b) => {
            // ¬(a AND b) = ¬a OR ¬b.
            implied(a, col, true).hull(implied(b, col, true))
        }
        Expr::Binary(BinaryOp::Or, a, b) if !negated => {
            implied(a, col, false).hull(implied(b, col, false))
        }
        Expr::Binary(BinaryOp::Or, a, b) => {
            // ¬(a OR b) = ¬a AND ¬b.
            let ia = implied(a, col, true);
            let ib = implied(b, col, true);
            ia.intersect(ib).unwrap_or(ia)
        }
        Expr::Binary(op, a, b) if op.is_comparison() => {
            let op = if negated {
                match negate_cmp(*op) {
                    Some(o) => o,
                    None => return Interval::UNBOUNDED,
                }
            } else {
                *op
            };
            leaf(op, a, b, col)
        }
        _ => Interval::UNBOUNDED,
    }
}

/// Negation of a comparison operator, where it stays an interval-shaped
/// restriction. `¬(c = k)` punctures the line (no interval form) → `None`.
fn negate_cmp(op: BinaryOp) -> Option<BinaryOp> {
    Some(match op {
        BinaryOp::Lt => BinaryOp::Ge,
        BinaryOp::Le => BinaryOp::Gt,
        BinaryOp::Gt => BinaryOp::Le,
        BinaryOp::Ge => BinaryOp::Lt,
        BinaryOp::Eq => return None,
        BinaryOp::Ne => BinaryOp::Eq,
        _ => return None,
    })
}

/// A comparison leaf: restrict only if one side is exactly `col` and the
/// other side is a numeric literal.
fn leaf(op: BinaryOp, a: &Expr<usize>, b: &Expr<usize>, col: usize) -> Interval {
    let (column_side, constant, flipped) = match (as_column(a, col), as_constant(b)) {
        (true, Some(k)) => (true, k, false),
        _ => match (as_constant(a), as_column(b, col)) {
            (Some(k), true) => (true, k, true),
            _ => (false, 0.0, false),
        },
    };
    if !column_side {
        return Interval::UNBOUNDED;
    }
    let op = if flipped { mirror(op) } else { op };
    match op {
        BinaryOp::Eq => Interval::new_unchecked(constant, constant),
        BinaryOp::Lt | BinaryOp::Le => Interval::new_unchecked(f64::NEG_INFINITY, constant),
        BinaryOp::Gt | BinaryOp::Ge => Interval::new_unchecked(constant, f64::INFINITY),
        // `≠` and everything else: no restriction.
        _ => Interval::UNBOUNDED,
    }
}

/// `k op c` ≡ `c mirror(op) k`.
fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Le => BinaryOp::Ge,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::Ge => BinaryOp::Le,
        other => other,
    }
}

fn as_column(e: &Expr<usize>, col: usize) -> bool {
    matches!(e, Expr::Column(c) if *c == col)
}

fn as_constant(e: &Expr<usize>) -> Option<f64> {
    match e {
        Expr::Literal(Value::Float(v)) => Some(*v),
        Expr::Literal(Value::Int(v)) => Some(*v as f64),
        Expr::Unary(UnaryOp::Neg, inner) => as_constant(inner).map(|v| -v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ColumnRef;
    use std::sync::Arc;
    use trapp_storage::{ColumnDef, Schema};

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            ColumnDef::bounded_float("latency"),
            ColumnDef::bounded_float("traffic"),
        ])
        .unwrap()
    }

    fn col(name: &str) -> Expr<ColumnRef> {
        Expr::Column(ColumnRef::bare(name))
    }
    fn lit(v: f64) -> Expr<ColumnRef> {
        Expr::Literal(Value::Float(v))
    }
    fn bind(e: Expr<ColumnRef>) -> Expr<usize> {
        e.bind(&schema()).unwrap()
    }

    #[test]
    fn paper_example_latency_gt_10() {
        // Aggregating latency under `latency > 10`: bound [9,11] can shrink
        // to [10,11] via S = [10, ∞).
        let pred = bind(Expr::binary(BinaryOp::Gt, col("latency"), lit(10.0)));
        let s = implied_interval(&pred, 0);
        assert_eq!(s.lo(), 10.0);
        assert_eq!(s.hi(), f64::INFINITY);
        let shrunk = Interval::new(9.0, 11.0).unwrap().intersect(s).unwrap();
        assert_eq!(shrunk, Interval::new(10.0, 11.0).unwrap());
    }

    #[test]
    fn unrelated_column_gives_no_restriction() {
        // Predicate on traffic restricts nothing about latency.
        let pred = bind(Expr::binary(BinaryOp::Gt, col("traffic"), lit(100.0)));
        assert_eq!(implied_interval(&pred, 0), Interval::UNBOUNDED);
    }

    #[test]
    fn conjunction_intersects() {
        // latency > 3 AND latency <= 8 → [3, 8].
        let pred = bind(Expr::and(
            Expr::binary(BinaryOp::Gt, col("latency"), lit(3.0)),
            Expr::binary(BinaryOp::Le, col("latency"), lit(8.0)),
        ));
        let s = implied_interval(&pred, 0);
        assert_eq!((s.lo(), s.hi()), (3.0, 8.0));
    }

    #[test]
    fn conjunction_with_unrelated_clause_keeps_restriction() {
        // The paper's footnote 4: `T.a < 5 AND T.b ≠ 2` still restricts T.a.
        let pred = bind(Expr::and(
            Expr::binary(BinaryOp::Lt, col("latency"), lit(5.0)),
            Expr::binary(BinaryOp::Ne, col("traffic"), lit(2.0)),
        ));
        let s = implied_interval(&pred, 0);
        assert_eq!(s.hi(), 5.0);
        assert_eq!(s.lo(), f64::NEG_INFINITY);
    }

    #[test]
    fn disjunction_hulls() {
        // latency < 2 OR latency = 7 → (−∞, 7].
        let pred = bind(Expr::or(
            Expr::binary(BinaryOp::Lt, col("latency"), lit(2.0)),
            Expr::binary(BinaryOp::Eq, col("latency"), lit(7.0)),
        ));
        let s = implied_interval(&pred, 0);
        assert_eq!(s.hi(), 7.0);
        assert_eq!(s.lo(), f64::NEG_INFINITY);
        // Disjunction with an unrestricted branch gives no restriction.
        let pred = bind(Expr::or(
            Expr::binary(BinaryOp::Lt, col("latency"), lit(2.0)),
            Expr::binary(BinaryOp::Gt, col("traffic"), lit(1.0)),
        ));
        assert_eq!(implied_interval(&pred, 0), Interval::UNBOUNDED);
    }

    #[test]
    fn negation_flips_comparisons() {
        // NOT (latency < 10) → latency ≥ 10 → [10, ∞).
        let pred = bind(Expr::unary(
            UnaryOp::Not,
            Expr::binary(BinaryOp::Lt, col("latency"), lit(10.0)),
        ));
        let s = implied_interval(&pred, 0);
        assert_eq!(s.lo(), 10.0);
        // NOT (latency = 10) → no usable restriction (a punctured line).
        let pred = bind(Expr::unary(
            UnaryOp::Not,
            Expr::binary(BinaryOp::Eq, col("latency"), lit(10.0)),
        ));
        assert_eq!(implied_interval(&pred, 0), Interval::UNBOUNDED);
        // NOT (latency ≠ 10) → latency = 10 → point.
        let pred = bind(Expr::unary(
            UnaryOp::Not,
            Expr::binary(BinaryOp::Ne, col("latency"), lit(10.0)),
        ));
        assert!(implied_interval(&pred, 0).is_point());
    }

    #[test]
    fn constant_on_the_left_mirrors() {
        // 10 < latency → latency > 10.
        let pred = bind(Expr::binary(BinaryOp::Lt, lit(10.0), col("latency")));
        let s = implied_interval(&pred, 0);
        assert_eq!(s.lo(), 10.0);
        // Negated constants parse through Unary(Neg).
        let pred = bind(Expr::binary(
            BinaryOp::Gt,
            col("latency"),
            Expr::unary(UnaryOp::Neg, lit(3.0)),
        ));
        assert_eq!(implied_interval(&pred, 0).lo(), -3.0);
    }

    #[test]
    fn de_morgan_distributes_negation() {
        // NOT (latency < 5 OR latency > 10) ≡ 5 ≤ latency ≤ 10 → [5, 10].
        let pred = bind(Expr::unary(
            UnaryOp::Not,
            Expr::or(
                Expr::binary(BinaryOp::Lt, col("latency"), lit(5.0)),
                Expr::binary(BinaryOp::Gt, col("latency"), lit(10.0)),
            ),
        ));
        let s = implied_interval(&pred, 0);
        assert_eq!((s.lo(), s.hi()), (5.0, 10.0));
        // NOT (latency < 5 AND traffic > 1) ≡ latency ≥ 5 OR traffic ≤ 1:
        // the traffic branch removes any latency restriction.
        let pred = bind(Expr::unary(
            UnaryOp::Not,
            Expr::and(
                Expr::binary(BinaryOp::Lt, col("latency"), lit(5.0)),
                Expr::binary(BinaryOp::Gt, col("traffic"), lit(1.0)),
            ),
        ));
        assert_eq!(implied_interval(&pred, 0), Interval::UNBOUNDED);
        // Double negation cancels.
        let pred = bind(Expr::unary(
            UnaryOp::Not,
            Expr::unary(
                UnaryOp::Not,
                Expr::binary(BinaryOp::Gt, col("latency"), lit(10.0)),
            ),
        ));
        assert_eq!(implied_interval(&pred, 0).lo(), 10.0);
    }

    #[test]
    fn complex_expressions_stay_sound() {
        // latency + 1 > 10 is not a bare column comparison: no restriction
        // (sound, just not tight).
        let pred = bind(Expr::binary(
            BinaryOp::Gt,
            Expr::binary(BinaryOp::Add, col("latency"), lit(1.0)),
            lit(10.0),
        ));
        assert_eq!(implied_interval(&pred, 0), Interval::UNBOUNDED);
    }
}
