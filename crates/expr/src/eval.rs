//! Interval / three-valued evaluation of expressions over bounded rows.
//!
//! Every expression evaluates to an [`EvalResult`]:
//!
//! * numeric expressions produce an [`Interval`] — a *sound
//!   over-approximation* of the set of values the expression can take for
//!   any assignment of master values within the row's bounds (exact cells
//!   are point intervals, so exact rows produce point results);
//! * comparisons over numerics apply the Figure 8 range-comparison rules and
//!   produce a [`Tri`];
//! * comparisons over strings/booleans (always exact) produce a definite
//!   `Tri::True`/`Tri::False`;
//! * `AND`/`OR`/`NOT` combine `Tri`s with strong-Kleene semantics, which is
//!   precisely the simultaneous evaluation of the paper's `Possible(P)`
//!   (result ≠ False) and `Certain(P)` (result = True) transformations.
//!
//! Evaluation expects a type-correct expression (see [`crate::typecheck()`]);
//! type errors at runtime are reported but indicate a missed static check.

use trapp_storage::Row;
use trapp_types::{Interval, TrappError, Tri, Value};

use crate::ast::{BinaryOp, Expr, UnaryOp};

/// The result of evaluating an expression against one row.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalResult {
    /// A numeric result: the range of possible values.
    Num(Interval),
    /// An exact string result.
    Str(String),
    /// A three-valued logical result.
    Bool(Tri),
}

impl EvalResult {
    /// Numeric view.
    pub fn as_interval(&self) -> Result<Interval, TrappError> {
        match self {
            EvalResult::Num(iv) => Ok(*iv),
            other => Err(TrappError::TypeMismatch {
                expected: "numeric expression".into(),
                actual: other.kind().into(),
            }),
        }
    }

    /// Logical view.
    pub fn as_tri(&self) -> Result<Tri, TrappError> {
        match self {
            EvalResult::Bool(t) => Ok(*t),
            other => Err(TrappError::TypeMismatch {
                expected: "boolean expression".into(),
                actual: other.kind().into(),
            }),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            EvalResult::Num(_) => "numeric",
            EvalResult::Str(_) => "string",
            EvalResult::Bool(_) => "boolean",
        }
    }
}

/// Evaluates a bound expression against a row.
pub fn eval(expr: &Expr<usize>, row: &Row) -> Result<EvalResult, TrappError> {
    match expr {
        Expr::Literal(v) => Ok(literal(v)?),
        Expr::Column(idx) => {
            let cell = row.cell(*idx)?;
            match cell {
                trapp_types::BoundedValue::Exact(v) => literal(v),
                trapp_types::BoundedValue::Bounded(iv) => Ok(EvalResult::Num(*iv)),
            }
        }
        Expr::Unary(op, x) => {
            let xv = eval(x, row)?;
            match op {
                UnaryOp::Neg => Ok(EvalResult::Num(-xv.as_interval()?)),
                UnaryOp::Not => Ok(EvalResult::Bool(!xv.as_tri()?)),
            }
        }
        Expr::Binary(op, a, b) => {
            let av = eval(a, row)?;
            let bv = eval(b, row)?;
            apply_binary(*op, av, bv)
        }
    }
}

fn literal(v: &Value) -> Result<EvalResult, TrappError> {
    Ok(match v {
        Value::Float(x) => EvalResult::Num(Interval::point(*x)?),
        Value::Int(x) => EvalResult::Num(Interval::point(*x as f64)?),
        Value::Str(s) => EvalResult::Str(s.clone()),
        Value::Bool(b) => EvalResult::Bool(Tri::from_bool(*b)),
    })
}

fn apply_binary(op: BinaryOp, a: EvalResult, b: EvalResult) -> Result<EvalResult, TrappError> {
    use BinaryOp::*;
    if op.is_arithmetic() {
        let (x, y) = (a.as_interval()?, b.as_interval()?);
        let r = match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => (x / y)?,
            _ => unreachable!(),
        };
        return Ok(EvalResult::Num(r));
    }
    if op.is_logical() {
        let (x, y) = (a.as_tri()?, b.as_tri()?);
        let r = match op {
            And => x & y,
            Or => x | y,
            _ => unreachable!(),
        };
        return Ok(EvalResult::Bool(r));
    }
    // Comparisons.
    let tri = match (&a, &b) {
        (EvalResult::Num(x), EvalResult::Num(y)) => match op {
            Eq => x.tri_eq(*y),
            Ne => x.tri_ne(*y),
            Lt => x.tri_lt(*y),
            Le => x.tri_le(*y),
            Gt => x.tri_gt(*y),
            Ge => x.tri_ge(*y),
            _ => unreachable!(),
        },
        (EvalResult::Str(x), EvalResult::Str(y)) => {
            let ord = x.cmp(y);
            Tri::from_bool(match op {
                Eq => ord.is_eq(),
                Ne => ord.is_ne(),
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            })
        }
        (EvalResult::Bool(x), EvalResult::Bool(y)) if matches!(op, Eq | Ne) => {
            // Three-valued equality of truth values: certain only when both
            // are definite.
            let eq = match (x, y) {
                (Tri::Maybe, _) | (_, Tri::Maybe) => Tri::Maybe,
                (x, y) => Tri::from_bool(x == y),
            };
            if op == Eq {
                eq
            } else {
                !eq
            }
        }
        _ => {
            return Err(TrappError::TypeMismatch {
                expected: format!("comparable operands for {op}"),
                actual: format!("{} vs {}", a.kind(), b.kind()),
            })
        }
    };
    Ok(EvalResult::Bool(tri))
}

/// Evaluates a predicate to a [`Tri`]: `True` ⇒ the tuple is in `T+`,
/// `Maybe` ⇒ `T?`, `False` ⇒ `T−`.
pub fn eval_predicate(expr: &Expr<usize>, row: &Row) -> Result<Tri, TrappError> {
    eval(expr, row)?.as_tri()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ColumnRef;
    use std::sync::Arc;
    use trapp_storage::{ColumnDef, Schema};
    use trapp_types::{BoundedValue, ValueType};

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            ColumnDef::bounded_float("latency"),
            ColumnDef::bounded_float("bandwidth"),
            ColumnDef::exact("name", ValueType::Str),
            ColumnDef::exact("up", ValueType::Bool),
        ])
        .unwrap()
    }

    fn row(lat: (f64, f64), bw: (f64, f64)) -> Row {
        Row::new(
            &schema(),
            vec![
                BoundedValue::bounded(lat.0, lat.1).unwrap(),
                BoundedValue::bounded(bw.0, bw.1).unwrap(),
                BoundedValue::Exact(Value::Str("link-a".into())),
                BoundedValue::Exact(Value::Bool(true)),
            ],
        )
        .unwrap()
    }

    fn parse_like(op: BinaryOp, col: &str, k: f64) -> Expr<usize> {
        Expr::binary(
            op,
            Expr::Column(ColumnRef::bare(col)),
            Expr::Literal(Value::Float(k)),
        )
        .bind(&schema())
        .unwrap()
    }

    #[test]
    fn column_and_literal_eval() {
        let r = row((2.0, 4.0), (60.0, 70.0));
        let e = Expr::<usize>::Literal(Value::Float(5.0));
        assert_eq!(
            eval(&e, &r).unwrap(),
            EvalResult::Num(Interval::point(5.0).unwrap())
        );
        let c = Expr::Column(ColumnRef::bare("latency"))
            .bind(&schema())
            .unwrap();
        assert_eq!(
            eval(&c, &r).unwrap().as_interval().unwrap(),
            Interval::new(2.0, 4.0).unwrap()
        );
    }

    #[test]
    fn arithmetic_over_bounds() {
        let r = row((2.0, 4.0), (60.0, 70.0));
        // latency + bandwidth ∈ [62, 74]
        let e = Expr::binary(
            BinaryOp::Add,
            Expr::Column(ColumnRef::bare("latency")),
            Expr::Column(ColumnRef::bare("bandwidth")),
        )
        .bind(&schema())
        .unwrap();
        assert_eq!(
            eval(&e, &r).unwrap().as_interval().unwrap(),
            Interval::new(62.0, 74.0).unwrap()
        );
        // 2 * latency ∈ [4, 8]
        let e = Expr::binary(
            BinaryOp::Mul,
            Expr::Literal(Value::Float(2.0)),
            Expr::Column(ColumnRef::bare("latency")),
        )
        .bind(&schema())
        .unwrap();
        assert_eq!(
            eval(&e, &r).unwrap().as_interval().unwrap(),
            Interval::new(4.0, 8.0).unwrap()
        );
    }

    #[test]
    fn figure7_style_predicates() {
        // Tuple 1 of Figure 2: latency [2,4], bandwidth [60,70].
        let r = row((2.0, 4.0), (60.0, 70.0));
        // bandwidth > 50: certainly true.
        assert_eq!(
            eval_predicate(&parse_like(BinaryOp::Gt, "bandwidth", 50.0), &r).unwrap(),
            Tri::True
        );
        // latency > 10: certainly false.
        assert_eq!(
            eval_predicate(&parse_like(BinaryOp::Gt, "latency", 10.0), &r).unwrap(),
            Tri::False
        );
        // latency > 3: maybe.
        assert_eq!(
            eval_predicate(&parse_like(BinaryOp::Gt, "latency", 3.0), &r).unwrap(),
            Tri::Maybe
        );
    }

    #[test]
    fn conjunction_combines_certainty() {
        // Tuple 4 of Figure 2: latency [9,11], bandwidth [65,70]:
        // (bandwidth > 50) AND (latency < 10) = True AND Maybe = Maybe.
        let r = row((9.0, 11.0), (65.0, 70.0));
        let e = Expr::and(
            parse_like(BinaryOp::Gt, "bandwidth", 50.0),
            parse_like(BinaryOp::Lt, "latency", 10.0),
        );
        assert_eq!(eval_predicate(&e, &r).unwrap(), Tri::Maybe);
    }

    #[test]
    fn not_swaps_possible_and_certain() {
        let r = row((9.0, 11.0), (65.0, 70.0));
        let inner = parse_like(BinaryOp::Lt, "latency", 10.0); // Maybe
        let e = Expr::unary(UnaryOp::Not, inner);
        assert_eq!(eval_predicate(&e, &r).unwrap(), Tri::Maybe);
        let certain = parse_like(BinaryOp::Gt, "bandwidth", 50.0); // True
        let e = Expr::unary(UnaryOp::Not, certain);
        assert_eq!(eval_predicate(&e, &r).unwrap(), Tri::False);
    }

    #[test]
    fn string_and_bool_comparisons_are_definite() {
        let r = row((1.0, 2.0), (1.0, 2.0));
        let s = schema();
        let name_eq = Expr::binary(
            BinaryOp::Eq,
            Expr::Column(ColumnRef::bare("name")),
            Expr::Literal(Value::Str("link-a".into())),
        )
        .bind(&s)
        .unwrap();
        assert_eq!(eval_predicate(&name_eq, &r).unwrap(), Tri::True);
        let up_eq = Expr::binary(
            BinaryOp::Eq,
            Expr::Column(ColumnRef::bare("up")),
            Expr::Literal(Value::Bool(false)),
        )
        .bind(&s)
        .unwrap();
        assert_eq!(eval_predicate(&up_eq, &r).unwrap(), Tri::False);
        let name_lt = Expr::binary(
            BinaryOp::Lt,
            Expr::Column(ColumnRef::bare("name")),
            Expr::Literal(Value::Str("link-b".into())),
        )
        .bind(&s)
        .unwrap();
        assert_eq!(eval_predicate(&name_lt, &r).unwrap(), Tri::True);
    }

    #[test]
    fn type_errors_are_reported() {
        let r = row((1.0, 2.0), (1.0, 2.0));
        let s = schema();
        // name + 1 is a type error.
        let e = Expr::binary(
            BinaryOp::Add,
            Expr::Column(ColumnRef::bare("name")),
            Expr::Literal(Value::Float(1.0)),
        )
        .bind(&s)
        .unwrap();
        assert!(eval(&e, &r).is_err());
        // name = 1 is a type error too.
        let e = Expr::binary(
            BinaryOp::Eq,
            Expr::Column(ColumnRef::bare("name")),
            Expr::Literal(Value::Float(1.0)),
        )
        .bind(&s)
        .unwrap();
        assert!(eval(&e, &r).is_err());
    }

    #[test]
    fn division_by_zero_interval_is_error() {
        let r = row((-1.0, 1.0), (2.0, 3.0));
        let e = Expr::binary(
            BinaryOp::Div,
            Expr::Column(ColumnRef::bare("bandwidth")),
            Expr::Column(ColumnRef::bare("latency")),
        )
        .bind(&schema())
        .unwrap();
        assert_eq!(
            eval(&e, &r).unwrap_err(),
            TrappError::DivisionByZeroInterval
        );
    }
}
