//! Static type checking of expressions against a schema.
//!
//! Catching type errors before evaluation gives query authors positionless
//! but precise messages ("cannot compare STRING with FLOAT") and lets the
//! evaluators assume well-typed input on the hot path.

use trapp_storage::Schema;
use trapp_types::{TrappError, Value, ValueType};

use crate::ast::{BinaryOp, Expr, UnaryOp};

/// The static type of an expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExprType {
    /// Numeric (FLOAT or INT; both evaluate as real intervals).
    Num,
    /// String.
    Str,
    /// Boolean (three-valued at runtime).
    Bool,
}

impl std::fmt::Display for ExprType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExprType::Num => write!(f, "numeric"),
            ExprType::Str => write!(f, "string"),
            ExprType::Bool => write!(f, "boolean"),
        }
    }
}

fn type_of_value(v: &Value) -> ExprType {
    match v.value_type() {
        ValueType::Float | ValueType::Int => ExprType::Num,
        ValueType::Str => ExprType::Str,
        ValueType::Bool => ExprType::Bool,
    }
}

/// Infers and validates the type of a bound expression.
pub fn typecheck(expr: &Expr<usize>, schema: &Schema) -> Result<ExprType, TrappError> {
    match expr {
        Expr::Literal(v) => Ok(type_of_value(v)),
        Expr::Column(idx) => {
            let col = schema.column_at(*idx)?;
            Ok(match col.ty {
                ValueType::Float | ValueType::Int => ExprType::Num,
                ValueType::Str => ExprType::Str,
                ValueType::Bool => ExprType::Bool,
            })
        }
        Expr::Unary(UnaryOp::Neg, x) => {
            let t = typecheck(x, schema)?;
            if t != ExprType::Num {
                return Err(TrappError::TypeMismatch {
                    expected: "numeric operand for unary -".into(),
                    actual: t.to_string(),
                });
            }
            Ok(ExprType::Num)
        }
        Expr::Unary(UnaryOp::Not, x) => {
            let t = typecheck(x, schema)?;
            if t != ExprType::Bool {
                return Err(TrappError::TypeMismatch {
                    expected: "boolean operand for NOT".into(),
                    actual: t.to_string(),
                });
            }
            Ok(ExprType::Bool)
        }
        Expr::Binary(op, a, b) => {
            let ta = typecheck(a, schema)?;
            let tb = typecheck(b, schema)?;
            if op.is_arithmetic() {
                if ta != ExprType::Num || tb != ExprType::Num {
                    return Err(TrappError::TypeMismatch {
                        expected: format!("numeric operands for {op}"),
                        actual: format!("{ta} {op} {tb}"),
                    });
                }
                return Ok(ExprType::Num);
            }
            if op.is_logical() {
                if ta != ExprType::Bool || tb != ExprType::Bool {
                    return Err(TrappError::TypeMismatch {
                        expected: format!("boolean operands for {op}"),
                        actual: format!("{ta} {op} {tb}"),
                    });
                }
                return Ok(ExprType::Bool);
            }
            // Comparison: operand types must match; booleans only support
            // equality.
            if ta != tb {
                return Err(TrappError::TypeMismatch {
                    expected: format!("matching operand types for {op}"),
                    actual: format!("{ta} {op} {tb}"),
                });
            }
            if ta == ExprType::Bool && !matches!(op, BinaryOp::Eq | BinaryOp::Ne) {
                return Err(TrappError::TypeMismatch {
                    expected: "boolean comparisons are limited to = and <>".into(),
                    actual: format!("{ta} {op} {tb}"),
                });
            }
            Ok(ExprType::Bool)
        }
    }
}

/// Validates that `expr` is usable as a WHERE predicate (boolean).
pub fn typecheck_predicate(expr: &Expr<usize>, schema: &Schema) -> Result<(), TrappError> {
    match typecheck(expr, schema)? {
        ExprType::Bool => Ok(()),
        other => Err(TrappError::Plan(format!(
            "WHERE clause must be boolean, found {other} expression"
        ))),
    }
}

/// Validates that `expr` is usable as an aggregation argument (numeric).
pub fn typecheck_aggregand(expr: &Expr<usize>, schema: &Schema) -> Result<(), TrappError> {
    match typecheck(expr, schema)? {
        ExprType::Num => Ok(()),
        other => Err(TrappError::Plan(format!(
            "aggregation argument must be numeric, found {other} expression"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ColumnRef;
    use std::sync::Arc;
    use trapp_storage::{ColumnDef, Schema};

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            ColumnDef::bounded_float("x"),
            ColumnDef::exact("name", ValueType::Str),
            ColumnDef::exact("up", ValueType::Bool),
            ColumnDef::exact("n", ValueType::Int),
        ])
        .unwrap()
    }

    fn bind(e: Expr<ColumnRef>) -> Expr<usize> {
        e.bind(&schema()).unwrap()
    }
    fn col(name: &str) -> Expr<ColumnRef> {
        Expr::Column(ColumnRef::bare(name))
    }

    #[test]
    fn infers_basic_types() {
        let s = schema();
        assert_eq!(typecheck(&bind(col("x")), &s).unwrap(), ExprType::Num);
        assert_eq!(typecheck(&bind(col("name")), &s).unwrap(), ExprType::Str);
        assert_eq!(typecheck(&bind(col("up")), &s).unwrap(), ExprType::Bool);
        assert_eq!(typecheck(&bind(col("n")), &s).unwrap(), ExprType::Num);
    }

    #[test]
    fn arithmetic_requires_numbers() {
        let s = schema();
        let ok = bind(Expr::binary(BinaryOp::Add, col("x"), col("n")));
        assert_eq!(typecheck(&ok, &s).unwrap(), ExprType::Num);
        let bad = bind(Expr::binary(BinaryOp::Add, col("x"), col("name")));
        assert!(typecheck(&bad, &s).is_err());
        let neg_bad = bind(Expr::unary(UnaryOp::Neg, col("up")));
        assert!(typecheck(&neg_bad, &s).is_err());
    }

    #[test]
    fn comparisons_require_matching_types() {
        let s = schema();
        let ok = bind(Expr::binary(
            BinaryOp::Lt,
            col("x"),
            Expr::Literal(Value::Int(3)),
        ));
        assert_eq!(typecheck(&ok, &s).unwrap(), ExprType::Bool);
        let bad = bind(Expr::binary(BinaryOp::Lt, col("x"), col("name")));
        assert!(typecheck(&bad, &s).is_err());
        // bool ordering comparison rejected
        let bad = bind(Expr::binary(
            BinaryOp::Lt,
            col("up"),
            Expr::Literal(Value::Bool(true)),
        ));
        assert!(typecheck(&bad, &s).is_err());
        // bool equality accepted
        let ok = bind(Expr::binary(
            BinaryOp::Eq,
            col("up"),
            Expr::Literal(Value::Bool(true)),
        ));
        assert_eq!(typecheck(&ok, &s).unwrap(), ExprType::Bool);
    }

    #[test]
    fn logical_ops_require_booleans() {
        let s = schema();
        let cmp = Expr::binary(BinaryOp::Gt, col("x"), Expr::Literal(Value::Float(1.0)));
        let ok = bind(Expr::and(cmp.clone(), cmp.clone()));
        assert_eq!(typecheck(&ok, &s).unwrap(), ExprType::Bool);
        let bad = bind(Expr::and(cmp, col("x")));
        assert!(typecheck(&bad, &s).is_err());
        let not_bad = bind(Expr::unary(UnaryOp::Not, col("name")));
        assert!(typecheck(&not_bad, &s).is_err());
    }

    #[test]
    fn predicate_and_aggregand_validators() {
        let s = schema();
        let pred = bind(Expr::binary(
            BinaryOp::Gt,
            col("x"),
            Expr::Literal(Value::Float(1.0)),
        ));
        typecheck_predicate(&pred, &s).unwrap();
        assert!(typecheck_predicate(&bind(col("x")), &s).is_err());
        typecheck_aggregand(&bind(col("x")), &s).unwrap();
        assert!(typecheck_aggregand(&pred, &s).is_err());
        assert!(typecheck_aggregand(&bind(col("name")), &s).is_err());
    }
}
