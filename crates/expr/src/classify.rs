//! Partitioning tables into `T+`, `T?`, `T−` (§6, Appendix D).
//!
//! The classification drives every predicate-aware aggregate and
//! CHOOSE_REFRESH algorithm in the paper. It is conservative in exactly the
//! way Appendix D licenses: a tuple may land in `T?` when finer reasoning
//! would place it in `T+` or `T−` (correlated subexpressions), which costs
//! optimality but never correctness.

use trapp_storage::{Row, Table};
use trapp_types::{TrappError, Tri, TupleId};

use crate::ast::Expr;
use crate::eval::eval_predicate;

/// Which band a tuple fell into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Band {
    /// `T+`: certainly satisfies the predicate.
    Plus,
    /// `T?`: possibly satisfies the predicate.
    Question,
    /// `T−`: certainly does not satisfy the predicate.
    Minus,
}

impl Band {
    /// Maps a three-valued predicate result to a band.
    pub fn from_tri(t: Tri) -> Band {
        match t {
            Tri::True => Band::Plus,
            Tri::Maybe => Band::Question,
            Tri::False => Band::Minus,
        }
    }
}

/// The classification of a table against one predicate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Classification {
    /// Tuples certain to satisfy the predicate (`T+`).
    pub plus: Vec<TupleId>,
    /// Tuples that possibly satisfy it (`T?`).
    pub question: Vec<TupleId>,
    /// Tuples certain not to satisfy it (`T−`).
    pub minus: Vec<TupleId>,
}

impl Classification {
    /// A classification with every tuple in `T+` — what "no predicate"
    /// means to the aggregate algorithms (§5).
    pub fn all_plus(ids: impl IntoIterator<Item = TupleId>) -> Classification {
        Classification {
            plus: ids.into_iter().collect(),
            question: Vec::new(),
            minus: Vec::new(),
        }
    }

    /// `|T+|`.
    pub fn plus_count(&self) -> usize {
        self.plus.len()
    }

    /// `|T?|`.
    pub fn question_count(&self) -> usize {
        self.question.len()
    }

    /// Tuples in `T+ ∪ T?` — everything the bounded aggregates look at.
    pub fn plus_and_question(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.plus.iter().chain(self.question.iter()).copied()
    }

    /// The band of a given tuple, or `None` if it wasn't classified.
    pub fn band_of(&self, tid: TupleId) -> Option<Band> {
        if self.plus.contains(&tid) {
            Some(Band::Plus)
        } else if self.question.contains(&tid) {
            Some(Band::Question)
        } else if self.minus.contains(&tid) {
            Some(Band::Minus)
        } else {
            None
        }
    }

    /// Total number of classified tuples.
    pub fn len(&self) -> usize {
        self.plus.len() + self.question.len() + self.minus.len()
    }

    /// `true` if nothing was classified.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Classifies every tuple of `table` against `predicate`
/// (`None` ⇒ all tuples in `T+`).
pub fn classify_table(
    table: &Table,
    predicate: Option<&Expr<usize>>,
) -> Result<Classification, TrappError> {
    match predicate {
        None => Ok(Classification::all_plus(table.tuple_ids())),
        Some(pred) => classify_rows(table.scan(), pred),
    }
}

/// Classifies an arbitrary `(TupleId, &Row)` stream against a predicate.
pub fn classify_rows<'a>(
    rows: impl Iterator<Item = (TupleId, &'a Row)>,
    predicate: &Expr<usize>,
) -> Result<Classification, TrappError> {
    let mut out = Classification::default();
    for (tid, row) in rows {
        match Band::from_tri(eval_predicate(predicate, row)?) {
            Band::Plus => out.plus.push(tid),
            Band::Question => out.question.push(tid),
            Band::Minus => out.minus.push(tid),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinaryOp, ColumnRef};
    use trapp_storage::{ColumnDef, Schema, Table};
    use trapp_types::{BoundedValue, Value};

    /// Builds the Figure 2 fixture columns needed for classification tests:
    /// (latency, bandwidth, traffic) bounds for tuples 1..=6.
    fn figure2_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::bounded_float("latency"),
            ColumnDef::bounded_float("bandwidth"),
            ColumnDef::bounded_float("traffic"),
        ])
        .unwrap();
        let mut t = Table::new("links", schema);
        type MetricBounds = ((f64, f64), (f64, f64), (f64, f64));
        let rows: [MetricBounds; 6] = [
            ((2.0, 4.0), (60.0, 70.0), (95.0, 105.0)),
            ((5.0, 7.0), (45.0, 60.0), (110.0, 120.0)),
            ((12.0, 16.0), (55.0, 70.0), (95.0, 110.0)),
            ((9.0, 11.0), (65.0, 70.0), (120.0, 145.0)),
            ((8.0, 11.0), (40.0, 55.0), (90.0, 110.0)),
            ((4.0, 6.0), (45.0, 60.0), (90.0, 105.0)),
        ];
        for (lat, bw, tr) in rows {
            t.insert(vec![
                BoundedValue::bounded(lat.0, lat.1).unwrap(),
                BoundedValue::bounded(bw.0, bw.1).unwrap(),
                BoundedValue::bounded(tr.0, tr.1).unwrap(),
            ])
            .unwrap();
        }
        t
    }

    fn cmp(col: &str, op: BinaryOp, k: f64) -> Expr<ColumnRef> {
        Expr::binary(
            op,
            Expr::Column(ColumnRef::bare(col)),
            Expr::Literal(Value::Float(k)),
        )
    }

    fn ids(v: &[u64]) -> Vec<TupleId> {
        v.iter().copied().map(TupleId::new).collect()
    }

    /// Figure 7, column 1: (bandwidth > 50) AND (latency < 10), before
    /// refresh: 1→T+, 3→T−, {2,4,5,6}→T?.
    #[test]
    fn figure7_conjunction_before_refresh() {
        let t = figure2_table();
        let pred = Expr::and(
            cmp("bandwidth", BinaryOp::Gt, 50.0),
            cmp("latency", BinaryOp::Lt, 10.0),
        )
        .bind(t.schema())
        .unwrap();
        let c = classify_table(&t, Some(&pred)).unwrap();
        assert_eq!(c.plus, ids(&[1]));
        assert_eq!(c.question, ids(&[2, 4, 5, 6]));
        assert_eq!(c.minus, ids(&[3]));
    }

    /// Figure 7, column 2: latency > 10, before refresh:
    /// 3→T+, {4,5}→T?, {1,2,6}→T−.
    #[test]
    fn figure7_latency_before_refresh() {
        let t = figure2_table();
        let pred = cmp("latency", BinaryOp::Gt, 10.0).bind(t.schema()).unwrap();
        let c = classify_table(&t, Some(&pred)).unwrap();
        assert_eq!(c.plus, ids(&[3]));
        assert_eq!(c.question, ids(&[4, 5]));
        assert_eq!(c.minus, ids(&[1, 2, 6]));
    }

    /// Figure 7, column 3: traffic > 100, before refresh:
    /// {2,4}→T+, {1,3,5,6}→T?.
    #[test]
    fn figure7_traffic_before_refresh() {
        let t = figure2_table();
        let pred = cmp("traffic", BinaryOp::Gt, 100.0)
            .bind(t.schema())
            .unwrap();
        let c = classify_table(&t, Some(&pred)).unwrap();
        assert_eq!(c.plus, ids(&[2, 4]));
        assert_eq!(c.question, ids(&[1, 3, 5, 6]));
        assert!(c.minus.is_empty());
    }

    /// Figure 7 "after refresh" columns: with exact values installed the
    /// classification is definite (no T?).
    #[test]
    fn figure7_after_refresh() {
        let mut t = figure2_table();
        let precise: [(f64, f64, f64); 6] = [
            (3.0, 61.0, 98.0),
            (7.0, 53.0, 116.0),
            (13.0, 62.0, 105.0),
            (9.0, 68.0, 127.0),
            (11.0, 50.0, 95.0),
            (5.0, 45.0, 103.0),
        ];
        for (i, (lat, bw, tr)) in precise.iter().enumerate() {
            let tid = TupleId::new(i as u64 + 1);
            t.refresh_cell(tid, 0, *lat).unwrap();
            t.refresh_cell(tid, 1, *bw).unwrap();
            t.refresh_cell(tid, 2, *tr).unwrap();
        }
        // (bandwidth > 50) AND (latency < 10): after → {1,2,4} T+, rest T−.
        let pred = Expr::and(
            cmp("bandwidth", BinaryOp::Gt, 50.0),
            cmp("latency", BinaryOp::Lt, 10.0),
        )
        .bind(t.schema())
        .unwrap();
        let c = classify_table(&t, Some(&pred)).unwrap();
        assert_eq!(c.plus, ids(&[1, 2, 4]));
        assert!(c.question.is_empty());
        assert_eq!(c.minus, ids(&[3, 5, 6]));
        // latency > 10: after → {3,5} T+.
        let pred = cmp("latency", BinaryOp::Gt, 10.0).bind(t.schema()).unwrap();
        let c = classify_table(&t, Some(&pred)).unwrap();
        assert_eq!(c.plus, ids(&[3, 5]));
        assert!(c.question.is_empty());
        // traffic > 100: after → {2,3,4,6} T+.
        let pred = cmp("traffic", BinaryOp::Gt, 100.0)
            .bind(t.schema())
            .unwrap();
        let c = classify_table(&t, Some(&pred)).unwrap();
        assert_eq!(c.plus, ids(&[2, 3, 4, 6]));
        assert_eq!(c.minus, ids(&[1, 5]));
    }

    #[test]
    fn no_predicate_is_all_plus() {
        let t = figure2_table();
        let c = classify_table(&t, None).unwrap();
        assert_eq!(c.plus_count(), 6);
        assert_eq!(c.question_count(), 0);
        assert_eq!(c.band_of(TupleId::new(1)), Some(Band::Plus));
        assert_eq!(c.band_of(TupleId::new(99)), None);
    }

    #[test]
    fn plus_and_question_iterates_both() {
        let t = figure2_table();
        let pred = cmp("traffic", BinaryOp::Gt, 100.0)
            .bind(t.schema())
            .unwrap();
        let c = classify_table(&t, Some(&pred)).unwrap();
        let all: Vec<u64> = c.plus_and_question().map(|t| t.raw()).collect();
        assert_eq!(all, vec![2, 4, 1, 3, 5, 6]);
        assert_eq!(c.len(), 6);
    }
}
