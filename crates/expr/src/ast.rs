//! The expression tree.
//!
//! `Expr<C>` is generic over the column representation `C`:
//!
//! * the SQL parser produces `Expr<ColumnRef>` (names, optionally
//!   table-qualified);
//! * binding against a schema produces `Expr<usize>` (column positions),
//!   which is what the evaluators consume.

use std::fmt;

use trapp_types::{TrappError, Value};

/// A possibly table-qualified column name, as written in a query.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Optional table qualifier (`links.latency`).
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified reference.
    pub fn bare(column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// A table-qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Binary operators, in SQL precedence groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinaryOp {
    /// `true` for `+ - * /`.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div
        )
    }

    /// `true` for the six comparisons.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }

    /// `true` for `AND` / `OR`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Logical NOT.
    Not,
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnaryOp::Neg => write!(f, "-"),
            UnaryOp::Not => write!(f, "NOT"),
        }
    }
}

/// An expression tree over columns of type `C`.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr<C> {
    /// A literal constant.
    Literal(Value),
    /// A column reference.
    Column(C),
    /// A unary operation.
    Unary(UnaryOp, Box<Expr<C>>),
    /// A binary operation.
    Binary(BinaryOp, Box<Expr<C>>, Box<Expr<C>>),
}

impl<C> Expr<C> {
    /// Convenience: `lhs op rhs`.
    pub fn binary(op: BinaryOp, lhs: Expr<C>, rhs: Expr<C>) -> Expr<C> {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience: `op x`.
    pub fn unary(op: UnaryOp, x: Expr<C>) -> Expr<C> {
        Expr::Unary(op, Box::new(x))
    }

    /// Convenience: `a AND b`.
    pub fn and(lhs: Expr<C>, rhs: Expr<C>) -> Expr<C> {
        Expr::binary(BinaryOp::And, lhs, rhs)
    }

    /// Convenience: `a OR b`.
    pub fn or(lhs: Expr<C>, rhs: Expr<C>) -> Expr<C> {
        Expr::binary(BinaryOp::Or, lhs, rhs)
    }

    /// Rewrites every column reference with `f`, preserving structure.
    pub fn map_columns<D, E>(&self, f: &mut impl FnMut(&C) -> Result<D, E>) -> Result<Expr<D>, E> {
        Ok(match self {
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Column(c) => Expr::Column(f(c)?),
            Expr::Unary(op, x) => Expr::Unary(*op, Box::new(x.map_columns(f)?)),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(a.map_columns(f)?),
                Box::new(b.map_columns(f)?),
            ),
        })
    }

    /// Collects every column reference (with duplicates, in visit order).
    pub fn columns(&self) -> Vec<&C> {
        let mut out = Vec::new();
        self.visit_columns(&mut |c| out.push(c));
        out
    }

    fn visit_columns<'a>(&'a self, f: &mut impl FnMut(&'a C)) {
        match self {
            Expr::Literal(_) => {}
            Expr::Column(c) => f(c),
            Expr::Unary(_, x) => x.visit_columns(f),
            Expr::Binary(_, a, b) => {
                a.visit_columns(f);
                b.visit_columns(f);
            }
        }
    }
}

impl Expr<ColumnRef> {
    /// Binds named columns to positions in `schema`.
    pub fn bind(&self, schema: &trapp_storage::Schema) -> Result<Expr<usize>, TrappError> {
        self.map_columns(&mut |c: &ColumnRef| schema.column_index(&c.column))
    }
}

impl<C: fmt::Display> fmt::Display for Expr<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Unary(UnaryOp::Neg, x) => {
                let inner = x.to_string();
                if inner.starts_with('-') {
                    // Avoid emitting `--`, which SQL lexes as a comment
                    // (negating a negative literal, or a nested negation).
                    write!(f, "(- {inner})")
                } else {
                    write!(f, "(-{inner})")
                }
            }
            Expr::Unary(UnaryOp::Not, x) => write!(f, "(NOT {x})"),
            Expr::Binary(op, a, b) => write!(f, "({a} {op} {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trapp_storage::{ColumnDef, Schema};

    fn sample() -> Expr<ColumnRef> {
        // (bandwidth > 50) AND (latency < 10)
        Expr::and(
            Expr::binary(
                BinaryOp::Gt,
                Expr::Column(ColumnRef::bare("bandwidth")),
                Expr::Literal(Value::Float(50.0)),
            ),
            Expr::binary(
                BinaryOp::Lt,
                Expr::Column(ColumnRef::bare("latency")),
                Expr::Literal(Value::Float(10.0)),
            ),
        )
    }

    #[test]
    fn display_is_parenthesized() {
        assert_eq!(
            sample().to_string(),
            "((bandwidth > 50) AND (latency < 10))"
        );
    }

    #[test]
    fn bind_resolves_positions() {
        let schema = Schema::new(vec![
            ColumnDef::bounded_float("latency"),
            ColumnDef::bounded_float("bandwidth"),
        ])
        .unwrap();
        let bound = sample().bind(&schema).unwrap();
        let cols = bound.columns();
        assert_eq!(cols, vec![&1usize, &0usize]);
        // Unknown column fails with its name.
        let bad = Expr::Column(ColumnRef::bare("nope")).bind(&schema);
        assert!(bad.unwrap_err().to_string().contains("nope"));
    }

    #[test]
    fn op_class_predicates() {
        assert!(BinaryOp::Add.is_arithmetic());
        assert!(BinaryOp::Le.is_comparison());
        assert!(BinaryOp::And.is_logical());
        assert!(!BinaryOp::And.is_comparison());
    }
}
