//! # trapp-expr
//!
//! Expressions over bounded data and the `Possible`/`Certain` machinery of
//! §6 / Appendix D of the TRAPP paper.
//!
//! A selection predicate evaluated over *bounded* tuples cannot always be
//! decided: a tuple whose `latency` is known only to lie in `[9, 11]` may or
//! may not satisfy `latency > 10`. The paper partitions a table into
//!
//! * `T+` — tuples **certain** to satisfy the predicate,
//! * `T?` — tuples that **possibly** satisfy it,
//! * `T−` — tuples that certainly do not,
//!
//! by translating the predicate with the `Certain(·)` and `Possible(·)`
//! transformations of Figure 8. This crate realises those transformations as
//! strong-Kleene three-valued evaluation over interval-valued expressions:
//!
//! * [`ast::Expr`] — a typed expression tree (literals, column references,
//!   arithmetic, comparisons, boolean connectives), generic over the column
//!   representation so the same tree type serves parsed (named) and bound
//!   (positional) forms;
//! * [`mod@eval`] — interval/three-valued evaluation against a [`trapp_storage::Row`];
//! * [`classify`] — whole-table partitioning into `T+ / T? / T−`;
//! * [`refine`] — the Appendix D refinement that shrinks a `T?` tuple's
//!   bound on the aggregation column using restrictions implied by the
//!   predicate itself;
//! * [`mod@typecheck`] — static validation producing clear errors before any
//!   evaluation happens.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod ast;
pub mod classify;
pub mod eval;
pub mod refine;
pub mod typecheck;

pub use ast::{BinaryOp, ColumnRef, Expr, UnaryOp};
pub use classify::{classify_rows, classify_table, Band, Classification};
pub use eval::{eval, EvalResult};
pub use refine::implied_interval;
pub use typecheck::{typecheck, ExprType};
