//! Property tests for bound functions: width monotonicity, containment up
//! to the escape time, and the refresh-protocol invariant that a value
//! inside the bound never triggers a violation.

use proptest::prelude::*;
use trapp_bounds::{AdaptiveWidth, BoundFunction, BoundShape};

fn arb_shape() -> impl Strategy<Value = BoundShape> {
    prop_oneof![
        Just(BoundShape::Constant),
        Just(BoundShape::Sqrt),
        Just(BoundShape::Linear),
    ]
}

proptest! {
    #[test]
    fn width_is_monotone_and_zero_at_refresh(
        v in -1e6f64..1e6,
        w in 0.0f64..100.0,
        tr in 0.0f64..1e4,
        shape in arb_shape(),
        dts in proptest::collection::vec(0.0f64..1e4, 1..20),
    ) {
        let b = BoundFunction::new(v, w, tr, shape).unwrap();
        prop_assert_eq!(b.width_at(tr), 0.0);
        let mut sorted = dts.clone();
        sorted.sort_by(f64::total_cmp);
        let mut prev = 0.0;
        for dt in sorted {
            let width = b.width_at(tr + dt);
            prop_assert!(width >= prev - 1e-12, "width shrank at dt={dt}");
            prev = width;
            // The interval is always centered on V(Tr).
            let iv = b.interval_at(tr + dt);
            prop_assert!((iv.midpoint() - v).abs() <= 1e-6 * (1.0 + v.abs()));
        }
    }

    /// Any value within the interval at time t does not violate; any value
    /// outside does.
    #[test]
    fn violation_agrees_with_interval(
        v in -1e3f64..1e3,
        w in 0.01f64..50.0,
        dt in 0.0f64..1e3,
        frac in -2.0f64..3.0,
        shape in arb_shape(),
    ) {
        let b = BoundFunction::new(v, w, 0.0, shape).unwrap();
        let iv = b.interval_at(dt);
        let probe = iv.lo() + frac * iv.width();
        if iv.width() > 0.0 {
            prop_assert_eq!(
                b.violated_by(probe, dt),
                !iv.contains(probe),
                "probe {} vs {}",
                probe,
                iv
            );
        }
    }

    /// escape_time: before it the value is contained, at/after it (for
    /// growing shapes) the value is exactly on or inside the boundary.
    #[test]
    fn escape_time_brackets_containment(
        v in -1e3f64..1e3,
        w in 0.01f64..50.0,
        offset in 0.01f64..100.0,
        shape in arb_shape(),
    ) {
        let b = BoundFunction::new(v, w, 0.0, shape).unwrap();
        let target = v + offset;
        match b.escape_time(target, 0.0) {
            None => {
                // Never escapes: must be contained at an arbitrary late time
                // (constant shape with offset within the band, or offset 0).
                prop_assert!(!b.violated_by(target, 1e9));
            }
            Some(t) => match shape {
                // Constant band: Some(t) means the value is already beyond
                // the ±W band — violated from t onwards.
                BoundShape::Constant => {
                    prop_assert!(b.violated_by(target, t + 1.0));
                }
                // Growing shapes: at the escape time the value sits on the
                // closed boundary. √(x²) can round one ulp below x, so probe
                // an epsilon *after* t (the bound only widens); shortly
                // before t the bound must still be too narrow.
                _ => {
                    let just_after = t.max(1e-9) * (1.0 + 1e-9) + 1e-12;
                    prop_assert!(!b.violated_by(target, just_after));
                    if t > 1e-6 {
                        prop_assert!(b.violated_by(target, t * 0.99));
                    }
                }
            },
        }
    }

    /// The adaptive controller always stays within its clamp range and
    /// moves in the right direction.
    #[test]
    fn adaptive_width_stays_clamped(
        initial in 0.01f64..100.0,
        signals in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut a = AdaptiveWidth::with_defaults(initial).unwrap();
        let (min_w, max_w) = (initial / 64.0, initial * 64.0);
        for escape in signals {
            let before = a.width();
            if escape {
                a.on_value_initiated_refresh();
                prop_assert!(a.width() >= before - 1e-12);
            } else {
                a.on_query_initiated_refresh();
                prop_assert!(a.width() <= before + 1e-12);
            }
            prop_assert!(a.width() >= min_w - 1e-12 && a.width() <= max_w + 1e-12);
        }
    }
}
