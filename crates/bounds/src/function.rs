//! Bound functions `[L(T), H(T)]` and their compact wire encoding.
//!
//! §3.2/Appendix A: a bound function pair is encoded by just two numbers —
//! the value at refresh time `V(Tᵣ)` and a width parameter `W` — plus the
//! refresh timestamp and a statically chosen *shape* `f(T)`:
//!
//! ```text
//! L(T) = V(Tᵣ) − W · f(T − Tᵣ)
//! H(T) = V(Tᵣ) + W · f(T − Tᵣ)
//! ```
//!
//! The paper argues for `f(T) = √T` under a random-walk update model; this
//! module also offers constant and linear shapes for comparison (the §8.3
//! "specialized bound functions" direction) and for applications — like the
//! static Figure 2 fixture — where bounds do not change between refreshes.

use std::fmt;

use trapp_types::{Interval, TrappError};

/// The statically chosen growth shape `f(Δt)` of a bound function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BoundShape {
    /// `f(Δt) = 1` for Δt > 0 (a fixed ±W band, 0 at the refresh instant).
    ///
    /// This is the Quasi-copies-style static tolerance; useful as a baseline.
    Constant,
    /// `f(Δt) = √Δt` — the paper's recommended shape (Appendix A), tight for
    /// random-walk updates by Chebyshev's inequality.
    Sqrt,
    /// `f(Δt) = Δt` — worst-case drift for values with bounded rate of
    /// change (the Moving-Objects-Database setting).
    Linear,
}

impl BoundShape {
    /// Evaluates the shape at elapsed time `dt ≥ 0`.
    #[inline]
    pub fn eval(self, dt: f64) -> f64 {
        debug_assert!(dt >= 0.0);
        match self {
            BoundShape::Constant => {
                if dt > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            BoundShape::Sqrt => dt.sqrt(),
            BoundShape::Linear => dt,
        }
    }
}

impl fmt::Display for BoundShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundShape::Constant => write!(f, "constant"),
            BoundShape::Sqrt => write!(f, "sqrt"),
            BoundShape::Linear => write!(f, "linear"),
        }
    }
}

/// A concrete bound function installed by one refresh: the cache-side state
/// for one replicated object.
///
/// The wire encoding is exactly the two numbers the paper calls out
/// (`value_at_refresh`, `width_param`) plus `refresh_time` when clocks are
/// not implicitly synchronized (§ Appendix A, "if the message-passing delay
/// is non-negligible").
///
/// ```
/// use trapp_bounds::{BoundFunction, BoundShape};
/// let b = BoundFunction::new(100.0, 2.0, 16.0, BoundShape::Sqrt).unwrap();
/// let iv = b.interval_at(25.0); // 9 time units later: ±2·√9 = ±6
/// assert_eq!((iv.lo(), iv.hi()), (94.0, 106.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BoundFunction {
    /// `V(Tᵣ)`: the master value at refresh time.
    value_at_refresh: f64,
    /// `W ≥ 0`: the width parameter chosen by the source.
    width_param: f64,
    /// `Tᵣ`: when the refresh happened (same clock as queries).
    refresh_time: f64,
    /// `f`: the growth shape.
    shape: BoundShape,
}

impl BoundFunction {
    /// Creates a bound function; rejects NaN and negative `width_param`.
    pub fn new(
        value_at_refresh: f64,
        width_param: f64,
        refresh_time: f64,
        shape: BoundShape,
    ) -> Result<BoundFunction, TrappError> {
        if value_at_refresh.is_nan() || refresh_time.is_nan() {
            return Err(TrappError::NanValue);
        }
        if width_param.is_nan() || width_param < 0.0 {
            return Err(TrappError::InvalidCost(width_param));
        }
        Ok(BoundFunction {
            value_at_refresh,
            width_param,
            refresh_time,
            shape,
        })
    }

    /// A zero-width bound pinned at `value` forever (exact replication).
    pub fn exact(value: f64, refresh_time: f64) -> Result<BoundFunction, TrappError> {
        BoundFunction::new(value, 0.0, refresh_time, BoundShape::Constant)
    }

    /// `V(Tᵣ)`.
    pub fn value_at_refresh(&self) -> f64 {
        self.value_at_refresh
    }

    /// `W`.
    pub fn width_param(&self) -> f64 {
        self.width_param
    }

    /// `Tᵣ`.
    pub fn refresh_time(&self) -> f64 {
        self.refresh_time
    }

    /// The growth shape.
    pub fn shape(&self) -> BoundShape {
        self.shape
    }

    /// Evaluates `[L(T), H(T)]` at time `now`.
    ///
    /// Times before the refresh evaluate as the refresh instant (zero
    /// width) — the bound is simply not defined earlier, and clamping keeps
    /// accidental clock skew from producing inverted intervals.
    pub fn interval_at(&self, now: f64) -> Interval {
        let dt = (now - self.refresh_time).max(0.0);
        let half = self.width_param * self.shape.eval(dt);
        Interval::new_unchecked(self.value_at_refresh - half, self.value_at_refresh + half)
    }

    /// The bound width `H(T) − L(T)` at time `now`.
    pub fn width_at(&self, now: f64) -> f64 {
        2.0 * self.width_param * self.shape.eval((now - self.refresh_time).max(0.0))
    }

    /// `true` if `value` violates the bound at time `now` — the condition
    /// that obligates the source to send a value-initiated refresh (§3.1).
    pub fn violated_by(&self, value: f64, now: f64) -> bool {
        !self.interval_at(now).contains(value)
    }

    /// The earliest time `t ≥ now` at which `value` would escape the bound
    /// if the master value stayed constant, or `None` if it never escapes
    /// (inside a constant band, or `value == V(Tᵣ)`).
    ///
    /// Sources use this for *pre-refresh* scheduling (§8.3): a value sitting
    /// close to the edge of its bound is a good piggy-backing candidate.
    pub fn escape_time(&self, value: f64, now: f64) -> Option<f64> {
        let dev = (value - self.value_at_refresh).abs();
        if dev == 0.0 {
            return None;
        }
        if self.width_param == 0.0 {
            return Some(now.max(self.refresh_time));
        }
        let needed = dev / self.width_param; // f(dt) < needed keeps us inside
        let dt = match self.shape {
            BoundShape::Constant => {
                // Inside the ±W band the value never escapes; outside it is
                // already out for any dt > 0.
                if needed <= 1.0 {
                    return None;
                } else {
                    return Some(now.max(self.refresh_time));
                }
            }
            BoundShape::Sqrt => needed * needed,
            BoundShape::Linear => needed,
        };
        let t = self.refresh_time + dt;
        // Escape is the first instant where f(dt) ≤ needed stops holding;
        // at t exactly, dev == half-width (still contained), so escape is
        // any time strictly before t only if already violated.
        Some(t.max(now))
    }
}

impl fmt::Display for BoundFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ± {}·{}(T−{})",
            self.value_at_refresh, self.width_param, self.shape, self.refresh_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_width_at_refresh_instant() {
        for shape in [BoundShape::Constant, BoundShape::Sqrt, BoundShape::Linear] {
            let b = BoundFunction::new(50.0, 3.0, 10.0, shape).unwrap();
            let iv = b.interval_at(10.0);
            assert_eq!(iv.lo(), 50.0);
            assert_eq!(iv.hi(), 50.0);
        }
    }

    #[test]
    fn sqrt_shape_growth() {
        let b = BoundFunction::new(0.0, 2.0, 0.0, BoundShape::Sqrt).unwrap();
        assert_eq!(b.width_at(1.0), 4.0); // 2·2·√1
        assert_eq!(b.width_at(4.0), 8.0); // 2·2·√4
        assert_eq!(b.width_at(9.0), 12.0);
        // Sub-linear: doubling time multiplies width by √2.
        let w1 = b.width_at(100.0);
        let w2 = b.width_at(200.0);
        assert!((w2 / w1 - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn constant_and_linear_shapes() {
        let c = BoundFunction::new(10.0, 5.0, 0.0, BoundShape::Constant).unwrap();
        assert_eq!(c.width_at(0.001), 10.0);
        assert_eq!(c.width_at(1e9), 10.0);
        let l = BoundFunction::new(10.0, 0.5, 0.0, BoundShape::Linear).unwrap();
        assert_eq!(l.width_at(4.0), 4.0);
    }

    #[test]
    fn violation_detection() {
        let b = BoundFunction::new(100.0, 1.0, 0.0, BoundShape::Sqrt).unwrap();
        // at t=4, bound = [98, 102]
        assert!(!b.violated_by(101.9, 4.0));
        assert!(b.violated_by(102.1, 4.0));
        assert!(b.violated_by(97.9, 4.0));
        // the same value is fine later (bound widened)
        assert!(!b.violated_by(102.1, 9.0));
    }

    #[test]
    fn clock_skew_clamped() {
        let b = BoundFunction::new(7.0, 2.0, 100.0, BoundShape::Sqrt).unwrap();
        let iv = b.interval_at(99.0); // "before" the refresh
        assert!(iv.is_point());
        assert_eq!(iv.lo(), 7.0);
    }

    #[test]
    fn escape_time_sqrt() {
        let b = BoundFunction::new(0.0, 2.0, 0.0, BoundShape::Sqrt).unwrap();
        // value 6 escapes when 2·√t = 6 → t = 9.
        let t = b.escape_time(6.0, 0.0).unwrap();
        assert!((t - 9.0).abs() < 1e-12);
        assert!(!b.violated_by(6.0, 9.0)); // contained exactly at the edge
        assert!(b.violated_by(6.0, 8.9));
        assert_eq!(b.escape_time(0.0, 5.0), None);
    }

    #[test]
    fn escape_time_constant_band() {
        let b = BoundFunction::new(0.0, 5.0, 0.0, BoundShape::Constant).unwrap();
        assert_eq!(b.escape_time(4.0, 1.0), None); // inside the band forever
        assert_eq!(b.escape_time(6.0, 1.0), Some(1.0)); // outside already
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(BoundFunction::new(f64::NAN, 1.0, 0.0, BoundShape::Sqrt).is_err());
        assert!(BoundFunction::new(0.0, -1.0, 0.0, BoundShape::Sqrt).is_err());
        assert!(BoundFunction::new(0.0, f64::NAN, 0.0, BoundShape::Sqrt).is_err());
    }

    #[test]
    fn exact_function_never_widens() {
        let b = BoundFunction::exact(42.0, 0.0).unwrap();
        assert_eq!(b.width_at(1e12), 0.0);
        assert!(!b.violated_by(42.0, 1e12));
        assert!(b.violated_by(42.0001, 1.0));
    }
}
