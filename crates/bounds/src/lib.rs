//! # trapp-bounds
//!
//! Time-parameterized bound functions for TRAPP caches (§3.2 and Appendix A
//! of the paper).
//!
//! When a source refreshes a cache's copy of object `Oᵢ` at time `Tᵣ`, it
//! does not send a static range: it sends a pair of **bound functions**
//! `[Lᵢ(T), Hᵢ(T)]` with `Lᵢ(Tᵣ) = Hᵢ(Tᵣ) = Vᵢ(Tᵣ)` — zero width at refresh
//! time, diverging as time passes. The source guarantees
//! `Lᵢ(T) ≤ Vᵢ(T) ≤ Hᵢ(T)` at all times, issuing a *value-initiated refresh*
//! the moment the master value escapes.
//!
//! Appendix A models updates as a random walk and derives (via Chebyshev's
//! inequality) that a bound containing the value with fixed probability grows
//! like `√(T − Tᵣ)`. This crate provides:
//!
//! * [`BoundFunction`] — the `(V(Tᵣ), W, shape)` encoding the paper proposes,
//!   with square-root, constant, and linear shapes;
//! * [`AdaptiveWidth`] — the run-time width-parameter controller sketched in
//!   Appendix A (widen on value-initiated refreshes, narrow on
//!   query-initiated ones);
//! * [`walk`] — the random-walk/Chebyshev width mathematics.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod adaptive;
pub mod function;
pub mod walk;

pub use adaptive::AdaptiveWidth;
pub use function::{BoundFunction, BoundShape};
