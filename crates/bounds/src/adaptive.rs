//! Adaptive width-parameter control (Appendix A).
//!
//! Choosing the width parameter `W` trades off two failure modes:
//!
//! * **too narrow** → the master value escapes often → many *value-initiated*
//!   refreshes (update-driven load);
//! * **too wide** → queries cannot meet their precision constraints from
//!   cache → many *query-initiated* refreshes (query-driven load).
//!
//! The paper's proposed strategy is multiplicative feedback: widen `W` on
//! every value-initiated refresh, narrow it on every query-initiated one.
//! [`AdaptiveWidth`] implements exactly that, with clamping and statistics so
//! the ablation experiment (ABL-2) can compare it against fixed widths.

use std::fmt;

use trapp_types::TrappError;

/// Multiplicative-feedback controller for one object's width parameter `W`.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct AdaptiveWidth {
    width: f64,
    grow: f64,
    shrink: f64,
    min_width: f64,
    max_width: f64,
    value_initiated: u64,
    query_initiated: u64,
}

impl AdaptiveWidth {
    /// Creates a controller starting at `initial`, growing by `grow` (> 1)
    /// on value-initiated refreshes and shrinking by `shrink` (in (0, 1)) on
    /// query-initiated refreshes, clamped to `[min_width, max_width]`.
    pub fn new(
        initial: f64,
        grow: f64,
        shrink: f64,
        min_width: f64,
        max_width: f64,
    ) -> Result<AdaptiveWidth, TrappError> {
        for v in [initial, grow, shrink, min_width, max_width] {
            if v.is_nan() {
                return Err(TrappError::NanValue);
            }
        }
        if grow <= 1.0 {
            return Err(TrappError::Unsupported(format!(
                "grow factor must exceed 1, got {grow}"
            )));
        }
        if shrink <= 0.0 || shrink >= 1.0 {
            return Err(TrappError::Unsupported(format!(
                "shrink factor must lie in (0, 1), got {shrink}"
            )));
        }
        if min_width <= 0.0 || min_width > max_width {
            return Err(TrappError::Unsupported(format!(
                "need 0 < min_width ({min_width}) <= max_width ({max_width})"
            )));
        }
        Ok(AdaptiveWidth {
            width: initial.clamp(min_width, max_width),
            grow,
            shrink,
            min_width,
            max_width,
            value_initiated: 0,
            query_initiated: 0,
        })
    }

    /// A controller with the defaults used by the experiments:
    /// start at `initial`, ×2 on escape, ×0.7 on query refresh,
    /// clamped to `[initial/64, initial·64]`.
    pub fn with_defaults(initial: f64) -> Result<AdaptiveWidth, TrappError> {
        if initial.is_nan() || initial <= 0.0 {
            return Err(TrappError::InvalidCost(initial));
        }
        AdaptiveWidth::new(initial, 2.0, 0.7, initial / 64.0, initial * 64.0)
    }

    /// Current width parameter `W` to install on the next refresh.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Signal: the master value escaped the bound (bound was too narrow).
    pub fn on_value_initiated_refresh(&mut self) {
        self.value_initiated += 1;
        self.width = (self.width * self.grow).min(self.max_width);
    }

    /// Signal: a query had to refresh this object (bound was too wide).
    pub fn on_query_initiated_refresh(&mut self) {
        self.query_initiated += 1;
        self.width = (self.width * self.shrink).max(self.min_width);
    }

    /// Total value-initiated refresh signals observed.
    pub fn value_initiated_count(&self) -> u64 {
        self.value_initiated
    }

    /// Total query-initiated refresh signals observed.
    pub fn query_initiated_count(&self) -> u64 {
        self.query_initiated
    }

    /// Total refreshes of both kinds — the quantity the controller tries to
    /// minimize (Appendix A).
    pub fn total_refreshes(&self) -> u64 {
        self.value_initiated + self.query_initiated
    }
}

impl fmt::Display for AdaptiveWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "W={:.4} (value-initiated: {}, query-initiated: {})",
            self.width, self.value_initiated, self.query_initiated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widens_on_escapes_and_narrows_on_queries() {
        let mut a = AdaptiveWidth::new(1.0, 2.0, 0.5, 0.01, 100.0).unwrap();
        a.on_value_initiated_refresh();
        assert_eq!(a.width(), 2.0);
        a.on_value_initiated_refresh();
        assert_eq!(a.width(), 4.0);
        a.on_query_initiated_refresh();
        assert_eq!(a.width(), 2.0);
        assert_eq!(a.total_refreshes(), 3);
    }

    #[test]
    fn clamps_at_both_ends() {
        let mut a = AdaptiveWidth::new(1.0, 10.0, 0.1, 0.5, 2.0).unwrap();
        a.on_value_initiated_refresh();
        assert_eq!(a.width(), 2.0); // hit max
        a.on_query_initiated_refresh();
        a.on_query_initiated_refresh();
        a.on_query_initiated_refresh();
        assert_eq!(a.width(), 0.5); // hit min
    }

    #[test]
    fn finds_equilibrium_under_mixed_signals() {
        // Alternating signals with grow=2, shrink=0.5 oscillate around the
        // starting width instead of drifting — the "middle ground" the
        // paper's strategy seeks.
        let mut a = AdaptiveWidth::new(1.0, 2.0, 0.5, 1e-6, 1e6).unwrap();
        for _ in 0..100 {
            a.on_value_initiated_refresh();
            a.on_query_initiated_refresh();
        }
        assert!((a.width() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validates_parameters() {
        assert!(AdaptiveWidth::new(1.0, 1.0, 0.5, 0.1, 10.0).is_err()); // grow == 1
        assert!(AdaptiveWidth::new(1.0, 2.0, 1.0, 0.1, 10.0).is_err()); // shrink == 1
        assert!(AdaptiveWidth::new(1.0, 2.0, 0.5, 0.0, 10.0).is_err()); // min == 0
        assert!(AdaptiveWidth::new(1.0, 2.0, 0.5, 5.0, 1.0).is_err()); // min > max
        assert!(AdaptiveWidth::with_defaults(-1.0).is_err());
        assert!(AdaptiveWidth::with_defaults(3.0).is_ok());
    }

    #[test]
    fn initial_width_is_clamped() {
        let a = AdaptiveWidth::new(1000.0, 2.0, 0.5, 0.1, 10.0).unwrap();
        assert_eq!(a.width(), 10.0);
    }
}
