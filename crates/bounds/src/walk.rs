//! Random-walk update model and Chebyshev width selection (Appendix A).
//!
//! The paper models an updated value as a one-dimensional random walk with
//! step size `s`: after `T` steps the value's displacement has variance
//! `s²·T`, and Chebyshev's inequality bounds the probability that the value
//! has strayed further than `k` from its start by `P ≤ T·(s/k)²`. Fixing an
//! escape probability `P` and solving for `k` gives
//!
//! ```text
//! k(T) = (s / √P) · √T
//! ```
//!
//! — i.e. a bound of *square-root shape* with width parameter
//! `W = s / √P` contains the value at any single horizon `T` with
//! probability at least `1 − P`. These functions let sources derive a
//! principled initial `W` from an estimated step size, which the
//! [`crate::AdaptiveWidth`] controller then tunes online.

use trapp_types::TrappError;

/// The Chebyshev width parameter `W = s / √P` for step size `s` and escape
/// probability `P ∈ (0, 1)`.
///
/// ```
/// use trapp_bounds::walk::chebyshev_width_param;
/// // Paper example: P = 5% → W = s/√0.05 ≈ 4.47·s
/// let w = chebyshev_width_param(1.0, 0.05).unwrap();
/// assert!((w - 4.4721).abs() < 1e-3);
/// ```
pub fn chebyshev_width_param(step_size: f64, escape_prob: f64) -> Result<f64, TrappError> {
    if step_size.is_nan() || escape_prob.is_nan() {
        return Err(TrappError::NanValue);
    }
    if step_size < 0.0 {
        return Err(TrappError::InvalidCost(step_size));
    }
    if !(escape_prob > 0.0 && escape_prob < 1.0) {
        return Err(TrappError::Unsupported(format!(
            "escape probability must lie in (0,1), got {escape_prob}"
        )));
    }
    Ok(step_size / escape_prob.sqrt())
}

/// Chebyshev's bound on the probability that a random walk with step size
/// `s` has moved more than `k` after `t` steps: `min(1, t·(s/k)²)`.
pub fn escape_probability_bound(step_size: f64, distance: f64, steps: f64) -> f64 {
    if distance <= 0.0 {
        return 1.0;
    }
    let r = step_size / distance;
    (steps * r * r).min(1.0)
}

/// The half-width `k(t) = W·√t` that a square-root bound with parameter `W`
/// reaches after `t` steps.
pub fn half_width_at(width_param: f64, steps: f64) -> f64 {
    width_param * steps.max(0.0).sqrt()
}

/// Estimates the per-step size `s` of a value trajectory from consecutive
/// observations, as the root mean square of the first differences.
///
/// Sources that track their own update streams can use this to seed
/// [`chebyshev_width_param`]. Returns `None` for fewer than two samples.
pub fn estimate_step_size(samples: &[f64]) -> Option<f64> {
    if samples.len() < 2 {
        return None;
    }
    let mut sum_sq = 0.0;
    for w in samples.windows(2) {
        let d = w[1] - w[0];
        sum_sq += d * d;
    }
    Some((sum_sq / (samples.len() - 1) as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_param_formula() {
        // W = s/√P
        let w = chebyshev_width_param(2.0, 0.25).unwrap();
        assert_eq!(w, 4.0);
        assert!(chebyshev_width_param(1.0, 0.0).is_err());
        assert!(chebyshev_width_param(1.0, 1.0).is_err());
        assert!(chebyshev_width_param(-1.0, 0.5).is_err());
    }

    #[test]
    fn chebyshev_probability_is_consistent_with_width() {
        // At the bound's own half-width the Chebyshev estimate equals P.
        let s = 1.5;
        let p = 0.05;
        let w = chebyshev_width_param(s, p).unwrap();
        for t in [1.0, 10.0, 1000.0] {
            let k = half_width_at(w, t);
            let est = escape_probability_bound(s, k, t);
            assert!((est - p).abs() < 1e-12, "t={t}: {est} vs {p}");
        }
    }

    #[test]
    fn escape_probability_edge_cases() {
        assert_eq!(escape_probability_bound(1.0, 0.0, 10.0), 1.0);
        assert_eq!(escape_probability_bound(1.0, 0.1, 1e9), 1.0); // capped
        assert!(escape_probability_bound(0.0, 1.0, 10.0) == 0.0);
    }

    #[test]
    fn step_size_estimation() {
        // Deterministic alternating walk has RMS step exactly 1.
        let samples: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let s = estimate_step_size(&samples).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(estimate_step_size(&[1.0]), None);
        assert_eq!(estimate_step_size(&[]), None);
    }

    /// Empirical check of the Appendix A claim: a √t bound with the
    /// Chebyshev width parameter contains a simulated random walk at the
    /// horizon with frequency ≥ 1 − P. Uses a tiny deterministic LCG so the
    /// crate keeps zero runtime dependencies.
    #[test]
    fn sqrt_bound_contains_random_walk_with_high_probability() {
        let p = 0.05;
        let s = 1.0;
        let w = chebyshev_width_param(s, p).unwrap();
        let horizon = 400usize;
        let trials = 2000usize;
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut escapes_at_horizon = 0usize;
        for _ in 0..trials {
            let mut x = 0.0f64;
            for _ in 0..horizon {
                // xorshift64*
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let bit = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 63) & 1;
                x += if bit == 1 { s } else { -s };
            }
            if x.abs() > half_width_at(w, horizon as f64) {
                escapes_at_horizon += 1;
            }
        }
        let freq = escapes_at_horizon as f64 / trials as f64;
        // Chebyshev is loose; the true escape rate is far below P. Assert the
        // guarantee rather than the loose bound being tight.
        assert!(
            freq <= p,
            "escape frequency {freq} exceeded Chebyshev bound {p}"
        );
    }
}
