//! Table schemas: typed columns with boundedness flags.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use trapp_types::{BoundedValue, TrappError, ValueType};

/// Definition of one column.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ColumnDef {
    /// Column name (unique within a schema, case-sensitive).
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
    /// Whether cells of this column may hold bounds instead of exact values.
    /// Only `FLOAT` columns may be bounded.
    pub bounded: bool,
}

impl ColumnDef {
    /// An exact column.
    pub fn exact(name: impl Into<String>, ty: ValueType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            ty,
            bounded: false,
        }
    }

    /// A bounded (replicated) real-valued column.
    pub fn bounded_float(name: impl Into<String>) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            ty: ValueType::Float,
            bounded: true,
        }
    }
}

impl fmt::Display for ColumnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.ty)?;
        if self.bounded {
            write!(f, " BOUNDED")?;
        }
        Ok(())
    }
}

/// An ordered list of columns with fast name lookup.
///
/// Schemas are immutable once built and shared via `Arc` by tables,
/// snapshots, and plans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema, validating uniqueness of names and that only FLOAT
    /// columns are flagged bounded.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Arc<Schema>, TrappError> {
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if c.name.is_empty() {
                return Err(TrappError::SchemaViolation(
                    "column names must be non-empty".into(),
                ));
            }
            if c.bounded && c.ty != ValueType::Float {
                return Err(TrappError::SchemaViolation(format!(
                    "column {} is {} but only FLOAT columns may be bounded",
                    c.name, c.ty
                )));
            }
            if by_name.insert(c.name.clone(), i).is_some() {
                return Err(TrappError::SchemaViolation(format!(
                    "duplicate column name: {}",
                    c.name
                )));
            }
        }
        Ok(Arc::new(Schema { columns, by_name }))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Indexes of the bounded columns, in declaration order — the cells
    /// that back replicated objects and participate in refreshes.
    pub fn bounded_columns(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.bounded)
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of the named column.
    pub fn column_index(&self, name: &str) -> Result<usize, TrappError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| TrappError::UnknownColumn(name.to_owned()))
    }

    /// Definition of the named column.
    pub fn column(&self, name: &str) -> Result<&ColumnDef, TrappError> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// Definition by position.
    pub fn column_at(&self, idx: usize) -> Result<&ColumnDef, TrappError> {
        self.columns.get(idx).ok_or_else(|| {
            TrappError::SchemaViolation(format!(
                "column index {idx} out of range (arity {})",
                self.columns.len()
            ))
        })
    }

    /// Validates that a cell value is acceptable for the column at `idx`:
    /// the type matches, and bounds only appear in bounded columns.
    pub fn validate_cell(&self, idx: usize, cell: &BoundedValue) -> Result<(), TrappError> {
        let col = self.column_at(idx)?;
        match cell {
            BoundedValue::Exact(v) => {
                let vt = v.value_type();
                let compatible =
                    vt == col.ty || (col.ty == ValueType::Float && vt == ValueType::Int);
                if !compatible {
                    return Err(TrappError::SchemaViolation(format!(
                        "column {} expects {}, got {}",
                        col.name, col.ty, vt
                    )));
                }
            }
            BoundedValue::Bounded(_) => {
                if !col.bounded {
                    return Err(TrappError::SchemaViolation(format!(
                        "column {} is exact but received a bound",
                        col.name
                    )));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trapp_types::Value;

    fn sample() -> Arc<Schema> {
        Schema::new(vec![
            ColumnDef::exact("from_node", ValueType::Int),
            ColumnDef::exact("to_node", ValueType::Int),
            ColumnDef::bounded_float("latency"),
            ColumnDef::bounded_float("bandwidth"),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = sample();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.column_index("latency").unwrap(), 2);
        assert!(s.column_index("nope").is_err());
        assert_eq!(s.column_at(3).unwrap().name, "bandwidth");
        assert!(s.column_at(4).is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::new(vec![
            ColumnDef::exact("a", ValueType::Int),
            ColumnDef::exact("a", ValueType::Float),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_bounded_non_float() {
        let err = Schema::new(vec![ColumnDef {
            name: "s".into(),
            ty: ValueType::Str,
            bounded: true,
        }])
        .unwrap_err();
        assert!(err.to_string().contains("FLOAT"));
    }

    #[test]
    fn cell_validation() {
        let s = sample();
        // exact int into int column: ok
        s.validate_cell(0, &BoundedValue::Exact(Value::Int(1)))
            .unwrap();
        // int into float column: coercible, ok
        s.validate_cell(2, &BoundedValue::Exact(Value::Int(1)))
            .unwrap();
        // bound into bounded column: ok
        s.validate_cell(2, &BoundedValue::bounded(1.0, 2.0).unwrap())
            .unwrap();
        // bound into exact column: violation
        assert!(s
            .validate_cell(0, &BoundedValue::bounded(1.0, 2.0).unwrap())
            .is_err());
        // string into int column: violation
        assert!(s
            .validate_cell(0, &BoundedValue::Exact(Value::Str("x".into())))
            .is_err());
    }

    #[test]
    fn display_roundtrips_column_flags() {
        let s = sample();
        let txt = s.to_string();
        assert!(txt.contains("latency FLOAT BOUNDED"));
        assert!(txt.contains("from_node INT"));
    }
}
