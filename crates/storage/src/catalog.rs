//! The catalog: name → table binding for query processing.

use std::collections::BTreeMap;
use std::fmt;

use trapp_types::TrappError;

use crate::table::Table;

/// All tables visible to one cache's query processor.
#[derive(Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a table under its own name. Errors on duplicates.
    pub fn add_table(&mut self, table: Table) -> Result<(), TrappError> {
        let name = table.name().to_owned();
        if self.tables.contains_key(&name) {
            return Err(TrappError::DuplicateTable(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Removes and returns a table.
    pub fn remove_table(&mut self, name: &str) -> Result<Table, TrappError> {
        self.tables
            .remove(name)
            .ok_or_else(|| TrappError::UnknownTable(name.to_owned()))
    }

    /// Immutable access to a table.
    pub fn table(&self, name: &str) -> Result<&Table, TrappError> {
        self.tables
            .get(name)
            .ok_or_else(|| TrappError::UnknownTable(name.to_owned()))
    }

    /// Mutable access to a table (refreshes land through here).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, TrappError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| TrappError::UnknownTable(name.to_owned()))
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.tables.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use trapp_types::ValueType;

    fn mk(name: &str) -> Table {
        let schema = Schema::new(vec![ColumnDef::exact("a", ValueType::Int)]).unwrap();
        Table::new(name, schema)
    }

    #[test]
    fn add_lookup_remove() {
        let mut c = Catalog::new();
        c.add_table(mk("links")).unwrap();
        assert!(c.table("links").is_ok());
        assert!(c.table("nodes").is_err());
        assert!(c.add_table(mk("links")).is_err());
        assert_eq!(c.table_names().collect::<Vec<_>>(), vec!["links"]);
        let t = c.remove_table("links").unwrap();
        assert_eq!(t.name(), "links");
        assert!(c.is_empty());
    }

    #[test]
    fn mutable_access() {
        let mut c = Catalog::new();
        c.add_table(mk("t")).unwrap();
        let t = c.table_mut("t").unwrap();
        assert_eq!(t.len(), 0);
    }
}
