//! Rows: one tuple of exact/bounded cells.

use std::fmt;
use std::sync::Arc;

use trapp_types::{BoundedValue, Interval, TrappError, Value};

use crate::schema::Schema;

/// One tuple. Cell order matches the table [`Schema`].
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    cells: Vec<BoundedValue>,
}

impl Row {
    /// Builds a row after validating every cell against the schema.
    pub fn new(schema: &Arc<Schema>, cells: Vec<BoundedValue>) -> Result<Row, TrappError> {
        if cells.len() != schema.arity() {
            return Err(TrappError::SchemaViolation(format!(
                "row arity {} does not match schema arity {}",
                cells.len(),
                schema.arity()
            )));
        }
        for (i, cell) in cells.iter().enumerate() {
            schema.validate_cell(i, cell)?;
        }
        Ok(Row { cells })
    }

    /// Builds a row without validation.
    ///
    /// Used by operators that construct intermediate rows already known to
    /// be schema-consistent (e.g. join concatenation in `trapp-core`).
    pub fn from_cells_unchecked(cells: Vec<BoundedValue>) -> Row {
        Row { cells }
    }

    /// The cells in schema order.
    pub fn cells(&self) -> &[BoundedValue] {
        &self.cells
    }

    /// The cell at position `idx`.
    pub fn cell(&self, idx: usize) -> Result<&BoundedValue, TrappError> {
        self.cells
            .get(idx)
            .ok_or_else(|| TrappError::SchemaViolation(format!("cell index {idx} out of range")))
    }

    /// Numeric range view of the cell at `idx` (exact numerics become point
    /// intervals).
    pub fn interval(&self, idx: usize) -> Result<Interval, TrappError> {
        self.cell(idx)?.as_interval()
    }

    /// Exact view of the cell at `idx`.
    pub fn exact(&self, idx: usize) -> Result<Value, TrappError> {
        self.cell(idx)?.as_exact()
    }

    /// Replaces the cell at `idx` (validation is the table's job; this is
    /// crate-internal).
    pub(crate) fn set_cell(&mut self, idx: usize, cell: BoundedValue) {
        self.cells[idx] = cell;
    }

    /// Total uncertainty in the row: sum of cell widths. Handy for
    /// diagnostics and workload statistics.
    pub fn total_width(&self) -> f64 {
        self.cells.iter().map(|c| c.width()).sum()
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use trapp_types::ValueType;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            ColumnDef::exact("id", ValueType::Int),
            ColumnDef::bounded_float("x"),
        ])
        .unwrap()
    }

    #[test]
    fn build_and_access() {
        let s = schema();
        let r = Row::new(
            &s,
            vec![
                BoundedValue::Exact(Value::Int(7)),
                BoundedValue::bounded(1.0, 3.0).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(r.exact(0).unwrap(), Value::Int(7));
        assert_eq!(r.interval(1).unwrap().width(), 2.0);
        assert_eq!(r.total_width(), 2.0);
        assert!(r.cell(2).is_err());
        assert_eq!(r.to_string(), "(7, [1, 3])");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = schema();
        assert!(Row::new(&s, vec![BoundedValue::Exact(Value::Int(7))]).is_err());
    }

    #[test]
    fn cell_type_mismatch_rejected() {
        let s = schema();
        let bad = Row::new(
            &s,
            vec![
                BoundedValue::bounded(0.0, 1.0).unwrap(), // bound into exact col
                BoundedValue::exact_f64(1.0).unwrap(),
            ],
        );
        assert!(bad.is_err());
    }
}
