//! # trapp-storage
//!
//! The in-memory relational substrate underneath TRAPP/AG.
//!
//! A TRAPP **data cache** stores, per replicated object, a *bound* instead of
//! an exact value (§3 of the paper). In the relational model this becomes a
//! table whose *bounded columns* hold [`trapp_types::Interval`]s and whose
//! other columns hold exact values. This crate provides that table layer:
//!
//! * [`Schema`] / [`ColumnDef`] — typed columns, with per-column
//!   *boundedness* (only `FLOAT` columns may be bounded);
//! * [`Row`] — one tuple of exact/bounded cells;
//! * [`Table`] — tuple storage with stable [`trapp_types::TupleId`]s,
//!   per-tuple refresh costs (§3: "each object has its own cost to
//!   refresh"), cell refresh operations, and maintained ordered secondary
//!   indexes;
//! * [`index::OrderedIndex`] — B-tree indexes over bound endpoints, bound
//!   widths, and refresh costs, enabling the sub-linear CHOOSE_REFRESH
//!   variants the paper describes (§5.1, §5.2, §6.3, §8.3);
//! * [`Catalog`] — a name → table map for query binding.
//!
//! The storage layer is deliberately independent of the aggregation
//! algorithms: `trapp-core` consumes it through scans and index probes.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod catalog;
pub mod index;
pub mod row;
pub mod schema;
pub mod table;

pub use catalog::Catalog;
pub use index::{IndexKey, OrderedIndex};
pub use row::Row;
pub use schema::{ColumnDef, Schema};
pub use table::Table;
