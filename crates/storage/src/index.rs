//! Ordered secondary indexes over per-tuple real-valued keys.
//!
//! The paper repeatedly notes that its CHOOSE_REFRESH algorithms become
//! sub-linear when B-tree indexes exist on bound endpoints (§5.1: indexes on
//! upper and lower bounds for MIN), bound widths (§5.2: the uniform-cost
//! knapsack), and refresh costs (§6.3: the cheapest `T?` tuples for COUNT).
//! [`OrderedIndex`] is that structure: a `BTreeMap` from [`OrderedF64`] keys
//! to the set of tuples carrying the key, kept in sync by [`crate::Table`].

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use trapp_types::{OrderedF64, TupleId};

/// What a maintained index is keyed on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum IndexKey {
    /// Lower endpoint `L` of a bounded column.
    Lo {
        /// Column position in the schema.
        column: usize,
    },
    /// Upper endpoint `H` of a bounded column.
    Hi {
        /// Column position in the schema.
        column: usize,
    },
    /// Bound width `H − L` of a bounded column.
    Width {
        /// Column position in the schema.
        column: usize,
    },
    /// Per-tuple refresh cost.
    Cost,
}

/// A maintained ordered multi-map from key values to tuple ids.
#[derive(Clone, Debug, Default)]
pub struct OrderedIndex {
    map: BTreeMap<OrderedF64, BTreeSet<TupleId>>,
    len: usize,
}

impl OrderedIndex {
    /// An empty index.
    pub fn new() -> OrderedIndex {
        OrderedIndex::default()
    }

    /// Number of (key, tuple) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds an entry.
    pub fn insert(&mut self, key: OrderedF64, tid: TupleId) {
        if self.map.entry(key).or_default().insert(tid) {
            self.len += 1;
        }
    }

    /// Removes an entry; returns whether it was present.
    pub fn remove(&mut self, key: OrderedF64, tid: TupleId) -> bool {
        if let Some(set) = self.map.get_mut(&key) {
            let removed = set.remove(&tid);
            if set.is_empty() {
                self.map.remove(&key);
            }
            if removed {
                self.len -= 1;
            }
            removed
        } else {
            false
        }
    }

    /// The smallest key, if any.
    pub fn min_key(&self) -> Option<OrderedF64> {
        self.map.keys().next().copied()
    }

    /// The largest key, if any.
    pub fn max_key(&self) -> Option<OrderedF64> {
        self.map.keys().next_back().copied()
    }

    /// All tuples with key strictly below `threshold`, in ascending key
    /// order. This is the §5.1 probe: `Lᵢ < min(Hₖ) − R`.
    pub fn below(&self, threshold: OrderedF64) -> impl Iterator<Item = TupleId> + '_ {
        self.map
            .range((Bound::Unbounded, Bound::Excluded(threshold)))
            .flat_map(|(_, set)| set.iter().copied())
    }

    /// All tuples with key strictly above `threshold`, in ascending key
    /// order (the MAX mirror).
    pub fn above(&self, threshold: OrderedF64) -> impl Iterator<Item = TupleId> + '_ {
        self.map
            .range((Bound::Excluded(threshold), Bound::Unbounded))
            .flat_map(|(_, set)| set.iter().copied())
    }

    /// All entries in ascending key order. Used by the uniform-cost knapsack
    /// ("smallest widths first", §5.2) and the cheapest-tuples COUNT rule
    /// (§6.3).
    pub fn ascending(&self) -> impl Iterator<Item = (OrderedF64, TupleId)> + '_ {
        self.map
            .iter()
            .flat_map(|(k, set)| set.iter().map(move |t| (*k, *t)))
    }

    /// Tuples holding exactly `key`.
    pub fn get(&self, key: OrderedF64) -> impl Iterator<Item = TupleId> + '_ {
        self.map
            .get(&key)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: f64) -> OrderedF64 {
        OrderedF64::new(v).unwrap()
    }

    #[test]
    fn insert_remove_len() {
        let mut ix = OrderedIndex::new();
        ix.insert(k(1.0), TupleId::new(1));
        ix.insert(k(1.0), TupleId::new(2)); // duplicate key, different tuple
        ix.insert(k(1.0), TupleId::new(2)); // exact duplicate: no-op
        ix.insert(k(2.0), TupleId::new(3));
        assert_eq!(ix.len(), 3);
        assert!(ix.remove(k(1.0), TupleId::new(2)));
        assert!(!ix.remove(k(1.0), TupleId::new(2)));
        assert!(!ix.remove(k(9.0), TupleId::new(9)));
        assert_eq!(ix.len(), 2);
    }

    #[test]
    fn min_max_keys() {
        let mut ix = OrderedIndex::new();
        assert_eq!(ix.min_key(), None);
        for (v, t) in [(5.0, 1), (3.0, 2), (8.0, 3)] {
            ix.insert(k(v), TupleId::new(t));
        }
        assert_eq!(ix.min_key(), Some(k(3.0)));
        assert_eq!(ix.max_key(), Some(k(8.0)));
        // removing the only tuple at the min key moves the min
        ix.remove(k(3.0), TupleId::new(2));
        assert_eq!(ix.min_key(), Some(k(5.0)));
    }

    #[test]
    fn range_probes() {
        let mut ix = OrderedIndex::new();
        for (v, t) in [(1.0, 1), (2.0, 2), (3.0, 3), (4.0, 4)] {
            ix.insert(k(v), TupleId::new(t));
        }
        let below: Vec<u64> = ix.below(k(3.0)).map(|t| t.raw()).collect();
        assert_eq!(below, vec![1, 2]); // strictly below, ascending
        let above: Vec<u64> = ix.above(k(2.0)).map(|t| t.raw()).collect();
        assert_eq!(above, vec![3, 4]); // strictly above
        let all: Vec<u64> = ix.ascending().map(|(_, t)| t.raw()).collect();
        assert_eq!(all, vec![1, 2, 3, 4]);
    }

    #[test]
    fn duplicate_keys_iterate_deterministically() {
        let mut ix = OrderedIndex::new();
        ix.insert(k(1.0), TupleId::new(9));
        ix.insert(k(1.0), TupleId::new(3));
        let got: Vec<u64> = ix.get(k(1.0)).map(|t| t.raw()).collect();
        assert_eq!(got, vec![3, 9]); // BTreeSet order
    }
}
