//! Tables: tuple storage with refresh costs and maintained indexes.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use trapp_types::{BoundedValue, Interval, OrderedF64, TrappError, TupleId, Value};

use crate::index::{IndexKey, OrderedIndex};
use crate::row::Row;
use crate::schema::Schema;

/// The cached image of one relation, as seen by a TRAPP data cache.
///
/// Beyond plain tuple storage, a `Table` tracks the two pieces of per-tuple
/// metadata TRAPP/AG needs (§3, §4):
///
/// * a **refresh cost** `Cᵢ ≥ 0` — the known cost of asking the source for
///   the current master value of the tuple;
/// * maintained **ordered indexes** on bound endpoints, widths, and costs,
///   which the CHOOSE_REFRESH algorithms probe for their sub-linear paths.
///
/// Mutations keep all registered indexes consistent, bump a monotonic
/// [`version`](Table::version), and append the touched tuple to a bounded
/// **change log** ([`Table::changes_since`]) so memoized views over the
/// table (`trapp_core`'s band views) can re-derive only the tuples that
/// actually changed instead of rescanning.
#[derive(Clone)]
pub struct Table {
    name: String,
    schema: Arc<Schema>,
    rows: BTreeMap<TupleId, Row>,
    costs: BTreeMap<TupleId, f64>,
    next_id: u64,
    indexes: HashMap<IndexKey, OrderedIndex>,
    default_cost: f64,
    pending_inserts: u64,
    pending_deletes: u64,
    /// Monotonic mutation counter; bumped by every change that can alter
    /// a classified view (row content, cost, cardinality slack, deletes).
    version: u64,
    /// Bumped only when an **exact** (non-bounded) cell changes. Band
    /// views lean on this: a tuple whose predicate fails on its exact
    /// cells alone stays `T−` through any amount of bound movement, so
    /// replays skip it as long as this counter stands still.
    exact_version: u64,
    /// Versions at or below this are no longer covered by `change_log`
    /// (the log was compacted, or a table-global change invalidated
    /// everything); readers behind the floor must rebuild.
    log_floor: u64,
    /// `(version, tuple)` per logged mutation, ascending by version.
    change_log: Vec<(u64, TupleId)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Arc<Schema>) -> Table {
        Table {
            name: name.into(),
            schema,
            rows: BTreeMap::new(),
            costs: BTreeMap::new(),
            next_id: 1,
            indexes: HashMap::new(),
            default_cost: 1.0,
            pending_inserts: 0,
            pending_deletes: 0,
            version: 0,
            exact_version: 0,
            log_floor: 0,
            change_log: Vec::new(),
        }
    }

    /// The table's monotonic mutation version. Two reads returning the
    /// same version bracket a span with no view-visible change.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The exact-cell mutation version; see the field docs.
    pub fn exact_version(&self) -> u64 {
        self.exact_version
    }

    /// The `(version, tuple)` log entries after version `since`, in
    /// version order, or `None` when the log no longer reaches back that
    /// far — the caller must rebuild from a full scan. The slice is raw:
    /// a tuple touched twice appears twice (replays are idempotent, and
    /// skipping the dedup keeps this O(1) — callers can decide to rebuild
    /// from the entry *count* without ever walking the tail). Deleted
    /// tuples appear like any other change; readers detect the deletion
    /// by the missing row.
    pub fn changes_since(&self, since: u64) -> Option<&[(u64, TupleId)]> {
        if since < self.log_floor || since > self.version {
            return None;
        }
        // The log is version-ascending: binary search the first entry
        // strictly after `since`.
        let start = self.change_log.partition_point(|&(v, _)| v <= since);
        Some(&self.change_log[start..])
    }

    /// Records one tuple-scoped mutation, compacting the log when it
    /// outgrows its budget (readers further behind than the floor simply
    /// rebuild — correctness never depends on log depth).
    fn log_change(&mut self, tid: TupleId) {
        let cap = (self.rows.len() * 2).max(1024);
        if self.change_log.len() >= cap {
            // Readers already synced to the current version keep working;
            // anything further behind rebuilds.
            self.change_log.clear();
            self.log_floor = self.version;
        }
        self.version += 1;
        self.change_log.push((self.version, tid));
    }

    /// Records a table-global mutation (e.g. cardinality slack): every
    /// memoized view must rebuild.
    fn log_global_change(&mut self) {
        self.version += 1;
        self.change_log.clear();
        self.log_floor = self.version;
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of tuples. With eager insert/delete propagation (§3) this is
    /// exactly the master cardinality, which is why `COUNT` without a
    /// predicate needs no refreshes (§5.3).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sets the refresh cost assigned to tuples inserted without an explicit
    /// cost.
    pub fn set_default_cost(&mut self, cost: f64) -> Result<(), TrappError> {
        validate_cost(cost)?;
        self.default_cost = cost;
        Ok(())
    }

    /// Inserts a row with the default refresh cost; returns its id.
    pub fn insert(&mut self, cells: Vec<BoundedValue>) -> Result<TupleId, TrappError> {
        let cost = self.default_cost;
        self.insert_with_cost(cells, cost)
    }

    /// Inserts a row with an explicit refresh cost; returns its id.
    pub fn insert_with_cost(
        &mut self,
        cells: Vec<BoundedValue>,
        cost: f64,
    ) -> Result<TupleId, TrappError> {
        validate_cost(cost)?;
        let row = Row::new(&self.schema, cells)?;
        let tid = TupleId::new(self.next_id);
        self.next_id += 1;
        self.index_row(tid, &row, cost);
        self.rows.insert(tid, row);
        self.costs.insert(tid, cost);
        self.log_change(tid);
        Ok(tid)
    }

    /// Deletes a tuple.
    pub fn delete(&mut self, tid: TupleId) -> Result<(), TrappError> {
        let row = self
            .rows
            .remove(&tid)
            .ok_or(TrappError::UnknownTuple(tid.raw()))?;
        let cost = self.costs.remove(&tid).unwrap_or(self.default_cost);
        self.unindex_row(tid, &row, cost);
        self.log_change(tid);
        Ok(())
    }

    /// The row for `tid`.
    pub fn row(&self, tid: TupleId) -> Result<&Row, TrappError> {
        self.rows
            .get(&tid)
            .ok_or(TrappError::UnknownTuple(tid.raw()))
    }

    /// The refresh cost `Cᵢ` for `tid`.
    pub fn cost(&self, tid: TupleId) -> Result<f64, TrappError> {
        self.costs
            .get(&tid)
            .copied()
            .ok_or(TrappError::UnknownTuple(tid.raw()))
    }

    /// Updates the refresh cost for `tid`.
    pub fn set_cost(&mut self, tid: TupleId, cost: f64) -> Result<(), TrappError> {
        validate_cost(cost)?;
        let old = self
            .costs
            .get_mut(&tid)
            .ok_or(TrappError::UnknownTuple(tid.raw()))?;
        let prev = *old;
        if prev == cost {
            return Ok(());
        }
        *old = cost;
        if let Some(ix) = self.indexes.get_mut(&IndexKey::Cost) {
            ix.remove(OrderedF64::new_unchecked(prev), tid);
            ix.insert(OrderedF64::new_unchecked(cost), tid);
        }
        self.log_change(tid);
        Ok(())
    }

    /// Iterates over `(TupleId, &Row)` in id order.
    pub fn scan(&self) -> impl Iterator<Item = (TupleId, &Row)> + '_ {
        self.rows.iter().map(|(t, r)| (*t, r))
    }

    /// All tuple ids in id order.
    pub fn tuple_ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.rows.keys().copied()
    }

    /// Numeric range view of one cell.
    pub fn interval(&self, tid: TupleId, column: usize) -> Result<Interval, TrappError> {
        self.row(tid)?.interval(column)
    }

    /// Replaces one cell, revalidating against the schema and maintaining
    /// indexes. This is how a *refresh* lands: the cache overwrites the
    /// bound with either the exact master value or a new bound.
    pub fn update_cell(
        &mut self,
        tid: TupleId,
        column: usize,
        cell: BoundedValue,
    ) -> Result<(), TrappError> {
        self.schema.validate_cell(column, &cell)?;
        let cost = self.cost(tid)?;
        let row = self
            .rows
            .get_mut(&tid)
            .ok_or(TrappError::UnknownTuple(tid.raw()))?;
        let old = row.cell(column)?.clone();
        // Nothing changed: skip index churn and keep the version stable,
        // so re-materializing bounds at an unchanged instant leaves
        // memoized views valid. Numeric cells compare by interval, so
        // re-materializing a freshly pinned `Exact(v)` as the point bound
        // `[v, v]` is also a no-op rather than a representation flip.
        let unchanged = old == cell
            || matches!(
                (old.as_interval(), cell.as_interval()),
                (Ok(a), Ok(b)) if a == b
            );
        if unchanged {
            return Ok(());
        }
        // Update indexes touching this column.
        for (key, ix) in self.indexes.iter_mut() {
            let col = match key {
                IndexKey::Lo { column: c }
                | IndexKey::Hi { column: c }
                | IndexKey::Width { column: c } => *c,
                IndexKey::Cost => continue,
            };
            if col != column {
                continue;
            }
            if let Some(old_key) = cell_index_key(*key, &old) {
                ix.remove(old_key, tid);
            }
            if let Some(new_key) = cell_index_key(*key, &cell) {
                ix.insert(new_key, tid);
            }
        }
        let _ = cost;
        // Conservative on the error arm: an unplaceable column counts as
        // exact, forcing dependent views to rebuild rather than skip.
        if self
            .schema
            .column_at(column)
            .map(|d| !d.bounded)
            .unwrap_or(true)
        {
            self.exact_version += 1;
        }
        row.set_cell(column, cell);
        self.log_change(tid);
        Ok(())
    }

    /// Applies a refresh: pins `column` of `tid` to the exact master value.
    pub fn refresh_cell(
        &mut self,
        tid: TupleId,
        column: usize,
        master_value: f64,
    ) -> Result<(), TrappError> {
        if master_value.is_nan() {
            return Err(TrappError::NanValue);
        }
        self.update_cell(tid, column, BoundedValue::Exact(Value::Float(master_value)))
    }

    /// Registers (and backfills) an index. Re-registering is a no-op.
    pub fn create_index(&mut self, key: IndexKey) -> Result<(), TrappError> {
        if self.indexes.contains_key(&key) {
            return Ok(());
        }
        // Validate the column exists and is numeric for endpoint indexes.
        match key {
            IndexKey::Lo { column } | IndexKey::Hi { column } | IndexKey::Width { column } => {
                let def = self.schema.column_at(column)?;
                if !def.ty.is_numeric() {
                    return Err(TrappError::SchemaViolation(format!(
                        "cannot index endpoints of non-numeric column {}",
                        def.name
                    )));
                }
            }
            IndexKey::Cost => {}
        }
        let mut ix = OrderedIndex::new();
        for (tid, row) in &self.rows {
            let entry = match key {
                IndexKey::Cost => Some(OrderedF64::new_unchecked(
                    self.costs.get(tid).copied().unwrap_or(self.default_cost),
                )),
                _ => cell_index_key(key, row.cell(index_column(key)).expect("arity checked")),
            };
            if let Some(k) = entry {
                ix.insert(k, *tid);
            }
        }
        self.indexes.insert(key, ix);
        Ok(())
    }

    /// The maintained index for `key`, if registered.
    pub fn index(&self, key: IndexKey) -> Option<&OrderedIndex> {
        self.indexes.get(&key)
    }

    /// Registers the full CHOOSE_REFRESH index set: `Lo` / `Hi` / `Width`
    /// on every bounded column plus the refresh-cost index — everything
    /// the §5.1/§5.2/§6.3 sub-linear planners probe. Idempotent.
    pub fn create_default_indexes(&mut self) -> Result<(), TrappError> {
        for column in self.schema.clone().bounded_columns() {
            self.create_index(IndexKey::Lo { column })?;
            self.create_index(IndexKey::Hi { column })?;
            self.create_index(IndexKey::Width { column })?;
        }
        self.create_index(IndexKey::Cost)
    }

    /// Declares **cardinality slack** (§8.3's relaxation of eager
    /// insert/delete propagation): the source may have performed up to
    /// `inserts` insertions and `deletes` deletions that have not yet been
    /// propagated to this cache. While slack is non-zero, only `COUNT`
    /// queries remain answerable with guaranteed bounds (unseen tuples
    /// carry unknown values, so value aggregates become unbounded);
    /// `trapp-core` enforces that restriction.
    pub fn set_cardinality_slack(&mut self, inserts: u64, deletes: u64) {
        if (inserts, deletes) == (self.pending_inserts, self.pending_deletes) {
            return;
        }
        self.pending_inserts = inserts;
        self.pending_deletes = deletes;
        // Slack is table-global: every memoized view must rebuild.
        self.log_global_change();
    }

    /// The current `(pending_inserts, pending_deletes)` slack.
    pub fn cardinality_slack(&self) -> (u64, u64) {
        (self.pending_inserts, self.pending_deletes)
    }

    /// Sum of bound widths of `column` over all tuples — the total
    /// uncertainty a SUM query over the column would see (§5.2).
    pub fn total_width(&self, column: usize) -> Result<f64, TrappError> {
        let mut sum = 0.0;
        for (_, row) in self.scan() {
            sum += row.interval(column)?.width();
        }
        Ok(sum)
    }

    fn index_row(&mut self, tid: TupleId, row: &Row, cost: f64) {
        for (key, ix) in self.indexes.iter_mut() {
            let entry = match key {
                IndexKey::Cost => Some(OrderedF64::new_unchecked(cost)),
                _ => row
                    .cell(index_column(*key))
                    .ok()
                    .and_then(|c| cell_index_key(*key, c)),
            };
            if let Some(k) = entry {
                ix.insert(k, tid);
            }
        }
    }

    fn unindex_row(&mut self, tid: TupleId, row: &Row, cost: f64) {
        for (key, ix) in self.indexes.iter_mut() {
            let entry = match key {
                IndexKey::Cost => Some(OrderedF64::new_unchecked(cost)),
                _ => row
                    .cell(index_column(*key))
                    .ok()
                    .and_then(|c| cell_index_key(*key, c)),
            };
            if let Some(k) = entry {
                ix.remove(k, tid);
            }
        }
    }
}

fn index_column(key: IndexKey) -> usize {
    match key {
        IndexKey::Lo { column } | IndexKey::Hi { column } | IndexKey::Width { column } => column,
        IndexKey::Cost => usize::MAX,
    }
}

/// The index key a cell contributes under `key`, or `None` for non-numeric
/// cells (they simply don't appear in endpoint indexes).
fn cell_index_key(key: IndexKey, cell: &BoundedValue) -> Option<OrderedF64> {
    let iv = cell.as_interval().ok()?;
    let v = match key {
        IndexKey::Lo { .. } => iv.lo(),
        IndexKey::Hi { .. } => iv.hi(),
        IndexKey::Width { .. } => iv.width(),
        IndexKey::Cost => return None,
    };
    Some(OrderedF64::new_unchecked(v))
}

fn validate_cost(cost: f64) -> Result<(), TrappError> {
    if cost.is_nan() || cost < 0.0 {
        Err(TrappError::InvalidCost(cost))
    } else {
        Ok(())
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("schema", &self.schema.to_string())
            .field("rows", &self.rows.len())
            .field("indexes", &self.indexes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use trapp_types::ValueType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::exact("id", ValueType::Int),
            ColumnDef::bounded_float("x"),
        ])
        .unwrap();
        Table::new("t", schema)
    }

    fn row(id: i64, lo: f64, hi: f64) -> Vec<BoundedValue> {
        vec![
            BoundedValue::Exact(Value::Int(id)),
            BoundedValue::bounded(lo, hi).unwrap(),
        ]
    }

    #[test]
    fn insert_scan_delete() {
        let mut t = table();
        let a = t.insert_with_cost(row(1, 0.0, 1.0), 3.0).unwrap();
        let b = t.insert_with_cost(row(2, 5.0, 9.0), 7.0).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.cost(a).unwrap(), 3.0);
        assert_eq!(t.interval(b, 1).unwrap().width(), 4.0);
        t.delete(a).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.row(a).is_err());
        assert!(t.delete(a).is_err());
    }

    #[test]
    fn refresh_pins_cell() {
        let mut t = table();
        let a = t.insert(row(1, 0.0, 10.0)).unwrap();
        t.refresh_cell(a, 1, 4.5).unwrap();
        let iv = t.interval(a, 1).unwrap();
        assert!(iv.is_point());
        assert_eq!(iv.lo(), 4.5);
        assert!(t.refresh_cell(a, 1, f64::NAN).is_err());
    }

    #[test]
    fn rejects_invalid_costs() {
        let mut t = table();
        assert!(t.insert_with_cost(row(1, 0.0, 1.0), -1.0).is_err());
        assert!(t.insert_with_cost(row(1, 0.0, 1.0), f64::NAN).is_err());
        assert!(t.set_default_cost(-2.0).is_err());
    }

    #[test]
    fn indexes_follow_mutations() {
        let mut t = table();
        let a = t.insert(row(1, 0.0, 4.0)).unwrap();
        let b = t.insert(row(2, 2.0, 3.0)).unwrap();
        t.create_index(IndexKey::Lo { column: 1 }).unwrap();
        t.create_index(IndexKey::Hi { column: 1 }).unwrap();
        t.create_index(IndexKey::Width { column: 1 }).unwrap();

        let hi = t.index(IndexKey::Hi { column: 1 }).unwrap();
        assert_eq!(hi.min_key().unwrap().get(), 3.0);

        // Refresh tuple a: its width entry moves to 0, hi entry to the value.
        t.refresh_cell(a, 1, 1.0).unwrap();
        let hi = t.index(IndexKey::Hi { column: 1 }).unwrap();
        assert_eq!(hi.min_key().unwrap().get(), 1.0);
        let width = t.index(IndexKey::Width { column: 1 }).unwrap();
        let widths: Vec<f64> = width.ascending().map(|(k, _)| k.get()).collect();
        assert_eq!(widths, vec![0.0, 1.0]);

        // Delete b: its entries disappear.
        t.delete(b).unwrap();
        let lo = t.index(IndexKey::Lo { column: 1 }).unwrap();
        assert_eq!(lo.len(), 1);
    }

    #[test]
    fn cost_index_follows_set_cost() {
        let mut t = table();
        let a = t.insert_with_cost(row(1, 0.0, 1.0), 5.0).unwrap();
        t.create_index(IndexKey::Cost).unwrap();
        assert_eq!(
            t.index(IndexKey::Cost).unwrap().min_key().unwrap().get(),
            5.0
        );
        t.set_cost(a, 2.0).unwrap();
        assert_eq!(
            t.index(IndexKey::Cost).unwrap().min_key().unwrap().get(),
            2.0
        );
    }

    #[test]
    fn create_index_backfills_existing_rows() {
        let mut t = table();
        t.insert(row(1, 1.0, 2.0)).unwrap();
        t.insert(row(2, -1.0, 0.5)).unwrap();
        t.create_index(IndexKey::Lo { column: 1 }).unwrap();
        let lo = t.index(IndexKey::Lo { column: 1 }).unwrap();
        assert_eq!(lo.len(), 2);
        assert_eq!(lo.min_key().unwrap().get(), -1.0);
        // Indexing a non-numeric column fails cleanly.
        assert!(t.create_index(IndexKey::Lo { column: 0 }).is_ok()); // Int is numeric
    }

    /// The changed tuples after `since`, flattened.
    fn touched(t: &Table, since: u64) -> Option<Vec<TupleId>> {
        t.changes_since(since)
            .map(|entries| entries.iter().map(|&(_, tid)| tid).collect())
    }

    #[test]
    fn version_and_change_log_track_mutations() {
        let mut t = table();
        assert_eq!(t.version(), 0);
        let a = t.insert(row(1, 0.0, 4.0)).unwrap();
        let b = t.insert(row(2, 2.0, 3.0)).unwrap();
        let v2 = t.version();
        assert_eq!(v2, 2);
        assert_eq!(touched(&t, 0).unwrap(), vec![a, b]);
        assert_eq!(touched(&t, v2).unwrap(), Vec::<TupleId>::new());

        // A real cell change logs the tuple once.
        t.refresh_cell(a, 1, 1.0).unwrap();
        assert_eq!(touched(&t, v2).unwrap(), vec![a]);
        // A no-op rewrite (same cell value) does not move the version.
        let v3 = t.version();
        t.update_cell(a, 1, BoundedValue::Exact(Value::Float(1.0)))
            .unwrap();
        assert_eq!(t.version(), v3);
        // Same-cost set_cost is also a no-op.
        let c = t.cost(b).unwrap();
        t.set_cost(b, c).unwrap();
        assert_eq!(t.version(), v3);

        // Deletes are logged like any change.
        t.delete(b).unwrap();
        assert_eq!(touched(&t, v3).unwrap(), vec![b]);

        // Slack is table-global: it floors the log, readers must rebuild.
        t.set_cardinality_slack(1, 0);
        assert!(t.changes_since(v3).is_none());
        assert_eq!(touched(&t, t.version()).unwrap(), Vec::<TupleId>::new());
        // A reader from before the log's floor gets None, and future
        // versions are rejected too.
        assert!(t.changes_since(0).is_none());
        assert!(t.changes_since(t.version() + 1).is_none());
    }

    #[test]
    fn change_log_compaction_preserves_recent_readers() {
        let mut t = table();
        let a = t.insert(row(1, 0.0, 1.0)).unwrap();
        // Far more mutations than the log budget: the log compacts, but a
        // reader synced to the instant before the last write still sees it.
        for i in 0..5000 {
            t.refresh_cell(a, 1, i as f64).unwrap();
        }
        let v = t.version();
        t.refresh_cell(a, 1, -1.0).unwrap();
        assert_eq!(touched(&t, v).unwrap(), vec![a]);
        // A reader from the beginning fell behind the floor.
        assert!(t.changes_since(0).is_none());
    }

    #[test]
    fn default_indexes_cover_bounds_and_cost() {
        let mut t = table();
        t.insert(row(1, 0.0, 4.0)).unwrap();
        t.create_default_indexes().unwrap();
        for key in [
            IndexKey::Lo { column: 1 },
            IndexKey::Hi { column: 1 },
            IndexKey::Width { column: 1 },
            IndexKey::Cost,
        ] {
            assert_eq!(t.index(key).unwrap().len(), 1, "{key:?}");
        }
        // Idempotent.
        t.create_default_indexes().unwrap();
        assert_eq!(t.index(IndexKey::Cost).unwrap().len(), 1);
    }

    #[test]
    fn total_width_sums_uncertainty() {
        let mut t = table();
        t.insert(row(1, 0.0, 4.0)).unwrap();
        t.insert(row(2, 1.0, 2.0)).unwrap();
        assert_eq!(t.total_width(1).unwrap(), 5.0);
        assert_eq!(t.total_width(0).unwrap(), 0.0); // exact column
    }
}
