//! Property test: maintained indexes stay exactly consistent with a full
//! table scan under arbitrary interleavings of inserts, deletes, cell
//! updates, refreshes, and cost changes.

use proptest::prelude::*;
use trapp_storage::{ColumnDef, IndexKey, OrderedIndex, Schema, Table};
use trapp_types::{BoundedValue, OrderedF64, TupleId};

#[derive(Clone, Debug)]
enum Op {
    Insert { lo: f64, width: f64, cost: f64 },
    Delete { pick: usize },
    Refresh { pick: usize, frac: f64 },
    Widen { pick: usize, lo: f64, width: f64 },
    Recost { pick: usize, cost: f64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (-100.0f64..100.0, 0.0f64..50.0, 0.0f64..10.0)
            .prop_map(|(lo, width, cost)| Op::Insert { lo, width, cost }),
        1 => (0usize..64).prop_map(|pick| Op::Delete { pick }),
        2 => ((0usize..64), 0.0f64..1.0).prop_map(|(pick, frac)| Op::Refresh { pick, frac }),
        2 => ((0usize..64), -100.0f64..100.0, 0.0f64..50.0)
            .prop_map(|(pick, lo, width)| Op::Widen { pick, lo, width }),
        1 => ((0usize..64), 0.0f64..10.0).prop_map(|(pick, cost)| Op::Recost { pick, cost }),
    ]
}

/// Rebuilds what each index *should* contain from a scan.
fn expected_index(table: &Table, key: IndexKey) -> Vec<(OrderedF64, TupleId)> {
    let mut out: Vec<(OrderedF64, TupleId)> = table
        .scan()
        .filter_map(|(tid, row)| {
            let v = match key {
                IndexKey::Lo { column } => row.interval(column).ok()?.lo(),
                IndexKey::Hi { column } => row.interval(column).ok()?.hi(),
                IndexKey::Width { column } => row.interval(column).ok()?.width(),
                IndexKey::Cost => table.cost(tid).ok()?,
            };
            Some((OrderedF64::new(v).ok()?, tid))
        })
        .collect();
    out.sort();
    out
}

fn actual_index(ix: &OrderedIndex) -> Vec<(OrderedF64, TupleId)> {
    let mut out: Vec<(OrderedF64, TupleId)> = ix.ascending().collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn indexes_match_scans_under_mutation(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let schema = Schema::new(vec![ColumnDef::bounded_float("x")]).unwrap();
        let mut table = Table::new("t", schema);
        let keys = [
            IndexKey::Lo { column: 0 },
            IndexKey::Hi { column: 0 },
            IndexKey::Width { column: 0 },
            IndexKey::Cost,
        ];
        for k in keys {
            table.create_index(k).unwrap();
        }

        let mut live: Vec<TupleId> = Vec::new();
        for op in ops {
            match op {
                Op::Insert { lo, width, cost } => {
                    let tid = table
                        .insert_with_cost(
                            vec![BoundedValue::bounded(lo, lo + width).unwrap()],
                            cost,
                        )
                        .unwrap();
                    live.push(tid);
                }
                Op::Delete { pick } if !live.is_empty() => {
                    let tid = live.remove(pick % live.len());
                    table.delete(tid).unwrap();
                }
                Op::Refresh { pick, frac } if !live.is_empty() => {
                    let tid = live[pick % live.len()];
                    let iv = table.interval(tid, 0).unwrap();
                    let v = iv.lo() + frac * iv.width();
                    table.refresh_cell(tid, 0, v).unwrap();
                }
                Op::Widen { pick, lo, width } if !live.is_empty() => {
                    let tid = live[pick % live.len()];
                    table
                        .update_cell(tid, 0, BoundedValue::bounded(lo, lo + width).unwrap())
                        .unwrap();
                }
                Op::Recost { pick, cost } if !live.is_empty() => {
                    let tid = live[pick % live.len()];
                    table.set_cost(tid, cost).unwrap();
                }
                _ => {} // mutation against an empty table: skip
            }

            for k in keys {
                let ix = table.index(k).unwrap();
                prop_assert_eq!(
                    actual_index(ix),
                    expected_index(&table, k),
                    "index {:?} diverged after {:?}",
                    k,
                    table
                );
                prop_assert_eq!(ix.len(), table.len(), "index {:?} cardinality", k);
            }
        }
    }
}
