//! Validation helpers: the two correctness properties every TRAPP answer
//! must have, checkable against arbitrary realizations of the bounds.
//!
//! 1. **Containment** — the bounded answer contains the aggregate computed
//!    over any master values consistent with the cached bounds.
//! 2. **Guarantee** — after refreshing a CHOOSE_REFRESH plan, the
//!    recomputed answer's width meets the precision constraint *whatever*
//!    the refreshed tuples' master values turn out to be.
//!
//! Tests (and the property suites) drive these with seeded random
//! realizations; a tiny internal xorshift generator keeps this crate free
//! of runtime dependencies.

use trapp_expr::Expr;
use trapp_storage::Table;
use trapp_types::{TrappError, TupleId, Value};

use crate::agg::{bounded_answer, AggInput, Aggregate, BoundedAnswer};

/// Deterministic xorshift64* generator for realizations.
#[derive(Clone, Debug)]
pub struct Realizer {
    state: u64,
}

impl Realizer {
    /// Creates a realizer from a seed (0 is remapped).
    pub fn new(seed: u64) -> Realizer {
        Realizer {
            state: seed.max(1).wrapping_mul(0x9E3779B97F4A7C15) | 1,
        }
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        (self.state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw in `[lo, hi]`.
    pub fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_unit()
    }
}

/// Produces a *realization* of `cache`: a table with every bounded cell
/// replaced by a uniform draw inside its bound. The result is a possible
/// master state consistent with the cache.
pub fn realize_table(cache: &Table, seed: u64) -> Result<Table, TrappError> {
    let mut rng = Realizer::new(seed);
    let mut out = Table::new(cache.name(), cache.schema().clone());
    for (tid, row) in cache.scan() {
        let mut cells = Vec::with_capacity(row.cells().len());
        for cell in row.cells() {
            cells.push(match cell {
                trapp_types::BoundedValue::Exact(v) => trapp_types::BoundedValue::Exact(v.clone()),
                trapp_types::BoundedValue::Bounded(b) => {
                    let v = if b.is_finite() {
                        rng.in_range(b.lo(), b.hi())
                    } else {
                        b.midpoint()
                    };
                    trapp_types::BoundedValue::Exact(Value::Float(v))
                }
            });
        }
        let new_tid = out.insert_with_cost(cells, cache.cost(tid)?)?;
        debug_assert_eq!(new_tid, tid, "realization must preserve tuple ids");
    }
    Ok(out)
}

/// The precise aggregate over a fully exact `master` table, or `None` for
/// undefined cases (AVG/MEDIAN of an empty selection).
pub fn true_answer(
    agg: Aggregate,
    master: &Table,
    predicate: Option<&Expr<usize>>,
    arg: Option<&Expr<usize>>,
) -> Result<Option<f64>, TrappError> {
    let input = AggInput::build(master, predicate, arg)?;
    debug_assert_eq!(
        input.question_count(),
        0,
        "master tables must classify definitely"
    );
    match bounded_answer(agg, &input) {
        Ok(ans) => {
            debug_assert!(ans.is_exact(), "exact inputs must give exact answers");
            Ok(Some(ans.range.lo()))
        }
        Err(TrappError::Unsupported(_)) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Checks containment: the bounded answer computed over `cache` contains
/// the precise aggregate of `master` (which must be a realization of the
/// cache). Returns the pair `(bounded, truth)` for diagnostics.
pub fn check_containment(
    agg: Aggregate,
    cache: &Table,
    master: &Table,
    predicate: Option<&Expr<usize>>,
    arg: Option<&Expr<usize>>,
) -> Result<(BoundedAnswer, Option<f64>), TrappError> {
    let input = AggInput::build(cache, predicate, arg)?;
    let bounded = bounded_answer(agg, &input)?;
    let truth = true_answer(agg, master, predicate, arg)?;
    if let Some(v) = truth {
        // Exact containment first (also correct for the ±∞ conventions of
        // empty MIN/MAX); then tolerate floating-point summation slop.
        let contained = bounded.range.contains(v) || {
            let slack = 1e-9 * (1.0 + v.abs().min(1e300));
            bounded.range.lo() - slack <= v && v <= bounded.range.hi() + slack
        };
        if !contained {
            return Err(TrappError::Internal(format!(
                "containment violated: true {agg} = {v} outside {bounded}"
            )));
        }
    }
    Ok((bounded, truth))
}

/// Applies a refresh plan against a given master realization: every tuple
/// in `plan` has its bounded cells pinned to the master values.
pub fn apply_plan(cache: &mut Table, master: &Table, plan: &[TupleId]) -> Result<(), TrappError> {
    let bounded_cols: Vec<usize> = cache
        .schema()
        .columns()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.bounded)
        .map(|(i, _)| i)
        .collect();
    for &tid in plan {
        for &c in &bounded_cols {
            let v = master.row(tid)?.exact(c)?.as_f64()?;
            cache.refresh_cell(tid, c, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::test_fixture::*;
    use trapp_expr::{BinaryOp, ColumnRef};

    fn col(name: &str) -> Expr<usize> {
        Expr::Column(ColumnRef::bare(name)).bind(&schema()).unwrap()
    }

    #[test]
    fn realizations_are_consistent_with_bounds() {
        let cache = links_table();
        for seed in 0..20u64 {
            let real = realize_table(&cache, seed).unwrap();
            for (tid, row) in cache.scan() {
                for (i, cell) in row.cells().iter().enumerate() {
                    let master = real.row(tid).unwrap().cell(i).unwrap();
                    match cell {
                        trapp_types::BoundedValue::Bounded(_) => {
                            assert!(
                                cell.admits(&master.as_exact().unwrap()),
                                "seed {seed}: realized cell escapes bound"
                            );
                        }
                        trapp_types::BoundedValue::Exact(v) => {
                            assert_eq!(&master.as_exact().unwrap(), v);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn containment_over_many_realizations() {
        let cache = links_table();
        let pred = Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("traffic")),
            Expr::Literal(Value::Float(100.0)),
        )
        .bind(&schema())
        .unwrap();
        for seed in 0..50u64 {
            let master = realize_table(&cache, seed).unwrap();
            for agg in [
                Aggregate::Min,
                Aggregate::Max,
                Aggregate::Sum,
                Aggregate::Avg,
            ] {
                check_containment(agg, &cache, &master, Some(&pred), Some(&col("latency")))
                    .unwrap_or_else(|e| panic!("seed {seed} {agg:?}: {e}"));
            }
            check_containment(Aggregate::Count, &cache, &master, Some(&pred), None).unwrap();
            check_containment(
                Aggregate::Median,
                &cache,
                &master,
                None,
                Some(&col("latency")),
            )
            .unwrap();
        }
    }

    #[test]
    fn true_answer_matches_hand_computation() {
        let master = master_table();
        let v = true_answer(Aggregate::Sum, &master, None, Some(&col("traffic")))
            .unwrap()
            .unwrap();
        assert_eq!(v, 644.0);
        let v = true_answer(Aggregate::Min, &master, None, Some(&col("latency")))
            .unwrap()
            .unwrap();
        assert_eq!(v, 3.0);
    }
}
