//! CHOOSE_REFRESH for AVG (§5.4 and Appendix F).
//!
//! Without a predicate, COUNT is exact and the problem *is* SUM with
//! capacity `R · COUNT` (§5.4). With a predicate both SUM and COUNT move;
//! Appendix F reformulates the loose AVG bound as a linear constraint over
//! `ΔSUM` and `ΔCOUNT` and folds the COUNT dependence into the knapsack by
//! shrinking the capacity every time a `T?` tuple stays cached — equivalent
//! to *adding* the (positive) slope to each `T?` item's weight:
//!
//! ```text
//! M  = L′_COUNT · R
//! Wᵢ = Wᵢ(SUM) + max(H′_SUM, −L′_SUM, H′_SUM − L′_SUM)/L′_COUNT − R   (tᵢ ∈ T?)
//! ```
//!
//! where primed quantities are computed over the *current* cached bounds
//! (conservative stand-ins, since refreshes only shrink them).

use trapp_expr::Band;
use trapp_types::{TrappError, TupleId};

use crate::agg::sum::{bounded_sum, sum_weight};
use crate::agg::AggInput;

use super::sum::{solve_keep_set, solve_keep_set_excluding};
use super::{RefreshPlan, SolverStrategy};

/// CHOOSE_REFRESH for AVG.
pub fn choose_refresh_avg(
    input: &AggInput,
    r: f64,
    strategy: SolverStrategy,
) -> Result<RefreshPlan, TrappError> {
    if input.items.is_empty() {
        return Ok(RefreshPlan::empty());
    }

    let plus_count = input.plus_count();
    if input.question_count() == 0 {
        // §5.4: COUNT is exact; delegate to SUM with R·COUNT. (The capacity
        // may be +∞ if R is huge; the solver handles any finite f64.)
        let weights: Vec<f64> = input.items.iter().map(sum_weight).collect();
        return solve_keep_set(input, &weights, r * plus_count as f64, strategy);
    }

    if plus_count == 0 {
        // Appendix F divides by L′_COUNT; with no certain tuples the loose
        // bound gives no leverage. Refresh every T? tuple: afterwards the
        // selection is fully resolved and the answer exact (width 0 ≤ R).
        let tuples: Vec<TupleId> = input.question().map(|i| i.tid).collect();
        return Ok(RefreshPlan::from_tuples(input, tuples));
    }

    let (weights, capacity) = appendix_f_weights(input, r);
    solve_keep_set(input, &weights, capacity, strategy)
}

/// The Appendix-F weight vector and capacity for the mixed SUM/COUNT case
/// (`plus_count > 0`, `question_count > 0`), shared by the full and
/// exclusion-aware planners.
fn appendix_f_weights(input: &AggInput, r: f64) -> (Vec<f64>, f64) {
    // Conservative SUM/COUNT estimates over current bounds.
    let sum = bounded_sum(input);
    let (l_sum, h_sum) = (sum.lo(), sum.hi());
    let l_count = input.plus_count() as f64;
    let spread = h_sum.max(-l_sum).max(h_sum - l_sum);
    let slope = spread / l_count - r;

    let weights: Vec<f64> = input
        .items
        .iter()
        .map(|item| {
            let base = sum_weight(item);
            match item.band {
                Band::Plus => base,
                // A negative slope would *relax* the constraint as T? tuples
                // stay cached; clamping it to zero only rounds weights up,
                // which is always conservative for the guarantee.
                _ => base + slope.max(0.0),
            }
        })
        .collect();
    (weights, l_count * r)
}

/// [`choose_refresh_avg`] over *available* tuples only (tuples in
/// `excluded` cannot be refreshed). Returns the plan plus an `achievable`
/// flag: `false` means no available refresh set can guarantee the
/// constraint — the returned plan is then the best-effort maximal
/// narrowing over available tuples.
pub(crate) fn choose_refresh_avg_excluding(
    input: &AggInput,
    r: f64,
    strategy: SolverStrategy,
    excluded: &std::collections::HashSet<TupleId>,
) -> Result<(RefreshPlan, bool), TrappError> {
    if input.items.is_empty() {
        return Ok((RefreshPlan::empty(), true));
    }

    let plus_count = input.plus_count();
    if input.question_count() == 0 {
        let weights: Vec<f64> = input.items.iter().map(sum_weight).collect();
        let capacity = r * plus_count as f64;
        return match solve_keep_set_excluding(input, &weights, capacity, strategy, excluded)? {
            Some(plan) => Ok((plan, true)),
            None => Ok((best_effort_plan(input, &weights, excluded), false)),
        };
    }

    if plus_count == 0 {
        let tuples: Vec<TupleId> = input
            .question()
            .filter(|i| !excluded.contains(&i.tid))
            .map(|i| i.tid)
            .collect();
        let achievable = input.question().all(|i| !excluded.contains(&i.tid));
        return Ok((RefreshPlan::from_tuples(input, tuples), achievable));
    }

    let (weights, capacity) = appendix_f_weights(input, r);
    match solve_keep_set_excluding(input, &weights, capacity, strategy, excluded)? {
        Some(plan) => Ok((plan, true)),
        None => Ok((best_effort_plan(input, &weights, excluded), false)),
    }
}

/// The maximal-narrowing fallback when the constraint is unachievable over
/// available tuples: refresh every available tuple that carries weight
/// (anything with zero weight cannot change the bound).
pub(crate) fn best_effort_plan(
    input: &AggInput,
    weights: &[f64],
    excluded: &std::collections::HashSet<TupleId>,
) -> RefreshPlan {
    let tuples: Vec<TupleId> = input
        .items
        .iter()
        .zip(weights)
        .filter(|(item, &w)| w > 0.0 && !excluded.contains(&item.tid))
        .map(|(item, _)| item.tid)
        .collect();
    RefreshPlan::from_tuples(input, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::avg::bounded_avg_loose;
    use crate::agg::test_fixture::*;
    use crate::agg::AggInput;
    use trapp_expr::{BinaryOp, ColumnRef, Expr};
    use trapp_types::Value;

    fn col(name: &str) -> Expr<usize> {
        Expr::Column(ColumnRef::bare(name)).bind(&schema()).unwrap()
    }

    fn traffic_gt_100() -> Expr<usize> {
        Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("traffic")),
            Expr::Literal(Value::Float(100.0)),
        )
        .bind(&schema())
        .unwrap()
    }

    fn ids(v: &[u64]) -> Vec<trapp_types::TupleId> {
        v.iter().copied().map(trapp_types::TupleId::new).collect()
    }

    /// Q3 (§5.4): AVG traffic, no predicate, R = 10 → SUM with capacity 60
    /// over weights W′ = {10,10,15,25,20,15}; optimum keeps {1,2,3,4},
    /// refreshing {5, 6}.
    #[test]
    fn paper_q3_choose_refresh() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("traffic"))).unwrap();
        let plan = choose_refresh_avg(&input, 10.0, SolverStrategy::Exact).unwrap();
        assert_eq!(plan.tuples, ids(&[5, 6]));
        assert_eq!(plan.planned_cost, 6.0);
    }

    /// Q6 (Appendix F): AVG latency WHERE traffic > 100, R = 2.
    /// L′_SUM = 14, H′_SUM = 55, L′_COUNT = 2 → slope = 55/2 − 2 = 25.5;
    /// weights W″ = {T+: 2, 2; T?: 29.5, 41.5, 36.5, 31.5}; M = 4.
    /// Knapsack keeps {2, 4}; refresh {1, 3, 5, 6}.
    #[test]
    fn paper_q6_choose_refresh() {
        let t = links_table();
        let input = AggInput::build(&t, Some(&traffic_gt_100()), Some(&col("latency"))).unwrap();
        let plan = choose_refresh_avg(&input, 2.0, SolverStrategy::Exact).unwrap();
        assert_eq!(plan.tuples, ids(&[1, 3, 5, 6]));
        assert_eq!(plan.planned_cost, 3.0 + 6.0 + 4.0 + 2.0);
    }

    /// The Figure 2 W″ column, reproduced from the weight computation.
    #[test]
    fn figure2_w_double_prime_weights() {
        let t = links_table();
        let input = AggInput::build(&t, Some(&traffic_gt_100()), Some(&col("latency"))).unwrap();
        let sum = bounded_sum(&input);
        let slope = (sum.hi().max(-sum.lo()).max(sum.width())) / 2.0 - 2.0;
        assert_eq!(slope, 25.5);
        // Expected weights in item order (T+ = {2, 4} first, then T? =
        // {1, 3, 5, 6}): {2, 2, 29.5, 41.5, 36.5, 31.5}.
        let expect = [2.0, 2.0, 29.5, 41.5, 36.5, 31.5];
        let weights: Vec<f64> = input
            .items
            .iter()
            .map(|item| match item.band {
                trapp_expr::Band::Plus => sum_weight(item),
                _ => sum_weight(item) + slope,
            })
            .collect();
        assert_eq!(weights, expect);
    }

    /// The Appendix F guarantee: after refreshing the plan, the *loose* AVG
    /// bound meets R for any realization. Spot-check with the actual
    /// Figure 2 master values.
    #[test]
    fn post_refresh_loose_bound_meets_r() {
        let mut t = links_table();
        let input = AggInput::build(&t, Some(&traffic_gt_100()), Some(&col("latency"))).unwrap();
        let plan = choose_refresh_avg(&input, 2.0, SolverStrategy::Exact).unwrap();
        for &tid in &plan.tuples {
            let i = tid.raw() as usize - 1;
            let (lat, bw, tr) = PRECISE[i];
            t.refresh_cell(tid, LATENCY, lat).unwrap();
            t.refresh_cell(tid, BANDWIDTH, bw).unwrap();
            t.refresh_cell(tid, TRAFFIC, tr).unwrap();
        }
        let post = AggInput::build(&t, Some(&traffic_gt_100()), Some(&col("latency"))).unwrap();
        let loose = bounded_avg_loose(&post).unwrap();
        assert!(loose.width() <= 2.0 + 1e-9, "loose width {}", loose.width());
        // The paper reports the final bounded AVG as [8, 9].
        let tight = crate::agg::avg::bounded_avg_tight(&post).unwrap();
        assert_eq!(tight.lo(), 8.0);
        assert_eq!(tight.hi(), 9.0);
    }

    #[test]
    fn no_certain_tuples_resolves_all_question() {
        let t = links_table();
        let pred = Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("traffic")),
            Expr::Literal(Value::Float(144.9)),
        )
        .bind(&schema())
        .unwrap();
        let input = AggInput::build(&t, Some(&pred), Some(&col("latency"))).unwrap();
        assert_eq!(input.plus_count(), 0);
        let plan = choose_refresh_avg(&input, 1.0, SolverStrategy::Exact).unwrap();
        assert_eq!(plan.tuples.len(), input.question_count());
    }

    #[test]
    fn empty_input_needs_no_plan() {
        let input = AggInput::default();
        let plan = choose_refresh_avg(&input, 1.0, SolverStrategy::Exact).unwrap();
        assert!(plan.is_empty());
    }
}
