//! Iterative (online) CHOOSE_REFRESH (§8.2).
//!
//! The batch algorithms pick the whole refresh set up front and must
//! guarantee the constraint for *any* realization. The iterative
//! alternative refreshes one tuple at a time, recomputing the bounded
//! answer after each refresh and stopping as soon as the constraint is met —
//! trading refresh-round latency for the chance that favourable actual
//! values let it stop early. It also provides the "online aggregation"
//! behaviour the paper points at ([HAC+99]): the caller sees a bound that
//! tightens monotonically.
//!
//! This module chooses the *next* tuple; the loop lives in the executor,
//! which owns the oracle.

use trapp_types::TupleId;

use crate::agg::sum::sum_weight;
use crate::agg::{AggInput, Aggregate};

/// Ranking heuristics for the next refresh (compared in ablation ABL-1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IterativeHeuristic {
    /// Largest effective-width reduction per unit cost (the default).
    #[default]
    BestRatio,
    /// Cheapest candidate first.
    CheapestFirst,
    /// Widest candidate first, ignoring cost.
    WidestFirst,
}

/// Picks the next tuple to refresh, or `None` if no refresh can improve the
/// answer (already satisfied, or everything relevant is exact).
pub fn next_refresh(
    agg: Aggregate,
    input: &AggInput,
    r: f64,
    heuristic: IterativeHeuristic,
) -> Option<TupleId> {
    // Candidates and their "benefit" scores are aggregate-specific.
    let scored: Vec<(TupleId, f64, f64)> = match agg {
        Aggregate::Min => {
            // Only tuples below the guarantee threshold block the answer.
            let min_plus_hi = input
                .plus()
                .map(|i| i.interval.hi())
                .fold(f64::INFINITY, f64::min);
            input
                .items
                .iter()
                .filter(|i| i.interval.lo() < min_plus_hi - r)
                .map(|i| (i.tid, min_plus_hi - r - i.interval.lo(), i.cost))
                .collect()
        }
        Aggregate::Max => {
            let max_plus_lo = input
                .plus()
                .map(|i| i.interval.lo())
                .fold(f64::NEG_INFINITY, f64::max);
            input
                .items
                .iter()
                .filter(|i| i.interval.hi() > max_plus_lo + r)
                .map(|i| (i.tid, i.interval.hi() - max_plus_lo - r, i.cost))
                .collect()
        }
        Aggregate::Count => input.question().map(|i| (i.tid, 1.0, i.cost)).collect(),
        Aggregate::Sum => input
            .items
            .iter()
            .filter(|i| sum_weight(i) > 0.0)
            .map(|i| (i.tid, sum_weight(i), i.cost))
            .collect(),
        Aggregate::Avg => input
            .items
            .iter()
            // AVG is also sensitive to membership: a T? tuple with an exact
            // (even zero) value still perturbs COUNT, so it remains a
            // candidate — refreshing it resolves the predicate columns.
            .filter(|i| sum_weight(i) > 0.0 || i.band == trapp_expr::Band::Question)
            .map(|i| {
                let membership = if i.band == trapp_expr::Band::Question {
                    1.0
                } else {
                    0.0
                };
                (i.tid, sum_weight(i) + membership, i.cost)
            })
            .collect(),
        Aggregate::Median => {
            // Refresh the widest interval overlapping the current answer
            // band — intervals entirely to one side cannot move the median
            // bound inside the band.
            let band = crate::agg::order_stat::bounded_median(input).ok()?;
            input
                .items
                .iter()
                .filter(|i| !i.is_exact() && i.interval.intersect(band).is_some())
                .map(|i| (i.tid, i.interval.width(), i.cost))
                .collect()
        }
    };

    scored
        .into_iter()
        .max_by(|a, b| {
            let score = |c: &(TupleId, f64, f64)| match heuristic {
                IterativeHeuristic::BestRatio => {
                    if c.2 == 0.0 {
                        f64::INFINITY
                    } else {
                        c.1 / c.2
                    }
                }
                IterativeHeuristic::CheapestFirst => -c.2,
                IterativeHeuristic::WidestFirst => c.1,
            };
            score(a)
                .total_cmp(&score(b))
                // Deterministic tie-break: lower tuple id first.
                .then(b.0.cmp(&a.0))
        })
        .map(|(tid, _, _)| tid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::test_fixture::*;
    use crate::agg::AggInput;
    use trapp_expr::{BinaryOp, ColumnRef, Expr};
    use trapp_types::Value;

    fn col(name: &str) -> Expr<usize> {
        Expr::Column(ColumnRef::bare(name)).bind(&schema()).unwrap()
    }

    #[test]
    fn sum_picks_best_width_per_cost() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("traffic"))).unwrap();
        // widths {10,10,15,25,20,15}, costs {3,6,6,8,4,2}: ratios
        // {3.3,1.7,2.5,3.1,5,7.5} → tuple 6 wins.
        let next = next_refresh(Aggregate::Sum, &input, 10.0, IterativeHeuristic::BestRatio);
        assert_eq!(next, Some(trapp_types::TupleId::new(6)));
        // Cheapest-first also picks tuple 6 (cost 2).
        let next = next_refresh(
            Aggregate::Sum,
            &input,
            10.0,
            IterativeHeuristic::CheapestFirst,
        );
        assert_eq!(next, Some(trapp_types::TupleId::new(6)));
        // Widest-first picks tuple 4 (width 25).
        let next = next_refresh(
            Aggregate::Sum,
            &input,
            10.0,
            IterativeHeuristic::WidestFirst,
        );
        assert_eq!(next, Some(trapp_types::TupleId::new(4)));
    }

    #[test]
    fn min_only_considers_blocking_tuples() {
        let t = links_table();
        let pred = Expr::binary(
            BinaryOp::Eq,
            Expr::Column(ColumnRef::bare("on_path")),
            Expr::Literal(Value::Bool(true)),
        )
        .bind(&schema())
        .unwrap();
        let input = AggInput::build(&t, Some(&pred), Some(&col("bandwidth"))).unwrap();
        // Q1 setting with R = 10: only tuple 5 blocks.
        let next = next_refresh(Aggregate::Min, &input, 10.0, IterativeHeuristic::BestRatio);
        assert_eq!(next, Some(trapp_types::TupleId::new(5)));
        // R = 15: nothing blocks.
        let next = next_refresh(Aggregate::Min, &input, 15.0, IterativeHeuristic::BestRatio);
        assert_eq!(next, None);
    }

    #[test]
    fn count_picks_cheapest_question_tuple() {
        let t = links_table();
        let pred = Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("latency")),
            Expr::Literal(Value::Float(10.0)),
        )
        .bind(&schema())
        .unwrap();
        let input = AggInput::build(&t, Some(&pred), None).unwrap();
        let next = next_refresh(
            Aggregate::Count,
            &input,
            0.0,
            IterativeHeuristic::CheapestFirst,
        );
        assert_eq!(next, Some(trapp_types::TupleId::new(5))); // cost 4 < 8
    }

    #[test]
    fn median_targets_overlapping_intervals() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        // Median band is [5, 7]; tuple 3 ([12,16]) does not overlap it and
        // must never be picked.
        let next = next_refresh(
            Aggregate::Median,
            &input,
            0.5,
            IterativeHeuristic::WidestFirst,
        )
        .unwrap();
        assert_ne!(next, trapp_types::TupleId::new(3));
    }

    #[test]
    fn exact_everything_yields_none() {
        let t = master_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        for agg in [
            Aggregate::Sum,
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Median,
        ] {
            assert_eq!(
                next_refresh(agg, &input, 0.0, IterativeHeuristic::BestRatio),
                None,
                "{agg:?}"
            );
        }
    }
}
