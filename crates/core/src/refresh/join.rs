//! Aggregation over joins (§7).
//!
//! Computing the bounded answer for a join query is "no different from
//! doing so with a selection predicate": classify each *joined* tuple
//! (pair) into `J+ / J? / J−` with the same `Possible`/`Certain` machinery,
//! then apply the single-table aggregate formulas to the surviving pairs.
//!
//! Choosing refresh tuples is where joins get hard — each base tuple feeds
//! many joined tuples and refreshing it moves all of them, so the paper
//! stops at heuristics. This module implements the joined-input
//! construction and the per-round heuristic scoring used by the executor's
//! iterative join loop (the candidates for ablation ABL-4).

use std::collections::HashMap;

use trapp_expr::{eval, Band, Expr};
use trapp_storage::{Row, Table};
use trapp_types::{Interval, TrappError, TupleId};

use crate::agg::sum::sum_weight;
use crate::agg::{AggInput, AggItem, Aggregate};

use super::iterative::IterativeHeuristic;

/// Which base table a refresh candidate lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinSide {
    /// The first table in the FROM clause.
    Left,
    /// The second table.
    Right,
}

/// The classified, evaluated input of a two-table join aggregation.
///
/// `input.items[k].tid` is a synthetic id equal to `k`, the index into
/// [`JoinInput::pairs`]; aggregate formulas only care about bands and
/// intervals, so they work unchanged.
#[derive(Clone, Debug, Default)]
pub struct JoinInput {
    /// Items for pairs in `J+ ∪ J?`.
    pub input: AggInput,
    /// Base-tuple pair per item (parallel to `input.items`).
    pub pairs: Vec<(TupleId, TupleId)>,
    /// Arity of the left table (columns `0..left_arity` belong to it).
    pub left_arity: usize,
    /// Combined-schema columns referenced by the aggregation expression.
    pub arg_cols: Vec<usize>,
    /// Combined-schema columns referenced by the predicate.
    pub pred_cols: Vec<usize>,
}

/// Builds the joined input: evaluates the predicate and the aggregation
/// expression (both bound against the *combined* schema: left columns then
/// right columns) over every pair.
///
/// The full cross product is materialized conceptually; `J−` pairs are
/// dropped immediately, so memory is `O(|J+| + |J?|)`.
pub fn build_join_input(
    left: &Table,
    right: &Table,
    predicate: Option<&Expr<usize>>,
    arg: Option<&Expr<usize>>,
) -> Result<JoinInput, TrappError> {
    let mut out = JoinInput {
        left_arity: left.schema().arity(),
        arg_cols: arg
            .map(|e| e.columns().into_iter().copied().collect())
            .unwrap_or_default(),
        pred_cols: predicate
            .map(|e| e.columns().into_iter().copied().collect())
            .unwrap_or_default(),
        ..JoinInput::default()
    };
    for (ltid, lrow) in left.scan() {
        for (rtid, rrow) in right.scan() {
            let mut cells = lrow.cells().to_vec();
            cells.extend_from_slice(rrow.cells());
            let joined = Row::from_cells_unchecked(cells);
            let band = match predicate {
                None => Band::Plus,
                Some(pred) => Band::from_tri(trapp_expr::eval::eval_predicate(pred, &joined)?),
            };
            if band == Band::Minus {
                out.input.minus_count += 1;
                continue;
            }
            let interval = match arg {
                Some(e) => eval(e, &joined)?.as_interval()?,
                None => Interval::new_unchecked(1.0, 1.0),
            };
            let k = out.pairs.len();
            // Planning cost of "resolving" this pair: refreshing both ends.
            let cost = left.cost(ltid)? + right.cost(rtid)?;
            out.input.push_item(AggItem {
                tid: TupleId::new(k as u64),
                band,
                interval,
                cost,
            });
            out.pairs.push((ltid, rtid));
        }
    }
    Ok(out)
}

/// `true` if refreshing the given base row can actually shrink the item:
/// some column referenced by `cols`, belonging to this side of the join,
/// is still inexact in the row.
fn side_can_help(
    table: &Table,
    tid: TupleId,
    cols: &[usize],
    side_range: std::ops::Range<usize>,
    left_arity: usize,
) -> bool {
    let Ok(row) = table.row(tid) else {
        return false;
    };
    cols.iter().any(|&c| {
        side_range.contains(&c)
            && row
                .cell(c - if side_range.start == 0 { 0 } else { left_arity })
                .map(|cell| cell.width() > 0.0)
                .unwrap_or(false)
    })
}

/// Scores every base tuple whose refresh can actually reduce the answer's
/// uncertainty — through the aggregation expression for the item's value,
/// or through the predicate for a `T?` item's membership — and returns the
/// best candidate under the heuristic, or `None` when no refresh can help.
pub fn next_join_refresh(
    join: &JoinInput,
    left: &Table,
    right: &Table,
    agg: Aggregate,
    heuristic: IterativeHeuristic,
) -> Option<(JoinSide, TupleId)> {
    let la = join.left_arity;
    let total = la + right.schema().arity();
    let mut benefit: HashMap<(JoinSide, TupleId), f64> = HashMap::new();
    for (item, &(ltid, rtid)) in join.input.items.iter().zip(&join.pairs) {
        let w = match agg {
            Aggregate::Sum | Aggregate::Avg => sum_weight(item),
            Aggregate::Count => {
                if item.band == Band::Question {
                    1.0
                } else {
                    0.0
                }
            }
            _ => {
                // MIN/MAX/MEDIAN: width plus membership uncertainty.
                item.interval.width()
                    + if item.band == Band::Question {
                        1.0
                    } else {
                        0.0
                    }
            }
        };
        if w <= 0.0 {
            continue;
        }
        let membership = item.band == Band::Question;
        for (side, table, tid, range) in [
            (JoinSide::Left, left, ltid, 0..la),
            (JoinSide::Right, right, rtid, la..total),
        ] {
            let helps_value = side_can_help(table, tid, &join.arg_cols, range.clone(), la);
            let helps_membership =
                membership && side_can_help(table, tid, &join.pred_cols, range, la);
            if helps_value || helps_membership {
                *benefit.entry((side, tid)).or_insert(0.0) += w;
            }
        }
    }

    benefit
        .into_iter()
        .max_by(|a, b| {
            let cost = |k: &(JoinSide, TupleId)| match k.0 {
                JoinSide::Left => left.cost(k.1).unwrap_or(1.0),
                JoinSide::Right => right.cost(k.1).unwrap_or(1.0),
            };
            let score = |e: &((JoinSide, TupleId), f64)| match heuristic {
                IterativeHeuristic::BestRatio => {
                    let c = cost(&e.0);
                    if c == 0.0 {
                        f64::INFINITY
                    } else {
                        e.1 / c
                    }
                }
                IterativeHeuristic::CheapestFirst => -cost(&e.0),
                IterativeHeuristic::WidestFirst => e.1,
            };
            score(a)
                .total_cmp(&score(b))
                .then_with(|| key_order(&b.0).cmp(&key_order(&a.0)))
        })
        .map(|(k, _)| k)
}

/// Deterministic tie-break key: left table first, then ascending id.
fn key_order(k: &(JoinSide, TupleId)) -> (u8, u64) {
    (
        match k.0 {
            JoinSide::Left => 0,
            JoinSide::Right => 1,
        },
        k.1.raw(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trapp_expr::{BinaryOp, ColumnRef};
    use trapp_storage::{ColumnDef, Schema};
    use trapp_types::{BoundedValue, Value, ValueType};

    /// Two small tables:
    /// nodes(node_id INT, load BOUNDED)     — 2 rows
    /// links(src INT, latency BOUNDED)      — 3 rows
    /// joined on nodes.node_id = links.src.
    fn nodes() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::exact("node_id", ValueType::Int),
            ColumnDef::bounded_float("load"),
        ])
        .unwrap();
        let mut t = Table::new("nodes", schema);
        t.insert_with_cost(
            vec![
                BoundedValue::Exact(Value::Int(1)),
                BoundedValue::bounded(10.0, 20.0).unwrap(),
            ],
            2.0,
        )
        .unwrap();
        t.insert_with_cost(
            vec![
                BoundedValue::Exact(Value::Int(2)),
                BoundedValue::bounded(30.0, 35.0).unwrap(),
            ],
            5.0,
        )
        .unwrap();
        t
    }

    fn links() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::exact("src", ValueType::Int),
            ColumnDef::bounded_float("latency"),
        ])
        .unwrap();
        let mut t = Table::new("links", schema);
        for (src, lo, hi, cost) in [
            (1i64, 1.0, 3.0, 1.0),
            (1, 4.0, 6.0, 2.0),
            (2, 7.0, 9.0, 3.0),
        ] {
            t.insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Int(src)),
                    BoundedValue::bounded(lo, hi).unwrap(),
                ],
                cost,
            )
            .unwrap();
        }
        t
    }

    /// Combined schema column indexes: nodes.node_id=0, nodes.load=1,
    /// links.src=2, links.latency=3.
    fn combined_schema() -> Arc<Schema> {
        Schema::new(vec![
            ColumnDef::exact("node_id", ValueType::Int),
            ColumnDef::bounded_float("load"),
            ColumnDef::exact("src", ValueType::Int),
            ColumnDef::bounded_float("latency"),
        ])
        .unwrap()
    }

    fn join_pred() -> Expr<usize> {
        Expr::binary(
            BinaryOp::Eq,
            Expr::Column(ColumnRef::bare("node_id")),
            Expr::Column(ColumnRef::bare("src")),
        )
        .bind(&combined_schema())
        .unwrap()
    }

    fn latency_arg() -> Expr<usize> {
        Expr::Column(ColumnRef::bare("latency"))
            .bind(&combined_schema())
            .unwrap()
    }

    #[test]
    fn equijoin_on_exact_columns_classifies_definitely() {
        let (n, l) = (nodes(), links());
        let ji = build_join_input(&n, &l, Some(&join_pred()), Some(&latency_arg())).unwrap();
        // 2 × 3 pairs; exactly 3 match the equi-join on exact columns.
        assert_eq!(ji.pairs.len(), 3);
        assert_eq!(ji.input.minus_count, 3);
        assert!(ji.input.items.iter().all(|i| i.band == Band::Plus));
        // SUM latency over joined pairs = [1+4+7, 3+6+9] = [12, 18].
        let s = crate::agg::sum::bounded_sum(&ji.input);
        assert_eq!(s, Interval::new(12.0, 18.0).unwrap());
    }

    #[test]
    fn join_predicate_over_bounded_columns_gives_question_pairs() {
        let (n, l) = (nodes(), links());
        // load > latency * 3: interval comparisons make some pairs uncertain.
        let pred = Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("load")),
            Expr::binary(
                BinaryOp::Mul,
                Expr::Column(ColumnRef::bare("latency")),
                Expr::Literal(Value::Float(3.0)),
            ),
        )
        .bind(&combined_schema())
        .unwrap();
        let ji = build_join_input(&n, &l, Some(&pred), Some(&latency_arg())).unwrap();
        // Pair (n1, l1): load [10,20] vs 3·[1,3]=[3,9] → certain.
        // Pair (n1, l2): [10,20] vs [12,18] → maybe.
        // Pair (n2, l3): [30,35] vs [21,27] → certain. Etc.
        assert!(ji.input.plus_count() >= 2);
        assert!(ji.input.question_count() >= 1);
    }

    #[test]
    fn refresh_candidate_prefers_high_leverage_base_tuples() {
        let (n, l) = (nodes(), links());
        let ji = build_join_input(&n, &l, Some(&join_pred()), Some(&latency_arg())).unwrap();
        // For SUM over latency, only links carry width on the aggregation
        // column; nodes.load never appears → candidates are link tuples.
        let next =
            next_join_refresh(&ji, &n, &l, Aggregate::Sum, IterativeHeuristic::BestRatio).unwrap();
        assert_eq!(next.0, JoinSide::Right);
        // widths/costs: l1 2/1, l2 2/2, l3 2/3 → l1.
        assert_eq!(next.1, TupleId::new(1));
    }

    #[test]
    fn no_candidates_when_everything_exact() {
        let (mut n, mut l) = (nodes(), links());
        for tid in [1u64, 2] {
            n.refresh_cell(TupleId::new(tid), 1, 15.0).unwrap();
        }
        for tid in [1u64, 2, 3] {
            l.refresh_cell(TupleId::new(tid), 1, 5.0).unwrap();
        }
        let ji = build_join_input(&n, &l, Some(&join_pred()), Some(&latency_arg())).unwrap();
        assert_eq!(
            next_join_refresh(&ji, &n, &l, Aggregate::Sum, IterativeHeuristic::BestRatio),
            None
        );
    }

    #[test]
    fn cross_join_without_predicate() {
        let (n, l) = (nodes(), links());
        let ji = build_join_input(&n, &l, None, Some(&latency_arg())).unwrap();
        assert_eq!(ji.pairs.len(), 6);
        assert_eq!(ji.input.minus_count, 0);
    }
}
