//! Aggregation over joins (§7).
//!
//! Computing the bounded answer for a join query is "no different from
//! doing so with a selection predicate": classify each *joined* tuple
//! (pair) into `J+ / J? / J−` with the same `Possible`/`Certain` machinery,
//! then apply the single-table aggregate formulas to the surviving pairs.
//!
//! Choosing refresh tuples is where joins get hard — each base tuple feeds
//! many joined tuples and refreshing it moves all of them, so the paper
//! stops at heuristics. This module implements the joined-input
//! construction and the per-round heuristic scoring used by the executor's
//! iterative join loop (the candidates for ablation ABL-4), plus
//! [`join_refresh_batch`]: multi-tuple rounds that fetch every candidate
//! whose combined worst-case contribution still leaves the answer wider
//! than the precision constraint — provably replaying the one-tuple loop's
//! pick sequence, several rounds at a time.

use std::collections::{HashMap, HashSet};

use trapp_expr::{eval, Band, BinaryOp, Expr};
use trapp_storage::{Row, Table};
use trapp_types::{Interval, TrappError, TupleId, Value, ValueType};

use crate::agg::sum::sum_weight;
use crate::agg::{AggInput, AggItem, Aggregate};
use crate::group_by::GroupKey;

use super::iterative::IterativeHeuristic;

/// Which base table a refresh candidate lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinSide {
    /// The first table in the FROM clause.
    Left,
    /// The second table.
    Right,
}

/// The classified, evaluated input of a two-table join aggregation.
///
/// `input.items[k].tid` is a synthetic id equal to `k`, the index into
/// [`JoinInput::pairs`]; aggregate formulas only care about bands and
/// intervals, so they work unchanged.
#[derive(Clone, Debug, Default)]
pub struct JoinInput {
    /// Items for pairs in `J+ ∪ J?`.
    pub input: AggInput,
    /// Base-tuple pair per item (parallel to `input.items`).
    pub pairs: Vec<(TupleId, TupleId)>,
    /// Group key per item (parallel to `input.items`; empty when the
    /// query has no GROUP BY). Keys are extracted from exact cells of the
    /// combined schema, so a `J−` pair never contributes a group.
    pub group_keys: Vec<GroupKey>,
    /// Arity of the left table (columns `0..left_arity` belong to it).
    pub left_arity: usize,
    /// Combined-schema columns referenced by the aggregation expression.
    pub arg_cols: Vec<usize>,
    /// Combined-schema columns referenced by the predicate.
    pub pred_cols: Vec<usize>,
}

/// Builds the joined input: evaluates the predicate and the aggregation
/// expression (both bound against the *combined* schema: left columns then
/// right columns) over every pair, plus — when `group_by` names columns —
/// the group key of every surviving pair.
///
/// The full cross product is materialized conceptually; `J−` pairs are
/// dropped immediately, so memory is `O(|J+| + |J?|)`. When the predicate
/// carries an equality conjunct over two exact integer columns, one per
/// side, the cross product is never enumerated at all: a hash index over
/// the right table visits only the pairs that satisfy the conjunct, in the
/// same `(left tid, right tid)` order the nested loop would, and charges
/// the skipped pairs to `minus_count` (exact = exact is certainly false,
/// and `false AND x` is certainly false, so every skipped pair is `J−`).
pub fn build_join_input(
    left: &Table,
    right: &Table,
    predicate: Option<&Expr<usize>>,
    arg: Option<&Expr<usize>>,
    group_by: &[usize],
) -> Result<JoinInput, TrappError> {
    let mut out = JoinInput {
        left_arity: left.schema().arity(),
        arg_cols: arg
            .map(|e| e.columns().into_iter().copied().collect())
            .unwrap_or_default(),
        pred_cols: predicate
            .map(|e| e.columns().into_iter().copied().collect())
            .unwrap_or_default(),
        ..JoinInput::default()
    };
    let la = out.left_arity;
    if let Some((lcol, rcol)) = predicate.and_then(|p| equi_conjunct(p, left, right, la)) {
        // Hash the smaller-keyed side: right tids per key, in scan order
        // (ascending), so pair order matches the nested loop's.
        let mut index: HashMap<i64, Vec<(TupleId, &Row)>> = HashMap::new();
        for (rtid, rrow) in right.scan() {
            if let Ok(Value::Int(k)) = rrow.exact(rcol - la) {
                index.entry(k).or_default().push((rtid, rrow));
            }
        }
        let rlen = right.len();
        for (ltid, lrow) in left.scan() {
            let matches = match lrow.exact(lcol) {
                Ok(Value::Int(k)) => index.get(&k).map(Vec::as_slice).unwrap_or(&[]),
                _ => &[],
            };
            out.input.minus_count += rlen - matches.len();
            for &(rtid, rrow) in matches {
                push_pair(
                    &mut out, left, right, predicate, arg, group_by, ltid, lrow, rtid, rrow,
                )?;
            }
        }
    } else {
        for (ltid, lrow) in left.scan() {
            for (rtid, rrow) in right.scan() {
                push_pair(
                    &mut out, left, right, predicate, arg, group_by, ltid, lrow, rtid, rrow,
                )?;
            }
        }
    }
    Ok(out)
}

/// Classifies one `(left row, right row)` pair and appends its item (or
/// charges `minus_count`). Shared by the nested-loop and hash paths so
/// both produce bit-identical inputs for the pairs they visit.
#[allow(clippy::too_many_arguments)]
fn push_pair(
    out: &mut JoinInput,
    left: &Table,
    right: &Table,
    predicate: Option<&Expr<usize>>,
    arg: Option<&Expr<usize>>,
    group_by: &[usize],
    ltid: TupleId,
    lrow: &Row,
    rtid: TupleId,
    rrow: &Row,
) -> Result<(), TrappError> {
    let mut cells = lrow.cells().to_vec();
    cells.extend_from_slice(rrow.cells());
    let joined = Row::from_cells_unchecked(cells);
    let band = match predicate {
        None => Band::Plus,
        Some(pred) => Band::from_tri(trapp_expr::eval::eval_predicate(pred, &joined)?),
    };
    if band == Band::Minus {
        out.input.minus_count += 1;
        return Ok(());
    }
    let interval = match arg {
        Some(e) => eval(e, &joined)?.as_interval()?,
        None => Interval::new_unchecked(1.0, 1.0),
    };
    let k = out.pairs.len();
    // Planning cost of "resolving" this pair: refreshing both ends.
    let cost = left.cost(ltid)? + right.cost(rtid)?;
    out.input.push_item(AggItem {
        tid: TupleId::new(k as u64),
        band,
        interval,
        cost,
    });
    out.pairs.push((ltid, rtid));
    if !group_by.is_empty() {
        let key: GroupKey = group_by
            .iter()
            .map(|&c| joined.exact(c))
            .collect::<Result<_, _>>()?;
        out.group_keys.push(key);
    }
    Ok(())
}

/// Finds an `lhs = rhs` conjunct in the predicate's top-level AND tree
/// where one operand is an exact INT column of the left table and the
/// other an exact INT column of the right — the shape a hash index can
/// serve without changing any pair's classification.
fn equi_conjunct(
    pred: &Expr<usize>,
    left: &Table,
    right: &Table,
    left_arity: usize,
) -> Option<(usize, usize)> {
    match pred {
        Expr::Binary(BinaryOp::And, a, b) => equi_conjunct(a, left, right, left_arity)
            .or_else(|| equi_conjunct(b, left, right, left_arity)),
        Expr::Binary(BinaryOp::Eq, a, b) => {
            let (Expr::Column(i), Expr::Column(j)) = (a.as_ref(), b.as_ref()) else {
                return None;
            };
            let (lcol, rcol) = match (*i < left_arity, *j < left_arity) {
                (true, false) => (*i, *j),
                (false, true) => (*j, *i),
                _ => return None,
            };
            let lc = left.schema().column_at(lcol).ok()?;
            let rc = right.schema().column_at(rcol - left_arity).ok()?;
            let exact_int = |c: &trapp_storage::ColumnDef| !c.bounded && c.ty == ValueType::Int;
            (exact_int(lc) && exact_int(rc)).then_some((lcol, rcol))
        }
        _ => None,
    }
}

/// `true` if refreshing the given base row can actually shrink the item:
/// some column referenced by `cols`, belonging to this side of the join,
/// is still inexact in the row.
fn side_can_help(
    table: &Table,
    tid: TupleId,
    cols: &[usize],
    side_range: std::ops::Range<usize>,
    left_arity: usize,
) -> bool {
    let Ok(row) = table.row(tid) else {
        return false;
    };
    cols.iter().any(|&c| {
        side_range.contains(&c)
            && row
                .cell(c - if side_range.start == 0 { 0 } else { left_arity })
                .map(|cell| cell.width() > 0.0)
                .unwrap_or(false)
    })
}

/// Scores every base tuple whose refresh can actually reduce the answer's
/// uncertainty — through the aggregation expression for the item's value,
/// or through the predicate for a `T?` item's membership — and returns the
/// best candidate under the heuristic, or `None` when no refresh can help.
pub fn next_join_refresh(
    join: &JoinInput,
    left: &Table,
    right: &Table,
    agg: Aggregate,
    heuristic: IterativeHeuristic,
) -> Option<(JoinSide, TupleId)> {
    // Deficit 0 makes the batch walk stop after the heuristic's argmax.
    join_refresh_batch(join, left, right, agg, heuristic, 0.0)
        .into_iter()
        .next()
}

/// Multi-tuple join refresh rounds: returns the longest prefix of the
/// heuristic-ordered candidates that provably replays what the one-tuple
/// loop of [`next_join_refresh`] would pick across consecutive rounds —
/// the batch's combined worst-case width reduction still leaves the answer
/// violating the precision constraint, so the sequential loop could not
/// have stopped (or re-scored anything the batch touches) in between.
///
/// `deficit` is `answer width − R`, the uncertainty that must disappear
/// before the constraint is met. The first candidate is always returned
/// (when any exists); each further candidate is appended only while
///
/// * the aggregate is *additive* (SUM or COUNT), where each item's scored
///   weight bounds its possible contribution to the answer width, so the
///   picked candidates' summed benefit under-approximates nothing;
/// * the benefit already picked stays below `deficit` (minus a relative
///   epsilon — stopping early is always safe, overshooting is not); and
/// * the candidate's benefiting item set is disjoint from every picked
///   candidate's, so its score — and everything behind it in the order —
///   is unchanged by the picked refreshes.
///
/// The walk stops at the *first* candidate that fails a test: a skipped
/// overlapping candidate's re-scored benefit could still outrank the
/// candidates behind it, so picking past it would diverge from the
/// sequential order. Non-additive aggregates (AVG/MIN/MAX/MEDIAN) batch
/// one candidate per round, which is exactly the one-tuple loop.
pub fn join_refresh_batch(
    join: &JoinInput,
    left: &Table,
    right: &Table,
    agg: Aggregate,
    heuristic: IterativeHeuristic,
    deficit: f64,
) -> Vec<(JoinSide, TupleId)> {
    let none = HashSet::new();
    join_refresh_batch_excluding(join, left, right, agg, heuristic, deficit, &none, &none)
}

/// [`join_refresh_batch`] over *available* base tuples only: candidates in
/// the per-side `excluded` sets (e.g. tuples backed by a dark source) are
/// never scored or picked, so each round fetches the best *reachable*
/// refreshes and convergence stalls only when no available tuple can still
/// narrow the answer. With both sets empty this is exactly
/// [`join_refresh_batch`].
#[allow(clippy::too_many_arguments)]
pub fn join_refresh_batch_excluding(
    join: &JoinInput,
    left: &Table,
    right: &Table,
    agg: Aggregate,
    heuristic: IterativeHeuristic,
    deficit: f64,
    excluded_left: &HashSet<TupleId>,
    excluded_right: &HashSet<TupleId>,
) -> Vec<(JoinSide, TupleId)> {
    let la = join.left_arity;
    let total = la + right.schema().arity();
    let mut benefit: HashMap<(JoinSide, TupleId), (f64, Vec<usize>)> = HashMap::new();
    for (k, (item, &(ltid, rtid))) in join.input.items.iter().zip(&join.pairs).enumerate() {
        let w = match agg {
            Aggregate::Sum | Aggregate::Avg => sum_weight(item),
            Aggregate::Count => {
                if item.band == Band::Question {
                    1.0
                } else {
                    0.0
                }
            }
            _ => {
                // MIN/MAX/MEDIAN: width plus membership uncertainty.
                item.interval.width()
                    + if item.band == Band::Question {
                        1.0
                    } else {
                        0.0
                    }
            }
        };
        if w <= 0.0 {
            continue;
        }
        let membership = item.band == Band::Question;
        for (side, table, tid, range) in [
            (JoinSide::Left, left, ltid, 0..la),
            (JoinSide::Right, right, rtid, la..total),
        ] {
            let dark = match side {
                JoinSide::Left => excluded_left,
                JoinSide::Right => excluded_right,
            };
            if dark.contains(&tid) {
                continue;
            }
            let helps_value = side_can_help(table, tid, &join.arg_cols, range.clone(), la);
            let helps_membership =
                membership && side_can_help(table, tid, &join.pred_cols, range, la);
            if helps_value || helps_membership {
                let e = benefit.entry((side, tid)).or_insert((0.0, Vec::new()));
                e.0 += w;
                e.1.push(k);
            }
        }
    }

    let cost = |k: &(JoinSide, TupleId)| match k.0 {
        JoinSide::Left => left.cost(k.1).unwrap_or(1.0),
        JoinSide::Right => right.cost(k.1).unwrap_or(1.0),
    };
    let score = |key: &(JoinSide, TupleId), w: f64| match heuristic {
        IterativeHeuristic::BestRatio => {
            let c = cost(key);
            if c == 0.0 {
                f64::INFINITY
            } else {
                w / c
            }
        }
        IterativeHeuristic::CheapestFirst => -cost(key),
        IterativeHeuristic::WidestFirst => w,
    };
    // Total order: descending score, ties by key_order — the argmax of the
    // one-tuple loop comes first, then the argmax of the remainder, and so
    // on (valid as long as nothing ahead of a candidate changes its score,
    // which the disjointness test below guarantees for every pick).
    let mut candidates: Vec<Candidate> = benefit.into_iter().collect();
    candidates.sort_by(|a, b| {
        score(&b.0, b.1 .0)
            .total_cmp(&score(&a.0, a.1 .0))
            .then_with(|| key_order(&a.0).cmp(&key_order(&b.0)))
    });

    let additive = matches!(agg, Aggregate::Sum | Aggregate::Count);
    let margin = 1e-9 * (1.0 + deficit.abs());
    let mut covered = vec![false; join.input.items.len()];
    let mut resolved = 0.0f64;
    let mut picks: Vec<(JoinSide, TupleId)> = Vec::new();
    for (key, (w, items)) in candidates {
        if !picks.is_empty() {
            if !additive || resolved + margin >= deficit {
                break;
            }
            if items.iter().any(|&k| covered[k]) {
                break;
            }
        }
        resolved += w;
        for &k in &items {
            covered[k] = true;
        }
        picks.push(key);
    }
    picks
}

/// A scored refresh candidate: the base tuple, the worst-case width it
/// resolves, and the benefit-item indexes it covers.
type Candidate = ((JoinSide, TupleId), (f64, Vec<usize>));

/// Deterministic tie-break key: left table first, then ascending id.
fn key_order(k: &(JoinSide, TupleId)) -> (u8, u64) {
    (
        match k.0 {
            JoinSide::Left => 0,
            JoinSide::Right => 1,
        },
        k.1.raw(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trapp_expr::{BinaryOp, ColumnRef};
    use trapp_storage::{ColumnDef, Schema};
    use trapp_types::{BoundedValue, Value, ValueType};

    /// Two small tables:
    /// nodes(node_id INT, load BOUNDED)     — 2 rows
    /// links(src INT, latency BOUNDED)      — 3 rows
    /// joined on nodes.node_id = links.src.
    fn nodes() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::exact("node_id", ValueType::Int),
            ColumnDef::bounded_float("load"),
        ])
        .unwrap();
        let mut t = Table::new("nodes", schema);
        t.insert_with_cost(
            vec![
                BoundedValue::Exact(Value::Int(1)),
                BoundedValue::bounded(10.0, 20.0).unwrap(),
            ],
            2.0,
        )
        .unwrap();
        t.insert_with_cost(
            vec![
                BoundedValue::Exact(Value::Int(2)),
                BoundedValue::bounded(30.0, 35.0).unwrap(),
            ],
            5.0,
        )
        .unwrap();
        t
    }

    fn links() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::exact("src", ValueType::Int),
            ColumnDef::bounded_float("latency"),
        ])
        .unwrap();
        let mut t = Table::new("links", schema);
        for (src, lo, hi, cost) in [
            (1i64, 1.0, 3.0, 1.0),
            (1, 4.0, 6.0, 2.0),
            (2, 7.0, 9.0, 3.0),
        ] {
            t.insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Int(src)),
                    BoundedValue::bounded(lo, hi).unwrap(),
                ],
                cost,
            )
            .unwrap();
        }
        t
    }

    /// Combined schema column indexes: nodes.node_id=0, nodes.load=1,
    /// links.src=2, links.latency=3.
    fn combined_schema() -> Arc<Schema> {
        Schema::new(vec![
            ColumnDef::exact("node_id", ValueType::Int),
            ColumnDef::bounded_float("load"),
            ColumnDef::exact("src", ValueType::Int),
            ColumnDef::bounded_float("latency"),
        ])
        .unwrap()
    }

    fn join_pred() -> Expr<usize> {
        Expr::binary(
            BinaryOp::Eq,
            Expr::Column(ColumnRef::bare("node_id")),
            Expr::Column(ColumnRef::bare("src")),
        )
        .bind(&combined_schema())
        .unwrap()
    }

    fn latency_arg() -> Expr<usize> {
        Expr::Column(ColumnRef::bare("latency"))
            .bind(&combined_schema())
            .unwrap()
    }

    #[test]
    fn equijoin_on_exact_columns_classifies_definitely() {
        let (n, l) = (nodes(), links());
        let ji = build_join_input(&n, &l, Some(&join_pred()), Some(&latency_arg()), &[]).unwrap();
        // 2 × 3 pairs; exactly 3 match the equi-join on exact columns.
        assert_eq!(ji.pairs.len(), 3);
        assert_eq!(ji.input.minus_count, 3);
        assert!(ji.input.items.iter().all(|i| i.band == Band::Plus));
        // SUM latency over joined pairs = [1+4+7, 3+6+9] = [12, 18].
        let s = crate::agg::sum::bounded_sum(&ji.input);
        assert_eq!(s, Interval::new(12.0, 18.0).unwrap());
    }

    #[test]
    fn join_predicate_over_bounded_columns_gives_question_pairs() {
        let (n, l) = (nodes(), links());
        // load > latency * 3: interval comparisons make some pairs uncertain.
        let pred = Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("load")),
            Expr::binary(
                BinaryOp::Mul,
                Expr::Column(ColumnRef::bare("latency")),
                Expr::Literal(Value::Float(3.0)),
            ),
        )
        .bind(&combined_schema())
        .unwrap();
        let ji = build_join_input(&n, &l, Some(&pred), Some(&latency_arg()), &[]).unwrap();
        // Pair (n1, l1): load [10,20] vs 3·[1,3]=[3,9] → certain.
        // Pair (n1, l2): [10,20] vs [12,18] → maybe.
        // Pair (n2, l3): [30,35] vs [21,27] → certain. Etc.
        assert!(ji.input.plus_count() >= 2);
        assert!(ji.input.question_count() >= 1);
    }

    #[test]
    fn refresh_candidate_prefers_high_leverage_base_tuples() {
        let (n, l) = (nodes(), links());
        let ji = build_join_input(&n, &l, Some(&join_pred()), Some(&latency_arg()), &[]).unwrap();
        // For SUM over latency, only links carry width on the aggregation
        // column; nodes.load never appears → candidates are link tuples.
        let next =
            next_join_refresh(&ji, &n, &l, Aggregate::Sum, IterativeHeuristic::BestRatio).unwrap();
        assert_eq!(next.0, JoinSide::Right);
        // widths/costs: l1 2/1, l2 2/2, l3 2/3 → l1.
        assert_eq!(next.1, TupleId::new(1));
    }

    #[test]
    fn no_candidates_when_everything_exact() {
        let (mut n, mut l) = (nodes(), links());
        for tid in [1u64, 2] {
            n.refresh_cell(TupleId::new(tid), 1, 15.0).unwrap();
        }
        for tid in [1u64, 2, 3] {
            l.refresh_cell(TupleId::new(tid), 1, 5.0).unwrap();
        }
        let ji = build_join_input(&n, &l, Some(&join_pred()), Some(&latency_arg()), &[]).unwrap();
        assert_eq!(
            next_join_refresh(&ji, &n, &l, Aggregate::Sum, IterativeHeuristic::BestRatio),
            None
        );
    }

    #[test]
    fn cross_join_without_predicate() {
        let (n, l) = (nodes(), links());
        let ji = build_join_input(&n, &l, None, Some(&latency_arg()), &[]).unwrap();
        assert_eq!(ji.pairs.len(), 6);
        assert_eq!(ji.input.minus_count, 0);
    }

    /// The hash equi-join path must be invisible: same pairs, same items,
    /// same J− count as the nested loop. The control build uses
    /// `node_id + 0 = src` — semantically identical but not hash-eligible.
    #[test]
    fn hash_and_nested_paths_agree() {
        let (n, l) = (nodes(), links());
        let obfuscated = Expr::binary(
            BinaryOp::Eq,
            Expr::binary(
                BinaryOp::Add,
                Expr::Column(ColumnRef::bare("node_id")),
                Expr::Literal(Value::Int(0)),
            ),
            Expr::Column(ColumnRef::bare("src")),
        )
        .bind(&combined_schema())
        .unwrap();
        assert!(equi_conjunct(&join_pred(), &n, &l, 2).is_some());
        assert!(equi_conjunct(&obfuscated, &n, &l, 2).is_none());
        let hashed =
            build_join_input(&n, &l, Some(&join_pred()), Some(&latency_arg()), &[]).unwrap();
        let nested =
            build_join_input(&n, &l, Some(&obfuscated), Some(&latency_arg()), &[]).unwrap();
        assert_eq!(hashed.pairs, nested.pairs);
        assert_eq!(hashed.input.items, nested.input.items);
        assert_eq!(hashed.input.minus_count, nested.input.minus_count);
    }

    /// Group keys are extracted per surviving pair, parallel to `pairs`.
    #[test]
    fn group_keys_follow_pairs() {
        let (n, l) = (nodes(), links());
        // GROUP BY node_id (combined column 0).
        let ji = build_join_input(&n, &l, Some(&join_pred()), Some(&latency_arg()), &[0]).unwrap();
        assert_eq!(ji.pairs.len(), 3);
        assert_eq!(
            ji.group_keys,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ]
        );
    }

    /// With disjoint candidates and an additive aggregate, the batch walks
    /// the sequential pick order until the resolved width would cover the
    /// deficit: SUM latency has one link candidate per pair (w = 2 each,
    /// costs 1/2/3, so BestRatio orders l1, l2, l3).
    #[test]
    fn batch_replays_the_sequential_prefix() {
        let (n, l) = (nodes(), links());
        let ji = build_join_input(&n, &l, Some(&join_pred()), Some(&latency_arg()), &[]).unwrap();
        let picks = |deficit: f64| {
            join_refresh_batch(
                &ji,
                &n,
                &l,
                Aggregate::Sum,
                IterativeHeuristic::BestRatio,
                deficit,
            )
        };
        // Answer width 6; a huge deficit licenses every candidate.
        assert_eq!(
            picks(100.0),
            vec![
                (JoinSide::Right, TupleId::new(1)),
                (JoinSide::Right, TupleId::new(2)),
                (JoinSide::Right, TupleId::new(3)),
            ]
        );
        // Deficit 3: after l1 (w=2) the loop may still be unsatisfied
        // (2 < 3) so l2 is picked; after that 4 ≥ 3 stops the walk.
        assert_eq!(picks(3.0).len(), 2);
        // Deficit 0 (or anything ≤ the first width): exactly the argmax.
        assert_eq!(picks(0.0), vec![(JoinSide::Right, TupleId::new(1))]);
    }

    /// When the best two candidates share a benefiting item, the batch
    /// stops at the overlap: the sequential loop would re-score the shared
    /// item after the first refresh, so nothing past it is provable.
    #[test]
    fn batch_stops_at_overlapping_candidates() {
        let (n, l) = (nodes(), links());
        // SUM(load + latency): every pair benefits from both of its base
        // tuples, so node 1 (pairs 1,2) overlaps link 1 (pair 1).
        let arg = Expr::binary(
            BinaryOp::Add,
            Expr::Column(ColumnRef::bare("load")),
            Expr::Column(ColumnRef::bare("latency")),
        )
        .bind(&combined_schema())
        .unwrap();
        let ji = build_join_input(&n, &l, Some(&join_pred()), Some(&arg), &[]).unwrap();
        let picks = join_refresh_batch(
            &ji,
            &n,
            &l,
            Aggregate::Sum,
            IterativeHeuristic::BestRatio,
            1_000.0,
        );
        // node1 w=24 c=2 (ratio 12) ties link1 w=12 c=1; Left wins the
        // tie, and link1 then overlaps pair 1 → batch is just node1.
        assert_eq!(picks, vec![(JoinSide::Left, TupleId::new(1))]);
        // Non-additive aggregates never batch past the argmax.
        let avg = join_refresh_batch(
            &ji,
            &n,
            &l,
            Aggregate::Avg,
            IterativeHeuristic::BestRatio,
            1_000.0,
        );
        assert_eq!(avg.len(), 1);
    }
}
