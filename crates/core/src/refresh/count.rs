//! CHOOSE_REFRESH for COUNT (§6.3).
//!
//! The COUNT bound's width is exactly `|T?|`, and refreshing any `T?` tuple
//! removes it from `T?` (the refresh resolves every bounded column, so the
//! predicate becomes decidable). The optimal plan is therefore the
//! `⌈|T?| − R⌉` cheapest `T?` tuples — the one place where CHOOSE_REFRESH
//! is a pure cost selection.

use std::collections::HashSet;

use trapp_storage::{IndexKey, Table};
use trapp_types::TupleId;

use crate::agg::AggInput;

use super::RefreshPlan;

/// How many `T?` tuples must refresh to meet `r` under the input's
/// cardinality slack, shared by the scan and index planners. `None` means
/// the constraint is already met.
pub(crate) fn tuples_needed(input: &AggInput, r: f64) -> Option<usize> {
    let (inserts, deletes) = input.cardinality_slack;
    let effective_r = r - inserts as f64 - deletes as f64;
    let question = input.question_count();
    let excess = question as f64 - effective_r;
    if excess <= 0.0 {
        None
    } else {
        Some((excess.ceil() as usize).min(question))
    }
}

/// CHOOSE_REFRESH for COUNT: refresh the `⌈|T?| − R⌉` cheapest `T?` tuples.
///
/// Under §8.3 cardinality slack `(i, d)`, the answer width is
/// `|T?| + i + d` and refreshes can only remove the `|T?|` part; the plan
/// targets the remaining budget `R − i − d` (refreshing everything in `T?`
/// when even that cannot meet `R` — the executor then reports the honest
/// `satisfied = false`).
pub fn choose_refresh_count(input: &AggInput, r: f64) -> RefreshPlan {
    let Some(need) = tuples_needed(input, r) else {
        return RefreshPlan::empty();
    };
    let mut by_cost: Vec<_> = input.question().collect();
    by_cost.sort_by(|a, b| a.cost.total_cmp(&b.cost).then(a.tid.cmp(&b.tid)));
    let tuples: Vec<TupleId> = by_cost.iter().take(need).map(|i| i.tid).collect();
    RefreshPlan::from_tuples(input, tuples)
}

/// [`choose_refresh_count`] over *available* tuples only: `T?` members in
/// `excluded` cannot be refreshed, so the plan takes the `need` cheapest
/// available ones. When fewer than `need` are available the constraint is
/// unachievable — the plan refreshes everything available (maximal
/// narrowing) and the flag comes back `false`.
pub(crate) fn choose_refresh_count_excluding(
    input: &AggInput,
    r: f64,
    excluded: &std::collections::HashSet<TupleId>,
) -> (RefreshPlan, bool) {
    let Some(need) = tuples_needed(input, r) else {
        return (RefreshPlan::empty(), true);
    };
    let mut by_cost: Vec<_> = input
        .question()
        .filter(|i| !excluded.contains(&i.tid))
        .collect();
    by_cost.sort_by(|a, b| a.cost.total_cmp(&b.cost).then(a.tid.cmp(&b.tid)));
    let achievable = by_cost.len() >= need;
    let take = need.min(by_cost.len());
    let tuples: Vec<TupleId> = by_cost.iter().take(take).map(|i| i.tid).collect();
    (RefreshPlan::from_tuples(input, tuples), achievable)
}

/// Index-accelerated CHOOSE_REFRESH for COUNT (§6.3's sub-linear remark):
/// instead of sorting the full `T?` candidate vector per pass, walk the
/// table's maintained refresh-cost index in ascending `(cost, tuple)`
/// order — the exact order the scan planner sorts into — keeping the
/// first `⌈|T?| − R⌉` tuples that are members of `T?`. Works with any
/// selection predicate because membership comes from the classified
/// input; only the *ordering* comes from the index.
///
/// Returns `None` when the cost index is missing (callers fall back to
/// [`choose_refresh_count`]). The returned plan — tuples and bit-exact
/// planned cost — is identical to the scan planner's.
pub fn choose_refresh_count_indexed(
    input: &AggInput,
    table: &Table,
    r: f64,
) -> Option<RefreshPlan> {
    let cost_ix = table.index(IndexKey::Cost)?;
    let Some(need) = tuples_needed(input, r) else {
        return Some(RefreshPlan::empty());
    };
    let members: HashSet<TupleId> = input.question().map(|i| i.tid).collect();
    // The walk visits index entries until `need` members surface. When
    // the input is a thin slice of the table (a small group against the
    // table-global cost index) its members are scattered through the
    // whole order, so an unbounded walk would cost O(index) — worse than
    // the O(|T?| log |T?|) sort it replaces. Budget the walk and hand
    // narrow inputs back to the scan planner.
    let budget = (members.len() * 4).max(256);
    let mut tuples: Vec<TupleId> = Vec::with_capacity(need);
    for (visited, (_, tid)) in cost_ix.ascending().enumerate() {
        if members.contains(&tid) {
            tuples.push(tid);
            if tuples.len() == need {
                break;
            }
        } else if visited >= budget {
            return None;
        }
    }
    if tuples.len() < need {
        // The index does not cover every T? member (e.g. an input merged
        // from elsewhere): refuse rather than under-plan.
        return None;
    }
    Some(RefreshPlan::from_tuples(input, tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::test_fixture::*;
    use crate::agg::AggInput;
    use trapp_expr::{BinaryOp, ColumnRef, Expr};
    use trapp_types::Value;

    fn latency_gt_10() -> Expr<usize> {
        Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("latency")),
            Expr::Literal(Value::Float(10.0)),
        )
        .bind(&schema())
        .unwrap()
    }

    fn ids(v: &[u64]) -> Vec<trapp_types::TupleId> {
        v.iter().copied().map(trapp_types::TupleId::new).collect()
    }

    /// Q5 (§6.3): COUNT latency > 10 with R = 1. |T?| = 2 ({4, 5} with
    /// costs 8 and 4); refresh ⌈2−1⌉ = 1 cheapest → tuple 5.
    #[test]
    fn paper_q5_choose_refresh() {
        let t = links_table();
        let input = AggInput::build(&t, Some(&latency_gt_10()), None).unwrap();
        let plan = choose_refresh_count(&input, 1.0);
        assert_eq!(plan.tuples, ids(&[5]));
        assert_eq!(plan.planned_cost, 4.0);
    }

    #[test]
    fn exact_count_requires_all_question_tuples() {
        let t = links_table();
        let input = AggInput::build(&t, Some(&latency_gt_10()), None).unwrap();
        let plan = choose_refresh_count(&input, 0.0);
        assert_eq!(plan.tuples, ids(&[4, 5]));
    }

    #[test]
    fn loose_r_needs_nothing() {
        let t = links_table();
        let input = AggInput::build(&t, Some(&latency_gt_10()), None).unwrap();
        assert!(choose_refresh_count(&input, 2.0).is_empty());
        assert!(choose_refresh_count(&input, 5.0).is_empty());
    }

    #[test]
    fn fractional_r_rounds_up_refreshes() {
        let t = links_table();
        let input = AggInput::build(&t, Some(&latency_gt_10()), None).unwrap();
        // |T?| = 2, R = 0.5 → need ⌈1.5⌉ = 2.
        let plan = choose_refresh_count(&input, 0.5);
        assert_eq!(plan.tuples.len(), 2);
    }

    /// §8.3: slack consumes precision budget; plans shrink or saturate.
    #[test]
    fn slack_tightens_or_saturates_plans() {
        let mut t = links_table();
        // |T?| = 2 for latency > 10. Slack (1, 0) makes width 3.
        t.set_cardinality_slack(1, 0);
        let input = AggInput::build(&t, Some(&latency_gt_10()), None).unwrap();
        // R = 2: effective budget 1 → refresh 1 tuple (cheapest).
        let plan = choose_refresh_count(&input, 2.0);
        assert_eq!(plan.tuples, ids(&[5]));
        // R = 0.5 < slack: even refreshing all of T? cannot satisfy; the
        // plan saturates at |T?| rather than panicking.
        let plan = choose_refresh_count(&input, 0.5);
        assert_eq!(plan.tuples.len(), 2);
        // R = 3 absorbs slack plus T? entirely: nothing to do.
        let plan = choose_refresh_count(&input, 3.0);
        assert!(plan.is_empty());
    }

    /// End-to-end slack behaviour: the executor reports honest
    /// (un)satisfaction.
    #[test]
    fn executor_reports_unsatisfied_under_excess_slack() {
        use crate::executor::{QuerySession, TableOracle};
        let mut cache = links_table();
        cache.set_cardinality_slack(2, 0);
        let mut s = QuerySession::new(cache);
        let mut o = TableOracle::from_table(master_table());
        // Width = |T?| + 2 = 4; R = 3 is achievable (refresh 1), R = 1 is not.
        let r = s
            .execute_sql(
                "SELECT COUNT(*) WITHIN 3 FROM links WHERE latency > 10",
                &mut o,
            )
            .unwrap();
        assert!(r.satisfied);
        let r = s
            .execute_sql(
                "SELECT COUNT(*) WITHIN 1 FROM links WHERE latency > 10",
                &mut o,
            )
            .unwrap();
        assert!(!r.satisfied);
        assert!(r.answer.width() > 1.0);
    }

    #[test]
    fn cost_ties_break_deterministically() {
        let mut t = links_table();
        // Make tuples 4 and 5 the same cost.
        t.set_cost(trapp_types::TupleId::new(4), 4.0).unwrap();
        let input = AggInput::build(&t, Some(&latency_gt_10()), None).unwrap();
        let plan = choose_refresh_count(&input, 1.0);
        assert_eq!(plan.tuples, ids(&[4])); // lower id wins ties
    }
}
