//! CHOOSE_REFRESH for SUM (§5.2, §6.2): the knapsack reduction.
//!
//! Selecting the cheapest refresh set is recast as selecting the most
//! valuable set of tuples to *keep cached*: place tuple `tᵢ` in a knapsack
//! with profit `Pᵢ = Cᵢ` (its refresh cost, which keeping it avoids) and
//! weight `Wᵢ` = its effective bound width — `Hᵢ − Lᵢ` for `T+` tuples,
//! zero-extended (§6.2) for `T?` tuples. Capacity is the precision
//! constraint `R`: the kept tuples' residual widths sum to the post-refresh
//! answer width, which must not exceed `R` for any realization.

use std::collections::HashSet;

use trapp_knapsack::{Instance, Item};
use trapp_types::{TrappError, TupleId};

use crate::agg::sum::sum_weight;
use crate::agg::AggInput;

use super::{run_solver, RefreshPlan, SolverStrategy};

/// CHOOSE_REFRESH for SUM with an explicit knapsack capacity.
///
/// AVG reuses this with its own capacity and adjusted weights, so the
/// worker takes `(weights, capacity)` and maps the solution's complement
/// back to tuple ids.
pub(crate) fn solve_keep_set(
    input: &AggInput,
    weights: &[f64],
    capacity: f64,
    strategy: SolverStrategy,
) -> Result<RefreshPlan, TrappError> {
    match solve_keep_set_excluding(input, weights, capacity, strategy, &HashSet::new())? {
        Some(plan) => Ok(plan),
        // Unreachable with no exclusions: the capacity is never reduced.
        None => Err(TrappError::Plan(format!("bad capacity: {capacity}"))),
    }
}

/// [`solve_keep_set`] restricted to *available* tuples: every tuple in
/// `excluded` (e.g. backed by a dark source) is forced into the keep set —
/// its weight is charged against the capacity up front — and the knapsack
/// runs over the remaining items only. `Ok(None)` means the reduced
/// capacity went negative: no refresh set over available tuples can meet
/// the constraint. With `excluded` empty this is bit-identical to
/// [`solve_keep_set`] (same items, same order, same capacity).
pub(crate) fn solve_keep_set_excluding(
    input: &AggInput,
    weights: &[f64],
    capacity: f64,
    strategy: SolverStrategy,
    excluded: &HashSet<TupleId>,
) -> Result<Option<RefreshPlan>, TrappError> {
    debug_assert_eq!(weights.len(), input.items.len());
    let mut cap = capacity;
    let mut available: Vec<usize> = Vec::with_capacity(input.items.len());
    for (i, item) in input.items.iter().enumerate() {
        if excluded.contains(&item.tid) {
            cap -= weights[i];
        } else {
            available.push(i);
        }
    }
    if cap < 0.0 {
        return Ok(None);
    }
    let items: Result<Vec<Item>, _> = available
        .iter()
        .map(|&i| Item::new(input.items[i].cost, weights[i]))
        .collect();
    let items = items.map_err(|e| TrappError::Plan(format!("bad knapsack item: {e}")))?;
    let instance =
        Instance::new(items, cap).map_err(|e| TrappError::Plan(format!("bad capacity: {e}")))?;
    let solution = run_solver(&instance, strategy)?;
    let refresh: Vec<TupleId> = solution
        .complement(available.len())
        .into_iter()
        .map(|j| input.items[available[j]].tid)
        .collect();
    Ok(Some(RefreshPlan::from_tuples(input, refresh)))
}

/// CHOOSE_REFRESH for SUM (§5.2 without predicate, §6.2 with).
pub fn choose_refresh_sum(
    input: &AggInput,
    r: f64,
    strategy: SolverStrategy,
) -> Result<RefreshPlan, TrappError> {
    let weights: Vec<f64> = input.items.iter().map(sum_weight).collect();
    solve_keep_set(input, &weights, r, strategy)
}

/// The §5.2 uniform-cost special case over a width index: "The optimal
/// answer then can be found by placing objects in the knapsack in order of
/// increasing weight Wᵢ until the knapsack cannot hold any more objects.
/// If an index exists on the bound width Hᵢ − Lᵢ, this algorithm can run
/// in sublinear time."
///
/// Preconditions: no selection predicate (all tuples contribute their plain
/// width) and uniform refresh costs. Returns `None` when the width index is
/// missing or costs are not uniform — callers fall back to
/// [`choose_refresh_sum`].
pub fn choose_refresh_sum_uniform_indexed(
    table: &trapp_storage::Table,
    column: usize,
    r: f64,
) -> Option<RefreshPlan> {
    let width_ix = table.index(trapp_storage::IndexKey::Width { column })?;

    // Uniform-cost check (cheap linear scan of the cost map; the *solve*
    // below is what the index makes sublinear in the kept prefix).
    let mut costs = table.tuple_ids().map(|t| table.cost(t).unwrap_or(0.0));
    let first = costs.next().unwrap_or(0.0);
    if costs.any(|c| c != first) {
        return None;
    }

    // Keep lightest-first while the capacity holds; everything after the
    // cut refreshes. The walk visits `(width, tuple)` ascending — the
    // same order the greedy-by-weight knapsack sorts the canonical item
    // vector into, so the kept set (and thus the plan) is identical.
    let mut kept_width = 0.0;
    let mut refresh: Vec<trapp_types::TupleId> = Vec::new();
    let mut keeping = true;
    for (w, tid) in width_ix.ascending() {
        if keeping && kept_width + w.get() <= r {
            kept_width += w.get();
        } else {
            keeping = false;
            refresh.push(tid);
        }
    }
    refresh.sort_unstable();
    // Sum in ascending tuple order — the scan planner's summation order —
    // so the planned cost is bit-equal, not merely mathematically equal.
    let planned_cost = refresh.iter().map(|&t| table.cost(t).unwrap_or(0.0)).sum();
    Some(RefreshPlan {
        tuples: refresh,
        planned_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::test_fixture::*;
    use crate::agg::AggInput;
    use trapp_expr::{BinaryOp, ColumnRef, Expr};
    use trapp_types::Value;

    fn col(name: &str) -> Expr<usize> {
        Expr::Column(ColumnRef::bare(name)).bind(&schema()).unwrap()
    }

    fn on_path() -> Expr<usize> {
        Expr::binary(
            BinaryOp::Eq,
            Expr::Column(ColumnRef::bare("on_path")),
            Expr::Literal(Value::Bool(true)),
        )
        .bind(&schema())
        .unwrap()
    }

    fn ids(v: &[u64]) -> Vec<trapp_types::TupleId> {
        v.iter().copied().map(trapp_types::TupleId::new).collect()
    }

    /// Q2 (§5.2): SUM latency over {1,2,5,6}, R = 5. Knapsack weights
    /// W = {2,2,3,2}, profits = costs {3,6,4,2}; optimum keeps {2,5},
    /// refreshing {1,6}.
    #[test]
    fn paper_q2_choose_refresh() {
        let t = links_table();
        let input = AggInput::build(&t, Some(&on_path()), Some(&col("latency"))).unwrap();
        let plan = choose_refresh_sum(&input, 5.0, SolverStrategy::Exact).unwrap();
        assert_eq!(plan.tuples, ids(&[1, 6]));
        assert_eq!(plan.planned_cost, 5.0);
    }

    #[test]
    fn residual_width_respects_capacity() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("traffic"))).unwrap();
        for r in [0.0, 10.0, 25.0, 40.0, 60.0, 95.0, 200.0] {
            for strategy in [
                SolverStrategy::Exact,
                SolverStrategy::Fptas(0.1),
                SolverStrategy::GreedyDensity,
            ] {
                let plan = choose_refresh_sum(&input, r, strategy).unwrap();
                let kept_width: f64 = input
                    .items
                    .iter()
                    .filter(|i| !plan.tuples.contains(&i.tid))
                    .map(|i| i.interval.width())
                    .sum();
                assert!(
                    kept_width <= r + 1e-12,
                    "r={r} {strategy}: kept width {kept_width}"
                );
            }
        }
    }

    #[test]
    fn loose_r_keeps_everything() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("traffic"))).unwrap();
        // Total width = 95; R = 95 keeps all tuples.
        let plan = choose_refresh_sum(&input, 95.0, SolverStrategy::Exact).unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn r_zero_refreshes_every_inexact_tuple() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("traffic"))).unwrap();
        let plan = choose_refresh_sum(&input, 0.0, SolverStrategy::Exact).unwrap();
        assert_eq!(plan.tuples.len(), 6);
    }

    /// The §5.2 uniform-cost width-index path must match exact knapsack
    /// planning in cost (the chosen sets may differ only among equal-width
    /// ties).
    #[test]
    fn uniform_indexed_matches_exact_cost() {
        let mut t = links_table();
        for tid in t.tuple_ids().collect::<Vec<_>>() {
            t.set_cost(tid, 4.0).unwrap();
        }
        t.create_index(trapp_storage::IndexKey::Width { column: TRAFFIC })
            .unwrap();
        for r in [0.0, 10.0, 24.9, 25.0, 40.0, 60.0, 95.0, 200.0] {
            let input = AggInput::build(&t, None, Some(&col("traffic"))).unwrap();
            let exact = choose_refresh_sum(&input, r, SolverStrategy::Exact).unwrap();
            let indexed = choose_refresh_sum_uniform_indexed(&t, TRAFFIC, r).unwrap();
            assert_eq!(
                exact.planned_cost, indexed.planned_cost,
                "R = {r}: exact {:?} vs indexed {:?}",
                exact.tuples, indexed.tuples
            );
            // The indexed plan must itself satisfy the capacity.
            let kept: f64 = input
                .items
                .iter()
                .filter(|i| !indexed.tuples.contains(&i.tid))
                .map(|i| i.interval.width())
                .sum();
            assert!(kept <= r + 1e-12, "R = {r}");
        }
    }

    #[test]
    fn uniform_indexed_requires_index_and_uniform_costs() {
        let t = links_table(); // non-uniform costs, no index
        assert!(choose_refresh_sum_uniform_indexed(&t, TRAFFIC, 10.0).is_none());
        let mut t = links_table();
        t.create_index(trapp_storage::IndexKey::Width { column: TRAFFIC })
            .unwrap();
        // Index present but costs differ → refuse.
        assert!(choose_refresh_sum_uniform_indexed(&t, TRAFFIC, 10.0).is_none());
    }

    /// §6.2: a T? tuple whose aggregation value is exactly known still has
    /// nonzero knapsack weight (it may drop out of the selection).
    #[test]
    fn exact_question_tuples_still_weigh() {
        let mut t = links_table();
        // Pin tuple 1's latency to exactly 3 but leave traffic bounded, so
        // under `traffic > 100` it stays in T? with latency weight |3| = 3.
        t.refresh_cell(trapp_types::TupleId::new(1), LATENCY, 3.0)
            .unwrap();
        let pred = Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("traffic")),
            Expr::Literal(Value::Float(100.0)),
        )
        .bind(&schema())
        .unwrap();
        let input = AggInput::build(&t, Some(&pred), Some(&col("latency"))).unwrap();
        let item = input
            .items
            .iter()
            .find(|i| i.tid == trapp_types::TupleId::new(1))
            .unwrap();
        assert_eq!(item.interval.width(), 0.0);
        assert_eq!(crate::agg::sum::sum_weight(item), 3.0);
    }
}
