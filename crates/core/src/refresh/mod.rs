//! CHOOSE_REFRESH: the minimum-cost tuple-refresh planners (§5, §6,
//! Appendices B, C, F).
//!
//! Given the classified input of an aggregation query and a precision
//! constraint `R`, a CHOOSE_REFRESH algorithm picks a set `T_R` of tuples
//! such that after refreshing them the bounded answer satisfies
//! `H_A − L_A ≤ R` **for any master values within the current bounds** —
//! the paper's correctness criterion — at minimum (or provably
//! near-minimum) total refresh cost.

pub mod avg;
pub mod count;
pub mod iterative;
pub mod join;
pub mod min_max;
pub mod sum;

use std::fmt;

use trapp_types::{TrappError, TupleId};

use crate::agg::{AggInput, Aggregate};

/// How the knapsack sub-problems (SUM, AVG) are solved.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SolverStrategy {
    /// Branch-and-bound — exact, exponential worst case (§5.2's
    /// "dynamic programming … worst-case exponential" remark corresponds to
    /// exact solving; fine at the paper's instance sizes).
    Exact,
    /// The Ibarra–Kim FPTAS with parameter ε (the paper's default; Figure 5
    /// sweeps ε).
    Fptas(f64),
    /// Density greedy (½-approximation) — cheapest planning, loosest cost.
    GreedyDensity,
    /// Weight-ascending greedy — optimal only under uniform refresh costs
    /// (§5.2's special case).
    GreedyByWeight,
}

impl Default for SolverStrategy {
    fn default() -> Self {
        SolverStrategy::Fptas(0.1)
    }
}

impl fmt::Display for SolverStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverStrategy::Exact => write!(f, "exact"),
            SolverStrategy::Fptas(e) => write!(f, "fptas(ε={e})"),
            SolverStrategy::GreedyDensity => write!(f, "greedy-density"),
            SolverStrategy::GreedyByWeight => write!(f, "greedy-by-weight"),
        }
    }
}

/// The output of CHOOSE_REFRESH: which tuples to refresh and what that is
/// expected to cost.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RefreshPlan {
    /// Tuples to refresh, in ascending id order.
    pub tuples: Vec<TupleId>,
    /// Total refresh cost of the plan (`Σ Cᵢ` over `tuples`).
    pub planned_cost: f64,
}

impl RefreshPlan {
    /// An empty plan (the cached answer already satisfies the constraint).
    pub fn empty() -> RefreshPlan {
        RefreshPlan::default()
    }

    /// Builds a plan from the chosen tuples of `input`.
    pub(crate) fn from_tuples(input: &AggInput, mut tuples: Vec<TupleId>) -> RefreshPlan {
        tuples.sort_unstable();
        tuples.dedup();
        // One pass over the items instead of one scan per chosen tuple;
        // the cost sum still runs in ascending tuple order so the float
        // total is bit-stable against the old quadratic path.
        let mut costs: std::collections::HashMap<TupleId, f64> =
            std::collections::HashMap::with_capacity(tuples.len());
        for item in &input.items {
            if tuples.binary_search(&item.tid).is_ok() {
                costs.insert(item.tid, item.cost);
            }
        }
        let cost = tuples
            .iter()
            .map(|tid| costs.get(tid).copied().unwrap_or(0.0))
            .sum();
        RefreshPlan {
            tuples,
            planned_cost: cost,
        }
    }

    /// `true` if nothing needs refreshing.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// Dispatches to the aggregate-specific CHOOSE_REFRESH algorithm.
///
/// `r` is the precision constraint (finite; `R = ∞` never reaches
/// planning). `MEDIAN` has no batch planner with a non-trivial guarantee
/// (the paper defers it to [FMP+00]); it refreshes every inexact tuple —
/// use the iterative executor mode for the cost-aware strategy.
pub fn choose_refresh(
    agg: Aggregate,
    input: &AggInput,
    r: f64,
    strategy: SolverStrategy,
) -> Result<RefreshPlan, TrappError> {
    if r < 0.0 || r.is_nan() {
        return Err(TrappError::NegativePrecision(r));
    }
    match agg {
        Aggregate::Min => Ok(min_max::choose_refresh_min(input, r)),
        Aggregate::Max => Ok(min_max::choose_refresh_max(input, r)),
        Aggregate::Sum => sum::choose_refresh_sum(input, r, strategy),
        Aggregate::Count => Ok(count::choose_refresh_count(input, r)),
        Aggregate::Avg => avg::choose_refresh_avg(input, r, strategy),
        Aggregate::Median => {
            // Conservative batch plan: refresh everything inexact. The
            // iterative mode implements the cost-aware heuristic.
            let tuples: Vec<TupleId> = input
                .items
                .iter()
                .filter(|i| !i.is_exact())
                .map(|i| i.tid)
                .collect();
            Ok(RefreshPlan::from_tuples(input, tuples))
        }
    }
}

/// The ordered-index probes available to CHOOSE_REFRESH when the input
/// was classified directly from a cached [`trapp_storage::Table`] — the
/// single-cache / single-shard planning routes. Merged scatter-gather
/// inputs have no backing table and plan without probes; every probed
/// planner produces plans **bit-identical** to its scan counterpart
/// (same tuple set, same tie-breaking, same cost-summation order), so
/// routes with and without probes stay interchangeable.
#[derive(Clone, Copy)]
pub struct PlanProbe<'a> {
    /// The cached table the input was classified from.
    pub table: &'a trapp_storage::Table,
    /// The aggregation argument's column, when it is a bare column
    /// reference (the §5.1/§5.2 endpoint and width probes need one).
    pub column: Option<usize>,
    /// `true` when the input covers the whole table with no selection
    /// predicate: classification is all-`T+` and no Appendix D refinement
    /// applies, so raw cell endpoints equal the item intervals — the
    /// precondition of the MIN/MAX/SUM index paths. The COUNT cost-index
    /// path works for any input (membership is checked against `T?`).
    pub unfiltered: bool,
}

/// [`choose_refresh`] with ordered-index acceleration where the paper
/// licenses it (§5.1 endpoint probes for MIN/MAX, the §5.2 uniform-cost
/// width walk for SUM under [`SolverStrategy::GreedyByWeight`], the §6.3
/// cheapest-`T?` cost walk for COUNT). Falls back to the scan planners —
/// with identical output — whenever a precondition or index is missing.
pub fn choose_refresh_probed(
    agg: Aggregate,
    input: &AggInput,
    r: f64,
    strategy: SolverStrategy,
    probe: Option<&PlanProbe<'_>>,
) -> Result<RefreshPlan, TrappError> {
    if r < 0.0 || r.is_nan() {
        return Err(TrappError::NegativePrecision(r));
    }
    if let Some(p) = probe {
        let indexed = match agg {
            Aggregate::Min if p.unfiltered => p
                .column
                .and_then(|c| min_max::choose_refresh_min_indexed(p.table, c, r)),
            Aggregate::Max if p.unfiltered => p
                .column
                .and_then(|c| min_max::choose_refresh_max_indexed(p.table, c, r)),
            Aggregate::Count => count::choose_refresh_count_indexed(input, p.table, r),
            Aggregate::Sum if p.unfiltered && strategy == SolverStrategy::GreedyByWeight => p
                .column
                .and_then(|c| sum::choose_refresh_sum_uniform_indexed(p.table, c, r)),
            _ => None,
        };
        if let Some(plan) = indexed {
            return Ok(plan);
        }
    }
    choose_refresh(agg, input, r, strategy)
}

/// Solves a knapsack instance under the configured strategy.
pub(crate) fn run_solver(
    instance: &trapp_knapsack::Instance,
    strategy: SolverStrategy,
) -> Result<trapp_knapsack::Solution, TrappError> {
    match strategy {
        SolverStrategy::Exact => Ok(instance.solve_exact()),
        SolverStrategy::Fptas(eps) => instance
            .solve_fptas(eps)
            .map_err(|e| TrappError::Plan(format!("knapsack FPTAS failed: {e}"))),
        SolverStrategy::GreedyDensity => Ok(instance.solve_greedy_density()),
        SolverStrategy::GreedyByWeight => Ok(instance.solve_greedy_by_weight()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::test_fixture::*;
    use trapp_expr::{ColumnRef, Expr};

    fn col(name: &str) -> Expr<usize> {
        Expr::Column(ColumnRef::bare(name)).bind(&schema()).unwrap()
    }

    #[test]
    fn rejects_negative_precision() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        assert!(choose_refresh(Aggregate::Sum, &input, -1.0, SolverStrategy::Exact).is_err());
        assert!(choose_refresh(Aggregate::Sum, &input, f64::NAN, SolverStrategy::Exact).is_err());
    }

    #[test]
    fn median_batch_plan_refreshes_all_inexact() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        let plan = choose_refresh(Aggregate::Median, &input, 1.0, SolverStrategy::Exact).unwrap();
        assert_eq!(plan.tuples.len(), 6);
        assert_eq!(plan.planned_cost, 3.0 + 6.0 + 6.0 + 8.0 + 4.0 + 2.0);
    }

    #[test]
    fn plan_from_tuples_sorts_and_prices() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        let plan = RefreshPlan::from_tuples(
            &input,
            vec![trapp_types::TupleId::new(5), trapp_types::TupleId::new(1)],
        );
        assert_eq!(
            plan.tuples,
            vec![trapp_types::TupleId::new(1), trapp_types::TupleId::new(5)]
        );
        assert_eq!(plan.planned_cost, 3.0 + 4.0);
    }
}
