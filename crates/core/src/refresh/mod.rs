//! CHOOSE_REFRESH: the minimum-cost tuple-refresh planners (§5, §6,
//! Appendices B, C, F).
//!
//! Given the classified input of an aggregation query and a precision
//! constraint `R`, a CHOOSE_REFRESH algorithm picks a set `T_R` of tuples
//! such that after refreshing them the bounded answer satisfies
//! `H_A − L_A ≤ R` **for any master values within the current bounds** —
//! the paper's correctness criterion — at minimum (or provably
//! near-minimum) total refresh cost.

pub mod avg;
pub mod count;
pub mod iterative;
pub mod join;
pub mod min_max;
pub mod sum;

use std::fmt;

use trapp_types::{TrappError, TupleId};

use crate::agg::{AggInput, Aggregate};

/// How the knapsack sub-problems (SUM, AVG) are solved.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SolverStrategy {
    /// Branch-and-bound — exact, exponential worst case (§5.2's
    /// "dynamic programming … worst-case exponential" remark corresponds to
    /// exact solving; fine at the paper's instance sizes).
    Exact,
    /// The Ibarra–Kim FPTAS with parameter ε (the paper's default; Figure 5
    /// sweeps ε).
    Fptas(f64),
    /// Density greedy (½-approximation) — cheapest planning, loosest cost.
    GreedyDensity,
    /// Weight-ascending greedy — optimal only under uniform refresh costs
    /// (§5.2's special case).
    GreedyByWeight,
}

impl Default for SolverStrategy {
    fn default() -> Self {
        SolverStrategy::Fptas(0.1)
    }
}

impl fmt::Display for SolverStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverStrategy::Exact => write!(f, "exact"),
            SolverStrategy::Fptas(e) => write!(f, "fptas(ε={e})"),
            SolverStrategy::GreedyDensity => write!(f, "greedy-density"),
            SolverStrategy::GreedyByWeight => write!(f, "greedy-by-weight"),
        }
    }
}

/// The output of CHOOSE_REFRESH: which tuples to refresh and what that is
/// expected to cost.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RefreshPlan {
    /// Tuples to refresh, in ascending id order.
    pub tuples: Vec<TupleId>,
    /// Total refresh cost of the plan (`Σ Cᵢ` over `tuples`).
    pub planned_cost: f64,
}

impl RefreshPlan {
    /// An empty plan (the cached answer already satisfies the constraint).
    pub fn empty() -> RefreshPlan {
        RefreshPlan::default()
    }

    /// Builds a plan from the chosen tuples of `input`.
    pub(crate) fn from_tuples(input: &AggInput, mut tuples: Vec<TupleId>) -> RefreshPlan {
        tuples.sort_unstable();
        tuples.dedup();
        // One pass over the items instead of one scan per chosen tuple;
        // the cost sum still runs in ascending tuple order so the float
        // total is bit-stable against the old quadratic path.
        let mut costs: std::collections::HashMap<TupleId, f64> =
            std::collections::HashMap::with_capacity(tuples.len());
        for item in &input.items {
            if tuples.binary_search(&item.tid).is_ok() {
                costs.insert(item.tid, item.cost);
            }
        }
        let cost = tuples
            .iter()
            .map(|tid| costs.get(tid).copied().unwrap_or(0.0))
            .sum();
        RefreshPlan {
            tuples,
            planned_cost: cost,
        }
    }

    /// `true` if nothing needs refreshing.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// Dispatches to the aggregate-specific CHOOSE_REFRESH algorithm.
///
/// `r` is the precision constraint (finite; `R = ∞` never reaches
/// planning). `MEDIAN` has no batch planner with a non-trivial guarantee
/// (the paper defers it to [FMP+00]); it refreshes every inexact tuple —
/// use the iterative executor mode for the cost-aware strategy.
pub fn choose_refresh(
    agg: Aggregate,
    input: &AggInput,
    r: f64,
    strategy: SolverStrategy,
) -> Result<RefreshPlan, TrappError> {
    if r < 0.0 || r.is_nan() {
        return Err(TrappError::NegativePrecision(r));
    }
    match agg {
        Aggregate::Min => Ok(min_max::choose_refresh_min(input, r)),
        Aggregate::Max => Ok(min_max::choose_refresh_max(input, r)),
        Aggregate::Sum => sum::choose_refresh_sum(input, r, strategy),
        Aggregate::Count => Ok(count::choose_refresh_count(input, r)),
        Aggregate::Avg => avg::choose_refresh_avg(input, r, strategy),
        Aggregate::Median => {
            // Conservative batch plan: refresh everything inexact. The
            // iterative mode implements the cost-aware heuristic.
            let tuples: Vec<TupleId> = input
                .items
                .iter()
                .filter(|i| !i.is_exact())
                .map(|i| i.tid)
                .collect();
            Ok(RefreshPlan::from_tuples(input, tuples))
        }
    }
}

/// A CHOOSE_REFRESH plan restricted to *available* tuples, with a flag
/// saying whether the precision constraint is still guaranteed.
#[derive(Clone, Debug, PartialEq)]
pub struct AvailablePlan {
    /// Tuples to refresh — never includes an excluded tuple.
    pub plan: RefreshPlan,
    /// `true`: executing `plan` guarantees `H_A − L_A ≤ R` for any master
    /// values within the current bounds, exactly like [`choose_refresh`].
    /// `false`: no refresh set over available tuples can guarantee the
    /// constraint; `plan` is the best-effort maximal narrowing instead
    /// (callers decide between a degraded answer and an error).
    pub achievable: bool,
}

/// [`choose_refresh`] over *available* tuples only: tuples in `excluded`
/// (typically: backed by a source whose circuit breaker is open) cannot be
/// refreshed, so they are forced to stay cached and the aggregate-specific
/// planners solve for the cheapest refresh set among the rest.
///
/// Per aggregate (§5/§6 adapted):
/// * **SUM / AVG** — excluded tuples are forced into the knapsack keep
///   set: their weights are charged against the capacity up front and the
///   solver runs over available items; a negative reduced capacity means
///   unachievable.
/// * **COUNT** — the `⌈|T?| − R⌉` cheapest *available* `T?` tuples; fewer
///   available than needed means unachievable.
/// * **MIN / MAX** — the forced set is necessary *and* sufficient, so any
///   excluded forced tuple means unachievable; the plan refreshes the
///   available part of the forced set either way.
/// * **MEDIAN** — the conservative all-inexact plan restricted to
///   available tuples; any excluded inexact tuple means unachievable.
///
/// With `excluded` empty this is exactly [`choose_refresh`] with
/// `achievable = true`.
pub fn choose_refresh_available(
    agg: Aggregate,
    input: &AggInput,
    r: f64,
    strategy: SolverStrategy,
    excluded: &std::collections::HashSet<TupleId>,
) -> Result<AvailablePlan, TrappError> {
    if r < 0.0 || r.is_nan() {
        return Err(TrappError::NegativePrecision(r));
    }
    if excluded.is_empty() {
        return Ok(AvailablePlan {
            plan: choose_refresh(agg, input, r, strategy)?,
            achievable: true,
        });
    }
    let split_forced = |forced: Vec<TupleId>| {
        let achievable = forced.iter().all(|t| !excluded.contains(t));
        let available: Vec<TupleId> = forced
            .into_iter()
            .filter(|t| !excluded.contains(t))
            .collect();
        AvailablePlan {
            plan: RefreshPlan::from_tuples(input, available),
            achievable,
        }
    };
    match agg {
        Aggregate::Min => Ok(split_forced(min_max::min_forced_set(input, r))),
        Aggregate::Max => Ok(split_forced(min_max::max_forced_set(input, r))),
        Aggregate::Sum => {
            let weights: Vec<f64> = input
                .items
                .iter()
                .map(crate::agg::sum::sum_weight)
                .collect();
            match sum::solve_keep_set_excluding(input, &weights, r, strategy, excluded)? {
                Some(plan) => Ok(AvailablePlan {
                    plan,
                    achievable: true,
                }),
                None => Ok(AvailablePlan {
                    plan: avg::best_effort_plan(input, &weights, excluded),
                    achievable: false,
                }),
            }
        }
        Aggregate::Count => {
            let (plan, achievable) = count::choose_refresh_count_excluding(input, r, excluded);
            Ok(AvailablePlan { plan, achievable })
        }
        Aggregate::Avg => {
            let (plan, achievable) =
                avg::choose_refresh_avg_excluding(input, r, strategy, excluded)?;
            Ok(AvailablePlan { plan, achievable })
        }
        Aggregate::Median => {
            let inexact: Vec<TupleId> = input
                .items
                .iter()
                .filter(|i| !i.is_exact())
                .map(|i| i.tid)
                .collect();
            Ok(split_forced(inexact))
        }
    }
}

/// The ordered-index probes available to CHOOSE_REFRESH when the input
/// was classified directly from a cached [`trapp_storage::Table`] — the
/// single-cache / single-shard planning routes. Merged scatter-gather
/// inputs have no backing table and plan without probes; every probed
/// planner produces plans **bit-identical** to its scan counterpart
/// (same tuple set, same tie-breaking, same cost-summation order), so
/// routes with and without probes stay interchangeable.
#[derive(Clone, Copy)]
pub struct PlanProbe<'a> {
    /// The cached table the input was classified from.
    pub table: &'a trapp_storage::Table,
    /// The aggregation argument's column, when it is a bare column
    /// reference (the §5.1/§5.2 endpoint and width probes need one).
    pub column: Option<usize>,
    /// `true` when the input covers the whole table with no selection
    /// predicate: classification is all-`T+` and no Appendix D refinement
    /// applies, so raw cell endpoints equal the item intervals — the
    /// precondition of the MIN/MAX/SUM index paths. The COUNT cost-index
    /// path works for any input (membership is checked against `T?`).
    pub unfiltered: bool,
}

/// [`choose_refresh`] with ordered-index acceleration where the paper
/// licenses it (§5.1 endpoint probes for MIN/MAX, the §5.2 uniform-cost
/// width walk for SUM under [`SolverStrategy::GreedyByWeight`], the §6.3
/// cheapest-`T?` cost walk for COUNT). Falls back to the scan planners —
/// with identical output — whenever a precondition or index is missing.
pub fn choose_refresh_probed(
    agg: Aggregate,
    input: &AggInput,
    r: f64,
    strategy: SolverStrategy,
    probe: Option<&PlanProbe<'_>>,
) -> Result<RefreshPlan, TrappError> {
    if r < 0.0 || r.is_nan() {
        return Err(TrappError::NegativePrecision(r));
    }
    if let Some(p) = probe {
        let indexed = match agg {
            Aggregate::Min if p.unfiltered => p
                .column
                .and_then(|c| min_max::choose_refresh_min_indexed(p.table, c, r)),
            Aggregate::Max if p.unfiltered => p
                .column
                .and_then(|c| min_max::choose_refresh_max_indexed(p.table, c, r)),
            Aggregate::Count => count::choose_refresh_count_indexed(input, p.table, r),
            Aggregate::Sum if p.unfiltered && strategy == SolverStrategy::GreedyByWeight => p
                .column
                .and_then(|c| sum::choose_refresh_sum_uniform_indexed(p.table, c, r)),
            _ => None,
        };
        if let Some(plan) = indexed {
            return Ok(plan);
        }
    }
    choose_refresh(agg, input, r, strategy)
}

/// Solves a knapsack instance under the configured strategy.
pub(crate) fn run_solver(
    instance: &trapp_knapsack::Instance,
    strategy: SolverStrategy,
) -> Result<trapp_knapsack::Solution, TrappError> {
    match strategy {
        SolverStrategy::Exact => Ok(instance.solve_exact()),
        SolverStrategy::Fptas(eps) => instance
            .solve_fptas(eps)
            .map_err(|e| TrappError::Plan(format!("knapsack FPTAS failed: {e}"))),
        SolverStrategy::GreedyDensity => Ok(instance.solve_greedy_density()),
        SolverStrategy::GreedyByWeight => Ok(instance.solve_greedy_by_weight()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::test_fixture::*;
    use trapp_expr::{ColumnRef, Expr};

    fn col(name: &str) -> Expr<usize> {
        Expr::Column(ColumnRef::bare(name)).bind(&schema()).unwrap()
    }

    #[test]
    fn rejects_negative_precision() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        assert!(choose_refresh(Aggregate::Sum, &input, -1.0, SolverStrategy::Exact).is_err());
        assert!(choose_refresh(Aggregate::Sum, &input, f64::NAN, SolverStrategy::Exact).is_err());
    }

    #[test]
    fn median_batch_plan_refreshes_all_inexact() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        let plan = choose_refresh(Aggregate::Median, &input, 1.0, SolverStrategy::Exact).unwrap();
        assert_eq!(plan.tuples.len(), 6);
        assert_eq!(plan.planned_cost, 3.0 + 6.0 + 6.0 + 8.0 + 4.0 + 2.0);
    }

    #[test]
    fn available_with_no_exclusions_matches_choose_refresh() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("traffic"))).unwrap();
        let excluded = std::collections::HashSet::new();
        for agg in [
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Sum,
            Aggregate::Count,
            Aggregate::Avg,
            Aggregate::Median,
        ] {
            let full = choose_refresh(agg, &input, 10.0, SolverStrategy::Exact).unwrap();
            let avail =
                choose_refresh_available(agg, &input, 10.0, SolverStrategy::Exact, &excluded)
                    .unwrap();
            assert!(avail.achievable, "{agg:?}");
            assert_eq!(avail.plan, full, "{agg:?}");
        }
    }

    #[test]
    fn excluding_a_forced_min_tuple_is_unachievable() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("traffic"))).unwrap();
        let full = choose_refresh(Aggregate::Min, &input, 1.0, SolverStrategy::Exact).unwrap();
        assert!(!full.tuples.is_empty());
        let excluded: std::collections::HashSet<_> = [full.tuples[0]].into();
        let avail = choose_refresh_available(
            Aggregate::Min,
            &input,
            1.0,
            SolverStrategy::Exact,
            &excluded,
        )
        .unwrap();
        assert!(!avail.achievable, "a forced tuple is irreplaceable");
        assert!(
            !avail.plan.tuples.contains(&full.tuples[0]),
            "the plan must never include an excluded tuple"
        );
        for t in &full.tuples[1..] {
            assert!(
                avail.plan.tuples.contains(t),
                "the available part of the forced set still refreshes"
            );
        }
    }

    #[test]
    fn sum_exclusion_forces_keep_and_detects_unachievable() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("traffic"))).unwrap();
        // Total width 95. R = 40: achievable even with one mid-width tuple
        // excluded, and the plan must avoid it.
        let some_tid = input.items[2].tid;
        let excluded: std::collections::HashSet<_> = [some_tid].into();
        let avail = choose_refresh_available(
            Aggregate::Sum,
            &input,
            40.0,
            SolverStrategy::Exact,
            &excluded,
        )
        .unwrap();
        assert!(avail.achievable);
        assert!(!avail.plan.tuples.contains(&some_tid));
        // Kept width (including the excluded tuple) must satisfy R.
        let kept: f64 = input
            .items
            .iter()
            .filter(|i| !avail.plan.tuples.contains(&i.tid))
            .map(|i| i.interval.width())
            .sum();
        assert!(kept <= 40.0 + 1e-12, "kept width {kept}");

        // R = 0 with anything bounded excluded is unachievable; the
        // best-effort plan refreshes every available weighted tuple.
        let avail = choose_refresh_available(
            Aggregate::Sum,
            &input,
            0.0,
            SolverStrategy::Exact,
            &excluded,
        )
        .unwrap();
        assert!(!avail.achievable);
        assert!(!avail.plan.tuples.contains(&some_tid));
        assert_eq!(avail.plan.tuples.len(), 5, "all 5 available tuples refresh");
    }

    #[test]
    fn count_exclusion_picks_cheapest_available() {
        let t = links_table();
        let pred = trapp_expr::Expr::binary(
            trapp_expr::BinaryOp::Gt,
            trapp_expr::Expr::Column(trapp_expr::ColumnRef::bare("latency")),
            trapp_expr::Expr::Literal(trapp_types::Value::Float(10.0)),
        )
        .bind(&schema())
        .unwrap();
        let input = AggInput::build(&t, Some(&pred), Some(&col("latency"))).unwrap();
        // Q5 fixture: T? = {4 (cost 8), 5 (cost 4)}; R = 1 needs 1 tuple —
        // normally tuple 5, but with 5 dark it must take 4.
        let excluded: std::collections::HashSet<_> = [trapp_types::TupleId::new(5)].into();
        let avail = choose_refresh_available(
            Aggregate::Count,
            &input,
            1.0,
            SolverStrategy::Exact,
            &excluded,
        )
        .unwrap();
        assert!(avail.achievable);
        assert_eq!(avail.plan.tuples, vec![trapp_types::TupleId::new(4)]);
        // R = 0 needs both → unachievable with 5 dark.
        let avail = choose_refresh_available(
            Aggregate::Count,
            &input,
            0.0,
            SolverStrategy::Exact,
            &excluded,
        )
        .unwrap();
        assert!(!avail.achievable);
        assert_eq!(avail.plan.tuples, vec![trapp_types::TupleId::new(4)]);
    }

    #[test]
    fn plan_from_tuples_sorts_and_prices() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        let plan = RefreshPlan::from_tuples(
            &input,
            vec![trapp_types::TupleId::new(5), trapp_types::TupleId::new(1)],
        );
        assert_eq!(
            plan.tuples,
            vec![trapp_types::TupleId::new(1), trapp_types::TupleId::new(5)]
        );
        assert_eq!(plan.planned_cost, 3.0 + 4.0);
    }
}
