//! CHOOSE_REFRESH for MIN and MAX (§5.1, §6.1, Appendices B and C).
//!
//! The MIN rule: refresh exactly the tuples
//!
//! ```text
//! T_R = { tᵢ ∈ T+ ∪ T? : Lᵢ < min over T+ of Hₖ − R }
//! ```
//!
//! independent of refresh cost. Appendix B proves this both *necessary*
//! (leave any such tuple cached and an adversary realizes every other value
//! at its upper bound, forcing width > R) and *sufficient* (every cached
//! low endpoint is then within R of the guaranteed upper bound, which
//! refreshes can only lower). MAX mirrors with
//! `Hᵢ > max over T+ of Lₖ + R`.

use trapp_storage::{IndexKey, Table};
use trapp_types::TupleId;

use crate::agg::AggInput;

use super::RefreshPlan;

/// The *forced* refresh set for MIN: every tuple with `Lᵢ < min(Hₖ) − R`.
/// Appendix B proves membership both necessary and sufficient, so this is
/// exactly the set of tuples that MUST refresh — there is no cheaper
/// substitute for any member.
pub(crate) fn min_forced_set(input: &AggInput, r: f64) -> Vec<TupleId> {
    // min over T+ of H — +∞ when T+ is empty, which forces refreshing every
    // tuple whose low endpoint is finite (correct: nothing anchors the
    // guaranteed side of the answer).
    let mut min_plus_hi = f64::INFINITY;
    for item in input.plus() {
        min_plus_hi = min_plus_hi.min(item.interval.hi());
    }
    let threshold = min_plus_hi - r;
    input
        .items
        .iter()
        .filter(|i| i.interval.lo() < threshold)
        .map(|i| i.tid)
        .collect()
}

/// The forced refresh set for MAX (mirror of [`min_forced_set`]).
pub(crate) fn max_forced_set(input: &AggInput, r: f64) -> Vec<TupleId> {
    let mut max_plus_lo = f64::NEG_INFINITY;
    for item in input.plus() {
        max_plus_lo = max_plus_lo.max(item.interval.lo());
    }
    let threshold = max_plus_lo + r;
    input
        .items
        .iter()
        .filter(|i| i.interval.hi() > threshold)
        .map(|i| i.tid)
        .collect()
}

/// CHOOSE_REFRESH for MIN (optimal, cost-independent).
pub fn choose_refresh_min(input: &AggInput, r: f64) -> RefreshPlan {
    RefreshPlan::from_tuples(input, min_forced_set(input, r))
}

/// Index-accelerated CHOOSE_REFRESH for MIN without a predicate (§5.1's
/// sub-linear path): "If B-tree indexes exist on both the upper and lower
/// bounds, the set T_R can be found in time less than O(|T|) by first using
/// the index on upper bounds to find min(Hₖ), and then using the index on
/// lower bounds to find tuples that satisfy Lᵢ < min(Hₖ) − R."
///
/// Returns `None` if either index is missing (callers fall back to the
/// scan-based [`choose_refresh_min`]). The returned plan is identical to
/// the scan planner's — verified by tests and usable interchangeably.
pub fn choose_refresh_min_indexed(table: &Table, column: usize, r: f64) -> Option<RefreshPlan> {
    let hi = table.index(IndexKey::Hi { column })?;
    let lo = table.index(IndexKey::Lo { column })?;
    let min_hi = match hi.min_key() {
        Some(k) => k.get(),
        None => return Some(RefreshPlan::empty()), // empty table
    };
    let threshold = trapp_types::OrderedF64::new(min_hi - r).ok()?;
    let mut tuples: Vec<TupleId> = lo.below(threshold).collect();
    tuples.sort_unstable();
    let cost = tuples.iter().map(|&t| table.cost(t).unwrap_or(0.0)).sum();
    Some(RefreshPlan {
        tuples,
        planned_cost: cost,
    })
}

/// Index-accelerated CHOOSE_REFRESH for MAX without a predicate (mirror of
/// [`choose_refresh_min_indexed`]).
pub fn choose_refresh_max_indexed(table: &Table, column: usize, r: f64) -> Option<RefreshPlan> {
    let hi = table.index(IndexKey::Hi { column })?;
    let lo = table.index(IndexKey::Lo { column })?;
    let max_lo = match lo.max_key() {
        Some(k) => k.get(),
        None => return Some(RefreshPlan::empty()),
    };
    let threshold = trapp_types::OrderedF64::new(max_lo + r).ok()?;
    let mut tuples: Vec<TupleId> = hi.above(threshold).collect();
    tuples.sort_unstable();
    let cost = tuples.iter().map(|&t| table.cost(t).unwrap_or(0.0)).sum();
    Some(RefreshPlan {
        tuples,
        planned_cost: cost,
    })
}

/// CHOOSE_REFRESH for MAX (mirror of MIN).
pub fn choose_refresh_max(input: &AggInput, r: f64) -> RefreshPlan {
    RefreshPlan::from_tuples(input, max_forced_set(input, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::test_fixture::*;
    use crate::agg::AggInput;
    use trapp_expr::{BinaryOp, ColumnRef, Expr};
    use trapp_types::Value;

    fn col(name: &str) -> Expr<usize> {
        Expr::Column(ColumnRef::bare(name)).bind(&schema()).unwrap()
    }

    fn on_path() -> Expr<usize> {
        Expr::binary(
            BinaryOp::Eq,
            Expr::Column(ColumnRef::bare("on_path")),
            Expr::Literal(Value::Bool(true)),
        )
        .bind(&schema())
        .unwrap()
    }

    fn ids(v: &[u64]) -> Vec<trapp_types::TupleId> {
        v.iter().copied().map(trapp_types::TupleId::new).collect()
    }

    /// Q1 (§5.1): MIN bandwidth over {1,2,5,6} with R = 10: min H = 55,
    /// threshold 45; only tuple 5 (L = 40) refreshes.
    #[test]
    fn paper_q1_choose_refresh() {
        let t = links_table();
        let input = AggInput::build(&t, Some(&on_path()), Some(&col("bandwidth"))).unwrap();
        let plan = choose_refresh_min(&input, 10.0);
        assert_eq!(plan.tuples, ids(&[5]));
        assert_eq!(plan.planned_cost, 4.0);
    }

    /// Q4 (§6.1): MIN traffic WHERE bw>50 AND lat<10, R = 10:
    /// min over T+ of H = 105, threshold 95; tuples 5, 6 (L = 90) refresh.
    #[test]
    fn paper_q4_choose_refresh() {
        let t = links_table();
        let pred = Expr::and(
            Expr::binary(
                BinaryOp::Gt,
                Expr::Column(ColumnRef::bare("bandwidth")),
                Expr::Literal(Value::Float(50.0)),
            ),
            Expr::binary(
                BinaryOp::Lt,
                Expr::Column(ColumnRef::bare("latency")),
                Expr::Literal(Value::Float(10.0)),
            ),
        )
        .bind(&schema())
        .unwrap();
        let input = AggInput::build(&t, Some(&pred), Some(&col("traffic"))).unwrap();
        let plan = choose_refresh_min(&input, 10.0);
        assert_eq!(plan.tuples, ids(&[5, 6]));
    }

    #[test]
    fn loose_constraint_refreshes_nothing() {
        let t = links_table();
        let input = AggInput::build(&t, Some(&on_path()), Some(&col("bandwidth"))).unwrap();
        // Initial width of MIN bandwidth is 15 ([40, 55]); R = 15 suffices.
        let plan = choose_refresh_min(&input, 15.0);
        assert!(plan.is_empty());
    }

    #[test]
    fn r_zero_refreshes_all_possibly_minimal_tuples() {
        let t = links_table();
        let input = AggInput::build(&t, Some(&on_path()), Some(&col("bandwidth"))).unwrap();
        let plan = choose_refresh_min(&input, 0.0);
        // threshold = 55: tuples with lo < 55: t2 (45), t5 (40), t6 (45);
        // t1 (60) stays.
        assert_eq!(plan.tuples, ids(&[2, 5, 6]));
    }

    #[test]
    fn max_mirror() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        // MAX latency: max lo = 12 (t3); R = 2 → threshold 14; tuples with
        // hi > 14: t3 (16).
        let plan = choose_refresh_max(&input, 2.0);
        assert_eq!(plan.tuples, ids(&[3]));
        // R = 4 → threshold 16; nothing exceeds it.
        let plan = choose_refresh_max(&input, 4.0);
        assert!(plan.is_empty());
    }

    /// The §5.1 sub-linear index path must agree with the scan planner on
    /// every (R, workload) probe.
    #[test]
    fn indexed_min_matches_scan_planner() {
        let mut t = links_table();
        t.create_index(trapp_storage::IndexKey::Lo { column: BANDWIDTH })
            .unwrap();
        t.create_index(trapp_storage::IndexKey::Hi { column: BANDWIDTH })
            .unwrap();
        for r in [0.0, 5.0, 10.0, 15.0, 30.0, 100.0] {
            let input = AggInput::build(&t, None, Some(&col("bandwidth"))).unwrap();
            let scan = choose_refresh_min(&input, r);
            let indexed = choose_refresh_min_indexed(&t, BANDWIDTH, r).unwrap();
            assert_eq!(scan, indexed, "R = {r}");
        }
        // Missing indexes → None (fallback signal).
        let bare = links_table();
        assert!(choose_refresh_min_indexed(&bare, BANDWIDTH, 1.0).is_none());
    }

    #[test]
    fn indexed_max_matches_scan_planner() {
        let mut t = links_table();
        t.create_index(trapp_storage::IndexKey::Lo { column: LATENCY })
            .unwrap();
        t.create_index(trapp_storage::IndexKey::Hi { column: LATENCY })
            .unwrap();
        for r in [0.0, 2.0, 4.0, 10.0] {
            let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
            let scan = choose_refresh_max(&input, r);
            let indexed = choose_refresh_max_indexed(&t, LATENCY, r).unwrap();
            assert_eq!(scan, indexed, "R = {r}");
        }
    }

    /// The index path stays consistent across refresh mutations (index
    /// maintenance feeds directly into planning).
    #[test]
    fn indexed_plan_tracks_mutations() {
        let mut t = links_table();
        t.create_index(trapp_storage::IndexKey::Lo { column: BANDWIDTH })
            .unwrap();
        t.create_index(trapp_storage::IndexKey::Hi { column: BANDWIDTH })
            .unwrap();
        // Initially tuple 5 blocks at R = 10 (Q1).
        let before = choose_refresh_min_indexed(&t, BANDWIDTH, 10.0).unwrap();
        assert_eq!(before.tuples, ids(&[5]));
        // Refresh tuple 5 to its master value 50: min(H) drops to 50 and
        // nothing has lo < 40.
        t.refresh_cell(trapp_types::TupleId::new(5), BANDWIDTH, 50.0)
            .unwrap();
        let after = choose_refresh_min_indexed(&t, BANDWIDTH, 10.0).unwrap();
        assert!(after.is_empty(), "{:?}", after.tuples);
    }

    #[test]
    fn empty_plus_band_forces_wide_refresh() {
        let t = links_table();
        // No tuple certainly passes traffic > 144.9 (tuple 4 tops at 145).
        let pred = Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("traffic")),
            Expr::Literal(Value::Float(144.9)),
        )
        .bind(&schema())
        .unwrap();
        let input = AggInput::build(&t, Some(&pred), Some(&col("latency"))).unwrap();
        assert_eq!(input.plus_count(), 0);
        let plan = choose_refresh_min(&input, 5.0);
        // Threshold is +∞ − 5 = +∞: every T? tuple must refresh.
        assert_eq!(plan.tuples.len(), input.question_count());
    }
}
