//! Relative precision constraints (§8.1).
//!
//! A relative constraint `P ≥ 0` demands `H_A − L_A ≤ 2·A·P` where `A` is
//! the (unknown) precise answer. The paper's suggestion: derive, from a
//! first cache-only pass yielding `[L₀, H₀] ∋ A`, a conservative *absolute*
//! constraint `R` with `R ≤ 2·|A|·P` guaranteed — then run the ordinary
//! machinery.

use trapp_types::{Interval, TrappError};

/// The conservative absolute constraint: `R = 2·P·min_{A ∈ [L₀,H₀]} |A|`.
///
/// If the first-pass bound straddles zero the minimum possible `|A|` is 0
/// and the only safe absolute constraint is exactness (`R = 0`).
pub fn conservative_absolute_r(first_pass: Interval, p: f64) -> Result<f64, TrappError> {
    if p.is_nan() || p < 0.0 {
        return Err(TrappError::NegativePrecision(p));
    }
    let min_abs = if first_pass.contains(0.0) {
        0.0
    } else {
        first_pass.lo().abs().min(first_pass.hi().abs())
    };
    let r = 2.0 * p * min_abs;
    Ok(if r.is_finite() { r } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn positive_answer_uses_lower_endpoint() {
        // A ∈ [100, 120], P = 5% → R = 2·0.05·100 = 10 ≤ 2·A·P for all A.
        let r = conservative_absolute_r(iv(100.0, 120.0), 0.05).unwrap();
        assert_eq!(r, 10.0);
    }

    #[test]
    fn negative_answer_uses_magnitude() {
        let r = conservative_absolute_r(iv(-120.0, -100.0), 0.05).unwrap();
        assert_eq!(r, 10.0);
    }

    #[test]
    fn zero_straddling_forces_exactness() {
        assert_eq!(conservative_absolute_r(iv(-1.0, 5.0), 0.1).unwrap(), 0.0);
        assert_eq!(conservative_absolute_r(iv(0.0, 5.0), 0.1).unwrap(), 0.0);
    }

    #[test]
    fn infinite_first_pass_forces_exactness() {
        assert_eq!(
            conservative_absolute_r(Interval::UNBOUNDED, 0.1).unwrap(),
            0.0
        );
    }

    #[test]
    fn guarantee_holds_for_any_answer_in_bound() {
        let bounds = [iv(3.0, 9.0), iv(-9.0, -3.0), iv(50.0, 51.0)];
        for b in bounds {
            let p = 0.07;
            let r = conservative_absolute_r(b, p).unwrap();
            // For every representative A in the bound, R ≤ 2·|A|·P.
            for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let a = b.lo() + frac * b.width();
                assert!(r <= 2.0 * a.abs() * p + 1e-12, "A={a}: R={r}");
            }
        }
    }

    #[test]
    fn rejects_bad_p() {
        assert!(conservative_absolute_r(iv(1.0, 2.0), -0.1).is_err());
        assert!(conservative_absolute_r(iv(1.0, 2.0), f64::NAN).is_err());
    }
}
