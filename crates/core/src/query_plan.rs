//! Shape-generic query planning: one [`QueryPlan`] every query shape
//! lowers into, and one [`QueryPartial`] every shape decomposes into for
//! sharded scatter-gather.
//!
//! Historically the read-only planning surface was two parallel enums —
//! `PlannedQuery` for the serving layer's phased plan/fetch/install loop
//! and `PartialQuery` for the scatter half of a sharded deployment — each
//! with an ad-hoc `Unsupported` arm for joins, `GROUP BY`, and iterative
//! mode. This module replaces both with a single lowering that covers the
//! paper's full query surface:
//!
//! * **scalar** (single table, no `GROUP BY`) — one [`UnitState`] holding
//!   the cache-only answer and, if unsatisfied, the batch CHOOSE_REFRESH
//!   fetch set. Installing the set guarantees the constraint
//!   ([`FetchPlan::complete`]), so one fetch round normally suffices.
//! * **grouped** (§8.1) — one [`UnitState`] *per group*: the group key
//!   partitions the rows, each partition independently receives the
//!   query's `WITHIN` constraint, and the per-group fetch sets are
//!   disjoint (groups partition the table), so a serving layer merges
//!   them into one multi-tuple fetch round.
//! * **join** (§7) — the paper stops at per-round heuristics for join
//!   refresh, so a join lowers into *incomplete* single-tuple fetch
//!   rounds ([`FetchPlan::complete`]` = false`): each round the best
//!   base-tuple candidate under the session's
//!   [`IterativeHeuristic`] is fetched and the plan re-derived. The
//!   fetches still run outside any cache lock — that is the point.
//!
//! Iterative mode (§8.2) picks each refresh from *live* master values and
//! therefore cannot be planned ahead; it is the one remaining
//! [`QueryPlan::Iterative`] escape hatch, executed by the caller under
//! its cache lock.
//!
//! The scatter side mirrors the same three shapes: a scalar partial is
//! today's [`ShardPartial`], a grouped partial is a key-indexed list of
//! them (merged per key by
//! [`merge_grouped_partials`](crate::merge::merge_grouped_partials)), and
//! a join partial is a [`TableSlice`] per side — the shard's materialized
//! base rows, gathered and concatenated by
//! [`merge_table_slices`](crate::merge::merge_table_slices) into exactly
//! the tables a single cache would hold, before the ordinary join
//! pipeline derives bounds once from the merged input. Deriving from
//! merged *inputs* (never from per-shard answers) is what keeps sharded
//! answers bit-equivalent to the single-cache answers.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::OnceLock;

use trapp_sql::Query;
use trapp_storage::Table;
use trapp_types::{BoundedValue, TrappError, TupleId};

use crate::agg::{bounded_answer, AggInput, Aggregate, BoundedAnswer};
use crate::executor::{ExecutionMode, QueryResult, QuerySession};
use crate::group_by::{group_partitions, render_key, GroupKey, GroupResult};
use crate::merge::ShardPartial;
use crate::plan::{bind_query, BoundQuery, QuerySource};
use crate::refresh::iterative::IterativeHeuristic;
use crate::refresh::join::{build_join_input, join_refresh_batch_excluding, JoinSide};
use crate::refresh::{choose_refresh_available, choose_refresh_probed, PlanProbe, SolverStrategy};

/// Tuples the planner must not schedule for refresh, keyed by table —
/// typically because their backing source is dark (circuit breaker open,
/// or it already failed this query). Planners handed a non-empty set run
/// the exclusion-aware CHOOSE_REFRESH variants, which pick the cheapest
/// refresh set over *available* tuples and report whether the precision
/// constraint is still guaranteeable ([`UnitState::degraded`]).
#[derive(Clone, Debug, Default)]
pub struct Exclusions {
    by_table: HashMap<String, HashSet<TupleId>>,
}

impl Exclusions {
    /// `true` when no tuple is excluded anywhere — planning is then
    /// bit-identical to the exclusion-free paths.
    pub fn is_empty(&self) -> bool {
        self.by_table.values().all(HashSet::is_empty)
    }

    /// Marks one tuple of `table` as unavailable.
    pub fn insert(&mut self, table: &str, tid: TupleId) {
        self.by_table
            .entry(table.to_owned())
            .or_default()
            .insert(tid);
    }

    /// Marks a batch of `table`'s tuples as unavailable.
    pub fn extend(&mut self, table: &str, tids: impl IntoIterator<Item = TupleId>) {
        self.by_table
            .entry(table.to_owned())
            .or_default()
            .extend(tids);
    }

    /// The excluded tuples of `table` (the shared empty set when none).
    pub fn for_table(&self, table: &str) -> &HashSet<TupleId> {
        self.by_table
            .get(table)
            .unwrap_or_else(|| empty_tuple_set())
    }
}

/// The shared empty exclusion set (`&'static` so lookups can hand out a
/// reference without holding storage per [`Exclusions`]).
fn empty_tuple_set() -> &'static HashSet<TupleId> {
    static EMPTY: OnceLock<HashSet<TupleId>> = OnceLock::new();
    EMPTY.get_or_init(HashSet::new)
}

/// The complete result(s) of one query: a single bounded answer, or one
/// per group for `GROUP BY` queries (key-sorted).
#[derive(Clone, Debug)]
pub enum QueryOutcome {
    /// A single-row answer (scalar and join queries).
    Scalar(QueryResult),
    /// One result per group, in deterministic key-sorted order.
    Grouped(Vec<GroupResult>),
}

/// The tuples one unsatisfied unit (whole query, or one group) must have
/// refreshed, with the planned cost.
#[derive(Clone, Debug)]
pub struct UnitFetch {
    /// The table holding the tuples (for joins, the chosen side).
    pub table: String,
    /// Tuples to refresh, ascending.
    pub tuples: Vec<TupleId>,
    /// `Σ Cᵢ` over the tuples.
    pub refresh_cost: f64,
}

/// One plannable unit's state at planning time: the whole query for
/// scalar/join shapes, one group for grouped shapes.
#[derive(Clone, Debug)]
pub struct UnitState {
    /// The group key (empty for scalar and join units).
    pub key: GroupKey,
    /// The cache-only answer at planning time.
    pub initial: BoundedAnswer,
    /// Whether `initial` already satisfies the constraint. `false` with
    /// [`UnitState::fetch`]` = None` means no refresh can help further
    /// (e.g. MEDIAN's conservative plan under cardinality slack).
    pub satisfied: bool,
    /// `true` when the constraint cannot be guaranteed by refreshing
    /// *available* tuples only — some tuple every sufficient refresh set
    /// needs is excluded (dark source). The fetch, if any, is then the
    /// best-effort maximal narrowing over available tuples. Always `false`
    /// when planning without [`Exclusions`].
    pub degraded: bool,
    /// The refresh set that will satisfy the constraint (`None` when
    /// satisfied or when no refresh can help).
    pub fetch: Option<UnitFetch>,
}

/// The fetch round a query plan requests: per-unit refresh sets to pull
/// from the sources with no cache lock held, then install and re-plan.
#[derive(Clone, Debug)]
pub struct FetchPlan {
    /// Every unit's state — including already-satisfied units, so a
    /// caller can record each unit's true pre-refresh initial answer.
    pub units: Vec<UnitState>,
    /// `true` for `GROUP BY` plans (units carry group keys).
    pub grouped: bool,
    /// `true` when installing the whole round guarantees the constraint
    /// (the CHOOSE_REFRESH batch guarantee — scalar and grouped shapes);
    /// `false` for join rounds, which are heuristic single-tuple steps
    /// and re-plan until the answer converges.
    pub complete: bool,
}

/// The outcome of planning a query read-only — the shape-generic
/// replacement for the old `PlannedQuery` / `PartialQuery` pair. See the
/// module docs.
#[derive(Clone, Debug)]
pub enum QueryPlan {
    /// Every unit is satisfied from cache (or no refresh can help); here
    /// is the complete outcome.
    Ready(QueryOutcome),
    /// Refresh the units' tuples (outside any cache lock), install, and
    /// plan again.
    NeedsFetch(FetchPlan),
    /// Iterative mode (§8.2) chooses refreshes from live values and is
    /// not plannable ahead — run [`QuerySession::execute`] instead.
    Iterative,
}

/// One shard's materialized rows of one base table — the join partial's
/// per-side payload. Tuple ids are shard-local until the caller rewrites
/// them into the global space; rows travel with their refresh costs so
/// the merged table prices candidates exactly like the single cache.
#[derive(Clone, Debug)]
pub struct TableSlice {
    /// The sliced table.
    pub table: String,
    /// `(tuple id, materialized cells, refresh cost)` in scan order.
    pub rows: Vec<(TupleId, Vec<BoundedValue>, f64)>,
}

impl TableSlice {
    /// Rewrites every row's tuple id via `f` (shard-local → global).
    pub fn rewrite_tids(&mut self, mut f: impl FnMut(TupleId) -> TupleId) {
        for (tid, _, _) in &mut self.rows {
            *tid = f(*tid);
        }
    }
}

/// One shard's contribution to a scatter-gathered two-table join: its
/// slice of each side's base rows. The gather side concatenates all
/// shards' slices with
/// [`merge_table_slices`](crate::merge::merge_table_slices) and runs the
/// ordinary join pipeline over the merged tables.
#[derive(Clone, Debug)]
pub struct JoinPartial {
    /// The first FROM table's rows held by this shard.
    pub left: TableSlice,
    /// The second FROM table's rows held by this shard.
    pub right: TableSlice,
}

/// One shard's contribution to a scatter-gathered query, for every
/// supported shape — the shape-generic replacement for the old
/// `PartialQuery`.
#[derive(Clone, Debug)]
pub enum QueryPartial {
    /// Single-table scalar: the shard's evaluated [`AggInput`], ready for
    /// [`merge_partials`](crate::merge::merge_partials).
    Scalar(ShardPartial),
    /// `GROUP BY`: one [`ShardPartial`] per group held on this shard,
    /// key-sorted; merged per key by
    /// [`merge_grouped_partials`](crate::merge::merge_grouped_partials).
    Grouped(Vec<(GroupKey, ShardPartial)>),
    /// Two-table join: the shard's slice of each side's base rows.
    Join(JoinPartial),
}

/// Plans one scalar unit (a whole single-table query, or one group):
/// computes the cache-only answer and, if the constraint is unmet, the
/// CHOOSE_REFRESH set that will meet it. Shared by
/// [`QuerySession::plan_query`] (local inputs, with ordered-index
/// `probe`s) and sharded serving layers (merged inputs, `probe = None`)
/// — both derive bit-identical plans either way (the probed planners
/// reproduce the scan planners exactly).
///
/// `excluded` names tuples of `table` that cannot be refreshed (dark
/// sources): with a non-empty set the unit is planned by the
/// exclusion-aware CHOOSE_REFRESH variants (index probes do not apply)
/// and [`UnitState::degraded`] reports whether the constraint is still
/// guaranteeable over available tuples.
#[allow(clippy::too_many_arguments)]
pub fn plan_unit(
    agg: Aggregate,
    within: Option<f64>,
    strategy: SolverStrategy,
    table: &str,
    key: GroupKey,
    input: &AggInput,
    probe: Option<&PlanProbe<'_>>,
    excluded: &HashSet<TupleId>,
) -> Result<UnitState, TrappError> {
    let initial = bounded_answer(agg, input)?;
    if initial.satisfies(within) {
        return Ok(UnitState {
            key,
            initial,
            satisfied: true,
            degraded: false,
            fetch: None,
        });
    }
    let r = within.expect("unsatisfied implies finite R");
    let (plan, achievable) = if excluded.is_empty() {
        (choose_refresh_probed(agg, input, r, strategy, probe)?, true)
    } else {
        let available = choose_refresh_available(agg, input, r, strategy, excluded)?;
        (available.plan, available.achievable)
    };
    if plan.tuples.is_empty() {
        // No refresh can help further (e.g. cardinality slack, or every
        // useful tuple sits on a dark source).
        return Ok(UnitState {
            key,
            initial,
            satisfied: false,
            degraded: !achievable,
            fetch: None,
        });
    }
    Ok(UnitState {
        key,
        initial,
        satisfied: false,
        degraded: !achievable,
        fetch: Some(UnitFetch {
            table: table.to_owned(),
            tuples: plan.tuples,
            refresh_cost: plan.planned_cost,
        }),
    })
}

/// Assembles unit states into a [`QueryPlan`]: a complete fetch round if
/// any unit still needs tuples, the finished outcome otherwise.
pub fn assemble_units(units: Vec<UnitState>, grouped: bool) -> QueryPlan {
    if units.iter().any(|u| u.fetch.is_some()) {
        QueryPlan::NeedsFetch(FetchPlan {
            units,
            grouped,
            complete: true,
        })
    } else {
        QueryPlan::Ready(units_outcome(&units, grouped))
    }
}

/// The finished outcome of units that need no refresh: each unit's
/// cache-only answer *is* its answer.
pub fn units_outcome(units: &[UnitState], grouped: bool) -> QueryOutcome {
    let result = |u: &UnitState| QueryResult {
        answer: u.initial,
        initial_answer: u.initial,
        refreshed: Vec::new(),
        refresh_cost: 0.0,
        rounds: 0,
        satisfied: u.satisfied,
    };
    if grouped {
        QueryOutcome::Grouped(
            units
                .iter()
                .map(|u| GroupResult {
                    key: u.key.clone(),
                    result: result(u),
                })
                .collect(),
        )
    } else {
        QueryOutcome::Scalar(result(&units[0]))
    }
}

/// Plans one round of a two-table join: computes the bounded answer(s)
/// over the (possibly merged) base tables and, if a constraint is unmet,
/// picks the next base tuples to refresh under `heuristic` — an
/// *incomplete* plan the caller re-derives after installing the fetch.
/// Shared by [`QuerySession::plan_query`] (local tables) and sharded
/// serving layers (tables merged from [`TableSlice`]s), so both walk the
/// identical refresh sequence.
///
/// With `batch = true`, each round carries the whole provable prefix of
/// the sequential pick order
/// ([`crate::refresh::join::join_refresh_batch`]),
/// collapsing round counts without changing any answer; `batch = false`
/// keeps the §7 one-tuple-per-round baseline. A `GROUP BY` bound query
/// partitions the joined pairs by group key and plans every group's round
/// in one pass; a base tuple picked by several groups is fetched once
/// (first group in key order wins — later groups re-plan against the
/// already-pinned cells next round).
///
/// `exclusions` removes dark-source base tuples from the candidate pool
/// on both sides; rounds then pick the best *available* refreshes and a
/// serving layer detects degradation when the final answer stays
/// unsatisfied with exclusions in force.
pub fn plan_join_round(
    bound: &BoundQuery,
    left: &Table,
    right: &Table,
    heuristic: IterativeHeuristic,
    batch: bool,
    exclusions: &Exclusions,
) -> Result<QueryPlan, TrappError> {
    let QuerySource::Join {
        left: lname,
        right: rname,
    } = &bound.source
    else {
        return Err(TrappError::Internal(
            "plan_join_round requires a join-shaped bound query".into(),
        ));
    };
    let ji = build_join_input(
        left,
        right,
        bound.predicate.as_ref(),
        bound.arg.as_ref(),
        &bound.group_by,
    )?;

    // The sequential-order pick list for one unit's join input: the whole
    // provable prefix when batching, the heuristic argmax otherwise.
    // Excluded tuples never enter the candidate pool on either side.
    let (lex, rex) = (exclusions.for_table(lname), exclusions.for_table(rname));
    let picks_for = |unit: &crate::refresh::join::JoinInput,
                     answer: &BoundedAnswer|
     -> Vec<(JoinSide, TupleId)> {
        // Deficit 0 makes the batch walk stop after the heuristic's
        // argmax — exactly the one-tuple round.
        let deficit = if batch {
            answer.width() - bound.within.unwrap_or(f64::INFINITY)
        } else {
            0.0
        };
        let picks = join_refresh_batch_excluding(
            unit, left, right, bound.agg, heuristic, deficit, lex, rex,
        );
        if batch {
            picks
        } else {
            picks.into_iter().take(1).collect()
        }
    };
    // Consecutive same-side picks share one fetch unit, so the flattened
    // unit order replays the sequential pick order exactly.
    let units_for = |key: &GroupKey,
                     initial: BoundedAnswer,
                     picks: &[(JoinSide, TupleId)]|
     -> Result<Vec<UnitState>, TrappError> {
        let mut units: Vec<UnitState> = Vec::new();
        for &(side, tid) in picks {
            let (table, cost) = match side {
                JoinSide::Left => (lname.as_str(), left.cost(tid)?),
                JoinSide::Right => (rname.as_str(), right.cost(tid)?),
            };
            match units.last_mut() {
                Some(u) if u.fetch.as_ref().is_some_and(|f| f.table == table) => {
                    let fetch = u.fetch.as_mut().expect("guarded");
                    fetch.tuples.push(tid);
                    fetch.refresh_cost += cost;
                }
                _ => units.push(UnitState {
                    key: key.clone(),
                    initial,
                    satisfied: false,
                    degraded: false,
                    fetch: Some(UnitFetch {
                        table: table.to_owned(),
                        tuples: vec![tid],
                        refresh_cost: cost,
                    }),
                }),
            }
        }
        Ok(units)
    };

    if bound.group_by.is_empty() {
        let answer = bounded_answer(bound.agg, &ji.input)?;
        let ready = |satisfied: bool| {
            QueryPlan::Ready(QueryOutcome::Scalar(QueryResult {
                answer,
                initial_answer: answer,
                refreshed: Vec::new(),
                refresh_cost: 0.0,
                rounds: 0,
                satisfied,
            }))
        };
        if answer.satisfies(bound.within) {
            return Ok(ready(true));
        }
        let picks = picks_for(&ji, &answer);
        if picks.is_empty() {
            return Ok(ready(false));
        }
        return Ok(QueryPlan::NeedsFetch(FetchPlan {
            units: units_for(&Vec::new(), answer, &picks)?,
            grouped: false,
            complete: false,
        }));
    }

    // Grouped over the join result: partition items by group key, give
    // each group the query's constraint independently (§8.1 semantics,
    // over joined pairs instead of base rows). Groups are keyed by their
    // rendered form for a deterministic, merge-compatible order.
    let mut groups: BTreeMap<String, (GroupKey, Vec<usize>)> = BTreeMap::new();
    for (k, key) in ji.group_keys.iter().enumerate() {
        groups
            .entry(render_key(key))
            .or_insert_with(|| (key.clone(), Vec::new()))
            .1
            .push(k);
    }
    let mut units: Vec<UnitState> = Vec::new();
    let mut results: Vec<GroupResult> = Vec::new();
    let mut picked: HashSet<(JoinSide, TupleId)> = HashSet::new();
    let mut any_fetch = false;
    for (_, (key, item_ids)) in groups {
        let sub = crate::refresh::join::JoinInput {
            input: AggInput::new(
                item_ids.iter().map(|&k| ji.input.items[k]).collect(),
                0,
                (0, 0),
            ),
            pairs: item_ids.iter().map(|&k| ji.pairs[k]).collect(),
            group_keys: Vec::new(),
            left_arity: ji.left_arity,
            arg_cols: ji.arg_cols.clone(),
            pred_cols: ji.pred_cols.clone(),
        };
        let answer = bounded_answer(bound.agg, &sub.input)?;
        let satisfied = answer.satisfies(bound.within);
        let picks: Vec<(JoinSide, TupleId)> = if satisfied {
            Vec::new()
        } else {
            // A tuple another group already claimed this round is fetched
            // once; this group re-plans against the refreshed cells.
            picks_for(&sub, &answer)
                .into_iter()
                .filter(|p| picked.insert(*p))
                .collect()
        };
        if picks.is_empty() {
            units.push(UnitState {
                key: key.clone(),
                initial: answer,
                satisfied,
                degraded: false,
                fetch: None,
            });
        } else {
            any_fetch = true;
            units.extend(units_for(&key, answer, &picks)?);
        }
        results.push(GroupResult {
            key,
            result: QueryResult {
                answer,
                initial_answer: answer,
                refreshed: Vec::new(),
                refresh_cost: 0.0,
                rounds: 0,
                satisfied,
            },
        });
    }
    if any_fetch {
        Ok(QueryPlan::NeedsFetch(FetchPlan {
            units,
            grouped: true,
            complete: false,
        }))
    } else {
        Ok(QueryPlan::Ready(QueryOutcome::Grouped(results)))
    }
}

impl QuerySession {
    /// Plans a query read-only: lowers any supported shape — scalar,
    /// `GROUP BY`, or two-table join — into a [`QueryPlan`] without
    /// touching the catalog or any oracle. Callers install the planned
    /// refreshes themselves (e.g. a concurrent serving layer fetching
    /// with its cache lock released) and plan again; for complete
    /// (scalar/grouped) plans the CHOOSE_REFRESH guarantee makes the
    /// second pass [`QueryPlan::Ready`] unless the clock advanced in
    /// between, while join plans are heuristic single-tuple rounds that
    /// converge over several iterations.
    pub fn plan_query(&self, query: &Query) -> Result<QueryPlan, TrappError> {
        self.plan_query_excluding(query, &Exclusions::default())
    }

    /// [`QuerySession::plan_query`] with dark-source tuples removed from
    /// every CHOOSE_REFRESH candidate pool. With `exclusions` empty this
    /// is bit-identical to [`QuerySession::plan_query`]; otherwise units
    /// are planned over *available* tuples only and report
    /// [`UnitState::degraded`] when the constraint is no longer
    /// guaranteeable.
    pub fn plan_query_excluding(
        &self,
        query: &Query,
        exclusions: &Exclusions,
    ) -> Result<QueryPlan, TrappError> {
        if !matches!(self.config.mode, ExecutionMode::Batch) {
            return Ok(QueryPlan::Iterative);
        }
        let bound = bind_query(query, self.catalog())?;
        match &bound.source {
            QuerySource::Table(name) if bound.group_by.is_empty() => {
                let table = self.catalog().table(name)?;
                // Probes ride with the view cache: `cache_views = false`
                // is the measurable full-scan baseline, scan planners
                // included.
                let probe = self.config.cache_views.then(|| table_probe(table, &bound));
                let plan = |input: &AggInput| {
                    plan_unit(
                        bound.agg,
                        bound.within,
                        self.config.strategy,
                        name,
                        Vec::new(),
                        input,
                        probe.as_ref(),
                        exclusions.for_table(name),
                    )
                };
                let unit = if self.config.cache_views {
                    let mut views = self.views.lock().expect("view cache poisoned");
                    let view = views.view_for(name, &bound);
                    view.sync(table)?;
                    plan(view.input())?
                } else {
                    plan(&AggInput::build_filtered(
                        table,
                        bound.predicate.as_ref(),
                        bound.arg.as_ref(),
                        |_, _| true,
                    )?)?
                };
                Ok(assemble_units(vec![unit], false))
            }
            QuerySource::Table(name) => {
                let table = self.catalog().table(name)?;
                // A group filter restricts the input, so only the COUNT
                // cost-index probe (membership-checked) stays eligible.
                let probe = self.config.cache_views.then_some(PlanProbe {
                    table,
                    column: None,
                    unfiltered: false,
                });
                let plan = |key: GroupKey, input: &AggInput| {
                    plan_unit(
                        bound.agg,
                        bound.within,
                        self.config.strategy,
                        name,
                        key,
                        input,
                        probe.as_ref(),
                        exclusions.for_table(name),
                    )
                };
                let mut units = Vec::new();
                if self.config.cache_views {
                    let mut views = self.views.lock().expect("view cache poisoned");
                    let view = views.view_for(name, &bound);
                    view.sync(table)?;
                    // All group inputs come from ONE pass over the view —
                    // not one table scan per group.
                    for (key, input) in view.grouped_inputs() {
                        units.push(plan(key.clone(), input)?);
                    }
                } else {
                    for (_, (key, tids)) in group_partitions(table, &bound.group_by)? {
                        let input = AggInput::build_filtered(
                            table,
                            bound.predicate.as_ref(),
                            bound.arg.as_ref(),
                            |tid, _| tids.binary_search(&tid).is_ok(),
                        )?;
                        units.push(plan(key, &input)?);
                    }
                }
                Ok(assemble_units(units, true))
            }
            QuerySource::Join { left, right } => plan_join_round(
                &bound,
                self.catalog().table(left)?,
                self.catalog().table(right)?,
                self.config.join_heuristic,
                self.config.join_batch,
                exclusions,
            ),
        }
    }

    /// Builds this session's contribution to a scatter-gathered query:
    /// the shape-generic [`QueryPartial`] over the locally held rows,
    /// read-only. A sharded serving layer collects one partial per shard,
    /// rewrites tuple ids into a global space, merges them (see
    /// [`crate::merge`]), and derives answers and refresh plans once from
    /// the merged input — bit-identical to a single cache holding every
    /// row.
    ///
    /// Iterative mode is the one shape that cannot be decomposed: each
    /// refresh decision depends on live master values, so it returns
    /// [`TrappError::Unsupported`] naming the alternative.
    pub fn partial_query(&self, query: &Query) -> Result<QueryPartial, TrappError> {
        if !matches!(self.config.mode, ExecutionMode::Batch) {
            return Err(TrappError::Unsupported(
                "iterative execution (§8.2) picks each refresh from live master \
                 values and cannot be scatter-gathered across shards; use batch \
                 mode (the default ExecutionMode) or a single-shard service \
                 (ServiceConfig.shards = 1)"
                    .into(),
            ));
        }
        let bound = bind_query(query, self.catalog())?;
        match &bound.source {
            QuerySource::Table(name) if bound.group_by.is_empty() => {
                let table = self.catalog().table(name)?;
                let input = if self.config.cache_views {
                    let mut views = self.views.lock().expect("view cache poisoned");
                    let view = views.view_for(name, &bound);
                    view.sync(table)?;
                    view.input().clone()
                } else {
                    AggInput::build_filtered(
                        table,
                        bound.predicate.as_ref(),
                        bound.arg.as_ref(),
                        |_, _| true,
                    )?
                };
                Ok(QueryPartial::Scalar(ShardPartial {
                    table: name.clone(),
                    agg: bound.agg,
                    within: bound.within,
                    input,
                }))
            }
            QuerySource::Table(name) => {
                let table = self.catalog().table(name)?;
                let mut groups = Vec::new();
                if self.config.cache_views {
                    let mut views = self.views.lock().expect("view cache poisoned");
                    let view = views.view_for(name, &bound);
                    view.sync(table)?;
                    for (key, input) in view.grouped_inputs() {
                        groups.push((
                            key.clone(),
                            ShardPartial {
                                table: name.clone(),
                                agg: bound.agg,
                                within: bound.within,
                                input: input.clone(),
                            },
                        ));
                    }
                } else {
                    for (_, (key, tids)) in group_partitions(table, &bound.group_by)? {
                        let input = AggInput::build_filtered(
                            table,
                            bound.predicate.as_ref(),
                            bound.arg.as_ref(),
                            |tid, _| tids.binary_search(&tid).is_ok(),
                        )?;
                        groups.push((
                            key,
                            ShardPartial {
                                table: name.clone(),
                                agg: bound.agg,
                                within: bound.within,
                                input,
                            },
                        ));
                    }
                }
                Ok(QueryPartial::Grouped(groups))
            }
            QuerySource::Join { left, right } => Ok(QueryPartial::Join(JoinPartial {
                left: table_slice(self.catalog().table(left)?)?,
                right: table_slice(self.catalog().table(right)?)?,
            })),
        }
    }
}

/// The index probe for a whole-table scalar unit: eligible for the
/// endpoint/width paths only when no predicate filters the table and the
/// aggregation argument is a bare column.
fn table_probe<'a>(table: &'a Table, bound: &BoundQuery) -> PlanProbe<'a> {
    PlanProbe {
        table,
        column: match &bound.arg {
            Some(trapp_expr::Expr::Column(c)) => Some(*c),
            _ => None,
        },
        unfiltered: bound.predicate.is_none(),
    }
}

/// Slices a table into its materialized rows (cells + refresh costs).
fn table_slice(table: &Table) -> Result<TableSlice, TrappError> {
    let mut rows = Vec::with_capacity(table.len());
    for (tid, row) in table.scan() {
        rows.push((tid, row.cells().to_vec(), table.cost(tid)?));
    }
    Ok(TableSlice {
        table: table.name().to_owned(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::test_fixture::*;
    use crate::executor::TableOracle;
    use trapp_types::Interval;

    fn parse(sql: &str) -> Query {
        trapp_sql::parse_query(sql).unwrap()
    }

    /// Scalar lowering matches the old `plan_query` semantics: satisfied
    /// from cache → Ready; otherwise one complete fetch round whose
    /// installation satisfies the constraint.
    #[test]
    fn scalar_lowering_round_trips() {
        let s = QuerySession::new(links_table());
        match s
            .plan_query(&parse("SELECT SUM(latency) WITHIN 100 FROM links"))
            .unwrap()
        {
            QueryPlan::Ready(QueryOutcome::Scalar(r)) => {
                assert!(r.satisfied);
                assert_eq!(r.answer.range, Interval::new(40.0, 55.0).unwrap());
            }
            other => panic!("expected ready scalar, got {other:?}"),
        }
        match s
            .plan_query(&parse(
                "SELECT MIN(bandwidth) WITHIN 10 FROM links WHERE on_path = TRUE",
            ))
            .unwrap()
        {
            QueryPlan::NeedsFetch(fp) => {
                assert!(fp.complete && !fp.grouped);
                assert_eq!(fp.units.len(), 1);
                let fetch = fp.units[0].fetch.as_ref().unwrap();
                assert_eq!(fetch.table, "links");
                assert_eq!(fetch.tuples, vec![TupleId::new(5)]);
                assert_eq!(fetch.refresh_cost, 4.0);
                assert_eq!(
                    fp.units[0].initial.range,
                    Interval::new(40.0, 55.0).unwrap()
                );
            }
            other => panic!("expected fetch, got {other:?}"),
        }
    }

    /// Grouped lowering: one unit per group, disjoint fetch sets, and the
    /// per-group plans match what `execute_grouped` would refresh.
    #[test]
    fn grouped_lowering_plans_per_group() {
        let s = QuerySession::new(links_table());
        let q = parse("SELECT SUM(latency) WITHIN 3 FROM links GROUP BY from_node");
        let QueryPlan::NeedsFetch(fp) = s.plan_query(&q).unwrap() else {
            panic!("tight grouped query must need fetches");
        };
        assert!(fp.grouped && fp.complete);
        // from_node values 1..5 → 5 groups, key-sorted, all present.
        assert_eq!(fp.units.len(), 5);
        let keys: Vec<String> = fp.units.iter().map(|u| format!("{}", u.key[0])).collect();
        assert_eq!(keys, vec!["1", "2", "3", "4", "5"]);
        // Group "2" (tuples 2 and 4) has initial width 4 > 3: must fetch.
        assert!(fp.units[1].fetch.is_some());
        // Fetch sets are disjoint (groups partition the table).
        let mut seen = std::collections::HashSet::new();
        for u in &fp.units {
            if let Some(f) = &u.fetch {
                for t in &f.tuples {
                    assert!(seen.insert(*t), "tuple {t} planned twice");
                }
            }
        }
        // Executing the same query refreshes exactly the planned tuples.
        let mut s2 = QuerySession::new(links_table());
        let mut o = TableOracle::from_table(master_table());
        let groups = s2.execute_grouped(&q, &mut o).unwrap();
        let executed: std::collections::HashSet<TupleId> = groups
            .iter()
            .flat_map(|g| g.result.refreshed.iter().map(|(_, t)| *t))
            .collect();
        assert_eq!(seen, executed);
    }

    /// Drives the plan/fetch/install loop by hand, returning the final
    /// answer, the flattened refresh sequence, and the round count.
    fn drive_join_rounds(
        q: &trapp_sql::Query,
        batch: bool,
    ) -> (crate::agg::BoundedAnswer, Vec<(String, TupleId)>, usize) {
        let (mut s, mut oracle) = join_fixture();
        s.config.join_batch = batch;
        let mut refreshed = Vec::new();
        let mut rounds = 0;
        let answer = loop {
            match s.plan_query(q).unwrap() {
                QueryPlan::Ready(QueryOutcome::Scalar(r)) => break r.answer,
                QueryPlan::NeedsFetch(fp) => {
                    assert!(!fp.complete, "join plans are heuristic rounds");
                    for unit in &fp.units {
                        let fetch = unit.fetch.clone().unwrap();
                        if !batch {
                            assert_eq!(fetch.tuples.len(), 1, "one tuple per one-tuple round");
                        }
                        s.refresh_tuples(&fetch.table, &fetch.tuples, &mut oracle)
                            .unwrap();
                        for &tid in &fetch.tuples {
                            refreshed.push((fetch.table.clone(), tid));
                        }
                    }
                    rounds += 1;
                    assert!(rounds < 100, "join rounds must converge");
                }
                other => panic!("unexpected plan {other:?}"),
            }
        };
        (answer, refreshed, rounds)
    }

    /// Join lowering: heuristic rounds that, replayed against an oracle,
    /// converge to the same refresh sequence as the locked executor loop.
    /// With batching off each round fetches exactly one tuple (the §7
    /// reference); with batching on the flattened per-unit sequence is
    /// bit-identical and takes no more rounds.
    #[test]
    fn join_rounds_replay_the_executor_sequence() {
        let q = parse(
            "SELECT SUM(latency) WITHIN 2 FROM links, nodes \
             WHERE from_node = node_id AND cpu_load < 0.7",
        );
        let (mut exec_session, mut exec_oracle) = join_fixture();
        let reference = exec_session.execute(&q, &mut exec_oracle).unwrap();

        let (one_answer, one_refreshed, one_rounds) = drive_join_rounds(&q, false);
        assert_eq!(one_answer.range, reference.answer.range);
        assert_eq!(one_refreshed, reference.refreshed);

        let (batch_answer, batch_refreshed, batch_rounds) = drive_join_rounds(&q, true);
        assert_eq!(batch_answer.range, reference.answer.range);
        assert_eq!(
            batch_refreshed, reference.refreshed,
            "batched rounds must replay the one-tuple sequence exactly"
        );
        assert!(
            batch_rounds <= one_rounds,
            "batching must not add rounds ({batch_rounds} > {one_rounds})"
        );
    }

    /// Grouped join lowering: per-group units with disjoint picks, and the
    /// session executor refreshes exactly the planned tuples.
    #[test]
    fn grouped_join_lowering_plans_per_group() {
        let q = parse(
            "SELECT SUM(latency) WITHIN 1 FROM links, nodes \
             WHERE from_node = node_id GROUP BY from_node",
        );
        let (s, _) = join_fixture();
        let QueryPlan::NeedsFetch(fp) = s.plan_query(&q).unwrap() else {
            panic!("tight grouped join must need fetches");
        };
        assert!(fp.grouped && !fp.complete);
        // node_id values 1, 2 match from_node 1, 2 → 2 groups, key-sorted.
        let keys: Vec<String> = fp.units.iter().map(|u| format!("{}", u.key[0])).collect();
        assert_eq!(keys, vec!["1", "2"]);
        // Cross-group dedupe: no tuple appears in two groups' fetches.
        let mut seen = std::collections::HashSet::new();
        for u in &fp.units {
            if let Some(f) = &u.fetch {
                for t in &f.tuples {
                    assert!(seen.insert((f.table.clone(), *t)), "tuple planned twice");
                }
            }
        }
        // The session executor converges on the same shape.
        let (mut s2, mut o) = join_fixture();
        let groups = s2.execute_grouped(&q, &mut o).unwrap();
        assert_eq!(groups.len(), 2);
        for g in &groups {
            assert!(g.result.satisfied, "group {:?} unsatisfied", g.key);
            assert!(g.result.answer.width() <= 1.0);
        }
    }

    /// Iterative mode is the one remaining non-plannable shape, and the
    /// partial side names the supported alternative.
    #[test]
    fn iterative_mode_is_the_only_escape_hatch() {
        let mut s = QuerySession::new(links_table());
        s.config.mode =
            ExecutionMode::Iterative(crate::refresh::iterative::IterativeHeuristic::BestRatio);
        let q = parse("SELECT SUM(latency) WITHIN 5 FROM links");
        assert!(matches!(s.plan_query(&q).unwrap(), QueryPlan::Iterative));
        let err = s.partial_query(&q).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("iterative") && msg.contains("shards = 1"),
            "error must name the feature and the alternative: {msg}"
        );
    }

    /// Grouped and join shapes now produce partials instead of erroring.
    #[test]
    fn partials_cover_grouped_and_join_shapes() {
        let (s, _) = join_fixture();
        match s
            .partial_query(&parse(
                "SELECT SUM(latency) WITHIN 5 FROM links GROUP BY from_node",
            ))
            .unwrap()
        {
            QueryPartial::Grouped(groups) => {
                assert_eq!(groups.len(), 5);
                let total: usize = groups.iter().map(|(_, p)| p.input.items.len()).sum();
                assert_eq!(total, 6, "groups partition the table");
            }
            other => panic!("expected grouped partial, got {other:?}"),
        }
        match s
            .partial_query(&parse(
                "SELECT SUM(latency) FROM links, nodes WHERE from_node = node_id",
            ))
            .unwrap()
        {
            QueryPartial::Join(jp) => {
                assert_eq!(jp.left.table, "links");
                assert_eq!(jp.left.rows.len(), 6);
                assert_eq!(jp.right.table, "nodes");
                assert_eq!(jp.right.rows.len(), 2);
                // Costs travel with the slice.
                assert_eq!(jp.left.rows[0].2, 3.0);
            }
            other => panic!("expected join partial, got {other:?}"),
        }
    }

    /// The links ⋈ nodes fixture shared with the executor's join test.
    fn join_fixture() -> (QuerySession, TableOracle) {
        use trapp_storage::{Catalog, ColumnDef, Schema, Table};
        use trapp_types::{BoundedValue, Value, ValueType};
        let mut catalog = Catalog::new();
        catalog.add_table(links_table()).unwrap();
        let schema = Schema::new(vec![
            ColumnDef::exact("node_id", ValueType::Int),
            ColumnDef::bounded_float("cpu_load"),
        ])
        .unwrap();
        let mut nodes = Table::new("nodes", schema.clone());
        let mut master_nodes = Table::new("nodes", schema);
        for (id, lo, hi, exact) in [(1i64, 0.1, 0.9, 0.5), (2, 0.2, 0.8, 0.6)] {
            nodes
                .insert(vec![
                    BoundedValue::Exact(Value::Int(id)),
                    BoundedValue::bounded(lo, hi).unwrap(),
                ])
                .unwrap();
            master_nodes
                .insert(vec![
                    BoundedValue::Exact(Value::Int(id)),
                    BoundedValue::exact_f64(exact).unwrap(),
                ])
                .unwrap();
        }
        catalog.add_table(nodes).unwrap();
        let mut master = Catalog::new();
        master.add_table(master_table()).unwrap();
        master.add_table(master_nodes).unwrap();
        (
            QuerySession::with_catalog(catalog),
            TableOracle::new(master),
        )
    }
}
