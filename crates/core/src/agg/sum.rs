//! Bounded SUM (§5.2, §6.2).
//!
//! Without a predicate: `[Σ Lᵢ, Σ Hᵢ]`. With one, each `T?` tuple might
//! contribute nothing, so its bound is extended to include 0 before summing:
//!
//! ```text
//! L_A = Σ_{T+} Lᵢ + Σ_{T?, Lᵢ<0} Lᵢ
//! H_A = Σ_{T+} Hᵢ + Σ_{T?, Hᵢ>0} Hᵢ
//! ```
//!
//! which is exactly `Σ_{T+} [Lᵢ,Hᵢ] + Σ_{T?} hull([Lᵢ,Hᵢ], {0})`.

use trapp_expr::Band;
use trapp_types::Interval;

use super::AggInput;

/// Bounded SUM per §5.2/§6.2.
pub fn bounded_sum(input: &AggInput) -> Interval {
    let mut lo = 0.0;
    let mut hi = 0.0;
    for item in &input.items {
        let iv = match item.band {
            Band::Plus => item.interval,
            _ => item.interval.extended_to_zero(),
        };
        lo += iv.lo();
        hi += iv.hi();
    }
    Interval::new_unchecked(lo, hi)
}

/// The knapsack weight each item contributes to CHOOSE_REFRESH_SUM
/// (§5.2 without predicate, §6.2 with): the item's *effective width* — the
/// uncertainty the answer keeps if the tuple is not refreshed.
pub fn sum_weight(item: &super::AggItem) -> f64 {
    match item.band {
        Band::Plus => item.interval.width(),
        _ => item.interval.zero_extended_width(),
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_fixture::*;
    use super::super::{AggInput, AggItem};
    use super::*;
    use trapp_expr::{BinaryOp, ColumnRef, Expr};
    use trapp_types::{TupleId, Value};

    fn col(name: &str) -> Expr<usize> {
        Expr::Column(ColumnRef::bare(name)).bind(&schema()).unwrap()
    }

    fn on_path() -> Expr<usize> {
        Expr::binary(
            BinaryOp::Eq,
            Expr::Column(ColumnRef::bare("on_path")),
            Expr::Literal(Value::Bool(true)),
        )
        .bind(&schema())
        .unwrap()
    }

    /// Q2: bounded SUM of latency over path tuples {1,2,5,6} = [19, 28].
    #[test]
    fn paper_q2_sum_latency() {
        let t = links_table();
        let input = AggInput::build(&t, Some(&on_path()), Some(&col("latency"))).unwrap();
        assert_eq!(bounded_sum(&input), Interval::new(19.0, 28.0).unwrap());
    }

    #[test]
    fn sum_without_predicate() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("traffic"))).unwrap();
        // Σ lo = 95+110+95+120+90+90 = 600; Σ hi = 105+120+110+145+110+105 = 695.
        assert_eq!(bounded_sum(&input), Interval::new(600.0, 695.0).unwrap());
    }

    /// §6.2: T? tuples with positive bounds contribute [0, H]; with negative
    /// bounds [L, 0]; straddling bounds stay as-is.
    #[test]
    fn question_bounds_are_zero_extended() {
        fn item(band: Band, lo: f64, hi: f64) -> AggItem {
            AggItem {
                tid: TupleId::new(0),
                band,
                interval: Interval::new(lo, hi).unwrap(),
                cost: 1.0,
            }
        }
        let input = AggInput::new(
            vec![
                item(Band::Plus, 10.0, 12.0),
                item(Band::Question, 5.0, 8.0),   // → [0, 8]
                item(Band::Question, -6.0, -2.0), // → [−6, 0]
                item(Band::Question, -1.0, 3.0),  // stays [−1, 3]
            ],
            0,
            (0, 0),
        );
        let s = bounded_sum(&input);
        assert_eq!(s.lo(), 10.0 - 6.0 - 1.0);
        assert_eq!(s.hi(), 12.0 + 8.0 + 3.0);
        // Weights match §6.2's W assignments.
        assert_eq!(sum_weight(&input.items[0]), 2.0);
        assert_eq!(sum_weight(&input.items[1]), 8.0); // L ≥ 0 → W = H
        assert_eq!(sum_weight(&input.items[2]), 6.0); // H ≤ 0 → W = −L
        assert_eq!(sum_weight(&input.items[3]), 4.0); // straddles → H − L
    }

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(bounded_sum(&AggInput::default()), Interval::ZERO);
    }

    /// Figure 2's W′ column: knapsack weights for AVG traffic (no
    /// predicate) are the traffic bound widths {10,10,15,25,20,15}.
    #[test]
    fn figure2_w_prime_weights() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("traffic"))).unwrap();
        let w: Vec<f64> = input.items.iter().map(sum_weight).collect();
        assert_eq!(w, vec![10.0, 10.0, 15.0, 25.0, 20.0, 15.0]);
    }
}
