//! Bounded MIN and MAX (§5.1, §6.1, Appendix C).
//!
//! Without a predicate every tuple is in `T+` and the formulas coincide:
//!
//! ```text
//! MIN: [ min over T+∪T? of Lᵢ ,  min over T+ of Hᵢ ]
//! MAX: [ max over T+ of Lᵢ ,     max over T+∪T? of Hᵢ ]
//! ```
//!
//! The asymmetry under predicates: a `T?` tuple may vanish from the
//! selection, so it can only *extend* the side of the bound it could
//! improve, never anchor the guaranteed side. Empty aggregates follow the
//! paper's footnote 1: `min(∅) = +∞`, `max(∅) = −∞`.

use trapp_types::Interval;

use super::AggInput;

/// Bounded MIN per §5.1/§6.1.
pub fn bounded_min(input: &AggInput) -> Interval {
    let mut lo = f64::INFINITY;
    for item in &input.items {
        lo = lo.min(item.interval.lo());
    }
    let mut hi = f64::INFINITY;
    for item in input.plus() {
        hi = hi.min(item.interval.hi());
    }
    // All-T? inputs give [lo, +∞]; the fully empty input gives [+∞, +∞].
    if lo > hi {
        // Only possible when both are +∞ (empty input) — width-0 point.
        debug_assert!(lo == f64::INFINITY && hi == f64::INFINITY);
        return Interval::new_unchecked(f64::INFINITY, f64::INFINITY);
    }
    Interval::new_unchecked(lo, hi)
}

/// Bounded MAX per Appendix C (mirror of MIN).
pub fn bounded_max(input: &AggInput) -> Interval {
    let mut hi = f64::NEG_INFINITY;
    for item in &input.items {
        hi = hi.max(item.interval.hi());
    }
    let mut lo = f64::NEG_INFINITY;
    for item in input.plus() {
        lo = lo.max(item.interval.lo());
    }
    if lo > hi {
        debug_assert!(lo == f64::NEG_INFINITY && hi == f64::NEG_INFINITY);
        return Interval::new_unchecked(f64::NEG_INFINITY, f64::NEG_INFINITY);
    }
    Interval::new_unchecked(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::super::test_fixture::*;
    use super::super::AggInput;
    use super::*;
    use trapp_expr::{BinaryOp, ColumnRef, Expr};
    use trapp_types::Value;

    fn col(name: &str) -> Expr<usize> {
        Expr::Column(ColumnRef::bare(name)).bind(&schema()).unwrap()
    }

    fn on_path() -> Expr<usize> {
        Expr::binary(
            BinaryOp::Eq,
            Expr::Column(ColumnRef::bare("on_path")),
            Expr::Literal(Value::Bool(true)),
        )
        .bind(&schema())
        .unwrap()
    }

    /// Q1: bounded MIN of bandwidth over path tuples {1,2,5,6} = [40, 55].
    #[test]
    fn paper_q1_min_bandwidth() {
        let t = links_table();
        let input = AggInput::build(&t, Some(&on_path()), Some(&col("bandwidth"))).unwrap();
        assert_eq!(bounded_min(&input), Interval::new(40.0, 55.0).unwrap());
    }

    /// Q4: MIN traffic WHERE (bandwidth > 50) AND (latency < 10) = [90, 105].
    #[test]
    fn paper_q4_min_with_predicate() {
        let t = links_table();
        let pred = Expr::and(
            Expr::binary(
                BinaryOp::Gt,
                Expr::Column(ColumnRef::bare("bandwidth")),
                Expr::Literal(Value::Float(50.0)),
            ),
            Expr::binary(
                BinaryOp::Lt,
                Expr::Column(ColumnRef::bare("latency")),
                Expr::Literal(Value::Float(10.0)),
            ),
        )
        .bind(&schema())
        .unwrap();
        let input = AggInput::build(&t, Some(&pred), Some(&col("traffic"))).unwrap();
        assert_eq!(bounded_min(&input), Interval::new(90.0, 105.0).unwrap());
    }

    #[test]
    fn max_mirrors_min() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        // All T+: MAX latency = [max lo, max hi] = [12, 16].
        assert_eq!(bounded_max(&input), Interval::new(12.0, 16.0).unwrap());
        // MIN latency = [2, 4].
        assert_eq!(bounded_min(&input), Interval::new(2.0, 4.0).unwrap());
    }

    #[test]
    fn question_tuples_extend_but_cannot_anchor() {
        let t = links_table();
        // traffic > 100: T+ = {2, 4}, T? = {1, 3, 5, 6}.
        let pred = Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("traffic")),
            Expr::Literal(Value::Float(100.0)),
        )
        .bind(&schema())
        .unwrap();
        let input = AggInput::build(&t, Some(&pred), Some(&col("latency"))).unwrap();
        // MIN latency: lo over all = 2 (tuple 1, T?); hi over T+ = min(7, 11) = 7.
        assert_eq!(bounded_min(&input), Interval::new(2.0, 7.0).unwrap());
        // MAX latency: hi over all = 16 (tuple 3, T?); lo over T+ = max(5, 9) = 9.
        assert_eq!(bounded_max(&input), Interval::new(9.0, 16.0).unwrap());
    }

    #[test]
    fn empty_set_conventions() {
        let input = AggInput::default();
        let min = bounded_min(&input);
        assert_eq!(min.lo(), f64::INFINITY);
        assert_eq!(min.width(), 0.0);
        let max = bounded_max(&input);
        assert_eq!(max.hi(), f64::NEG_INFINITY);
        assert_eq!(max.width(), 0.0);
    }

    #[test]
    fn all_question_input_has_unbounded_guarantee_side() {
        let t = links_table();
        // traffic > 144.9: only tuple 4 ([120, 145]) can possibly pass and
        // no tuple certainly does, so T+ = ∅ and T? = {4}.
        let pred = Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("traffic")),
            Expr::Literal(Value::Float(144.9)),
        )
        .bind(&schema())
        .unwrap();
        let input = AggInput::build(&t, Some(&pred), Some(&col("latency"))).unwrap();
        assert_eq!(input.plus_count(), 0);
        assert!(input.question_count() > 0);
        let min = bounded_min(&input);
        assert_eq!(min.hi(), f64::INFINITY);
        assert!(min.lo().is_finite());
    }
}
