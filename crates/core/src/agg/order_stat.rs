//! Bounded order statistics: MEDIAN and k-th smallest (§8.1 extension).
//!
//! The paper lists MEDIAN among the aggregates it would like to support,
//! citing the companion work on computing the median with uncertainty
//! ([FMP+00]). For a set of `n` *intervals* with known cardinality (no
//! selection predicate — membership is certain), the k-th order statistic
//! is bounded by:
//!
//! ```text
//! [ k-th smallest Lᵢ , k-th smallest Hᵢ ]
//! ```
//!
//! Soundness: if every value sits at its lower endpoint the k-th smallest
//! value is the k-th smallest `L`; no assignment can push the k-th order
//! statistic below that, nor above the k-th smallest `H`. With a selection
//! predicate the cardinality itself is uncertain and the statistic is not
//! well-defined per rank; that case is rejected (`Unsupported`), matching
//! the open-problem status in the paper.

use trapp_types::{Interval, TrappError};

use super::AggInput;

/// Bounded k-th smallest (1-based rank) over an input with no `T?` tuples.
pub fn bounded_kth(input: &AggInput, k: usize) -> Result<Interval, TrappError> {
    if input.question_count() > 0 {
        return Err(TrappError::Unsupported(
            "order statistics over an uncertain selection (T? tuples present) \
             are not supported; refresh the predicate columns first"
                .into(),
        ));
    }
    let n = input.items.len();
    if n == 0 || k == 0 || k > n {
        return Err(TrappError::Unsupported(format!(
            "rank {k} is out of range for a set of {n} tuples"
        )));
    }
    let mut lows: Vec<f64> = input.items.iter().map(|i| i.interval.lo()).collect();
    let mut highs: Vec<f64> = input.items.iter().map(|i| i.interval.hi()).collect();
    let (_, lo, _) = lows.select_nth_unstable_by(k - 1, f64::total_cmp);
    let lo = *lo;
    let (_, hi, _) = highs.select_nth_unstable_by(k - 1, f64::total_cmp);
    let hi = *hi;
    Interval::new(lo, hi)
}

/// Bounded MEDIAN: the `⌈n/2⌉`-th smallest (lower median).
pub fn bounded_median(input: &AggInput) -> Result<Interval, TrappError> {
    let n = input.items.len();
    if n == 0 {
        return Err(TrappError::Unsupported(
            "MEDIAN over an empty set is undefined".into(),
        ));
    }
    bounded_kth(input, n.div_ceil(2))
}

/// A bounded TOP-n result (§8.1's other wishlist aggregate).
///
/// Over uncertain values the top-n *set* is itself uncertain; the sound
/// three-way split mirrors `T+/T?/T−`:
///
/// * `certain` — tuples in the top-n under **every** realization;
/// * `possible` — tuples in the top-n under **some** realization (superset
///   of `certain`);
/// * the n-th largest value itself is bounded by `threshold`.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundedTopN {
    /// Tuples certainly in the top-n (ascending id order).
    pub certain: Vec<trapp_types::TupleId>,
    /// Tuples possibly in the top-n, including all of `certain`.
    pub possible: Vec<trapp_types::TupleId>,
    /// Bound on the n-th largest value.
    pub threshold: Interval,
}

/// Bounded TOP-n over an input with no `T?` tuples (same restriction as
/// [`bounded_kth`]: uncertain *membership* composes badly with uncertain
/// *rank*).
///
/// Membership is by value threshold — a tuple belongs to the top-n iff
/// fewer than `n` tuples have *strictly larger* values, so exact ties at
/// the cut put every tied tuple in (the set can exceed `n` elements under
/// ties). The rules (classic uncertain-top-k semantics, strict-beat form):
///
/// * tuple `i` is **certain** iff fewer than `n` other tuples can possibly
///   beat it: `#{j ≠ i : Hⱼ > Lᵢ} ≤ n − 1`;
/// * tuple `i` is **possible** iff fewer than `n` other tuples certainly
///   beat it: `#{j ≠ i : Lⱼ > Hᵢ} ≤ n − 1`.
pub fn bounded_top_n(input: &AggInput, n: usize) -> Result<BoundedTopN, TrappError> {
    if input.question_count() > 0 {
        return Err(TrappError::Unsupported(
            "TOP-n over an uncertain selection (T? tuples present) is not supported".into(),
        ));
    }
    let total = input.items.len();
    if n == 0 || n > total {
        return Err(TrappError::Unsupported(format!(
            "TOP-{n} is out of range for a set of {total} tuples"
        )));
    }

    // Sorted endpoint arrays enable O(log n) "how many exceed x" probes.
    let mut lows: Vec<f64> = input.items.iter().map(|i| i.interval.lo()).collect();
    let mut highs: Vec<f64> = input.items.iter().map(|i| i.interval.hi()).collect();
    lows.sort_by(f64::total_cmp);
    highs.sort_by(f64::total_cmp);
    let count_gt = |sorted: &[f64], x: f64| -> usize {
        // # of elements strictly greater than x.
        sorted.len() - sorted.partition_point(|&v| v <= x)
    };

    let mut certain = Vec::new();
    let mut possible = Vec::new();
    for item in &input.items {
        let (lo, hi) = (item.interval.lo(), item.interval.hi());
        // Possible beaters: H_j > L_i, minus self when H_i > L_i.
        let possible_beaters = count_gt(&highs, lo) - usize::from(hi > lo);
        if possible_beaters < n {
            certain.push(item.tid);
        }
        // Certain beaters: L_j > H_i (self never qualifies: L_i ≤ H_i).
        let certain_beaters = count_gt(&lows, hi);
        if certain_beaters < n {
            possible.push(item.tid);
        }
    }
    certain.sort_unstable();
    possible.sort_unstable();

    // The n-th largest is the (total − n + 1)-th smallest.
    let threshold = bounded_kth(input, total - n + 1)?;
    Ok(BoundedTopN {
        certain,
        possible,
        threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::super::test_fixture::*;
    use super::super::AggInput;
    use super::*;
    use trapp_expr::{BinaryOp, ColumnRef, Expr};
    use trapp_types::{TupleId, Value};

    fn col(name: &str) -> Expr<usize> {
        Expr::Column(ColumnRef::bare(name)).bind(&schema()).unwrap()
    }

    #[test]
    fn median_of_figure2_latency() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        // lows = {2,5,12,9,8,4} sorted {2,4,5,8,9,12}; k = 3 → 5.
        // highs = {4,7,16,11,11,6} sorted {4,6,7,11,11,16}; k = 3 → 7.
        let m = bounded_median(&input).unwrap();
        assert_eq!(m, Interval::new(5.0, 7.0).unwrap());
    }

    #[test]
    fn kth_ranks_are_monotone() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        let mut prev_lo = f64::NEG_INFINITY;
        let mut prev_hi = f64::NEG_INFINITY;
        for k in 1..=6 {
            let iv = bounded_kth(&input, k).unwrap();
            assert!(
                iv.lo() >= prev_lo && iv.hi() >= prev_hi,
                "rank {k} not monotone"
            );
            prev_lo = iv.lo();
            prev_hi = iv.hi();
        }
        assert!(bounded_kth(&input, 0).is_err());
        assert!(bounded_kth(&input, 7).is_err());
    }

    #[test]
    fn kth_bound_contains_realized_statistic() {
        // Realize the master values of Figure 2 and check containment for
        // every rank.
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        let mut real: Vec<f64> = PRECISE.iter().map(|p| p.0).collect();
        real.sort_by(f64::total_cmp);
        for k in 1..=6 {
            let iv = bounded_kth(&input, k).unwrap();
            assert!(iv.contains(real[k - 1]), "rank {k}: {} ∉ {iv}", real[k - 1]);
        }
    }

    #[test]
    fn uncertain_selection_is_rejected() {
        let t = links_table();
        let pred = Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("traffic")),
            Expr::Literal(Value::Float(100.0)),
        )
        .bind(&schema())
        .unwrap();
        let input = AggInput::build(&t, Some(&pred), Some(&col("latency"))).unwrap();
        assert!(bounded_median(&input).is_err());
    }

    #[test]
    fn top_n_membership_on_figure2() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        // Latency bounds: 1:[2,4] 2:[5,7] 3:[12,16] 4:[9,11] 5:[8,11] 6:[4,6].
        // TOP-1: tuple 3's low (12) beats every other high (≤ 11):
        // certainly the maximum.
        let top1 = bounded_top_n(&input, 1).unwrap();
        assert_eq!(top1.certain, vec![TupleId::new(3)]);
        assert_eq!(top1.possible, vec![TupleId::new(3)]);
        assert_eq!(top1.threshold, Interval::new(12.0, 16.0).unwrap());
        // TOP-3: {3} certain (beaten by nobody); {4, 5} fight for the other
        // two slots with nobody else able to reach them (next high is 7).
        let top3 = bounded_top_n(&input, 3).unwrap();
        assert!(top3.certain.contains(&TupleId::new(3)));
        assert!(top3.certain.contains(&TupleId::new(4)));
        assert!(top3.certain.contains(&TupleId::new(5)));
        // Tuple 2 ([5,7]) cannot crack the top 3: 3 others certainly beat 7?
        // L3=12 > 7 yes; L4=9 > 7 yes; L5=8 > 7 yes → 3 certain beaters.
        assert!(!top3.possible.contains(&TupleId::new(2)));
        // The 3rd largest value: [8, 11].
        assert_eq!(top3.threshold, Interval::new(8.0, 11.0).unwrap());
    }

    /// Soundness against realizations: the realized top-n set always
    /// contains `certain` and is contained in `possible`.
    #[test]
    fn top_n_brackets_every_realization() {
        use crate::verify::realize_table;
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        for n in 1..=6usize {
            let top = bounded_top_n(&input, n).unwrap();
            for seed in 0..40u64 {
                let master = realize_table(&t, seed).unwrap();
                // Realized top-n by latency.
                let mut vals: Vec<(f64, TupleId)> = master
                    .scan()
                    .map(|(tid, row)| (row.exact(LATENCY).unwrap().as_f64().unwrap(), tid))
                    .collect();
                vals.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                let realized: Vec<TupleId> = vals.iter().take(n).map(|(_, t)| *t).collect();
                for c in &top.certain {
                    assert!(
                        realized.contains(c),
                        "n={n} seed={seed}: certain {c} missing from realized top"
                    );
                }
                for r in &realized {
                    // Ties at the cut make the realized set ambiguous; only
                    // check tuples strictly above the cut value.
                    let cut = vals[n - 1].0;
                    let v = vals.iter().find(|(_, t)| t == r).unwrap().0;
                    if v > cut {
                        assert!(
                            top.possible.contains(r),
                            "n={n} seed={seed}: realized {r} not even possible"
                        );
                    }
                }
                // The realized n-th largest lies in the threshold bound.
                assert!(top.threshold.contains(vals[n - 1].0));
            }
        }
    }

    #[test]
    fn top_n_validates_inputs() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        assert!(bounded_top_n(&input, 0).is_err());
        assert!(bounded_top_n(&input, 7).is_err());
        let pred = Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("traffic")),
            Expr::Literal(Value::Float(100.0)),
        )
        .bind(&schema())
        .unwrap();
        let uncertain = AggInput::build(&t, Some(&pred), Some(&col("latency"))).unwrap();
        assert!(bounded_top_n(&uncertain, 2).is_err());
    }

    #[test]
    fn exact_inputs_give_exact_median() {
        let t = master_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        let m = bounded_median(&input).unwrap();
        assert!(m.is_point());
        // latencies {3,7,13,9,11,5} sorted {3,5,7,9,11,13}; k=3 → 7.
        assert_eq!(m.lo(), 7.0);
    }
}
