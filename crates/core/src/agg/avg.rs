//! Bounded AVG (§5.4, §6.4.1, Appendix E).
//!
//! Without a predicate `COUNT` is exact, so AVG is just the SUM bound
//! divided by the cardinality. With a predicate both SUM and COUNT are
//! uncertain; the paper gives two computations:
//!
//! * a **tight** `O(n log n)` bound (Appendix E): anchor at the `T+`
//!   average, then fold in `T?` endpoints while they improve the extreme;
//! * a **loose** linear-time bound from the SUM and COUNT intervals.
//!
//! Both are implemented; the executor reports the tight bound, while
//! CHOOSE_REFRESH_AVG guarantees the loose one (Appendix F) — which is
//! sound for the tight bound too, since tight ⊆ loose (verified by tests).

use trapp_types::{Interval, TrappError};

use super::count::bounded_count;
use super::sum::bounded_sum;
use super::AggInput;

/// Tight bounded AVG (Appendix E).
///
/// Lower endpoint: start from `S_L/K_L` = sum/count of `T+` low endpoints;
/// walk `T?` low endpoints in increasing order, averaging each in while it
/// decreases the running mean. Upper endpoint mirrors with high endpoints
/// in decreasing order.
///
/// Degenerate cases (the paper leaves them implicit):
/// * `T+ = T? = ∅` (certainly empty set) — an error: AVG is undefined;
/// * `T+ = ∅, T? ≠ ∅` — the answer is conditioned on the selection being
///   non-empty: the extreme averages are the single smallest low / largest
///   high endpoints.
pub fn bounded_avg_tight(input: &AggInput) -> Result<Interval, TrappError> {
    if input.items.is_empty() {
        return Err(TrappError::Unsupported(
            "AVG over a certainly-empty selection is undefined".into(),
        ));
    }

    // Lower endpoint.
    let mut sl: f64 = input.plus().map(|i| i.interval.lo()).sum();
    let mut kl = input.plus_count();
    let mut lows: Vec<f64> = input.question().map(|i| i.interval.lo()).collect();
    lows.sort_by(f64::total_cmp);
    if kl == 0 {
        // Conditioned on non-emptiness: the minimum possible average is the
        // smallest single low endpoint (averaging in anything ≥ it cannot
        // decrease the mean).
        sl = lows[0];
        kl = 1;
        // Continue folding in equal elements is harmless but cannot improve.
    } else {
        for &la in &lows {
            if la < sl / kl as f64 {
                sl += la;
                kl += 1;
            } else {
                break;
            }
        }
    }
    let lo = sl / kl as f64;

    // Upper endpoint (mirror).
    let mut sh: f64 = input.plus().map(|i| i.interval.hi()).sum();
    let mut kh = input.plus_count();
    let mut highs: Vec<f64> = input.question().map(|i| i.interval.hi()).collect();
    highs.sort_by(|a, b| f64::total_cmp(b, a));
    if kh == 0 {
        sh = highs[0];
        kh = 1;
    } else {
        for &ha in &highs {
            if ha > sh / kh as f64 {
                sh += ha;
                kh += 1;
            } else {
                break;
            }
        }
    }
    let hi = sh / kh as f64;

    Interval::new(lo, hi)
}

/// Loose bounded AVG (§6.4.1): derived from the SUM and COUNT bounds,
///
/// ```text
/// [ min(L_SUM/H_COUNT, L_SUM/L_COUNT), max(H_SUM/L_COUNT, H_SUM/H_COUNT) ]
/// ```
///
/// `L_COUNT` is clamped to at least 1 — the bound is conditioned on the
/// selection being non-empty, like the tight computation.
pub fn bounded_avg_loose(input: &AggInput) -> Result<Interval, TrappError> {
    if input.items.is_empty() {
        return Err(TrappError::Unsupported(
            "AVG over a certainly-empty selection is undefined".into(),
        ));
    }
    let sum = bounded_sum(input);
    let count = bounded_count(input);
    let lc = count.lo().max(1.0);
    let hc = count.hi().max(1.0);
    let lo = (sum.lo() / hc).min(sum.lo() / lc);
    let hi = (sum.hi() / lc).max(sum.hi() / hc);
    Interval::new(lo, hi)
}

/// Bounded AVG without a predicate (§5.4): SUM bound over the exact
/// cardinality. Provided for clarity/documentation; for all-`T+` inputs it
/// coincides with [`bounded_avg_tight`].
pub fn bounded_avg_no_predicate(input: &AggInput) -> Result<Interval, TrappError> {
    if input.items.is_empty() {
        return Err(TrappError::Unsupported(
            "AVG over an empty table is undefined".into(),
        ));
    }
    debug_assert_eq!(input.question_count(), 0, "use the predicate-aware path");
    let n = input.items.len() as f64;
    let sum = bounded_sum(input);
    Interval::new(sum.lo() / n, sum.hi() / n)
}

#[cfg(test)]
mod tests {
    use super::super::test_fixture::*;
    use super::super::AggInput;
    use super::*;
    use trapp_expr::{BinaryOp, ColumnRef, Expr};
    use trapp_types::Value;

    fn col(name: &str) -> Expr<usize> {
        Expr::Column(ColumnRef::bare(name)).bind(&schema()).unwrap()
    }

    fn traffic_gt_100() -> Expr<usize> {
        Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("traffic")),
            Expr::Literal(Value::Float(100.0)),
        )
        .bind(&schema())
        .unwrap()
    }

    /// Q6 / Appendix E worked example: AVG latency WHERE traffic > 100.
    /// Tight bound = [SL/KL, SH/KH] = [20/4, 34/3] = [5, 11.3̄].
    #[test]
    fn paper_q6_tight_bound() {
        let t = links_table();
        let input = AggInput::build(&t, Some(&traffic_gt_100()), Some(&col("latency"))).unwrap();
        let tight = bounded_avg_tight(&input).unwrap();
        assert!((tight.lo() - 5.0).abs() < 1e-12);
        assert!((tight.hi() - 34.0 / 3.0).abs() < 1e-12);
    }

    /// §6.4.1: the loose bound for Q6 is [LSUM/HCOUNT…] = [14/6, 55/2] =
    /// [2.3̄, 27.5], strictly looser than the tight bound.
    #[test]
    fn paper_q6_loose_bound() {
        let t = links_table();
        let input = AggInput::build(&t, Some(&traffic_gt_100()), Some(&col("latency"))).unwrap();
        let loose = bounded_avg_loose(&input).unwrap();
        assert!((loose.lo() - 14.0 / 6.0).abs() < 1e-12);
        assert!((loose.hi() - 27.5).abs() < 1e-12);
        let tight = bounded_avg_tight(&input).unwrap();
        assert!(loose.contains_interval(tight));
    }

    /// Q3: AVG traffic without predicate = SUM/6 = [600/6, 695/6] = [100, 115.8̄].
    #[test]
    fn paper_q3_no_predicate() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("traffic"))).unwrap();
        let avg = bounded_avg_no_predicate(&input).unwrap();
        assert!((avg.lo() - 100.0).abs() < 1e-12);
        assert!((avg.hi() - 695.0 / 6.0).abs() < 1e-12);
        // The tight path agrees when everything is T+.
        let tight = bounded_avg_tight(&input).unwrap();
        assert!((tight.lo() - avg.lo()).abs() < 1e-12);
        assert!((tight.hi() - avg.hi()).abs() < 1e-12);
    }

    #[test]
    fn empty_avg_is_an_error() {
        let input = AggInput::default();
        assert!(bounded_avg_tight(&input).is_err());
        assert!(bounded_avg_loose(&input).is_err());
        assert!(bounded_avg_no_predicate(&input).is_err());
    }

    #[test]
    fn all_question_input_uses_extremes() {
        let t = links_table();
        // traffic > 119: tuple 2 [110,120] is T? (possible, not certain);
        // others with hi ≤ 119 are T−; tuple 4 [120,145] is T+ actually.
        // Use > 144.9 so that only tuple 4 remains and only as T?.
        let pred = Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("traffic")),
            Expr::Literal(Value::Float(144.9)),
        )
        .bind(&schema())
        .unwrap();
        let input = AggInput::build(&t, Some(&pred), Some(&col("latency"))).unwrap();
        assert_eq!(input.plus_count(), 0);
        assert_eq!(input.question_count(), 1);
        // Conditioned on non-emptiness the average is tuple 4's latency.
        let tight = bounded_avg_tight(&input).unwrap();
        assert_eq!(tight, Interval::new(9.0, 11.0).unwrap());
    }

    /// Property: the tight bound is always contained in the loose bound.
    #[test]
    fn tight_within_loose_for_various_predicates() {
        let t = links_table();
        for threshold in [90.0, 95.0, 100.0, 105.0, 110.0, 120.0, 140.0] {
            let pred = Expr::binary(
                BinaryOp::Gt,
                Expr::Column(ColumnRef::bare("traffic")),
                Expr::Literal(Value::Float(threshold)),
            )
            .bind(&schema())
            .unwrap();
            let input = AggInput::build(&t, Some(&pred), Some(&col("latency"))).unwrap();
            if input.items.is_empty() {
                continue;
            }
            let tight = bounded_avg_tight(&input).unwrap();
            let loose = bounded_avg_loose(&input).unwrap();
            assert!(
                loose.contains_interval(tight),
                "threshold {threshold}: tight {tight} ⊄ loose {loose}"
            );
        }
    }
}
