//! Bounded aggregate computation (§5, §6, Appendix E).
//!
//! All aggregates consume an [`AggInput`]: the tuples of `T+ ∪ T?` with,
//! per tuple, the interval of the aggregation expression, the band, and the
//! refresh cost. Building the input performs classification (via
//! `trapp-expr`) and — when the aggregation argument is a bare column — the
//! Appendix D bound refinement.

pub mod avg;
pub mod count;
pub mod min_max;
pub mod order_stat;
pub mod sum;

use std::fmt;

use trapp_expr::{eval, implied_interval, Band, Expr};
use trapp_sql::AggregateFunc;
use trapp_storage::Table;
use trapp_types::{Interval, TrappError, TupleId};

/// Re-export for convenience: the aggregate function enum comes from the
/// SQL layer so parsed queries and direct API calls share one type.
pub type Aggregate = AggregateFunc;

/// One tuple's contribution to an aggregate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AggItem {
    /// The tuple.
    pub tid: TupleId,
    /// `T+` or `T?` (`T−` tuples never become items).
    pub band: Band,
    /// Range of the aggregation expression over this tuple's bounds
    /// (post-refinement for `T?` tuples when applicable).
    pub interval: Interval,
    /// Refresh cost `Cᵢ`.
    pub cost: f64,
}

impl AggItem {
    /// `true` if the tuple's aggregate value is exactly known.
    pub fn is_exact(&self) -> bool {
        self.interval.is_point()
    }
}

/// The classified, evaluated input to a bounded aggregate.
#[derive(Clone, Debug, Default)]
pub struct AggInput {
    /// Items for tuples in `T+ ∪ T?`.
    ///
    /// Read freely, but **never push to this directly or flip an item's
    /// band in place** — the O(1) band counts are maintained by
    /// [`AggInput::new`] / [`AggInput::push_item`], and a bypass desyncs
    /// [`AggInput::plus_count`] (a debug assertion catches it in debug
    /// builds). Rewriting fields that don't touch `band` (e.g.
    /// tuple-id rewrites for cross-shard merging) is fine.
    pub items: Vec<AggItem>,
    /// `|T−|` (kept for diagnostics).
    pub minus_count: usize,
    /// Unpropagated `(inserts, deletes)` at the source (§8.3 relaxation);
    /// `(0, 0)` under the paper's default eager propagation.
    pub cardinality_slack: (u64, u64),
    /// `|T+|`, maintained by the constructors so the per-plan band counts
    /// are O(1) instead of re-scanning `items` on every call.
    pub(crate) plus_items: usize,
}

impl AggInput {
    /// Wraps already-classified items, counting the bands once so
    /// [`plus_count`](AggInput::plus_count) /
    /// [`question_count`](AggInput::question_count) never rescan.
    pub fn new(items: Vec<AggItem>, minus_count: usize, cardinality_slack: (u64, u64)) -> AggInput {
        let plus_items = items.iter().filter(|i| i.band == Band::Plus).count();
        AggInput {
            items,
            minus_count,
            cardinality_slack,
            plus_items,
        }
    }

    /// Appends one classified item, keeping the band counts current.
    pub fn push_item(&mut self, item: AggItem) {
        self.plus_items += usize::from(item.band == Band::Plus);
        self.items.push(item);
    }

    /// Items in `T+`.
    pub fn plus(&self) -> impl Iterator<Item = &AggItem> + '_ {
        self.items.iter().filter(|i| i.band == Band::Plus)
    }

    /// Items in `T?`.
    pub fn question(&self) -> impl Iterator<Item = &AggItem> + '_ {
        self.items.iter().filter(|i| i.band == Band::Question)
    }

    /// `|T+|`.
    pub fn plus_count(&self) -> usize {
        debug_assert_eq!(self.plus_items, self.plus().count());
        self.plus_items
    }

    /// `|T?|`.
    pub fn question_count(&self) -> usize {
        self.items.len() - self.plus_count()
    }

    /// Builds the input for `table`, classifying against `predicate` and
    /// evaluating `arg` (the aggregation expression) per surviving tuple.
    ///
    /// When `arg` is a bare column reference, `T?` bounds are refined with
    /// the predicate-implied interval (Appendix D); a refinement that
    /// empties the bound reclassifies the tuple as `T−`.
    ///
    /// `arg = None` (COUNT) evaluates every surviving tuple to the dummy
    /// point interval `[1, 1]` so COUNT can share the item pipeline.
    pub fn build(
        table: &Table,
        predicate: Option<&Expr<usize>>,
        arg: Option<&Expr<usize>>,
    ) -> Result<AggInput, TrappError> {
        AggInput::build_filtered(table, predicate, arg, |_, _| true)
    }

    /// [`AggInput::build`] restricted to tuples accepted by `filter` —
    /// used by `GROUP BY` execution to build one input per group.
    pub fn build_filtered(
        table: &Table,
        predicate: Option<&Expr<usize>>,
        arg: Option<&Expr<usize>>,
        filter: impl Fn(trapp_types::TupleId, &trapp_storage::Row) -> bool,
    ) -> Result<AggInput, TrappError> {
        let refinement = refinement_for(predicate, arg);
        let mut plus_items = Vec::new();
        let mut question_items = Vec::new();
        let mut minus_count = 0usize;
        for (tid, row) in table.scan() {
            if !filter(tid, row) {
                continue;
            }
            match classify_tuple(predicate, arg, refinement, tid, row, table.cost(tid)?)? {
                Some(item) if item.band == Band::Plus => plus_items.push(item),
                Some(item) => question_items.push(item),
                None => minus_count += 1,
            }
        }
        // Canonical item order: all `T+` items in scan order, then all
        // `T?` items in scan order — the order every downstream consumer
        // (tie-breaking, knapsack indexing, merging) is keyed to.
        let plus_len = plus_items.len();
        let mut items = plus_items;
        items.append(&mut question_items);
        Ok(AggInput {
            items,
            minus_count,
            cardinality_slack: table.cardinality_slack(),
            plus_items: plus_len,
        })
    }
}

/// The Appendix D refinement interval for a `(predicate, arg)` pair: the
/// predicate-implied range of the aggregation column when the aggregation
/// argument is a bare column reference, `None` otherwise.
pub(crate) fn refinement_for(
    predicate: Option<&Expr<usize>>,
    arg: Option<&Expr<usize>>,
) -> Option<Interval> {
    match (predicate, arg) {
        (Some(pred), Some(Expr::Column(c))) => Some(implied_interval(pred, *c)),
        _ => None,
    }
}

/// The per-tuple classification + evaluation step shared by
/// [`AggInput::build_filtered`] and the incremental band views
/// ([`crate::view`]): classifies `row` against `predicate`, evaluates
/// `arg`, and applies the Appendix D refinement. Returns `None` when the
/// tuple lands in `T−` (including a `T?` tuple reclassified because the
/// refinement emptied its bound).
pub(crate) fn classify_tuple(
    predicate: Option<&Expr<usize>>,
    arg: Option<&Expr<usize>>,
    refinement: Option<Interval>,
    tid: TupleId,
    row: &trapp_storage::Row,
    cost: f64,
) -> Result<Option<AggItem>, TrappError> {
    let band = match predicate {
        None => Band::Plus,
        Some(pred) => Band::from_tri(trapp_expr::eval::eval_predicate(pred, row)?),
    };
    if band == Band::Minus {
        return Ok(None);
    }
    let interval = match arg {
        Some(e) => eval(e, row)?.as_interval()?,
        None => Interval::new_unchecked(1.0, 1.0),
    };
    // Appendix D refinement: only sound for T? tuples (T+ tuples are
    // already known to satisfy the predicate, their values need no
    // conditioning — and for them the restriction holds anyway, so
    // intersecting is sound there too; we apply it to both for tighter
    // bounds).
    let interval = match refinement {
        Some(s) => match interval.intersect(s) {
            Some(iv) => iv,
            // A T+ tuple certainly satisfies the predicate, yet its value
            // range is disjoint from what the predicate implies — only
            // possible through conservative classification; keep the
            // original interval. A T? tuple cannot satisfy the predicate:
            // actually T−.
            None if band == Band::Plus => interval,
            None => return Ok(None),
        },
        None => interval,
    };
    Ok(Some(AggItem {
        tid,
        band,
        interval,
        cost,
    }))
}

/// A bounded answer `[L_A, H_A]` guaranteed to contain the precise answer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundedAnswer {
    /// The answer range.
    pub range: Interval,
}

impl BoundedAnswer {
    /// Wraps a range.
    pub fn new(range: Interval) -> BoundedAnswer {
        BoundedAnswer { range }
    }

    /// The precision achieved: `H_A − L_A`.
    pub fn width(&self) -> f64 {
        self.range.width()
    }

    /// `true` if the answer satisfies `width ≤ R` (`None` = `R = ∞`).
    pub fn satisfies(&self, within: Option<f64>) -> bool {
        match within {
            None => true,
            Some(r) => self.width() <= r,
        }
    }

    /// `true` if the answer is a single point (exact).
    pub fn is_exact(&self) -> bool {
        self.range.is_point()
    }
}

impl fmt::Display for BoundedAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.range)
    }
}

/// Computes the bounded answer for `agg` over `input`.
///
/// `AVG` uses the tight Appendix E algorithm; see [`avg::bounded_avg_loose`]
/// for the linear-time loose variant.
///
/// With non-zero cardinality slack (§8.3 delayed insert/delete
/// propagation), unseen tuples carry unknown values: only `COUNT` keeps a
/// finite guaranteed bound, so other aggregates are rejected.
pub fn bounded_answer(agg: Aggregate, input: &AggInput) -> Result<BoundedAnswer, TrappError> {
    if input.cardinality_slack != (0, 0) && agg != Aggregate::Count {
        return Err(TrappError::Unsupported(format!(
            "{agg} cannot be bounded under cardinality slack {:?}: unseen tuples \
             have unbounded values (propagate inserts/deletes first)",
            input.cardinality_slack
        )));
    }
    let range = match agg {
        Aggregate::Min => min_max::bounded_min(input),
        Aggregate::Max => min_max::bounded_max(input),
        Aggregate::Sum => sum::bounded_sum(input),
        Aggregate::Count => count::bounded_count(input),
        Aggregate::Avg => avg::bounded_avg_tight(input)?,
        Aggregate::Median => order_stat::bounded_median(input)?,
    };
    Ok(BoundedAnswer::new(range))
}

#[cfg(test)]
pub(crate) mod test_fixture {
    //! The Figure 2 fixture shared by the aggregate and refresh tests.

    use std::sync::Arc;
    use trapp_storage::{ColumnDef, Schema, Table};
    use trapp_types::{BoundedValue, Value};

    /// Columns: from_node INT, to_node INT, latency/bandwidth/traffic
    /// BOUNDED FLOAT, on_path BOOL (true for tuples {1,2,5,6} — the path
    /// N1→N2→N4→N5→N6 used by Q1/Q2).
    pub fn schema() -> Arc<Schema> {
        Schema::new(vec![
            ColumnDef::exact("from_node", trapp_types::ValueType::Int),
            ColumnDef::exact("to_node", trapp_types::ValueType::Int),
            ColumnDef::bounded_float("latency"),
            ColumnDef::bounded_float("bandwidth"),
            ColumnDef::bounded_float("traffic"),
            ColumnDef::exact("on_path", trapp_types::ValueType::Bool),
        ])
        .unwrap()
    }

    /// Column indexes.
    pub const LATENCY: usize = 2;
    pub const BANDWIDTH: usize = 3;
    pub const TRAFFIC: usize = 4;

    /// One fixture row: `(from, to, latency, bandwidth, traffic, cost,
    /// on_path)`.
    pub type FixtureRow = (i64, i64, (f64, f64), (f64, f64), (f64, f64), f64, bool);

    /// The rows of Figure 2.
    pub const ROWS: [FixtureRow; 6] = [
        (1, 2, (2.0, 4.0), (60.0, 70.0), (95.0, 105.0), 3.0, true),
        (2, 4, (5.0, 7.0), (45.0, 60.0), (110.0, 120.0), 6.0, true),
        (3, 4, (12.0, 16.0), (55.0, 70.0), (95.0, 110.0), 6.0, false),
        (2, 3, (9.0, 11.0), (65.0, 70.0), (120.0, 145.0), 8.0, false),
        (4, 5, (8.0, 11.0), (40.0, 55.0), (90.0, 110.0), 4.0, true),
        (5, 6, (4.0, 6.0), (45.0, 60.0), (90.0, 105.0), 2.0, true),
    ];

    /// The precise master values `(latency, bandwidth, traffic)` of Figure 2.
    pub const PRECISE: [(f64, f64, f64); 6] = [
        (3.0, 61.0, 98.0),
        (7.0, 53.0, 116.0),
        (13.0, 62.0, 105.0),
        (9.0, 68.0, 127.0),
        (11.0, 50.0, 95.0),
        (5.0, 45.0, 103.0),
    ];

    /// Builds the cached table of Figure 2.
    pub fn links_table() -> Table {
        let mut t = Table::new("links", schema());
        for (from, to, lat, bw, tr, cost, on_path) in ROWS {
            t.insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Int(from)),
                    BoundedValue::Exact(Value::Int(to)),
                    BoundedValue::bounded(lat.0, lat.1).unwrap(),
                    BoundedValue::bounded(bw.0, bw.1).unwrap(),
                    BoundedValue::bounded(tr.0, tr.1).unwrap(),
                    BoundedValue::Exact(Value::Bool(on_path)),
                ],
                cost,
            )
            .unwrap();
        }
        t
    }

    /// Builds the master table (exact values) matching [`links_table`].
    pub fn master_table() -> Table {
        let mut t = Table::new("links", schema());
        for (i, (from, to, _, _, _, cost, on_path)) in ROWS.into_iter().enumerate() {
            let (lat, bw, tr) = PRECISE[i];
            t.insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Int(from)),
                    BoundedValue::Exact(Value::Int(to)),
                    BoundedValue::exact_f64(lat).unwrap(),
                    BoundedValue::exact_f64(bw).unwrap(),
                    BoundedValue::exact_f64(tr).unwrap(),
                    BoundedValue::Exact(Value::Bool(on_path)),
                ],
                cost,
            )
            .unwrap();
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixture::*;
    use super::*;
    use trapp_expr::{BinaryOp, ColumnRef};
    use trapp_types::Value;

    fn cmp(col: &str, op: BinaryOp, k: f64) -> Expr<usize> {
        Expr::binary(
            op,
            Expr::Column(ColumnRef::bare(col)),
            Expr::Literal(Value::Float(k)),
        )
        .bind(&schema())
        .unwrap()
    }

    fn col(name: &str) -> Expr<usize> {
        Expr::Column(ColumnRef::bare(name)).bind(&schema()).unwrap()
    }

    #[test]
    fn build_without_predicate_takes_all_tuples() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        assert_eq!(input.items.len(), 6);
        assert_eq!(input.plus_count(), 6);
        assert_eq!(input.minus_count, 0);
        assert_eq!(input.items[0].interval, Interval::new(2.0, 4.0).unwrap());
        assert_eq!(input.items[0].cost, 3.0);
    }

    #[test]
    fn build_with_predicate_classifies_and_refines() {
        let t = links_table();
        // Q6 shape: aggregate latency where traffic > 100 — refinement does
        // not touch latency (predicate on a different column).
        let pred = cmp("traffic", BinaryOp::Gt, 100.0);
        let input = AggInput::build(&t, Some(&pred), Some(&col("latency"))).unwrap();
        assert_eq!(input.plus_count(), 2);
        assert_eq!(input.question_count(), 4);

        // Aggregating latency under `latency > 10`: T? tuples' bounds are
        // clamped from below at 10 (Appendix D).
        let pred = cmp("latency", BinaryOp::Gt, 10.0);
        let input = AggInput::build(&t, Some(&pred), Some(&col("latency"))).unwrap();
        // T+ = {3} ([12,16]); T? = {4: [9,11]→[10,11], 5: [8,11]→[10,11]}.
        assert_eq!(input.plus_count(), 1);
        let q: Vec<_> = input.question().collect();
        assert_eq!(q.len(), 2);
        for item in q {
            assert_eq!(item.interval.lo(), 10.0);
            assert_eq!(item.interval.hi(), 11.0);
        }
    }

    #[test]
    fn refinement_can_reclassify_to_minus() {
        let t = links_table();
        // latency > 10.9: tuple 4 [9,11] stays T? (possible), but refine
        // under predicate latency > 15.9: only tuple 3 [12,16] remains T?;
        // tuples with hi < 15.9... check a tighter case: latency > 16 — no
        // tuple can pass except none (t3 hi = 16, `> 16` excludes it).
        let pred = cmp("latency", BinaryOp::Gt, 16.0);
        let input = AggInput::build(&t, Some(&pred), Some(&col("latency"))).unwrap();
        assert_eq!(input.items.len(), 0);
        assert_eq!(input.minus_count, 6);
    }

    #[test]
    fn bounded_answer_dispatch() {
        let t = links_table();
        let input = AggInput::build(&t, None, Some(&col("latency"))).unwrap();
        let sum = bounded_answer(Aggregate::Sum, &input).unwrap();
        assert_eq!(sum.range, Interval::new(40.0, 55.0).unwrap());
        assert!(!sum.is_exact());
        assert!(sum.satisfies(Some(15.0)));
        assert!(!sum.satisfies(Some(14.9)));
        assert!(sum.satisfies(None));
    }
}
