//! Bounded COUNT (§5.3, §6.3, §8.3).
//!
//! Without a predicate, insert/delete propagation is eager (§3), so the
//! cached cardinality *is* the master cardinality and COUNT is exact. With
//! a predicate the answer is `[|T+|, |T+| + |T?|]`.
//!
//! Under the §8.3 relaxation — up to `i` unpropagated inserts and `d`
//! unpropagated deletes — the bound widens to
//! `[max(|T+| − d, 0), |T+| + |T?| + i]`: every unseen insert might satisfy
//! the predicate, and every unseen delete might remove a `T+` tuple.

use trapp_types::Interval;

use super::AggInput;

/// Bounded COUNT per §5.3/§6.3, accounting for cardinality slack (§8.3).
pub fn bounded_count(input: &AggInput) -> Interval {
    let plus = input.plus_count() as f64;
    let question = input.question_count() as f64;
    let (inserts, deletes) = input.cardinality_slack;
    Interval::new_unchecked(
        (plus - deletes as f64).max(0.0),
        plus + question + inserts as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::super::test_fixture::*;
    use super::super::AggInput;
    use super::*;
    use trapp_expr::{BinaryOp, ColumnRef, Expr};
    use trapp_types::Value;

    /// Q5: COUNT of links with latency > 10 = [1, 3]
    /// (T+ = {3}, T? = {4, 5}).
    #[test]
    fn paper_q5_count() {
        let t = links_table();
        let pred = Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("latency")),
            Expr::Literal(Value::Float(10.0)),
        )
        .bind(&schema())
        .unwrap();
        let input = AggInput::build(&t, Some(&pred), None).unwrap();
        assert_eq!(bounded_count(&input), Interval::new(1.0, 3.0).unwrap());
    }

    /// §5.3: without a predicate COUNT is exact (eager insert/delete
    /// propagation keeps cached cardinality equal to master cardinality).
    #[test]
    fn count_without_predicate_is_exact() {
        let t = links_table();
        let input = AggInput::build(&t, None, None).unwrap();
        let c = bounded_count(&input);
        assert!(c.is_point());
        assert_eq!(c.lo(), 6.0);
    }

    #[test]
    fn empty_table_counts_zero() {
        let input = AggInput::default();
        let c = bounded_count(&input);
        assert!(c.is_point());
        assert_eq!(c.lo(), 0.0);
    }

    /// §8.3 relaxation: slack widens COUNT by (inserts + deletes) and
    /// clamps the lower bound at zero.
    #[test]
    fn cardinality_slack_widens_count() {
        let mut t = links_table();
        t.set_cardinality_slack(2, 1);
        let input = AggInput::build(&t, None, None).unwrap();
        let c = bounded_count(&input);
        assert_eq!((c.lo(), c.hi()), (5.0, 8.0)); // [6−1, 6+2]

        // Lower bound clamps at zero for tiny tables.
        t.set_cardinality_slack(0, 100);
        let input = AggInput::build(&t, None, None).unwrap();
        assert_eq!(bounded_count(&input).lo(), 0.0);
    }

    /// With slack, value aggregates are rejected: unseen tuples have
    /// unbounded values.
    #[test]
    fn slack_rejects_value_aggregates() {
        use crate::agg::{bounded_answer, Aggregate};
        use trapp_expr::{ColumnRef, Expr};
        let mut t = links_table();
        t.set_cardinality_slack(1, 0);
        let col = Expr::Column(ColumnRef::bare("latency"))
            .bind(&schema())
            .unwrap();
        let input = AggInput::build(&t, None, Some(&col)).unwrap();
        for agg in [
            Aggregate::Sum,
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Avg,
        ] {
            assert!(bounded_answer(agg, &input).is_err(), "{agg:?}");
        }
        assert!(bounded_answer(Aggregate::Count, &input).is_ok());
    }
}
