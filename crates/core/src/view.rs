//! Incremental **band views**: memoized classified query inputs.
//!
//! Every plan pass used to call [`AggInput::build_filtered`] — a full
//! table scan with per-tuple predicate classification and expression
//! evaluation, executed *under the cache lock*, twice per query (plan →
//! fetch → replan) and once per group for `GROUP BY`. The paper's
//! sub-linear CHOOSE_REFRESH remarks (§5.1, §5.2, §6.3) assume that
//! rescan cost is gone; this module removes it.
//!
//! A [`BandView`] memoizes, per `(table, predicate, arg, group_by)` key,
//! the classified view of the table: the canonical [`AggInput`] (all `T+`
//! items in tuple-id order, then all `T?` items — exactly
//! `build_filtered`'s order) plus, for grouped queries, the per-group
//! partitions. The view stays valid across queries and plan passes; when
//! the table changes, [`BandView::sync`] replays only the tuples the
//! table's change log names ([`trapp_storage::Table::changes_since`]),
//! re-running the *identical* per-tuple classification step
//! (`classify_tuple`) the from-scratch build uses — which is why a synced
//! view is bit-identical to a fresh build (property-tested).
//!
//! Invalidation is pull-based: every `Table` mutation (refresh install,
//! value-initiated update, clock-advance re-materialization, cost change)
//! bumps the table's version and logs the touched tuple; the next access
//! replays exactly those tuples.
//!
//! The piece that makes resync **sub-linear** for selective predicates is
//! the *sticky `T−`* analysis: a tuple for which some exact-only `AND`
//! conjunct of the predicate is certainly false (e.g. `grp = 7` on a row
//! with `grp = 3`) can never leave `T−` through bound movement — only an
//! exact-cell write (tracked by `Table::exact_version`) can revive it. A
//! scalar predicate view therefore keeps the small *candidate* set of
//! bound-sensitive tuples and drops every logged change to a sticky
//! tuple unexamined, so even a clock advance that re-widened all `n`
//! bounds replays `O(|candidates|)` tuples, not `O(n)`. Views without
//! that structure (no predicate, or grouped) replay the full dirty set
//! and fall back to a rebuild when more than half the table changed.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use trapp_expr::{Band, Expr};
use trapp_storage::Table;
use trapp_types::{Interval, TrappError, TupleId};

use crate::agg::{classify_tuple, refinement_for, AggInput, AggItem};
use crate::group_by::{render_key, GroupKey};
use crate::plan::BoundQuery;

/// How many distinct views one cache retains before evicting the least
/// recently used (workloads with per-query literal predicates — e.g.
/// random COUNT thresholds — would otherwise grow without bound).
const MAX_VIEWS: usize = 256;

/// What one tuple currently contributes to the view.
#[derive(Clone, Debug)]
struct TupleState {
    /// The tuple's band (`Minus` = contributes no item, only a count).
    band: Band,
    /// The rendered group key (grouped views only).
    group: Option<Arc<str>>,
}

/// One group's bookkeeping in a grouped view.
#[derive(Clone, Debug)]
struct GroupState {
    /// The original key values, in `GROUP BY` column order.
    key: GroupKey,
    /// Tuples in the group (every band, including `T−`).
    members: usize,
    /// Members classified `T−`.
    minus: usize,
}

/// A memoized classified view of one table under one `(predicate, arg,
/// group_by)` shape. See the module docs.
pub struct BandView {
    predicate: Option<Expr<usize>>,
    arg: Option<Expr<usize>>,
    group_by: Vec<usize>,
    refinement: Option<Interval>,
    /// The table version the view is synced to.
    version: u64,
    /// The canonical whole-table input (plus-prefix, question-suffix,
    /// each ascending by tuple id). Scalar views keep **no** per-tuple
    /// side state at all: every live row is classified exactly once, so
    /// `minus_count ≡ table.len() − items.len()` and a rebuild costs
    /// exactly what the scan-based build costs.
    input: AggInput,
    /// Per-tuple state of a *grouped* view (bands *and* `T−`, with group
    /// membership); empty for scalar views.
    states: HashMap<TupleId, TupleState>,
    /// Per-group bookkeeping, rendered-key order (grouped views only).
    groups: BTreeMap<Arc<str>, GroupState>,
    /// Memoized per-group inputs; dropped on any change.
    grouped_cache: Option<Vec<(GroupKey, AggInput)>>,
    /// Scalar predicate views only: the tuples whose band is sensitive to
    /// bound movement (predicate not decidably false on exact cells
    /// alone), ascending. Everything else is **sticky `T−`** — it cannot
    /// leave `T−` until an exact cell changes — and replays skip it, so
    /// re-syncing after a clock advance that re-widened *every* bound
    /// costs O(candidates), not O(table). `None` disables the skip
    /// (no predicate, or a grouped view).
    candidates: Option<Vec<TupleId>>,
    /// Largest tuple id the view has classified; dirty ids above it are
    /// fresh inserts and always classify.
    max_tid: u64,
    /// The table's exact-cell version the stickiness analysis holds for.
    exact_epoch: u64,
    /// Bounded columns of the table (for the stickiness evaluation).
    bounded_cols: Vec<usize>,
    /// The predicate's top-level `AND` conjuncts that reference exact
    /// columns only — the per-row stickiness test (any of them evaluating
    /// certainly-false pins the row in `T−` for every bound valuation,
    /// by Kleene-logic monotonicity). Derived once per rebuild.
    exact_conjuncts: Vec<Expr<usize>>,
    /// LRU stamp maintained by [`ViewCache`].
    last_used: u64,
}

impl BandView {
    fn new(predicate: Option<&Expr<usize>>, arg: Option<&Expr<usize>>, group_by: &[usize]) -> Self {
        BandView {
            refinement: refinement_for(predicate, arg),
            predicate: predicate.cloned(),
            arg: arg.cloned(),
            group_by: group_by.to_vec(),
            version: 0,
            input: AggInput::default(),
            states: HashMap::new(),
            groups: BTreeMap::new(),
            grouped_cache: None,
            candidates: None,
            max_tid: 0,
            exact_epoch: 0,
            bounded_cols: Vec::new(),
            exact_conjuncts: Vec::new(),
            last_used: 0,
        }
    }

    /// `true` if this view can maintain a sticky-`T−` candidate set: a
    /// scalar (ungrouped) view whose predicate has at least one
    /// exact-only conjunct to test against.
    fn sticky_eligible(&self) -> bool {
        !self.exact_conjuncts.is_empty() && self.group_by.is_empty()
    }

    /// Whether `row` is **sticky `T−`**: some exact-only conjunct of the
    /// predicate evaluates to certainly-false, pinning the row in `T−`
    /// for *every* bound valuation (a false conjunct forces the whole
    /// conjunction false, and exact cells don't move with the bounds).
    fn is_sticky_minus(&self, row: &trapp_storage::Row) -> Result<bool, TrappError> {
        for conjunct in &self.exact_conjuncts {
            if trapp_expr::eval::eval_predicate(conjunct, row)? == trapp_types::Tri::False {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// The synced whole-table input — bit-identical to
    /// `AggInput::build_filtered(table, predicate, arg, |_, _| true)`.
    pub fn input(&self) -> &AggInput {
        &self.input
    }

    /// Brings the view up to `table`'s current version, replaying only the
    /// changed tuples (or rebuilding when the change set is large or the
    /// log no longer reaches back). On error the view is left empty and
    /// stale, so the next access rebuilds from scratch.
    pub fn sync(&mut self, table: &Table) -> Result<(), TrappError> {
        if self.version == table.version() {
            // A fresh view and a never-mutated table are both at version
            // 0 and both empty, so version equality alone means synced.
            return Ok(());
        }
        let sticky_ok = self.candidates.is_some() && self.exact_epoch == table.exact_version();
        let result = match table.changes_since(self.version) {
            // Sticky fast path: drop every entry whose tuple is pinned in
            // `T−` by exact cells before even deduplicating, so a clock
            // advance that re-widened all n bounds replays only the
            // candidate tuples — sub-linear resync for selective views.
            Some(entries) if sticky_ok => {
                let cands = self.candidates.as_ref().expect("sticky_ok");
                let mut dirty: Vec<TupleId> = entries
                    .iter()
                    .map(|&(_, t)| t)
                    .filter(|t| t.raw() > self.max_tid || cands.binary_search(t).is_ok())
                    .collect();
                dirty.sort_unstable();
                dirty.dedup();
                self.apply_changes(table, &dirty)
            }
            // No candidate set (unfiltered or grouped view — a scalar
            // predicate view always rebuilds instead, which is what
            // (re)derives its candidate set and exact epoch): replaying
            // more than half the table costs more than a clean rebuild.
            // The raw entry count over-approximates the distinct tuple
            // count, so this can only over-rebuild, never under-replay.
            Some(entries) if entries.len() * 2 <= table.len() && !self.sticky_eligible() => {
                let mut dirty: Vec<TupleId> = entries.iter().map(|&(_, t)| t).collect();
                dirty.sort_unstable();
                dirty.dedup();
                self.apply_changes(table, &dirty)
            }
            _ => self.rebuild(table),
        };
        match result {
            Ok(()) => {
                self.version = table.version();
                Ok(())
            }
            Err(e) => {
                // Half-applied changes are unusable: poison the view.
                self.reset();
                Err(e)
            }
        }
    }

    fn reset(&mut self) {
        self.input = AggInput::default();
        self.states.clear();
        self.groups.clear();
        self.grouped_cache = None;
        self.candidates = None;
        self.max_tid = 0;
        self.version = 0;
    }

    /// Full rebuild — the same single pass `build_filtered` runs, plus
    /// the band/group bookkeeping. Scalar views only record the (usually
    /// small) `T−` set on the side, so a rebuild costs what a scan-based
    /// build costs.
    fn rebuild(&mut self, table: &Table) -> Result<(), TrappError> {
        self.reset();
        self.exact_epoch = table.exact_version();
        self.bounded_cols = table.schema().bounded_columns();
        let mut conjuncts = Vec::new();
        if let Some(pred) = &self.predicate {
            collect_exact_conjuncts(pred, &self.bounded_cols, &mut conjuncts);
        }
        self.exact_conjuncts = conjuncts;
        let grouped = !self.group_by.is_empty();
        let mut candidates = self.sticky_eligible().then(Vec::new);
        let mut plus_items: Vec<AggItem> = Vec::new();
        let mut question_items: Vec<AggItem> = Vec::new();
        for (tid, row) in table.scan() {
            self.max_tid = tid.raw();
            if let Some(cands) = &mut candidates {
                if self.is_sticky_minus(row)? {
                    // Pinned in T− by exact cells: no item, and replays
                    // skip it until the exact epoch moves.
                    continue;
                }
                cands.push(tid);
            }
            let item = classify_tuple(
                self.predicate.as_ref(),
                self.arg.as_ref(),
                self.refinement,
                tid,
                row,
                table.cost(tid)?,
            )?;
            if grouped {
                let band = match &item {
                    Some(i) => i.band,
                    None => Band::Minus,
                };
                let group = self.group_of(row)?;
                if let Some(g) = &group {
                    let state = self.groups.entry(g.clone()).or_insert_with(|| GroupState {
                        key: render_source(row, &self.group_by).expect("rendered above"),
                        members: 0,
                        minus: 0,
                    });
                    state.members += 1;
                    state.minus += usize::from(band == Band::Minus);
                }
                self.states.insert(tid, TupleState { band, group });
            }
            match item {
                Some(i) if i.band == Band::Plus => plus_items.push(i),
                Some(i) => question_items.push(i),
                None => {}
            }
        }
        let mut items = plus_items;
        let plus_len = items.len();
        items.append(&mut question_items);
        let minus_count = table.len() - items.len();
        self.input = AggInput::new(items, minus_count, table.cardinality_slack());
        debug_assert_eq!(self.input.plus_count(), plus_len);
        self.candidates = candidates;
        Ok(())
    }

    /// Replays a batch of changed tuples (`dirty` sorted, deduplicated):
    /// retracts each tuple's old side bookkeeping, reclassifies the live
    /// ones with the *identical* per-tuple step the scan build uses, and
    /// repairs the canonical item vector in **one** merge pass — dirty
    /// tuples filtered out, their new items merged in — so a sync costs
    /// `O(n + Δ·classify)` memory traffic instead of `Δ` vector splices.
    fn apply_changes(&mut self, table: &Table, dirty: &[TupleId]) -> Result<(), TrappError> {
        self.grouped_cache = None;
        let grouped = !self.group_by.is_empty();
        let mut new_plus: Vec<AggItem> = Vec::new();
        let mut new_question: Vec<AggItem> = Vec::new();
        for &tid in dirty {
            // ---- Retract the old group membership (grouped views only;
            // the item vector is repaired wholesale below, and the
            // table-wide minus count is derived after the repair).
            if grouped {
                if let Some(old) = self.states.remove(&tid) {
                    if let Some(g) = old.group {
                        let state = self.groups.get_mut(&g).expect("group tracked");
                        state.members -= 1;
                        state.minus -= usize::from(old.band == Band::Minus);
                        if state.members == 0 {
                            self.groups.remove(&g);
                        }
                    }
                }
            }
            // ---- Reclassify, if the tuple still exists.
            let Ok(row) = table.row(tid) else {
                continue; // deleted
            };
            // A fresh insert joins the candidate set unless it is sticky
            // T− (new ids ascend past every existing candidate, so a push
            // keeps the set sorted); sticky inserts contribute nothing.
            if tid.raw() > self.max_tid {
                self.max_tid = tid.raw();
                if self.candidates.is_some() && self.is_sticky_minus(row)? {
                    continue;
                }
                if let Some(cands) = &mut self.candidates {
                    cands.push(tid);
                }
            }
            let item = classify_tuple(
                self.predicate.as_ref(),
                self.arg.as_ref(),
                self.refinement,
                tid,
                row,
                table.cost(tid)?,
            )?;
            if grouped {
                let band = match &item {
                    Some(i) => i.band,
                    None => Band::Minus,
                };
                let group = self.group_of(row)?;
                if let Some(g) = &group {
                    let state = self.groups.entry(g.clone()).or_insert_with(|| GroupState {
                        key: render_source(row, &self.group_by).expect("rendered above"),
                        members: 0,
                        minus: 0,
                    });
                    state.members += 1;
                    state.minus += usize::from(band == Band::Minus);
                }
                self.states.insert(tid, TupleState { band, group });
            }
            // `dirty` ascends, so these stay tid-sorted without a sort.
            match item {
                Some(i) if i.band == Band::Plus => new_plus.push(i),
                Some(i) => new_question.push(i),
                None => {}
            }
        }
        // ---- Repair the canonical vector in one pass per segment.
        let old = std::mem::take(&mut self.input.items);
        let (old_plus, old_question) = old.split_at(self.input.plus_items);
        let mut items = merge_repair(old_plus, dirty, new_plus);
        let plus_len = items.len();
        let mut question = merge_repair(old_question, dirty, new_question);
        items.append(&mut question);
        self.input.plus_items = plus_len;
        self.input.minus_count = table.len() - items.len();
        self.input.items = items;
        Ok(())
    }

    /// The rendered group key of a row (`None` for ungrouped views).
    fn group_of(&self, row: &trapp_storage::Row) -> Result<Option<Arc<str>>, TrappError> {
        if self.group_by.is_empty() {
            return Ok(None);
        }
        let key = render_source(row, &self.group_by)?;
        Ok(Some(Arc::from(render_key(&key).as_str())))
    }

    /// The per-group inputs, assembled in **one** pass over the view
    /// instead of one table scan per group, in rendered-key order — each
    /// bit-identical to `build_filtered` with that group's member filter.
    /// Memoized until the next change.
    pub fn grouped_inputs(&mut self) -> &[(GroupKey, AggInput)] {
        if self.grouped_cache.is_none() {
            let mut buckets: BTreeMap<Arc<str>, (Vec<AggItem>, Vec<AggItem>)> = self
                .groups
                .keys()
                .map(|k| (k.clone(), Default::default()))
                .collect();
            for item in &self.input.items {
                let state = &self.states[&item.tid];
                let g = state.group.as_ref().expect("grouped view");
                let (plus, question) = buckets.get_mut(g).expect("group tracked");
                if item.band == Band::Plus {
                    plus.push(*item);
                } else {
                    question.push(*item);
                }
            }
            let slack = self.input.cardinality_slack;
            let assembled = self
                .groups
                .iter()
                .map(|(rendered, state)| {
                    let (plus, question) = buckets.remove(rendered).expect("bucketed");
                    let plus_len = plus.len();
                    let mut items = plus;
                    items.append(&mut { question });
                    let input = AggInput::new(items, state.minus, slack);
                    debug_assert_eq!(input.plus_count(), plus_len);
                    (state.key.clone(), input)
                })
                .collect();
            self.grouped_cache = Some(assembled);
        }
        self.grouped_cache.as_deref().expect("just assembled")
    }
}

/// Collects the top-level `AND` conjuncts of `e` that reference no
/// bounded column — the exact-only tests whose certain falsehood pins a
/// row in `T−` regardless of bound movement. Non-`AND` structure (OR,
/// NOT, bounded comparisons) contributes nothing: always sound, merely
/// less sticky.
fn collect_exact_conjuncts(e: &Expr<usize>, bounded: &[usize], out: &mut Vec<Expr<usize>>) {
    if let Expr::Binary(trapp_expr::BinaryOp::And, l, r) = e {
        collect_exact_conjuncts(l, bounded, out);
        collect_exact_conjuncts(r, bounded, out);
        return;
    }
    if e.columns().iter().all(|c| !bounded.contains(c)) {
        out.push(e.clone());
    }
}

/// One segment of the canonical item vector, repaired: `old` (tid-sorted)
/// with every tuple in `dirty` (sorted) dropped, and `fresh` (tid-sorted
/// replacement items, disjoint from the kept old items) merged in by
/// tuple id.
fn merge_repair(old: &[AggItem], dirty: &[TupleId], fresh: Vec<AggItem>) -> Vec<AggItem> {
    let mut out: Vec<AggItem> = Vec::with_capacity(old.len() + fresh.len());
    let mut fresh = fresh.into_iter().peekable();
    for item in old {
        if dirty.binary_search(&item.tid).is_ok() {
            continue; // retracted; its replacement (if any) rides `fresh`
        }
        while let Some(f) = fresh.peek() {
            if f.tid < item.tid {
                let f = *f;
                fresh.next();
                out.push(f);
            } else {
                break;
            }
        }
        out.push(*item);
    }
    out.extend(fresh);
    out
}

/// Extracts the group-key values of a row.
fn render_source(row: &trapp_storage::Row, group_by: &[usize]) -> Result<GroupKey, TrappError> {
    let mut key: GroupKey = Vec::with_capacity(group_by.len());
    for &col in group_by {
        key.push(row.exact(col)?);
    }
    Ok(key)
}

/// The per-session cache of band views, keyed by the query shape.
#[derive(Default)]
pub struct ViewCache {
    views: HashMap<String, BandView>,
    tick: u64,
}

impl ViewCache {
    /// The view for `(table, predicate, arg, group_by)`, created on first
    /// use. Evicts the least recently used view past the retention cap.
    pub fn view_for(&mut self, table: &str, bound: &BoundQuery) -> &mut BandView {
        let key = fingerprint(table, bound);
        self.tick += 1;
        if !self.views.contains_key(&key) && self.views.len() >= MAX_VIEWS {
            if let Some(oldest) = self
                .views
                .iter()
                .min_by_key(|(_, v)| v.last_used)
                .map(|(k, _)| k.clone())
            {
                self.views.remove(&oldest);
            }
        }
        let view = self.views.entry(key).or_insert_with(|| {
            BandView::new(
                bound.predicate.as_ref(),
                bound.arg.as_ref(),
                &bound.group_by,
            )
        });
        view.last_used = self.tick;
        view
    }
}

/// A deterministic key for the view a query shape maps to. `WITHIN` and
/// the aggregate are deliberately excluded: the classified input only
/// depends on the predicate, the aggregation expression, and the grouping.
fn fingerprint(table: &str, bound: &BoundQuery) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(64);
    let _ = write!(
        s,
        "{table}\u{1f}{:?}\u{1f}{:?}\u{1f}{:?}",
        bound.predicate, bound.arg, bound.group_by
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::test_fixture::*;
    use trapp_expr::{BinaryOp, ColumnRef};
    use trapp_types::Value;

    fn cmp(col: &str, op: BinaryOp, k: f64) -> Expr<usize> {
        Expr::binary(
            op,
            Expr::Column(ColumnRef::bare(col)),
            Expr::Literal(Value::Float(k)),
        )
        .bind(&schema())
        .unwrap()
    }

    fn col(name: &str) -> Expr<usize> {
        Expr::Column(ColumnRef::bare(name)).bind(&schema()).unwrap()
    }

    fn assert_matches_scratch(
        view: &mut BandView,
        table: &Table,
        predicate: Option<&Expr<usize>>,
        arg: Option<&Expr<usize>>,
    ) {
        view.sync(table).unwrap();
        let scratch = AggInput::build_filtered(table, predicate, arg, |_, _| true).unwrap();
        assert_eq!(view.input().items, scratch.items);
        assert_eq!(view.input().minus_count, scratch.minus_count);
        assert_eq!(view.input().cardinality_slack, scratch.cardinality_slack);
        assert_eq!(view.input().plus_count(), scratch.plus_count());
    }

    #[test]
    fn view_tracks_refreshes_incrementally() {
        let mut t = links_table();
        let pred = cmp("latency", BinaryOp::Gt, 10.0);
        let arg = col("latency");
        let mut view = BandView::new(Some(&pred), Some(&arg), &[]);
        assert_matches_scratch(&mut view, &t, Some(&pred), Some(&arg));

        // A refresh reclassifies tuple 4 ([9,11] → point 9: T? → T−) and
        // the view must follow without a rebuild.
        t.refresh_cell(TupleId::new(4), LATENCY, 9.0).unwrap();
        assert_matches_scratch(&mut view, &t, Some(&pred), Some(&arg));
        // Another lands tuple 5 in T+.
        t.refresh_cell(TupleId::new(5), LATENCY, 10.5).unwrap();
        assert_matches_scratch(&mut view, &t, Some(&pred), Some(&arg));
    }

    #[test]
    fn view_tracks_inserts_deletes_and_costs() {
        let mut t = links_table();
        let arg = col("traffic");
        let mut view = BandView::new(None, Some(&arg), &[]);
        assert_matches_scratch(&mut view, &t, None, Some(&arg));

        t.delete(TupleId::new(3)).unwrap();
        assert_matches_scratch(&mut view, &t, None, Some(&arg));

        let tid = t
            .insert_with_cost(
                vec![
                    trapp_types::BoundedValue::Exact(Value::Int(6)),
                    trapp_types::BoundedValue::Exact(Value::Int(1)),
                    trapp_types::BoundedValue::bounded(1.0, 2.0).unwrap(),
                    trapp_types::BoundedValue::bounded(50.0, 60.0).unwrap(),
                    trapp_types::BoundedValue::bounded(100.0, 130.0).unwrap(),
                    trapp_types::BoundedValue::Exact(Value::Bool(false)),
                ],
                9.0,
            )
            .unwrap();
        assert_matches_scratch(&mut view, &t, None, Some(&arg));
        t.set_cost(tid, 2.5).unwrap();
        assert_matches_scratch(&mut view, &t, None, Some(&arg));
    }

    #[test]
    fn slack_change_rebuilds() {
        let mut t = links_table();
        let mut view = BandView::new(None, None, &[]);
        assert_matches_scratch(&mut view, &t, None, None);
        t.set_cardinality_slack(2, 1);
        assert_matches_scratch(&mut view, &t, None, None);
        assert_eq!(view.input().cardinality_slack, (2, 1));
    }

    #[test]
    fn grouped_view_matches_per_group_scratch() {
        let mut t = links_table();
        let arg = col("latency");
        let group_by = vec![0usize]; // from_node
        let mut view = BandView::new(None, Some(&arg), &group_by);
        view.sync(&t).unwrap();

        let check = |view: &mut BandView, t: &Table| {
            view.sync(t).unwrap();
            let partitions = crate::group_by::group_partitions(t, &group_by).unwrap();
            let groups: Vec<_> = view.grouped_inputs().to_vec();
            assert_eq!(groups.len(), partitions.len());
            for ((key, input), (_, (pkey, tids))) in groups.iter().zip(&partitions) {
                assert_eq!(render_key(key), render_key(pkey));
                let scratch = AggInput::build_filtered(t, None, Some(&arg), |tid, _| {
                    tids.binary_search(&tid).is_ok()
                })
                .unwrap();
                assert_eq!(input.items, scratch.items, "group {key:?}");
                assert_eq!(input.minus_count, scratch.minus_count);
                assert_eq!(input.plus_count(), scratch.plus_count());
            }
        };
        check(&mut view, &t);
        t.refresh_cell(TupleId::new(2), LATENCY, 6.0).unwrap();
        check(&mut view, &t);
        // Deleting one of group 2's two tuples keeps the group; deleting
        // the last member drops it.
        t.delete(TupleId::new(2)).unwrap();
        check(&mut view, &t);
        t.delete(TupleId::new(4)).unwrap();
        check(&mut view, &t);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut cache = ViewCache::default();
        let catalog_table = links_table();
        let q = trapp_sql::parse_query("SELECT SUM(latency) FROM links").unwrap();
        let mut catalog = trapp_storage::Catalog::new();
        catalog.add_table(catalog_table).unwrap();
        let bound = crate::plan::bind_query(&q, &catalog).unwrap();
        for _ in 0..(MAX_VIEWS + 10) {
            cache.view_for("links", &bound);
        }
        assert_eq!(cache.views.len(), 1, "same shape reuses one view");
    }
}
