//! Query binding: parsed [`Query`] → executable [`BoundQuery`].
//!
//! Binding resolves column names (optionally table-qualified) to positions,
//! type-checks the aggregation argument and predicate, and validates the
//! query shape (single table or a two-table join; `GROUP BY` only over
//! exact columns of a single table).

use std::sync::Arc;

use trapp_expr::{typecheck, ColumnRef, Expr};
use trapp_sql::Query;
use trapp_storage::{Catalog, ColumnDef, Schema};
use trapp_types::TrappError;

use crate::agg::Aggregate;

/// Where the query reads from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuerySource {
    /// A single table.
    Table(String),
    /// A two-table join (§7). Columns of `right` follow columns of `left`
    /// in the combined schema.
    Join {
        /// First table in the FROM clause.
        left: String,
        /// Second table.
        right: String,
    },
}

/// A bound, validated query ready for execution.
#[derive(Clone, Debug)]
pub struct BoundQuery {
    /// The aggregate.
    pub agg: Aggregate,
    /// Aggregation argument over combined-schema positions
    /// (`None` ⇔ `COUNT(*)`).
    pub arg: Option<Expr<usize>>,
    /// Precision constraint `R` (`None` = ∞).
    pub within: Option<f64>,
    /// Source table(s).
    pub source: QuerySource,
    /// Predicate over combined-schema positions.
    pub predicate: Option<Expr<usize>>,
    /// Positions of `GROUP BY` columns (single-table only, exact columns).
    pub group_by: Vec<usize>,
    /// The combined schema the expressions are bound against (for joins the
    /// column names are table-qualified to avoid collisions).
    pub schema: Arc<Schema>,
}

/// Binds `query` against `catalog`.
pub fn bind_query(query: &Query, catalog: &Catalog) -> Result<BoundQuery, TrappError> {
    match query.tables.len() {
        0 => Err(TrappError::Plan("query has no FROM table".into())),
        1 => bind_single(query, catalog),
        2 => bind_join(query, catalog),
        n => Err(TrappError::Unsupported(format!(
            "{n}-way joins are not supported (the paper's join treatment is two-table)"
        ))),
    }
}

fn bind_single(query: &Query, catalog: &Catalog) -> Result<BoundQuery, TrappError> {
    let table_name = &query.tables[0];
    let table = catalog.table(table_name)?;
    let schema = table.schema().clone();

    let mut resolve = |c: &ColumnRef| -> Result<usize, TrappError> {
        if let Some(t) = &c.table {
            if t != table_name {
                return Err(TrappError::Plan(format!(
                    "column {c} references table {t}, but the query reads {table_name}"
                )));
            }
        }
        schema.column_index(&c.column)
    };

    let arg = query
        .arg
        .as_ref()
        .map(|e| e.map_columns(&mut resolve))
        .transpose()?;
    let predicate = query
        .predicate
        .as_ref()
        .map(|e| e.map_columns(&mut resolve))
        .transpose()?;
    let group_by: Vec<usize> = query
        .group_by
        .iter()
        .map(&mut resolve)
        .collect::<Result<_, _>>()?;

    validate(query, &arg, &predicate, &group_by, &schema)?;
    Ok(BoundQuery {
        agg: query.agg,
        arg,
        within: query.within,
        source: QuerySource::Table(table_name.clone()),
        predicate,
        group_by,
        schema,
    })
}

fn bind_join(query: &Query, catalog: &Catalog) -> Result<BoundQuery, TrappError> {
    let (lname, rname) = (&query.tables[0], &query.tables[1]);
    if lname == rname {
        return Err(TrappError::Unsupported(
            "self-joins need table aliases, which are not supported".into(),
        ));
    }
    let left = catalog.table(lname)?;
    let right = catalog.table(rname)?;
    let schema = combined_schema(lname, left.schema(), rname, right.schema())?;
    let offset = left.schema().arity();

    let mut resolve = |c: &ColumnRef| -> Result<usize, TrappError> {
        match &c.table {
            Some(t) if t == lname => left.schema().column_index(&c.column),
            Some(t) if t == rname => right.schema().column_index(&c.column).map(|i| i + offset),
            Some(t) => Err(TrappError::Plan(format!(
                "column {c} references unknown table {t}"
            ))),
            None => {
                let in_left = left.schema().column_index(&c.column).ok();
                let in_right = right.schema().column_index(&c.column).ok();
                match (in_left, in_right) {
                    (Some(i), None) => Ok(i),
                    (None, Some(i)) => Ok(i + offset),
                    (Some(_), Some(_)) => Err(TrappError::Plan(format!(
                        "column {} is ambiguous between {lname} and {rname}; qualify it",
                        c.column
                    ))),
                    (None, None) => Err(TrappError::UnknownColumn(c.column.clone())),
                }
            }
        }
    };

    let arg = query
        .arg
        .as_ref()
        .map(|e| e.map_columns(&mut resolve))
        .transpose()?;
    let predicate = query
        .predicate
        .as_ref()
        .map(|e| e.map_columns(&mut resolve))
        .transpose()?;
    let group_by: Vec<usize> = query
        .group_by
        .iter()
        .map(&mut resolve)
        .collect::<Result<_, _>>()?;

    validate(query, &arg, &predicate, &group_by, &schema)?;
    Ok(BoundQuery {
        agg: query.agg,
        arg,
        within: query.within,
        source: QuerySource::Join {
            left: lname.clone(),
            right: rname.clone(),
        },
        predicate,
        group_by,
        schema,
    })
}

/// Concatenates two schemas, qualifying every column name with its table to
/// sidestep collisions. Expressions are bound by position, so the renamed
/// schema only serves type checking and diagnostics.
fn combined_schema(
    lname: &str,
    left: &Arc<Schema>,
    rname: &str,
    right: &Arc<Schema>,
) -> Result<Arc<Schema>, TrappError> {
    let mut cols: Vec<ColumnDef> = Vec::with_capacity(left.arity() + right.arity());
    for c in left.columns() {
        cols.push(ColumnDef {
            name: format!("{lname}.{}", c.name),
            ty: c.ty,
            bounded: c.bounded,
        });
    }
    for c in right.columns() {
        cols.push(ColumnDef {
            name: format!("{rname}.{}", c.name),
            ty: c.ty,
            bounded: c.bounded,
        });
    }
    Schema::new(cols)
}

fn validate(
    query: &Query,
    arg: &Option<Expr<usize>>,
    predicate: &Option<Expr<usize>>,
    group_by: &[usize],
    schema: &Arc<Schema>,
) -> Result<(), TrappError> {
    match (query.agg, arg) {
        (Aggregate::Count, _) => {
            // COUNT(expr) is allowed; the argument is evaluated only for
            // type checking (row counts ignore the value).
            if let Some(e) = arg {
                typecheck::typecheck(e, schema)?;
            }
        }
        (_, Some(e)) => typecheck::typecheck_aggregand(e, schema)?,
        (agg, None) => {
            return Err(TrappError::Plan(format!(
                "{agg} requires an argument expression"
            )))
        }
    }
    if let Some(p) = predicate {
        typecheck::typecheck_predicate(p, schema)?;
    }
    for &g in group_by {
        let col = schema.column_at(g)?;
        if col.bounded {
            return Err(TrappError::Unsupported(format!(
                "GROUP BY over bounded column {} is future work (§8.1)",
                col.name
            )));
        }
    }
    if let Some(r) = query.within {
        if r < 0.0 || r.is_nan() {
            return Err(TrappError::NegativePrecision(r));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::test_fixture;
    use trapp_sql::parse_query;
    use trapp_storage::Table;
    use trapp_types::{BoundedValue, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(test_fixture::links_table()).unwrap();
        // A second table for join tests.
        let schema = Schema::new(vec![
            ColumnDef::exact("node_id", ValueType::Int),
            ColumnDef::bounded_float("cpu_load"),
        ])
        .unwrap();
        let mut nodes = Table::new("nodes", schema);
        nodes
            .insert(vec![
                BoundedValue::Exact(Value::Int(1)),
                BoundedValue::bounded(0.0, 1.0).unwrap(),
            ])
            .unwrap();
        c.add_table(nodes).unwrap();
        c
    }

    #[test]
    fn binds_single_table_query() {
        let c = catalog();
        let q = parse_query("SELECT AVG(latency) WITHIN 2 FROM links WHERE traffic > 100").unwrap();
        let b = bind_query(&q, &c).unwrap();
        assert_eq!(b.source, QuerySource::Table("links".into()));
        assert_eq!(b.within, Some(2.0));
        assert!(b.predicate.is_some());
    }

    #[test]
    fn unknown_names_fail_cleanly() {
        let c = catalog();
        let q = parse_query("SELECT AVG(latency) FROM missing").unwrap();
        assert!(matches!(
            bind_query(&q, &c),
            Err(TrappError::UnknownTable(_))
        ));
        let q = parse_query("SELECT AVG(nope) FROM links").unwrap();
        assert!(matches!(
            bind_query(&q, &c),
            Err(TrappError::UnknownColumn(_))
        ));
        let q = parse_query("SELECT AVG(nodes.cpu_load) FROM links").unwrap();
        assert!(bind_query(&q, &c).is_err());
    }

    #[test]
    fn type_errors_are_static() {
        let c = catalog();
        // Aggregating a boolean column.
        let q = parse_query("SELECT SUM(on_path) FROM links").unwrap();
        assert!(bind_query(&q, &c).is_err());
        // Non-boolean predicate.
        let q = parse_query("SELECT SUM(latency) FROM links WHERE latency + 1").unwrap();
        assert!(bind_query(&q, &c).is_err());
    }

    #[test]
    fn binds_join_with_qualified_and_unique_bare_columns() {
        let c = catalog();
        let q = parse_query(
            "SELECT SUM(latency) FROM links, nodes WHERE from_node = node_id AND cpu_load < 0.5",
        )
        .unwrap();
        let b = bind_query(&q, &c).unwrap();
        match &b.source {
            QuerySource::Join { left, right } => {
                assert_eq!(left, "links");
                assert_eq!(right, "nodes");
            }
            other => panic!("expected join, got {other:?}"),
        }
        // Qualified access works too.
        let q = parse_query(
            "SELECT SUM(links.latency) FROM links, nodes WHERE links.from_node = nodes.node_id",
        )
        .unwrap();
        bind_query(&q, &c).unwrap();
    }

    #[test]
    fn join_restrictions() {
        let c = catalog();
        let q = parse_query("SELECT SUM(latency) FROM links, links").unwrap();
        assert!(bind_query(&q, &c).is_err()); // self-join
        let q = parse_query("SELECT SUM(x) FROM a, b, links").unwrap();
        assert!(bind_query(&q, &c).is_err()); // 3-way
    }

    #[test]
    fn group_by_over_join_binds() {
        let c = catalog();
        let q = parse_query("SELECT SUM(latency) FROM links, nodes GROUP BY from_node").unwrap();
        let b = bind_query(&q, &c).unwrap();
        // links.from_node in the combined schema.
        assert_eq!(b.group_by, vec![0]);

        // Bounded group columns stay rejected over joins too.
        let q = parse_query("SELECT SUM(latency) FROM links, nodes GROUP BY cpu_load").unwrap();
        assert!(bind_query(&q, &c).is_err());
    }

    #[test]
    fn group_by_must_be_exact_columns() {
        let c = catalog();
        let q = parse_query("SELECT AVG(latency) WITHIN 5 FROM links GROUP BY from_node").unwrap();
        let b = bind_query(&q, &c).unwrap();
        assert_eq!(b.group_by, vec![0]);
        let q = parse_query("SELECT AVG(latency) FROM links GROUP BY traffic").unwrap();
        assert!(bind_query(&q, &c).is_err());
    }

    #[test]
    fn count_star_binds_without_argument() {
        let c = catalog();
        let q = parse_query("SELECT COUNT(*) WITHIN 1 FROM links WHERE latency > 10").unwrap();
        let b = bind_query(&q, &c).unwrap();
        assert!(b.arg.is_none());
        // Non-COUNT without argument is impossible to parse, but the
        // validator also catches it defensively.
    }

    use trapp_types::ValueType;
}
