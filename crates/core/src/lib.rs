//! # trapp-core
//!
//! TRAPP/AG — bounded aggregation queries with precision constraints.
//! This crate is the paper's primary contribution (§4–§7 and Appendices
//! B–F of Olston & Widom, VLDB 2000):
//!
//! * [`agg`] — computing **bounded answers** `[L_A, H_A]` for
//!   `MIN`/`MAX`/`SUM`/`COUNT`/`AVG` over cached bounds, with and without
//!   selection predicates, including the tight `O(n log n)` AVG bound of
//!   Appendix E and a bounded k-th order statistic (`MEDIAN`, §8.1);
//! * [`refresh`] — the **CHOOSE_REFRESH** algorithms that pick the
//!   cheapest set of tuples to refresh so the answer is guaranteed to meet
//!   the precision constraint `H_A − L_A ≤ R` for *any* master values within
//!   the current bounds: threshold rules for MIN/MAX (Appendix B/C),
//!   knapsack reductions for SUM (§5.2, §6.2) and AVG (Appendix F),
//!   cheapest-|T?| selection for COUNT (§6.3), an iterative/online variant
//!   (§8.2), and join heuristics (§7);
//! * [`plan`] — binding parsed queries against a catalog (including
//!   two-table joins);
//! * [`query_plan`] — shape-generic read-only planning: every supported
//!   shape (scalar, `GROUP BY`, two-table join) lowers into one
//!   [`QueryPlan`] for phased plan/fetch/install execution and one
//!   [`QueryPartial`] for sharded scatter-gather;
//! * [`executor`] — the three-step query execution loop of §4
//!   (answer from cache → CHOOSE_REFRESH → refresh → recompute), wired to a
//!   pluggable [`executor::RefreshOracle`];
//! * [`merge`] — cross-shard partial-aggregate merging: per-shard
//!   [`AggInput`]s recombine into the exact single-cache input, so a
//!   sharded deployment's answers and refresh plans are bit-equivalent to
//!   one cache's (the gather half of `trapp-server`'s scatter-gather);
//! * [`group_by`] — `GROUP BY` over exact columns (§8.1 extension);
//! * [`relative`] — relative precision constraints (§8.1 extension);
//! * [`verify`] — validation helpers used by tests and debug assertions:
//!   answers must contain the true aggregate, refresh plans must guarantee
//!   their constraint in the worst case.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod agg;
pub mod executor;
pub mod group_by;
pub mod merge;
pub mod plan;
pub mod query_plan;
pub mod refresh;
pub mod relative;
pub mod verify;
pub mod view;

pub use agg::{bounded_answer, AggInput, AggItem, Aggregate, BoundedAnswer};
pub use executor::{
    ExecutionMode, QueryResult, QuerySession, RefreshOracle, SessionConfig, TableOracle,
};
pub use group_by::{GroupKey, GroupResult};
pub use merge::{merge_grouped_partials, merge_partials, merge_table_slices, ShardPartial};
pub use plan::BoundQuery;
pub use query_plan::{
    Exclusions, FetchPlan, JoinPartial, QueryOutcome, QueryPartial, QueryPlan, TableSlice,
    UnitFetch, UnitState,
};
pub use refresh::{
    choose_refresh, choose_refresh_available, choose_refresh_probed, AvailablePlan, PlanProbe,
    RefreshPlan, SolverStrategy,
};
