//! Cross-shard partial-aggregate merging: the *gather* half of a sharded
//! TRAPP deployment's scatter-gather execution.
//!
//! A sharded serving layer splits a table's rows across N caches. A query
//! whose group set spans shards is answered by asking every shard for its
//! **partial input** — the shard's classified, evaluated [`AggInput`]
//! ([`QuerySession::partial_query`](crate::executor::QuerySession::partial_query),
//! now shape-generic — see [`crate::query_plan::QueryPartial`])
//! — and merging those partials back into the exact `AggInput` a single
//! cache holding all the rows would have built. Bounds are then derived
//! *once*, from the merged input, by the ordinary
//! [`bounded_answer`](crate::agg::bounded_answer) /
//! [`choose_refresh`](crate::refresh::choose_refresh) machinery:
//!
//! * COUNT merges by summing the per-band cardinalities (exact in `f64`);
//! * SUM/AVG merge by re-running the interval sum / tight Appendix E
//!   algorithm over the union of items;
//! * MIN/MAX merge by folding interval endpoints (associative and exact).
//!
//! Deriving the bounds from the merged *input* — rather than combining
//! per-shard answer intervals — is what makes the sharded answer
//! **bit-equivalent** to the single-cache answer: floating-point addition
//! is not associative, so summing per-shard partial sums would drift in
//! the last ulp, and the tight AVG bound is not decomposable at all. It
//! also lets CHOOSE_REFRESH plan globally, so a sharded deployment
//! refreshes exactly the tuples a single cache would have chosen.
//!
//! ## Tuple-id spaces
//!
//! Each shard numbers its tuples locally. Before merging, the caller must
//! rewrite every item's [`AggItem::tid`] into a shared *global* id space
//! ([`ShardPartial::rewrite_tids`]); the ids must be unique across shards.
//! When the global ids equal the tuple ids a single cache would have
//! assigned (insertion order), the merged input — item order included —
//! reproduces the single-cache input exactly.

use std::collections::BTreeMap;

use crate::agg::{AggInput, AggItem};
use crate::group_by::{render_key, GroupKey};
use crate::query_plan::TableSlice;
use crate::Aggregate;
use trapp_expr::Band;
use trapp_storage::Table;
use trapp_types::{TrappError, TupleId};

/// One shard's contribution to a scatter-gathered aggregate: the bound
/// query's shape plus the shard's evaluated input.
///
/// Produced by
/// [`QuerySession::partial_query`](crate::executor::QuerySession::partial_query)
/// (standalone for scalar queries, one per group for `GROUP BY`);
/// consumed by [`merge_partials`] after tuple-id rewriting.
#[derive(Clone, Debug)]
pub struct ShardPartial {
    /// The queried table.
    pub table: String,
    /// The aggregate.
    pub agg: Aggregate,
    /// Precision constraint `R` (`None` = ∞).
    pub within: Option<f64>,
    /// The shard's classified, evaluated aggregate input.
    pub input: AggInput,
}

impl ShardPartial {
    /// Rewrites every item's tuple id via `f` — shard-local ids into the
    /// global id space shared by all partials of one query.
    pub fn rewrite_tids(&mut self, mut f: impl FnMut(TupleId) -> TupleId) {
        for item in &mut self.input.items {
            item.tid = f(item.tid);
        }
    }
}

/// Merges per-shard partial inputs into the input a single cache holding
/// every row would have built.
///
/// Items are re-ordered exactly as [`AggInput::build`] orders them — all
/// `T+` items by ascending tuple id, then all `T?` items by ascending
/// tuple id — so every downstream consumer (bounded answers, refresh
/// planning, tie-breaking) behaves bit-identically to the single-cache
/// path. `minus_count` and the §8.3 cardinality slack add componentwise.
///
/// Tuple ids must already be globally unique (see
/// [`ShardPartial::rewrite_tids`]); duplicates are rejected because a
/// tuple counted by two shards would silently double its contribution.
pub fn merge_partials(inputs: impl IntoIterator<Item = AggInput>) -> Result<AggInput, TrappError> {
    let mut items: Vec<AggItem> = Vec::new();
    let mut minus_count = 0usize;
    let mut slack = (0u64, 0u64);
    for input in inputs {
        items.extend(input.items);
        minus_count += input.minus_count;
        slack.0 += input.cardinality_slack.0;
        slack.1 += input.cardinality_slack.1;
    }
    // AggInput::build order: T+ in tid order, then T? in tid order.
    items.sort_by_key(|i| (i.band != Band::Plus, i.tid));
    if items.windows(2).any(|w| w[0].tid == w[1].tid) {
        return Err(TrappError::Internal(
            "merge_partials: duplicate tuple id across shard partials \
             (rewrite shard-local ids to a global space first)"
                .into(),
        ));
    }
    Ok(AggInput::new(items, minus_count, slack))
}

/// Merges per-shard *grouped* partials — the `GROUP BY` gather half.
///
/// The group key partitions the row space, so with the partition column
/// as the group key each group's rows are co-located on one shard and the
/// merge is a pure key-indexed re-assembly; when the two columns differ a
/// group may span shards, and its inputs merge through the ordinary
/// [`merge_partials`] (same bit-equivalence argument, per key). Output is
/// in rendered-key order — the same deterministic order
/// [`QuerySession::execute_grouped`](crate::executor::QuerySession::execute_grouped)
/// produces.
pub fn merge_grouped_partials(
    shards: impl IntoIterator<Item = Vec<(GroupKey, ShardPartial)>>,
) -> Result<Vec<(GroupKey, ShardPartial)>, TrappError> {
    let mut by_key: BTreeMap<String, (GroupKey, ShardPartial, Vec<AggInput>)> = BTreeMap::new();
    for shard in shards {
        for (key, partial) in shard {
            match by_key.entry(render_key(&key)) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert((key, partial, Vec::new()));
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().2.push(partial.input);
                }
            }
        }
    }
    by_key
        .into_values()
        .map(|(key, mut first, rest)| {
            if !rest.is_empty() {
                let inputs = std::iter::once(first.input).chain(rest);
                first.input = merge_partials(inputs)?;
            }
            Ok((key, first))
        })
        .collect()
}

/// Concatenates per-shard [`TableSlice`]s back into the base table a
/// single cache holding every row would hold — the join gather half.
///
/// Tuple ids must already be rewritten into the global space and form the
/// dense range `1..=n` (the id assignment a single cache ingesting the
/// same rows would have produced); rows are inserted in ascending id
/// order so the merged table's ids, cells, and refresh costs are
/// cell-for-cell the single cache's, which is what lets the join pipeline
/// derive bit-identical bounds and refresh choices from it.
pub fn merge_table_slices(
    schema: std::sync::Arc<trapp_storage::Schema>,
    slices: impl IntoIterator<Item = TableSlice>,
) -> Result<Table, TrappError> {
    let mut name: Option<String> = None;
    let mut rows: Vec<(TupleId, Vec<trapp_types::BoundedValue>, f64)> = Vec::new();
    for slice in slices {
        match &name {
            None => name = Some(slice.table.clone()),
            Some(n) if *n != slice.table => {
                return Err(TrappError::Internal(format!(
                    "merge_table_slices: mixed tables {n} and {}",
                    slice.table
                )))
            }
            Some(_) => {}
        }
        rows.extend(slice.rows);
    }
    let name = name.ok_or_else(|| TrappError::Internal("merge_table_slices: no slices".into()))?;
    rows.sort_by_key(|(tid, _, _)| *tid);
    let mut table = Table::new(name, schema);
    for (i, (tid, cells, cost)) in rows.into_iter().enumerate() {
        if tid.raw() != i as u64 + 1 {
            return Err(TrappError::Internal(format!(
                "merge_table_slices: global tuple ids must be dense 1..=n \
                 (slot {} holds {tid}; rewrite shard-local ids first)",
                i + 1
            )));
        }
        let assigned = table.insert_with_cost(cells, cost)?;
        debug_assert_eq!(assigned, tid);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::test_fixture::*;
    use crate::agg::{bounded_answer, AggInput};
    use crate::executor::QuerySession;
    use crate::refresh::{choose_refresh, SolverStrategy};
    use trapp_expr::{BinaryOp, ColumnRef, Expr};
    use trapp_storage::Table;
    use trapp_types::Value;

    fn col(name: &str) -> Expr<usize> {
        Expr::Column(ColumnRef::bare(name)).bind(&schema()).unwrap()
    }

    fn cmp(name: &str, op: BinaryOp, k: f64) -> Expr<usize> {
        Expr::binary(
            op,
            Expr::Column(ColumnRef::bare(name)),
            Expr::Literal(Value::Float(k)),
        )
        .bind(&schema())
        .unwrap()
    }

    /// Splits the Figure 2 table into `n` shard tables (row `i` → shard
    /// `i % n`) and returns the per-shard tables plus each shard's
    /// local→global tid map (global = position in the original table).
    fn split(n: usize) -> Vec<(Table, Vec<TupleId>)> {
        let whole = links_table();
        let mut shards: Vec<(Table, Vec<TupleId>)> = (0..n)
            .map(|_| (Table::new("links", schema()), Vec::new()))
            .collect();
        for (global, row) in whole.scan() {
            let s = (global.raw() as usize - 1) % n;
            let cells = row.cells().to_vec();
            let (table, map) = &mut shards[s];
            table
                .insert_with_cost(cells, whole.cost(global).unwrap())
                .unwrap();
            map.push(global);
        }
        shards
    }

    fn merged_input(
        n: usize,
        predicate: Option<&Expr<usize>>,
        arg: Option<&Expr<usize>>,
    ) -> AggInput {
        let partials = split(n).into_iter().map(|(table, map)| {
            let mut input = AggInput::build(&table, predicate, arg).unwrap();
            for item in &mut input.items {
                item.tid = map[item.tid.raw() as usize - 1];
            }
            input
        });
        merge_partials(partials).unwrap()
    }

    /// The merged input must literally equal the single-table input —
    /// items, order, bands, intervals, costs — for every shard count.
    #[test]
    fn merge_reconstructs_single_table_input() {
        let whole = links_table();
        for (pred, arg) in [
            (None, Some(col("traffic"))),
            (
                Some(cmp("latency", BinaryOp::Gt, 10.0)),
                Some(col("latency")),
            ),
            (Some(cmp("traffic", BinaryOp::Gt, 100.0)), None),
        ] {
            let reference = AggInput::build(&whole, pred.as_ref(), arg.as_ref()).unwrap();
            for n in 1..=4 {
                let merged = merged_input(n, pred.as_ref(), arg.as_ref());
                assert_eq!(merged.items, reference.items, "n={n}");
                assert_eq!(merged.minus_count, reference.minus_count);
                assert_eq!(merged.cardinality_slack, reference.cardinality_slack);
            }
        }
    }

    /// Bit-equivalent answers and identical refresh plans from the merged
    /// input, for every aggregate and shard count.
    #[test]
    fn merged_answers_and_plans_are_bit_equal() {
        let whole = links_table();
        let arg = col("traffic");
        let reference = AggInput::build(&whole, None, Some(&arg)).unwrap();
        for n in 1..=4 {
            let merged = merged_input(n, None, Some(&arg));
            for agg in [
                Aggregate::Count,
                Aggregate::Sum,
                Aggregate::Avg,
                Aggregate::Min,
                Aggregate::Max,
            ] {
                let a = bounded_answer(agg, &reference).unwrap();
                let b = bounded_answer(agg, &merged).unwrap();
                assert_eq!(a.range, b.range, "{agg}, n={n}");
                let pa = choose_refresh(agg, &reference, 10.0, SolverStrategy::Exact).unwrap();
                let pb = choose_refresh(agg, &merged, 10.0, SolverStrategy::Exact).unwrap();
                assert_eq!(pa.tuples, pb.tuples, "{agg}, n={n}");
                assert_eq!(pa.planned_cost, pb.planned_cost);
            }
        }
    }

    #[test]
    fn duplicate_global_ids_are_rejected() {
        let whole = links_table();
        let input = AggInput::build(&whole, None, Some(&col("latency"))).unwrap();
        let err = merge_partials([input.clone(), input]).unwrap_err();
        assert!(matches!(err, TrappError::Internal(_)));
    }

    /// `partial_query` on a one-shard session agrees with a direct build
    /// of the same query's input.
    #[test]
    fn partial_query_matches_direct_build() {
        let session = QuerySession::new(links_table());
        let query = trapp_sql::parse_query("SELECT SUM(traffic) WITHIN 10 FROM links").unwrap();
        let partial = match session.partial_query(&query).unwrap() {
            crate::query_plan::QueryPartial::Scalar(p) => p,
            other => panic!("expected scalar partial, got {other:?}"),
        };
        assert_eq!(partial.table, "links");
        assert_eq!(partial.agg, Aggregate::Sum);
        assert_eq!(partial.within, Some(10.0));
        let direct = AggInput::build(&links_table(), None, Some(&col("traffic"))).unwrap();
        assert_eq!(partial.input.items, direct.items);
    }

    /// Grouped partials key-merge back into the whole-table grouping, and
    /// cross-shard groups recombine through `merge_partials` per key.
    #[test]
    fn grouped_partials_merge_by_key() {
        let query =
            trapp_sql::parse_query("SELECT SUM(latency) WITHIN 5 FROM links GROUP BY from_node")
                .unwrap();
        // Reference: the whole table's grouped partials.
        let whole = QuerySession::new(links_table());
        let reference = match whole.partial_query(&query).unwrap() {
            crate::query_plan::QueryPartial::Grouped(g) => g,
            other => panic!("expected grouped, got {other:?}"),
        };
        for n in 1..=4 {
            let shards: Vec<Vec<(crate::group_by::GroupKey, ShardPartial)>> = split(n)
                .into_iter()
                .map(|(table, map)| {
                    let session = QuerySession::new(table);
                    let mut groups = match session.partial_query(&query).unwrap() {
                        crate::query_plan::QueryPartial::Grouped(g) => g,
                        other => panic!("expected grouped, got {other:?}"),
                    };
                    for (_, p) in &mut groups {
                        p.rewrite_tids(|tid| map[tid.raw() as usize - 1]);
                    }
                    groups
                })
                .collect();
            let merged = merge_grouped_partials(shards).unwrap();
            assert_eq!(merged.len(), reference.len(), "n={n}");
            for ((ka, pa), (kb, pb)) in merged.iter().zip(&reference) {
                assert_eq!(
                    crate::group_by::render_key(ka),
                    crate::group_by::render_key(kb)
                );
                assert_eq!(pa.input.items, pb.input.items, "n={n}");
            }
        }
    }

    /// Merged table slices literally equal the original table — ids,
    /// cells, costs — for every shard count; non-dense ids are rejected.
    #[test]
    fn table_slices_reassemble_the_original_table() {
        let whole = links_table();
        for n in 1..=4 {
            let slices: Vec<crate::query_plan::TableSlice> = split(n)
                .into_iter()
                .map(|(table, map)| {
                    let mut rows = Vec::new();
                    for (tid, row) in table.scan() {
                        rows.push((
                            map[tid.raw() as usize - 1],
                            row.cells().to_vec(),
                            table.cost(tid).unwrap(),
                        ));
                    }
                    crate::query_plan::TableSlice {
                        table: "links".into(),
                        rows,
                    }
                })
                .collect();
            let merged = merge_table_slices(schema(), slices).unwrap();
            assert_eq!(merged.len(), whole.len(), "n={n}");
            for (tid, row) in whole.scan() {
                assert_eq!(merged.row(tid).unwrap().cells(), row.cells(), "n={n}");
                assert_eq!(merged.cost(tid).unwrap(), whole.cost(tid).unwrap());
            }
        }
        // A gap in the global id space is an error, not a silent renumber.
        let bad = crate::query_plan::TableSlice {
            table: "links".into(),
            rows: vec![(
                TupleId::new(2),
                links_table().row(TupleId::new(1)).unwrap().cells().to_vec(),
                1.0,
            )],
        };
        assert!(merge_table_slices(schema(), [bad]).is_err());
    }
}
