//! Cross-shard partial-aggregate merging: the *gather* half of a sharded
//! TRAPP deployment's scatter-gather execution.
//!
//! A sharded serving layer splits a table's rows across N caches. A query
//! whose group set spans shards is answered by asking every shard for its
//! **partial input** — the shard's classified, evaluated [`AggInput`]
//! ([`QuerySession::partial_query`](crate::executor::QuerySession::partial_query))
//! — and merging those partials back into the exact `AggInput` a single
//! cache holding all the rows would have built. Bounds are then derived
//! *once*, from the merged input, by the ordinary
//! [`bounded_answer`](crate::agg::bounded_answer) /
//! [`choose_refresh`](crate::refresh::choose_refresh) machinery:
//!
//! * COUNT merges by summing the per-band cardinalities (exact in `f64`);
//! * SUM/AVG merge by re-running the interval sum / tight Appendix E
//!   algorithm over the union of items;
//! * MIN/MAX merge by folding interval endpoints (associative and exact).
//!
//! Deriving the bounds from the merged *input* — rather than combining
//! per-shard answer intervals — is what makes the sharded answer
//! **bit-equivalent** to the single-cache answer: floating-point addition
//! is not associative, so summing per-shard partial sums would drift in
//! the last ulp, and the tight AVG bound is not decomposable at all. It
//! also lets CHOOSE_REFRESH plan globally, so a sharded deployment
//! refreshes exactly the tuples a single cache would have chosen.
//!
//! ## Tuple-id spaces
//!
//! Each shard numbers its tuples locally. Before merging, the caller must
//! rewrite every item's [`AggItem::tid`] into a shared *global* id space
//! ([`ShardPartial::rewrite_tids`]); the ids must be unique across shards.
//! When the global ids equal the tuple ids a single cache would have
//! assigned (insertion order), the merged input — item order included —
//! reproduces the single-cache input exactly.

use crate::agg::{AggInput, AggItem};
use crate::Aggregate;
use trapp_expr::Band;
use trapp_types::{TrappError, TupleId};

/// One shard's contribution to a scatter-gathered aggregate: the bound
/// query's shape plus the shard's evaluated input.
///
/// Produced by
/// [`QuerySession::partial_query`](crate::executor::QuerySession::partial_query);
/// consumed by [`merge_partials`] after tuple-id rewriting.
#[derive(Clone, Debug)]
pub struct ShardPartial {
    /// The queried table.
    pub table: String,
    /// The aggregate.
    pub agg: Aggregate,
    /// Precision constraint `R` (`None` = ∞).
    pub within: Option<f64>,
    /// The shard's classified, evaluated aggregate input.
    pub input: AggInput,
}

impl ShardPartial {
    /// Rewrites every item's tuple id via `f` — shard-local ids into the
    /// global id space shared by all partials of one query.
    pub fn rewrite_tids(&mut self, mut f: impl FnMut(TupleId) -> TupleId) {
        for item in &mut self.input.items {
            item.tid = f(item.tid);
        }
    }
}

/// Merges per-shard partial inputs into the input a single cache holding
/// every row would have built.
///
/// Items are re-ordered exactly as [`AggInput::build`] orders them — all
/// `T+` items by ascending tuple id, then all `T?` items by ascending
/// tuple id — so every downstream consumer (bounded answers, refresh
/// planning, tie-breaking) behaves bit-identically to the single-cache
/// path. `minus_count` and the §8.3 cardinality slack add componentwise.
///
/// Tuple ids must already be globally unique (see
/// [`ShardPartial::rewrite_tids`]); duplicates are rejected because a
/// tuple counted by two shards would silently double its contribution.
pub fn merge_partials(inputs: impl IntoIterator<Item = AggInput>) -> Result<AggInput, TrappError> {
    let mut items: Vec<AggItem> = Vec::new();
    let mut minus_count = 0usize;
    let mut slack = (0u64, 0u64);
    for input in inputs {
        items.extend(input.items);
        minus_count += input.minus_count;
        slack.0 += input.cardinality_slack.0;
        slack.1 += input.cardinality_slack.1;
    }
    // AggInput::build order: T+ in tid order, then T? in tid order.
    items.sort_by_key(|i| (i.band != Band::Plus, i.tid));
    if items.windows(2).any(|w| w[0].tid == w[1].tid) {
        return Err(TrappError::Internal(
            "merge_partials: duplicate tuple id across shard partials \
             (rewrite shard-local ids to a global space first)"
                .into(),
        ));
    }
    Ok(AggInput {
        items,
        minus_count,
        cardinality_slack: slack,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::test_fixture::*;
    use crate::agg::{bounded_answer, AggInput};
    use crate::executor::QuerySession;
    use crate::refresh::{choose_refresh, SolverStrategy};
    use trapp_expr::{BinaryOp, ColumnRef, Expr};
    use trapp_storage::Table;
    use trapp_types::Value;

    fn col(name: &str) -> Expr<usize> {
        Expr::Column(ColumnRef::bare(name)).bind(&schema()).unwrap()
    }

    fn cmp(name: &str, op: BinaryOp, k: f64) -> Expr<usize> {
        Expr::binary(
            op,
            Expr::Column(ColumnRef::bare(name)),
            Expr::Literal(Value::Float(k)),
        )
        .bind(&schema())
        .unwrap()
    }

    /// Splits the Figure 2 table into `n` shard tables (row `i` → shard
    /// `i % n`) and returns the per-shard tables plus each shard's
    /// local→global tid map (global = position in the original table).
    fn split(n: usize) -> Vec<(Table, Vec<TupleId>)> {
        let whole = links_table();
        let mut shards: Vec<(Table, Vec<TupleId>)> = (0..n)
            .map(|_| (Table::new("links", schema()), Vec::new()))
            .collect();
        for (global, row) in whole.scan() {
            let s = (global.raw() as usize - 1) % n;
            let cells = row.cells().to_vec();
            let (table, map) = &mut shards[s];
            table
                .insert_with_cost(cells, whole.cost(global).unwrap())
                .unwrap();
            map.push(global);
        }
        shards
    }

    fn merged_input(
        n: usize,
        predicate: Option<&Expr<usize>>,
        arg: Option<&Expr<usize>>,
    ) -> AggInput {
        let partials = split(n).into_iter().map(|(table, map)| {
            let mut input = AggInput::build(&table, predicate, arg).unwrap();
            for item in &mut input.items {
                item.tid = map[item.tid.raw() as usize - 1];
            }
            input
        });
        merge_partials(partials).unwrap()
    }

    /// The merged input must literally equal the single-table input —
    /// items, order, bands, intervals, costs — for every shard count.
    #[test]
    fn merge_reconstructs_single_table_input() {
        let whole = links_table();
        for (pred, arg) in [
            (None, Some(col("traffic"))),
            (
                Some(cmp("latency", BinaryOp::Gt, 10.0)),
                Some(col("latency")),
            ),
            (Some(cmp("traffic", BinaryOp::Gt, 100.0)), None),
        ] {
            let reference = AggInput::build(&whole, pred.as_ref(), arg.as_ref()).unwrap();
            for n in 1..=4 {
                let merged = merged_input(n, pred.as_ref(), arg.as_ref());
                assert_eq!(merged.items, reference.items, "n={n}");
                assert_eq!(merged.minus_count, reference.minus_count);
                assert_eq!(merged.cardinality_slack, reference.cardinality_slack);
            }
        }
    }

    /// Bit-equivalent answers and identical refresh plans from the merged
    /// input, for every aggregate and shard count.
    #[test]
    fn merged_answers_and_plans_are_bit_equal() {
        let whole = links_table();
        let arg = col("traffic");
        let reference = AggInput::build(&whole, None, Some(&arg)).unwrap();
        for n in 1..=4 {
            let merged = merged_input(n, None, Some(&arg));
            for agg in [
                Aggregate::Count,
                Aggregate::Sum,
                Aggregate::Avg,
                Aggregate::Min,
                Aggregate::Max,
            ] {
                let a = bounded_answer(agg, &reference).unwrap();
                let b = bounded_answer(agg, &merged).unwrap();
                assert_eq!(a.range, b.range, "{agg}, n={n}");
                let pa = choose_refresh(agg, &reference, 10.0, SolverStrategy::Exact).unwrap();
                let pb = choose_refresh(agg, &merged, 10.0, SolverStrategy::Exact).unwrap();
                assert_eq!(pa.tuples, pb.tuples, "{agg}, n={n}");
                assert_eq!(pa.planned_cost, pb.planned_cost);
            }
        }
    }

    #[test]
    fn duplicate_global_ids_are_rejected() {
        let whole = links_table();
        let input = AggInput::build(&whole, None, Some(&col("latency"))).unwrap();
        let err = merge_partials([input.clone(), input]).unwrap_err();
        assert!(matches!(err, TrappError::Internal(_)));
    }

    /// `partial_query` on a one-shard session agrees with `plan_query`'s
    /// view of the same query.
    #[test]
    fn partial_query_matches_direct_build() {
        let session = QuerySession::new(links_table());
        let query = trapp_sql::parse_query("SELECT SUM(traffic) WITHIN 10 FROM links").unwrap();
        let partial = match session.partial_query(&query).unwrap() {
            crate::executor::PartialQuery::Partial(p) => p,
            other => panic!("expected partial, got {other:?}"),
        };
        assert_eq!(partial.table, "links");
        assert_eq!(partial.agg, Aggregate::Sum);
        assert_eq!(partial.within, Some(10.0));
        let direct = AggInput::build(&links_table(), None, Some(&col("traffic"))).unwrap();
        assert_eq!(partial.input.items, direct.items);
    }

    #[test]
    fn partial_query_rejects_unshardable_shapes() {
        let session = QuerySession::new(links_table());
        for sql in [
            "SELECT SUM(latency) WITHIN 5 FROM links GROUP BY from_node",
            "SELECT SUM(latency) FROM links, links2",
        ] {
            let Ok(query) = trapp_sql::parse_query(sql) else {
                continue;
            };
            match session.partial_query(&query) {
                Ok(crate::executor::PartialQuery::Unsupported) | Err(_) => {}
                Ok(other) => panic!("{sql}: expected unsupported, got {other:?}"),
            }
        }
    }
}
