//! `GROUP BY` over exact columns (§8.1 extension).
//!
//! The paper defers *grouping on bounded values* (where group membership
//! itself is uncertain) to future work; grouping on exact columns is
//! well-defined and implemented here: partition the table by the group
//! key, then run the ordinary single-group pipeline — including
//! CHOOSE_REFRESH with the per-group precision constraint — on each
//! partition. Refresh batching across groups (§8.2) is deliberately not
//! attempted, matching the paper.

use std::collections::{BTreeMap, HashMap, HashSet};

use trapp_sql::Query;
use trapp_storage::{Row, Table};
use trapp_types::{TrappError, TupleId, Value};

use crate::agg::BoundedAnswer;
use crate::executor::{QueryResult, QuerySession, RefreshOracle};
use crate::plan::{bind_query, BoundQuery, QuerySource};
use crate::query_plan::{plan_join_round, QueryOutcome, QueryPlan};

/// The exact values of the `GROUP BY` columns identifying one group.
pub type GroupKey = Vec<Value>;

/// One group's result.
#[derive(Clone, Debug)]
pub struct GroupResult {
    /// The group key, in `GROUP BY` column order.
    pub key: GroupKey,
    /// The group's query result.
    pub result: QueryResult,
}

impl QuerySession {
    /// Executes a grouped query, returning one bounded answer per group in
    /// deterministic (key-sorted) order. Each group independently receives
    /// the query's `WITHIN` constraint.
    pub fn execute_grouped(
        &mut self,
        query: &Query,
        oracle: &mut dyn RefreshOracle,
    ) -> Result<Vec<GroupResult>, TrappError> {
        let bound = bind_query(query, self.catalog())?;
        if bound.group_by.is_empty() {
            return Err(TrappError::Plan(
                "execute_grouped requires a GROUP BY clause".into(),
            ));
        }
        let table_name = match &bound.source {
            QuerySource::Table(t) => t.clone(),
            QuerySource::Join { .. } => return self.run_join_grouped(&bound, oracle),
        };

        let groups = group_partitions(self.catalog().table(&table_name)?, &bound.group_by)?;

        let mut out = Vec::with_capacity(groups.len());
        for (_, (key, tids)) in groups {
            let member = move |tid: TupleId, _row: &Row| tids.binary_search(&tid).is_ok();
            let result = self.run_single_filtered(table_name.clone(), &bound, oracle, &member)?;
            out.push(GroupResult { key, result });
        }
        Ok(out)
    }

    /// Grouped aggregation over a join result (§7 + §8.1): the joined
    /// pairs are partitioned by their exact group key and each group
    /// independently receives the `WITHIN` constraint. Execution drives
    /// [`plan_join_round`] — the same planner a serving layer uses — in a
    /// plan/refresh loop, so session and scatter-gather results are
    /// identical by construction.
    fn run_join_grouped(
        &mut self,
        bound: &BoundQuery,
        oracle: &mut dyn RefreshOracle,
    ) -> Result<Vec<GroupResult>, TrappError> {
        let QuerySource::Join { left, right } = &bound.source else {
            return Err(TrappError::Internal(
                "run_join_grouped requires a join-shaped bound query".into(),
            ));
        };
        let (left, right) = (left.clone(), right.clone());

        /// Per-group refresh attribution across planning rounds.
        #[derive(Default)]
        struct Attr {
            initial: Option<BoundedAnswer>,
            refreshed: Vec<(String, TupleId)>,
            cost: f64,
            rounds: usize,
        }
        let mut attr: HashMap<String, Attr> = HashMap::new();
        let mut guard = 0usize;
        loop {
            let plan = plan_join_round(
                bound,
                self.catalog().table(&left)?,
                self.catalog().table(&right)?,
                self.config.join_heuristic,
                self.config.join_batch,
                &crate::query_plan::Exclusions::default(),
            )?;
            match plan {
                QueryPlan::Ready(QueryOutcome::Grouped(mut groups)) => {
                    for g in &mut groups {
                        if let Some(a) = attr.get(&render_key(&g.key)) {
                            if let Some(init) = a.initial {
                                g.result.initial_answer = init;
                            }
                            g.result.refreshed = a.refreshed.clone();
                            g.result.refresh_cost = a.cost;
                            g.result.rounds = a.rounds;
                        }
                    }
                    return Ok(groups);
                }
                QueryPlan::Ready(QueryOutcome::Scalar(_)) | QueryPlan::Iterative => {
                    return Err(TrappError::Internal(
                        "grouped join planning produced a non-grouped plan".into(),
                    ));
                }
                QueryPlan::NeedsFetch(fp) => {
                    guard += 1;
                    if guard > self.config.max_refresh_rounds {
                        return Err(TrappError::Internal(format!(
                            "grouped join refresh did not converge in {guard} rounds"
                        )));
                    }
                    // A group may span several units (one per picked
                    // side-run); it pays one round per planning round.
                    let mut counted: HashSet<String> = HashSet::new();
                    for unit in fp.units {
                        let rendered = render_key(&unit.key);
                        attr.entry(rendered.clone())
                            .or_default()
                            .initial
                            .get_or_insert(unit.initial);
                        let Some(fetch) = unit.fetch else { continue };
                        let cost = self.refresh_tuples(&fetch.table, &fetch.tuples, oracle)?;
                        let a = attr.get_mut(&rendered).expect("inserted above");
                        a.cost += cost;
                        a.refreshed
                            .extend(fetch.tuples.iter().map(|&tid| (fetch.table.clone(), tid)));
                        if counted.insert(rendered) {
                            a.rounds += 1;
                        }
                    }
                }
            }
        }
    }
}

/// Renders a group key to a stable string (unit-separator joined) — the
/// canonical ordering and lookup key for group results everywhere:
/// per-session execution, cross-shard merging, and serving-layer
/// attribution all sort and match groups by this rendering.
///
/// The rendering is *injective*: every part carries a one-character type
/// tag (`i`/`f`/`s`/`b`), so `Int(1)` and `Float(1.0)` — whose `Display`
/// forms are both `1` — render apart, and string parts escape the
/// separator (and the escape character itself), so a string containing
/// `\u{1f}` can never make two different multi-column keys collide.
/// Cross-shard merging matches groups by this string; a collision would
/// silently fuse two groups' inputs. Keys whose columns share one type
/// keep their old relative order (the tag is a constant prefix).
pub fn render_key(key: &GroupKey) -> String {
    let mut out = String::new();
    for (i, v) in key.iter().enumerate() {
        if i > 0 {
            out.push('\u{1f}');
        }
        match v {
            Value::Int(x) => {
                out.push('i');
                out.push_str(&x.to_string());
            }
            Value::Float(x) => {
                out.push('f');
                out.push_str(&x.to_string());
            }
            Value::Bool(b) => {
                out.push('b');
                out.push_str(if *b { "true" } else { "false" });
            }
            Value::Str(s) => {
                out.push('s');
                for ch in s.chars() {
                    match ch {
                        '\\' => out.push_str("\\\\"),
                        '\u{1f}' => out.push_str("\\u"),
                        c => out.push(c),
                    }
                }
            }
        }
    }
    out
}

/// Partitions a table's tuples by the exact values of the `group_by`
/// columns: rendered key → (original key, member tuple ids ascending), in
/// rendered-key order. BTreeMap keys must be orderable, so keys are
/// rendered to a stable string; the original values ride along.
pub fn group_partitions(
    table: &Table,
    group_by: &[usize],
) -> Result<BTreeMap<String, (GroupKey, Vec<TupleId>)>, TrappError> {
    let mut groups: BTreeMap<String, (GroupKey, Vec<TupleId>)> = BTreeMap::new();
    for (tid, row) in table.scan() {
        let mut key: GroupKey = Vec::with_capacity(group_by.len());
        for &col in group_by {
            key.push(row.exact(col)?);
        }
        let rendered = render_key(&key);
        groups
            .entry(rendered)
            .or_insert_with(|| (key, Vec::new()))
            .1
            .push(tid);
    }
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::test_fixture::*;
    use crate::executor::TableOracle;

    #[test]
    fn groups_partition_and_answer_independently() {
        let mut s = QuerySession::new(links_table());
        let mut o = TableOracle::from_table(master_table());
        let q =
            trapp_sql::parse_query("SELECT SUM(latency) WITHIN 3 FROM links GROUP BY from_node")
                .unwrap();
        let groups = s.execute_grouped(&q, &mut o).unwrap();
        // from_node values: 1, 2 (×2), 3, 4, 5 → 5 groups, key-sorted.
        assert_eq!(groups.len(), 5);
        let keys: Vec<String> = groups.iter().map(|g| format!("{}", g.key[0])).collect();
        assert_eq!(keys, vec!["1", "2", "3", "4", "5"]);
        for g in &groups {
            assert!(g.result.satisfied, "group {:?} unsatisfied", g.key);
            assert!(g.result.answer.width() <= 3.0);
        }
        // Group "2" has tuples 2 and 4: initial latency widths 2 + 2 = 4 >
        // 3, so that group must have refreshed something.
        let g2 = &groups[1];
        assert!(!g2.result.refreshed.is_empty());
    }

    #[test]
    fn grouped_requires_group_by() {
        let mut s = QuerySession::new(links_table());
        let mut o = TableOracle::from_table(master_table());
        let q = trapp_sql::parse_query("SELECT SUM(latency) FROM links").unwrap();
        assert!(s.execute_grouped(&q, &mut o).is_err());
    }

    /// Distinct keys must never render identically: the rendered string
    /// is the cross-shard merge key, and a collision silently fuses two
    /// groups' inputs.
    #[test]
    fn render_key_is_injective() {
        // Int(1) and Float(1.0) both Display as "1".
        assert_ne!(
            render_key(&vec![Value::Int(1)]),
            render_key(&vec![Value::Float(1.0)])
        );
        // A separator smuggled inside a string part must not shift the
        // column boundary.
        let a = vec![Value::Str("a\u{1f}b".into()), Value::Str("c".into())];
        let b = vec![Value::Str("a".into()), Value::Str("b\u{1f}c".into())];
        assert_ne!(render_key(&a), render_key(&b));
        // Same for the escape character itself.
        let c = vec![Value::Str("a\\".into()), Value::Str("b".into())];
        let d = vec![Value::Str("a".into()), Value::Str("\\b".into())];
        assert_ne!(render_key(&c), render_key(&d));
        // Uniform-type keys keep their old lexicographic order.
        let keys = [1i64, 10, 2].map(|x| render_key(&vec![Value::Int(x)]));
        assert!(keys[0] < keys[1] && keys[1] < keys[2]);
    }

    #[test]
    fn multi_column_keys() {
        let mut s = QuerySession::new(links_table());
        let mut o = TableOracle::from_table(master_table());
        let q = trapp_sql::parse_query("SELECT COUNT(*) FROM links GROUP BY from_node, on_path")
            .unwrap();
        let groups = s.execute_grouped(&q, &mut o).unwrap();
        // from_node = 2 appears with both on_path values (tuples 2 and 4),
        // so the composite key splits it: 6 groups in total.
        assert_eq!(groups.len(), 6);
        let total: f64 = groups.iter().map(|g| g.result.answer.range.lo()).sum();
        assert_eq!(total, 6.0);
    }
}
