//! `GROUP BY` over exact columns (§8.1 extension).
//!
//! The paper defers *grouping on bounded values* (where group membership
//! itself is uncertain) to future work; grouping on exact columns is
//! well-defined and implemented here: partition the table by the group
//! key, then run the ordinary single-group pipeline — including
//! CHOOSE_REFRESH with the per-group precision constraint — on each
//! partition. Refresh batching across groups (§8.2) is deliberately not
//! attempted, matching the paper.

use std::collections::BTreeMap;

use trapp_sql::Query;
use trapp_storage::{Row, Table};
use trapp_types::{TrappError, TupleId, Value};

use crate::executor::{QueryResult, QuerySession, RefreshOracle};
use crate::plan::{bind_query, QuerySource};

/// The exact values of the `GROUP BY` columns identifying one group.
pub type GroupKey = Vec<Value>;

/// One group's result.
#[derive(Clone, Debug)]
pub struct GroupResult {
    /// The group key, in `GROUP BY` column order.
    pub key: GroupKey,
    /// The group's query result.
    pub result: QueryResult,
}

impl QuerySession {
    /// Executes a grouped query, returning one bounded answer per group in
    /// deterministic (key-sorted) order. Each group independently receives
    /// the query's `WITHIN` constraint.
    pub fn execute_grouped(
        &mut self,
        query: &Query,
        oracle: &mut dyn RefreshOracle,
    ) -> Result<Vec<GroupResult>, TrappError> {
        let bound = bind_query(query, self.catalog())?;
        if bound.group_by.is_empty() {
            return Err(TrappError::Plan(
                "execute_grouped requires a GROUP BY clause".into(),
            ));
        }
        let table_name = match &bound.source {
            QuerySource::Table(t) => t.clone(),
            QuerySource::Join { .. } => {
                return Err(TrappError::Unsupported(
                    "GROUP BY over join queries is not supported".into(),
                ))
            }
        };

        let groups = group_partitions(self.catalog().table(&table_name)?, &bound.group_by)?;

        let mut out = Vec::with_capacity(groups.len());
        for (_, (key, tids)) in groups {
            let member = move |tid: TupleId, _row: &Row| tids.binary_search(&tid).is_ok();
            let result = self.run_single_filtered(table_name.clone(), &bound, oracle, &member)?;
            out.push(GroupResult { key, result });
        }
        Ok(out)
    }
}

/// Renders a group key to a stable string (unit-separator joined) — the
/// canonical ordering and lookup key for group results everywhere:
/// per-session execution, cross-shard merging, and serving-layer
/// attribution all sort and match groups by this rendering.
pub fn render_key(key: &GroupKey) -> String {
    let parts: Vec<String> = key.iter().map(|v| format!("{v}")).collect();
    parts.join("\u{1f}")
}

/// Partitions a table's tuples by the exact values of the `group_by`
/// columns: rendered key → (original key, member tuple ids ascending), in
/// rendered-key order. BTreeMap keys must be orderable, so keys are
/// rendered to a stable string; the original values ride along.
pub fn group_partitions(
    table: &Table,
    group_by: &[usize],
) -> Result<BTreeMap<String, (GroupKey, Vec<TupleId>)>, TrappError> {
    let mut groups: BTreeMap<String, (GroupKey, Vec<TupleId>)> = BTreeMap::new();
    for (tid, row) in table.scan() {
        let mut key: GroupKey = Vec::with_capacity(group_by.len());
        for &col in group_by {
            key.push(row.exact(col)?);
        }
        let rendered = render_key(&key);
        groups
            .entry(rendered)
            .or_insert_with(|| (key, Vec::new()))
            .1
            .push(tid);
    }
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::test_fixture::*;
    use crate::executor::TableOracle;

    #[test]
    fn groups_partition_and_answer_independently() {
        let mut s = QuerySession::new(links_table());
        let mut o = TableOracle::from_table(master_table());
        let q =
            trapp_sql::parse_query("SELECT SUM(latency) WITHIN 3 FROM links GROUP BY from_node")
                .unwrap();
        let groups = s.execute_grouped(&q, &mut o).unwrap();
        // from_node values: 1, 2 (×2), 3, 4, 5 → 5 groups, key-sorted.
        assert_eq!(groups.len(), 5);
        let keys: Vec<String> = groups.iter().map(|g| format!("{}", g.key[0])).collect();
        assert_eq!(keys, vec!["1", "2", "3", "4", "5"]);
        for g in &groups {
            assert!(g.result.satisfied, "group {:?} unsatisfied", g.key);
            assert!(g.result.answer.width() <= 3.0);
        }
        // Group "2" has tuples 2 and 4: initial latency widths 2 + 2 = 4 >
        // 3, so that group must have refreshed something.
        let g2 = &groups[1];
        assert!(!g2.result.refreshed.is_empty());
    }

    #[test]
    fn grouped_requires_group_by() {
        let mut s = QuerySession::new(links_table());
        let mut o = TableOracle::from_table(master_table());
        let q = trapp_sql::parse_query("SELECT SUM(latency) FROM links").unwrap();
        assert!(s.execute_grouped(&q, &mut o).is_err());
    }

    #[test]
    fn multi_column_keys() {
        let mut s = QuerySession::new(links_table());
        let mut o = TableOracle::from_table(master_table());
        let q = trapp_sql::parse_query("SELECT COUNT(*) FROM links GROUP BY from_node, on_path")
            .unwrap();
        let groups = s.execute_grouped(&q, &mut o).unwrap();
        // from_node = 2 appears with both on_path values (tuples 2 and 4),
        // so the composite key splits it: 6 groups in total.
        assert_eq!(groups.len(), 6);
        let total: f64 = groups.iter().map(|g| g.result.answer.range.lo()).sum();
        assert_eq!(total, 6.0);
    }
}
