//! Query execution: the three-step loop of §4.
//!
//! 1. Compute an initial bounded answer from the cached bounds; if it meets
//!    the precision constraint, done.
//! 2. Otherwise run CHOOSE_REFRESH and ask the sources (via the
//!    [`RefreshOracle`]) for the chosen tuples' master values.
//! 3. Recompute the bounded answer over the partially refreshed cache; the
//!    CHOOSE_REFRESH guarantee makes it satisfy the constraint.
//!
//! The executor also provides the §8.2 *iterative* mode (refresh one tuple
//! at a time, stop early when actual values cooperate) and the §7 join
//! loop, both driven by the heuristics in [`crate::refresh`].

use trapp_sql::Query;
use trapp_storage::{Catalog, Table};
use trapp_types::{TrappError, TupleId};

use crate::agg::{bounded_answer, AggInput, Aggregate, BoundedAnswer};
use crate::plan::{bind_query, BoundQuery, QuerySource};
use crate::refresh::iterative::{next_refresh, IterativeHeuristic};
use crate::refresh::join::{build_join_input, next_join_refresh, JoinSide};
use crate::refresh::{choose_refresh, SolverStrategy};

/// How a session resolves precision shortfalls.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExecutionMode {
    /// Plan the whole refresh set up front (the paper's main algorithms).
    Batch,
    /// Refresh one tuple per round until satisfied (§8.2).
    Iterative(IterativeHeuristic),
}

/// Session-wide execution configuration.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Knapsack solving strategy for SUM/AVG planning.
    pub strategy: SolverStrategy,
    /// Batch or iterative execution.
    pub mode: ExecutionMode,
    /// Heuristic for join refresh rounds.
    pub join_heuristic: IterativeHeuristic,
    /// Safety valve for iterative loops.
    pub max_refresh_rounds: usize,
    /// Serve read-only planning ([`QuerySession::plan_query`] /
    /// [`QuerySession::partial_query`]) from incremental band views
    /// ([`crate::view`]) instead of rescanning the table per pass.
    /// Answers and plans are bit-identical either way; `false` keeps the
    /// full-scan path as a measurable baseline.
    pub cache_views: bool,
    /// Plan multi-tuple join refresh rounds
    /// ([`crate::refresh::join::join_refresh_batch`]) instead of one tuple
    /// per round. Final answers and refresh sequences are bit-identical
    /// either way (the batch only extends a round while that is provable);
    /// `false` keeps the §7 one-tuple loop as a measurable baseline.
    pub join_batch: bool,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            strategy: SolverStrategy::default(),
            mode: ExecutionMode::Batch,
            join_heuristic: IterativeHeuristic::BestRatio,
            max_refresh_rounds: 100_000,
            cache_views: true,
            join_batch: true,
        }
    }
}

/// Supplies master values on demand — the cache-side stand-in for a
/// query-initiated refresh request to the Refresh Monitor (§3.1).
pub trait RefreshOracle {
    /// Returns the current master values for the requested columns of
    /// `tid` in `table`, in the same order as `columns`.
    fn refresh(
        &mut self,
        table: &str,
        tid: TupleId,
        columns: &[usize],
    ) -> Result<Vec<f64>, TrappError>;

    /// Returns the current master values for `columns` of *each* tuple in
    /// `tids` (outer order matches `tids`, inner order matches `columns`).
    ///
    /// The default forwards tuple-by-tuple; transport-backed oracles
    /// override this to serve a whole CHOOSE_REFRESH plan with one
    /// round-trip per *source* instead of one per object.
    fn refresh_batch(
        &mut self,
        table: &str,
        tids: &[TupleId],
        columns: &[usize],
    ) -> Result<Vec<Vec<f64>>, TrappError> {
        tids.iter()
            .map(|&tid| self.refresh(table, tid, columns))
            .collect()
    }
}

/// A [`RefreshOracle`] backed by master tables with exact values — the
/// standard oracle for tests, examples, and single-process experiments.
pub struct TableOracle {
    master: Catalog,
    /// Number of tuple refreshes served.
    pub refreshes_served: u64,
}

impl TableOracle {
    /// Wraps a catalog of master tables.
    pub fn new(master: Catalog) -> TableOracle {
        TableOracle {
            master,
            refreshes_served: 0,
        }
    }

    /// Convenience: a single master table.
    pub fn from_table(table: Table) -> TableOracle {
        let mut master = Catalog::new();
        master.add_table(table).expect("fresh catalog");
        TableOracle::new(master)
    }

    /// Access to the wrapped master catalog (e.g. to apply updates).
    pub fn master_mut(&mut self) -> &mut Catalog {
        &mut self.master
    }
}

impl RefreshOracle for TableOracle {
    fn refresh(
        &mut self,
        table: &str,
        tid: TupleId,
        columns: &[usize],
    ) -> Result<Vec<f64>, TrappError> {
        let t = self.master.table(table)?;
        let row = t.row(tid)?;
        let mut out = Vec::with_capacity(columns.len());
        for &c in columns {
            out.push(row.exact(c)?.as_f64()?);
        }
        self.refreshes_served += 1;
        Ok(out)
    }
}

/// The outcome of one query execution.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The final bounded answer.
    pub answer: BoundedAnswer,
    /// The answer computed from cache alone, before any refresh.
    pub initial_answer: BoundedAnswer,
    /// Tuples refreshed, as `(table, tuple)`.
    pub refreshed: Vec<(String, TupleId)>,
    /// Total refresh cost paid.
    pub refresh_cost: f64,
    /// Refresh rounds (1 for batch mode with any refreshes).
    pub rounds: usize,
    /// Whether the final answer meets the precision constraint.
    pub satisfied: bool,
}

/// A cache-side query session: a catalog of cached tables plus execution
/// configuration.
pub struct QuerySession {
    catalog: Catalog,
    /// Execution configuration (public for direct adjustment).
    pub config: SessionConfig,
    /// Memoized band views over the catalog's tables, keyed by query
    /// shape; see [`crate::view`]. Interior mutability because read-only
    /// planning (`&self`) is what populates and syncs them.
    pub(crate) views: std::sync::Mutex<crate::view::ViewCache>,
}

impl QuerySession {
    /// A session over a single cached table.
    pub fn new(table: Table) -> QuerySession {
        let mut catalog = Catalog::new();
        catalog.add_table(table).expect("fresh catalog");
        QuerySession::with_catalog(catalog)
    }

    /// A session over a full catalog.
    pub fn with_catalog(catalog: Catalog) -> QuerySession {
        QuerySession {
            catalog,
            config: SessionConfig::default(),
            views: std::sync::Mutex::new(crate::view::ViewCache::default()),
        }
    }

    /// The cached catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access (e.g. for value-initiated refreshes pushed by
    /// sources).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Parses and executes a query.
    pub fn execute_sql(
        &mut self,
        sql: &str,
        oracle: &mut dyn RefreshOracle,
    ) -> Result<QueryResult, TrappError> {
        let query = trapp_sql::parse_query(sql)?;
        self.execute(&query, oracle)
    }

    /// Executes a parsed query.
    pub fn execute(
        &mut self,
        query: &Query,
        oracle: &mut dyn RefreshOracle,
    ) -> Result<QueryResult, TrappError> {
        let bound = bind_query(query, &self.catalog)?;
        if !bound.group_by.is_empty() {
            return Err(TrappError::Plan(
                "grouped queries return multiple rows; use execute_grouped".into(),
            ));
        }
        match &bound.source {
            QuerySource::Table(name) => self.run_single(name.clone(), &bound, oracle),
            QuerySource::Join { left, right } => {
                self.run_join(left.clone(), right.clone(), &bound, oracle)
            }
        }
    }

    /// Executes a query under a *relative* precision constraint `p`
    /// (§8.1): the answer width must not exceed `2·|A|·p` where `A` is the
    /// true answer. A first cache-only pass derives a conservative absolute
    /// constraint, then the query re-runs with it.
    pub fn execute_relative(
        &mut self,
        query: &Query,
        p: f64,
        oracle: &mut dyn RefreshOracle,
    ) -> Result<QueryResult, TrappError> {
        let r = {
            let mut first_pass = query.clone();
            first_pass.within = None;
            let initial = self.execute(&first_pass, oracle)?;
            crate::relative::conservative_absolute_r(initial.answer.range, p)?
        };
        let mut constrained = query.clone();
        constrained.within = Some(r);
        self.execute(&constrained, oracle)
    }

    fn run_single(
        &mut self,
        table_name: String,
        bound: &BoundQuery,
        oracle: &mut dyn RefreshOracle,
    ) -> Result<QueryResult, TrappError> {
        self.run_single_filtered(table_name, bound, oracle, |_, _| true)
    }

    pub(crate) fn run_single_filtered(
        &mut self,
        table_name: String,
        bound: &BoundQuery,
        oracle: &mut dyn RefreshOracle,
        filter: impl Fn(TupleId, &trapp_storage::Row) -> bool + Copy,
    ) -> Result<QueryResult, TrappError> {
        let build = |catalog: &Catalog| -> Result<AggInput, TrappError> {
            AggInput::build_filtered(
                catalog.table(&table_name)?,
                bound.predicate.as_ref(),
                bound.arg.as_ref(),
                filter,
            )
        };

        let input = build(&self.catalog)?;
        let initial = bounded_answer(bound.agg, &input)?;
        if initial.satisfies(bound.within) {
            return Ok(QueryResult {
                answer: initial,
                initial_answer: initial,
                refreshed: Vec::new(),
                refresh_cost: 0.0,
                rounds: 0,
                satisfied: true,
            });
        }
        let r = bound.within.expect("unsatisfied implies finite R");

        let mut refreshed: Vec<(String, TupleId)> = Vec::new();
        let mut cost = 0.0;
        let mut rounds = 0usize;

        match self.config.mode {
            ExecutionMode::Batch => {
                let plan = choose_refresh(bound.agg, &input, r, self.config.strategy)?;
                rounds = 1;
                cost += self.refresh_tuples(&table_name, &plan.tuples, oracle)?;
                refreshed.extend(plan.tuples.iter().map(|&tid| (table_name.clone(), tid)));
            }
            ExecutionMode::Iterative(heuristic) => {
                loop {
                    let input = build(&self.catalog)?;
                    let answer = bounded_answer(bound.agg, &input)?;
                    if answer.satisfies(bound.within) {
                        break;
                    }
                    if rounds >= self.config.max_refresh_rounds {
                        return Err(TrappError::Internal(format!(
                            "iterative refresh did not converge in {rounds} rounds"
                        )));
                    }
                    let Some(tid) = next_refresh(bound.agg, &input, r, heuristic) else {
                        break; // no refresh can help further
                    };
                    cost += self.refresh_tuple(&table_name, tid, oracle)?;
                    refreshed.push((table_name.clone(), tid));
                    rounds += 1;
                }
            }
        }

        let input = build(&self.catalog)?;
        let answer = bounded_answer(bound.agg, &input)?;
        let satisfied = answer.satisfies(bound.within);
        debug_assert!(
            satisfied || bound.agg == Aggregate::Median || input.cardinality_slack != (0, 0),
            "CHOOSE_REFRESH must guarantee the constraint: width {} > R {r}",
            answer.width(),
        );
        Ok(QueryResult {
            answer,
            initial_answer: initial,
            refreshed,
            refresh_cost: cost,
            rounds,
            satisfied,
        })
    }

    fn run_join(
        &mut self,
        left: String,
        right: String,
        bound: &BoundQuery,
        oracle: &mut dyn RefreshOracle,
    ) -> Result<QueryResult, TrappError> {
        let build = |catalog: &Catalog| -> Result<_, TrappError> {
            build_join_input(
                catalog.table(&left)?,
                catalog.table(&right)?,
                bound.predicate.as_ref(),
                bound.arg.as_ref(),
                &[],
            )
        };

        let initial = bounded_answer(bound.agg, &build(&self.catalog)?.input)?;
        if initial.satisfies(bound.within) {
            return Ok(QueryResult {
                answer: initial,
                initial_answer: initial,
                refreshed: Vec::new(),
                refresh_cost: 0.0,
                rounds: 0,
                satisfied: true,
            });
        }

        let mut refreshed: Vec<(String, TupleId)> = Vec::new();
        let mut cost = 0.0;
        let mut rounds = 0usize;
        let answer = loop {
            let ji = build(&self.catalog)?;
            let answer = bounded_answer(bound.agg, &ji.input)?;
            if answer.satisfies(bound.within) {
                break answer;
            }
            if rounds >= self.config.max_refresh_rounds {
                return Err(TrappError::Internal(format!(
                    "join refresh did not converge in {rounds} rounds"
                )));
            }
            let next = next_join_refresh(
                &ji,
                self.catalog.table(&left)?,
                self.catalog.table(&right)?,
                bound.agg,
                self.config.join_heuristic,
            );
            let Some((side, tid)) = next else {
                break answer;
            };
            let table = match side {
                JoinSide::Left => &left,
                JoinSide::Right => &right,
            };
            cost += self.refresh_tuple(&table.clone(), tid, oracle)?;
            refreshed.push((table.clone(), tid));
            rounds += 1;
        };

        let satisfied = answer.satisfies(bound.within);
        Ok(QueryResult {
            answer,
            initial_answer: initial,
            refreshed,
            refresh_cost: cost,
            rounds,
            satisfied,
        })
    }

    /// Performs one query-initiated refresh: fetches master values for all
    /// bounded columns of `tid` and pins them in the cache. Returns the
    /// refresh cost paid.
    pub fn refresh_tuple(
        &mut self,
        table_name: &str,
        tid: TupleId,
        oracle: &mut dyn RefreshOracle,
    ) -> Result<f64, TrappError> {
        self.refresh_tuples(table_name, &[tid], oracle)
    }

    /// Refreshes a whole plan's worth of tuples through one
    /// [`RefreshOracle::refresh_batch`] call, letting batching-aware
    /// oracles collapse the plan into one round-trip per source. Returns
    /// the total refresh cost paid.
    pub fn refresh_tuples(
        &mut self,
        table_name: &str,
        tids: &[TupleId],
        oracle: &mut dyn RefreshOracle,
    ) -> Result<f64, TrappError> {
        if tids.is_empty() {
            return Ok(0.0);
        }
        let columns = self.catalog.table(table_name)?.schema().bounded_columns();
        let per_tuple = oracle.refresh_batch(table_name, tids, &columns)?;
        if per_tuple.len() != tids.len() {
            return Err(TrappError::RefreshFailed(format!(
                "oracle returned {} rows for {} tuples",
                per_tuple.len(),
                tids.len()
            )));
        }
        let table = self.catalog.table_mut(table_name)?;
        let mut cost = 0.0;
        for (&tid, values) in tids.iter().zip(&per_tuple) {
            if values.len() != columns.len() {
                return Err(TrappError::RefreshFailed(format!(
                    "oracle returned {} values for {} columns",
                    values.len(),
                    columns.len()
                )));
            }
            for (&c, &v) in columns.iter().zip(values) {
                table.refresh_cell(tid, c, v)?;
            }
            cost += table.cost(tid)?;
        }
        Ok(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::test_fixture::*;
    use trapp_types::Interval;

    fn session_and_oracle() -> (QuerySession, TableOracle) {
        (
            QuerySession::new(links_table()),
            TableOracle::from_table(master_table()),
        )
    }

    /// End-to-end Q1 (§5.1): initial [40,55]; R=10 refreshes tuple 5
    /// (bandwidth 50) → [45, 50].
    #[test]
    fn q1_end_to_end() {
        let (mut s, mut o) = session_and_oracle();
        let r = s
            .execute_sql(
                "SELECT MIN(bandwidth) WITHIN 10 FROM links WHERE on_path = TRUE",
                &mut o,
            )
            .unwrap();
        assert_eq!(r.initial_answer.range, Interval::new(40.0, 55.0).unwrap());
        assert_eq!(r.answer.range, Interval::new(45.0, 50.0).unwrap());
        assert_eq!(r.refreshed.len(), 1);
        assert_eq!(r.refresh_cost, 4.0);
        assert!(r.satisfied);
    }

    /// End-to-end Q2 (§5.2): initial [19,28]; R=5 refreshes {1,6} → [21,26].
    #[test]
    fn q2_end_to_end() {
        let (mut s, mut o) = session_and_oracle();
        s.config.strategy = SolverStrategy::Exact;
        let r = s
            .execute_sql(
                "SELECT SUM(latency) WITHIN 5 FROM links WHERE on_path = TRUE",
                &mut o,
            )
            .unwrap();
        assert_eq!(r.initial_answer.range, Interval::new(19.0, 28.0).unwrap());
        assert_eq!(r.answer.range, Interval::new(21.0, 26.0).unwrap());
        assert_eq!(r.refresh_cost, 5.0);
    }

    /// End-to-end Q3 (§5.4): AVG traffic R=10 refreshes {5,6} → [103, 113].
    #[test]
    fn q3_end_to_end() {
        let (mut s, mut o) = session_and_oracle();
        s.config.strategy = SolverStrategy::Exact;
        let r = s
            .execute_sql("SELECT AVG(traffic) WITHIN 10 FROM links", &mut o)
            .unwrap();
        assert_eq!(r.answer.range, Interval::new(103.0, 113.0).unwrap());
        assert_eq!(r.refreshed.len(), 2);
    }

    /// End-to-end Q4 (§6.1): MIN traffic with predicate, R=10 → [95, 105].
    #[test]
    fn q4_end_to_end() {
        let (mut s, mut o) = session_and_oracle();
        let r = s
            .execute_sql(
                "SELECT MIN(traffic) WITHIN 10 FROM links WHERE bandwidth > 50 AND latency < 10",
                &mut o,
            )
            .unwrap();
        assert_eq!(r.initial_answer.range, Interval::new(90.0, 105.0).unwrap());
        assert_eq!(r.answer.range, Interval::new(95.0, 105.0).unwrap());
    }

    /// End-to-end Q5 (§6.3): COUNT latency>10 R=1 → [2, 3].
    #[test]
    fn q5_end_to_end() {
        let (mut s, mut o) = session_and_oracle();
        let r = s
            .execute_sql(
                "SELECT COUNT(*) WITHIN 1 FROM links WHERE latency > 10",
                &mut o,
            )
            .unwrap();
        assert_eq!(r.initial_answer.range, Interval::new(1.0, 3.0).unwrap());
        assert_eq!(r.answer.range, Interval::new(2.0, 3.0).unwrap());
        assert_eq!(r.refresh_cost, 4.0);
    }

    /// End-to-end Q6 (§6.4/App. F): AVG latency WHERE traffic>100, R=2 →
    /// [8, 9] after refreshing {1,3,5,6}.
    #[test]
    fn q6_end_to_end() {
        let (mut s, mut o) = session_and_oracle();
        s.config.strategy = SolverStrategy::Exact;
        let r = s
            .execute_sql(
                "SELECT AVG(latency) WITHIN 2 FROM links WHERE traffic > 100",
                &mut o,
            )
            .unwrap();
        assert_eq!(r.answer.range, Interval::new(8.0, 9.0).unwrap());
        assert_eq!(r.refreshed.len(), 4);
        assert_eq!(r.refresh_cost, 3.0 + 6.0 + 4.0 + 2.0);
    }

    #[test]
    fn satisfied_from_cache_needs_no_oracle_calls() {
        let (mut s, mut o) = session_and_oracle();
        let r = s
            .execute_sql("SELECT SUM(latency) WITHIN 100 FROM links", &mut o)
            .unwrap();
        assert_eq!(r.rounds, 0);
        assert!(r.refreshed.is_empty());
        assert_eq!(o.refreshes_served, 0);
        // No WITHIN at all = pure cache read.
        let r = s
            .execute_sql("SELECT SUM(latency) FROM links", &mut o)
            .unwrap();
        assert!(r.satisfied);
        assert_eq!(o.refreshes_served, 0);
    }

    #[test]
    fn within_zero_forces_exact_answers() {
        let (mut s, mut o) = session_and_oracle();
        let r = s
            .execute_sql("SELECT SUM(traffic) WITHIN 0 FROM links", &mut o)
            .unwrap();
        assert!(r.answer.is_exact());
        // Σ of precise traffic = 98+116+105+127+95+103 = 644.
        assert_eq!(r.answer.range.lo(), 644.0);
    }

    #[test]
    fn iterative_mode_converges_and_can_stop_early() {
        let (mut s, mut o) = session_and_oracle();
        s.config.mode = ExecutionMode::Iterative(IterativeHeuristic::BestRatio);
        let r = s
            .execute_sql("SELECT SUM(traffic) WITHIN 30 FROM links", &mut o)
            .unwrap();
        assert!(r.satisfied);
        assert!(r.rounds >= 1);
        // Iterative refresh realizes exact values as it goes, so it may
        // refresh fewer tuples than the batch worst-case plan.
        let (mut s2, mut o2) = session_and_oracle();
        s2.config.strategy = SolverStrategy::Exact;
        let batch = s2
            .execute_sql("SELECT SUM(traffic) WITHIN 30 FROM links", &mut o2)
            .unwrap();
        assert!(r.refreshed.len() <= batch.refreshed.len() + 1);
    }

    #[test]
    fn median_executes_via_batch_fallback() {
        let (mut s, mut o) = session_and_oracle();
        let r = s
            .execute_sql("SELECT MEDIAN(latency) WITHIN 1 FROM links", &mut o)
            .unwrap();
        assert!(r.satisfied);
        assert!(r.answer.width() <= 1.0);
    }

    #[test]
    fn median_iterative_is_cheaper_than_batch() {
        let (mut s, mut o) = session_and_oracle();
        s.config.mode = ExecutionMode::Iterative(IterativeHeuristic::BestRatio);
        let r = s
            .execute_sql("SELECT MEDIAN(latency) WITHIN 2 FROM links", &mut o)
            .unwrap();
        assert!(r.satisfied);
        assert!(r.refreshed.len() < 6, "refreshed {}", r.refreshed.len());
    }

    #[test]
    fn relative_precision_two_pass() {
        let (mut s, mut o) = session_and_oracle();
        let q = trapp_sql::parse_query("SELECT SUM(traffic) FROM links").unwrap();
        // 5% relative precision around a ~644 answer → R ≈ 2·600·0.05 = 60.
        let r = s.execute_relative(&q, 0.05, &mut o).unwrap();
        assert!(r.satisfied);
        let width = r.answer.width();
        let mid = r.answer.range.midpoint();
        assert!(width <= 2.0 * mid.abs() * 0.05 + 1e-9);
    }

    #[test]
    fn join_query_end_to_end() {
        // links ⋈ nodes on from_node = node_id, SUM of latency.
        let mut catalog = Catalog::new();
        catalog.add_table(links_table()).unwrap();
        let schema = trapp_storage::Schema::new(vec![
            trapp_storage::ColumnDef::exact("node_id", trapp_types::ValueType::Int),
            trapp_storage::ColumnDef::bounded_float("cpu_load"),
        ])
        .unwrap();
        let mut nodes = Table::new("nodes", schema.clone());
        let mut master_nodes = Table::new("nodes", schema);
        for (id, lo, hi, exact) in [(1i64, 0.1, 0.9, 0.5), (2, 0.2, 0.8, 0.6)] {
            nodes
                .insert(vec![
                    trapp_types::BoundedValue::Exact(trapp_types::Value::Int(id)),
                    trapp_types::BoundedValue::bounded(lo, hi).unwrap(),
                ])
                .unwrap();
            master_nodes
                .insert(vec![
                    trapp_types::BoundedValue::Exact(trapp_types::Value::Int(id)),
                    trapp_types::BoundedValue::exact_f64(exact).unwrap(),
                ])
                .unwrap();
        }
        catalog.add_table(nodes).unwrap();
        let mut s = QuerySession::with_catalog(catalog);

        let mut master = Catalog::new();
        master.add_table(master_table()).unwrap();
        master.add_table(master_nodes).unwrap();
        let mut o = TableOracle::new(master);

        let r = s
            .execute_sql(
                "SELECT SUM(latency) WITHIN 2 FROM links, nodes \
                 WHERE from_node = node_id AND cpu_load < 0.7",
                &mut o,
            )
            .unwrap();
        assert!(r.satisfied);
        assert!(r.answer.width() <= 2.0);
    }
}
