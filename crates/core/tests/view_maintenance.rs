//! Incremental band-view maintenance must be **bit-identical** to a
//! from-scratch `AggInput::build_filtered` under random interleavings of
//! cell updates, refresh installs, cost changes, inserts, deletes, slack
//! changes, and queries — the correctness contract that lets the serving
//! layer plan from memoized views instead of rescanning per pass.
//!
//! Two layers of comparison per query point:
//!
//! * `partial_query` (the view-backed classified input) against a fresh
//!   `build_filtered` over the same table state — items, order, bands,
//!   intervals, costs, minus counts, slack;
//! * `plan_query` on the view-planning session against a views-off
//!   session over a clone of the same table — initial answers, refresh
//!   sets, and planned costs, which also pins the ordered-index
//!   CHOOSE_REFRESH paths (the views-on session has indexes and probes;
//!   the clone plans by scan) to the scan planners bit-for-bit.

use proptest::prelude::*;
use trapp_core::query_plan::{QueryOutcome, QueryPartial, QueryPlan};
use trapp_core::{AggInput, QuerySession, SolverStrategy};
use trapp_storage::{ColumnDef, Schema, Table};
use trapp_types::{BoundedValue, TupleId, Value};

fn schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        ColumnDef::exact("grp", trapp_types::ValueType::Int),
        ColumnDef::bounded_float("load"),
        ColumnDef::bounded_float("aux"),
    ])
    .unwrap()
}

fn row(grp: i64, lo: f64, hi: f64, aux: f64) -> Vec<BoundedValue> {
    vec![
        BoundedValue::Exact(Value::Int(grp)),
        BoundedValue::bounded(lo.min(hi), lo.max(hi)).unwrap(),
        BoundedValue::bounded(aux, aux + 1.0).unwrap(),
    ]
}

/// One step of the random interleaving.
#[derive(Clone, Debug)]
enum Op {
    /// Pin `load` of the k-th live tuple to a point (a refresh install).
    Refresh(usize, f64),
    /// Re-widen `load` of the k-th live tuple (a materialization write).
    Widen(usize, f64, f64),
    /// Change the k-th live tuple's refresh cost.
    Cost(usize, f64),
    /// Insert a fresh row.
    Insert(i64, f64, f64),
    /// Delete the k-th live tuple.
    Delete(usize),
    /// Set cardinality slack (COUNT-only regime while non-zero).
    Slack(u64, u64),
    /// Run query shape `q` with constraint `r` and compare both layers.
    Query(usize, f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64, -50.0f64..50.0).prop_map(|(k, v)| Op::Refresh(k, v)),
        (0usize..64, -50.0f64..50.0, 0.0f64..10.0).prop_map(|(k, lo, w)| Op::Widen(k, lo, lo + w)),
        (0usize..64, 0.5f64..9.0).prop_map(|(k, c)| Op::Cost(k, c)),
        (0i64..5, -50.0f64..50.0, 0.0f64..8.0).prop_map(|(g, lo, w)| Op::Insert(g, lo, w)),
        (0usize..64).prop_map(Op::Delete),
        (0u64..3, 0u64..2).prop_map(|(i, d)| Op::Slack(i, d)),
        (0usize..7, 0.0f64..30.0).prop_map(|(q, r)| Op::Query(q, r)),
        (0usize..7, 0.0f64..30.0).prop_map(|(q, r)| Op::Query(q, r)),
        (0usize..7, 0.0f64..30.0).prop_map(|(q, r)| Op::Query(q, r)),
    ]
}

/// The query shapes under test: unfiltered bare-column aggregates (the
/// §5.1/§5.2 index probes), predicated COUNT/SUM (the §6.3 cost walk and
/// the refinement path), and GROUP BY.
fn sql(shape: usize, r: f64) -> String {
    match shape {
        0 => format!("SELECT MIN(load) WITHIN {r} FROM t"),
        1 => format!("SELECT MAX(load) WITHIN {r} FROM t"),
        2 => format!("SELECT SUM(load) WITHIN {r} FROM t"),
        3 => format!("SELECT COUNT(*) WITHIN {r} FROM t WHERE load > 0"),
        4 => format!("SELECT SUM(load) WITHIN {r} FROM t WHERE load > 0"),
        5 => format!("SELECT AVG(load) WITHIN {r} FROM t GROUP BY grp"),
        _ => format!("SELECT COUNT(*) WITHIN {r} FROM t WHERE grp = 2 AND load > 0"),
    }
}

fn live_tuple(table: &Table, k: usize) -> Option<TupleId> {
    let ids: Vec<TupleId> = table.tuple_ids().collect();
    if ids.is_empty() {
        None
    } else {
        Some(ids[k % ids.len()])
    }
}

/// Flattens a plan into comparable parts: per unit `(rendered key,
/// initial range, satisfied, fetch tuples, fetch cost)`.
#[allow(clippy::type_complexity)]
fn plan_parts(plan: &QueryPlan) -> Vec<(String, (f64, f64), bool, Vec<TupleId>, f64)> {
    let from_units = |units: &[trapp_core::UnitState]| {
        units
            .iter()
            .map(|u| {
                (
                    format!("{:?}", u.key),
                    (u.initial.range.lo(), u.initial.range.hi()),
                    u.satisfied,
                    u.fetch
                        .as_ref()
                        .map(|f| f.tuples.clone())
                        .unwrap_or_default(),
                    u.fetch.as_ref().map(|f| f.refresh_cost).unwrap_or(0.0),
                )
            })
            .collect::<Vec<_>>()
    };
    match plan {
        QueryPlan::NeedsFetch(fp) => from_units(&fp.units),
        QueryPlan::Ready(QueryOutcome::Scalar(r)) => vec![(
            String::new(),
            (r.answer.range.lo(), r.answer.range.hi()),
            r.satisfied,
            Vec::new(),
            0.0,
        )],
        QueryPlan::Ready(QueryOutcome::Grouped(groups)) => groups
            .iter()
            .map(|g| {
                (
                    format!("{:?}", g.key),
                    (g.result.answer.range.lo(), g.result.answer.range.hi()),
                    g.result.satisfied,
                    Vec::new(),
                    0.0,
                )
            })
            .collect(),
        QueryPlan::Iterative => vec![],
    }
}

fn assert_inputs_equal(a: &AggInput, b: &AggInput, context: &str) -> Result<(), String> {
    prop_assert_eq!(&a.items, &b.items, "items for {}", context);
    prop_assert_eq!(a.minus_count, b.minus_count, "minus for {}", context);
    prop_assert_eq!(
        a.cardinality_slack,
        b.cardinality_slack,
        "slack for {}",
        context
    );
    prop_assert_eq!(a.plus_count(), b.plus_count(), "plus count for {}", context);
    prop_assert_eq!(
        a.question_count(),
        b.question_count(),
        "question count for {}",
        context
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_views_match_scratch_builds(
        seed_rows in proptest::collection::vec(
            (0i64..5, -50.0f64..50.0, 0.0f64..8.0, 0.5f64..9.0), 1..12),
        ops in proptest::collection::vec(op_strategy(), 1..60),
        uniform in proptest::strategy::any::<bool>(),
    ) {
        // The session under test: views on, default indexes registered.
        let mut table = Table::new("t", schema());
        for (g, lo, w, c) in &seed_rows {
            table.insert_with_cost(row(*g, *lo, *lo + *w, 1.0), *c).unwrap();
        }
        if uniform {
            // Uniform costs + greedy-by-weight: the §5.2 width-index walk.
            for tid in table.tuple_ids().collect::<Vec<_>>() {
                table.set_cost(tid, 4.0).unwrap();
            }
        }
        table.create_default_indexes().unwrap();
        let mut session = QuerySession::new(table);
        prop_assert!(session.config.cache_views);
        if uniform {
            session.config.strategy = SolverStrategy::GreedyByWeight;
        }

        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Refresh(k, v) => {
                    let t = session.catalog_mut().table_mut("t").unwrap();
                    if let Some(tid) = live_tuple(t, *k) {
                        t.refresh_cell(tid, 1, *v).unwrap();
                    }
                }
                Op::Widen(k, lo, hi) => {
                    let t = session.catalog_mut().table_mut("t").unwrap();
                    if let Some(tid) = live_tuple(t, *k) {
                        t.update_cell(tid, 1, BoundedValue::bounded(*lo, *hi).unwrap())
                            .unwrap();
                    }
                }
                Op::Cost(k, c) => {
                    let t = session.catalog_mut().table_mut("t").unwrap();
                    if let Some(tid) = live_tuple(t, *k) {
                        let c = if uniform { 4.0 } else { *c };
                        t.set_cost(tid, c).unwrap();
                    }
                }
                Op::Insert(g, lo, w) => {
                    let cost = if uniform { 4.0 } else { 1.0 + *w };
                    session
                        .catalog_mut()
                        .table_mut("t")
                        .unwrap()
                        .insert_with_cost(row(*g, *lo, *lo + *w, 1.0), cost)
                        .unwrap();
                }
                Op::Delete(k) => {
                    let t = session.catalog_mut().table_mut("t").unwrap();
                    if let Some(tid) = live_tuple(t, *k) {
                        t.delete(tid).unwrap();
                    }
                }
                Op::Slack(i, d) => {
                    session
                        .catalog_mut()
                        .table_mut("t")
                        .unwrap()
                        .set_cardinality_slack(*i, *d);
                }
                Op::Query(shape, r) => {
                    let slack = session.catalog().table("t").unwrap().cardinality_slack();
                    // Value aggregates are (correctly) rejected under
                    // slack; restrict to COUNT shapes there.
                    let shape = if slack == (0, 0) { *shape } else { 3 + (*shape % 2) * 3 };
                    let q = trapp_sql::parse_query(&sql(shape, *r)).unwrap();
                    let context = format!("step {step}: {}", sql(shape, *r));

                    // Layer 1: the view-backed input equals a scratch build.
                    let table = session.catalog().table("t").unwrap();
                    match session.partial_query(&q).unwrap() {
                        QueryPartial::Scalar(p) => {
                            let bound = trapp_core::plan::bind_query(&q, session.catalog()).unwrap();
                            let scratch = AggInput::build_filtered(
                                table, bound.predicate.as_ref(), bound.arg.as_ref(), |_, _| true,
                            ).unwrap();
                            assert_inputs_equal(&p.input, &scratch, &context)?;
                        }
                        QueryPartial::Grouped(groups) => {
                            let bound = trapp_core::plan::bind_query(&q, session.catalog()).unwrap();
                            let partitions =
                                trapp_core::group_by::group_partitions(table, &bound.group_by)
                                    .unwrap();
                            prop_assert_eq!(groups.len(), partitions.len(), "{}", &context);
                            for ((key, p), (_, (pkey, tids))) in
                                groups.iter().zip(partitions.iter())
                            {
                                prop_assert_eq!(
                                    format!("{key:?}"), format!("{pkey:?}"), "{}", &context
                                );
                                let scratch = AggInput::build_filtered(
                                    table,
                                    bound.predicate.as_ref(),
                                    bound.arg.as_ref(),
                                    |tid, _| tids.binary_search(&tid).is_ok(),
                                ).unwrap();
                                assert_inputs_equal(&p.input, &scratch, &context)?;
                            }
                        }
                        QueryPartial::Join(_) => unreachable!("no join shapes generated"),
                    }

                    // Layer 2: plans (incl. the probed index planners)
                    // equal a scan-planning session over the same rows.
                    let mut scan_session =
                        QuerySession::new(session.catalog().table("t").unwrap().clone());
                    scan_session.config.cache_views = false;
                    scan_session.config.strategy = session.config.strategy;
                    match (session.plan_query(&q), scan_session.plan_query(&q)) {
                        (Ok(a), Ok(b)) => {
                            prop_assert_eq!(plan_parts(&a), plan_parts(&b), "{}", &context);
                        }
                        (Err(a), Err(b)) => {
                            prop_assert_eq!(a.to_string(), b.to_string(), "{}", &context);
                        }
                        (a, b) => {
                            return Err(format!("{context}: one path errored: {a:?} vs {b:?}"));
                        }
                    }
                }
            }
        }
    }
}
