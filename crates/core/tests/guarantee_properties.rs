//! The paper's two correctness properties, tested over randomized tables,
//! predicates, and precision constraints:
//!
//! 1. **Containment**: the bounded answer contains the precise aggregate of
//!    every realization of the cached bounds.
//! 2. **CHOOSE_REFRESH guarantee**: for *any* realization of the master
//!    values, refreshing the chosen set makes the recomputed answer satisfy
//!    the precision constraint (§4's definition of correctness; Appendix B
//!    proves it for MIN, §5.2/§6.2/App. F argue it for SUM/AVG).

use proptest::prelude::*;
use trapp_core::agg::{bounded_answer, AggInput, Aggregate};
use trapp_core::refresh::{choose_refresh, SolverStrategy};
use trapp_core::verify::{apply_plan, check_containment, realize_table};
use trapp_expr::{BinaryOp, ColumnRef, Expr};
use trapp_storage::{ColumnDef, Schema, Table};
use trapp_types::{BoundedValue, Value};

/// One generated row: `x` bound, `y` bound, integer cost 1..=10.
type FixtureRow = ((f64, f64), (f64, f64), u8);

/// A random cached table: `x`, `y` bounded float columns with varied signs
/// and widths, plus integer costs 1..=10 (the paper's cost model).
#[derive(Clone, Debug)]
struct Fixture {
    rows: Vec<FixtureRow>,
}

fn arb_fixture() -> impl Strategy<Value = Fixture> {
    proptest::collection::vec(
        (
            (-50.0f64..50.0, 0.0f64..20.0),
            (-50.0f64..50.0, 0.0f64..20.0),
            1u8..=10,
        ),
        1..12,
    )
    .prop_map(|raw| Fixture {
        rows: raw
            .into_iter()
            .map(|((xl, xw), (yl, yw), c)| ((xl, xl + xw), (yl, yl + yw), c))
            .collect(),
    })
}

fn build_table(f: &Fixture) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::bounded_float("x"),
        ColumnDef::bounded_float("y"),
    ])
    .unwrap();
    let mut t = Table::new("t", schema);
    for &(x, y, c) in &f.rows {
        t.insert_with_cost(
            vec![
                BoundedValue::bounded(x.0, x.1).unwrap(),
                BoundedValue::bounded(y.0, y.1).unwrap(),
            ],
            c as f64,
        )
        .unwrap();
    }
    t
}

fn schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        ColumnDef::bounded_float("x"),
        ColumnDef::bounded_float("y"),
    ])
    .unwrap()
}

fn x_col() -> Expr<usize> {
    Expr::Column(ColumnRef::bare("x")).bind(&schema()).unwrap()
}

fn y_pred(threshold: f64) -> Expr<usize> {
    Expr::binary(
        BinaryOp::Gt,
        Expr::Column(ColumnRef::bare("y")),
        Expr::Literal(Value::Float(threshold)),
    )
    .bind(&schema())
    .unwrap()
}

const AGGS: [Aggregate; 5] = [
    Aggregate::Min,
    Aggregate::Max,
    Aggregate::Sum,
    Aggregate::Count,
    Aggregate::Avg,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn containment_without_predicate(f in arb_fixture(), seed in 0u64..1000) {
        let cache = build_table(&f);
        let master = realize_table(&cache, seed).unwrap();
        for agg in AGGS {
            let arg = if agg == Aggregate::Count { None } else { Some(x_col()) };
            check_containment(agg, &cache, &master, None, arg.as_ref())
                .unwrap_or_else(|e| panic!("{agg:?}: {e}"));
        }
        check_containment(Aggregate::Median, &cache, &master, None, Some(&x_col())).unwrap();
    }

    #[test]
    fn containment_with_predicate(f in arb_fixture(), seed in 0u64..1000, thr in -40.0f64..60.0) {
        let cache = build_table(&f);
        let master = realize_table(&cache, seed).unwrap();
        let pred = y_pred(thr);
        for agg in AGGS {
            let arg = if agg == Aggregate::Count { None } else { Some(x_col()) };
            // AVG over a possibly-empty selection is conditioned on
            // non-emptiness: skip containment when the realized selection
            // is empty.
            let res = check_containment(agg, &cache, &master, Some(&pred), arg.as_ref());
            match res {
                Ok(_) => {}
                Err(trapp_types::TrappError::Unsupported(_)) => {} // empty AVG
                Err(e) => panic!("{agg:?} thr {thr}: {e}"),
            }
        }
    }

    /// The central theorem: whatever the master values turn out to be,
    /// refreshing the CHOOSE_REFRESH set meets the constraint.
    #[test]
    fn choose_refresh_guarantees_constraint(
        f in arb_fixture(),
        seed in 0u64..1000,
        r in 0.0f64..60.0,
        use_pred in any::<bool>(),
        thr in -40.0f64..60.0,
        exact in any::<bool>(),
    ) {
        let cache = build_table(&f);
        let pred = if use_pred { Some(y_pred(thr)) } else { None };
        let strategy = if exact { SolverStrategy::Exact } else { SolverStrategy::Fptas(0.1) };
        for agg in AGGS {
            let arg = if agg == Aggregate::Count { None } else { Some(x_col()) };
            let input = AggInput::build(&cache, pred.as_ref(), arg.as_ref()).unwrap();
            let plan = choose_refresh(agg, &input, r, strategy).unwrap();

            // Realize master values and apply the plan.
            let master = realize_table(&cache, seed).unwrap();
            let mut refreshed = build_table(&f);
            apply_plan(&mut refreshed, &master, &plan.tuples).unwrap();

            let post = AggInput::build(&refreshed, pred.as_ref(), arg.as_ref()).unwrap();
            let answer = match bounded_answer(agg, &post) {
                Ok(a) => a,
                Err(trapp_types::TrappError::Unsupported(_)) => continue, // empty AVG
                Err(e) => panic!("{agg:?}: {e}"),
            };
            // For AVG with a predicate, Appendix F guarantees the *loose*
            // bound; the executor reports the tight bound which is ⊆ loose.
            let width = answer.width();
            prop_assert!(
                width <= r + 1e-9,
                "{agg:?} r={r} seed={seed} pred={use_pred} thr={thr}: width {width} \
                 plan {:?}",
                plan.tuples
            );
        }
    }

    /// Refreshing a superset of a plan never breaks the guarantee
    /// (monotonicity sanity check for the batch algorithms).
    #[test]
    fn guarantee_is_monotone_in_refresh_set(
        f in arb_fixture(),
        seed in 0u64..1000,
        r in 0.0f64..60.0,
    ) {
        let cache = build_table(&f);
        let input = AggInput::build(&cache, None, Some(&x_col())).unwrap();
        let plan = choose_refresh(Aggregate::Sum, &input, r, SolverStrategy::Exact).unwrap();
        // Superset: plan + every remaining tuple.
        let all: Vec<_> = cache.tuple_ids().collect();
        let master = realize_table(&cache, seed).unwrap();
        let mut refreshed = build_table(&f);
        apply_plan(&mut refreshed, &master, &all).unwrap();
        let post = AggInput::build(&refreshed, None, Some(&x_col())).unwrap();
        let answer = bounded_answer(Aggregate::Sum, &post).unwrap();
        prop_assert!(answer.width() <= r + 1e-9);
        let _ = plan;
    }

    /// Exact planning never costs more than the approximation schemes.
    #[test]
    fn exact_plans_are_cheapest(f in arb_fixture(), r in 0.0f64..60.0) {
        let cache = build_table(&f);
        let input = AggInput::build(&cache, None, Some(&x_col())).unwrap();
        let exact = choose_refresh(Aggregate::Sum, &input, r, SolverStrategy::Exact).unwrap();
        for strategy in [SolverStrategy::Fptas(0.1), SolverStrategy::GreedyDensity] {
            let approx = choose_refresh(Aggregate::Sum, &input, r, strategy).unwrap();
            prop_assert!(
                exact.planned_cost <= approx.planned_cost + 1e-9,
                "exact {} > {strategy} {}",
                exact.planned_cost,
                approx.planned_cost
            );
        }
    }
}
