//! TPC-H-derived multi-table scenario workload.
//!
//! Three tables at the benchmark's (scaled-down) cardinality ratios —
//! `customer : orders : lineitem ≈ 1 : 3 : 12` — with bounded "hot"
//! columns (`acctbal`, `totalprice`, `quantity`, `extendedprice`) and
//! exact keys, plus a deterministic query suite spanning the shapes the
//! TRAPP engine supports:
//!
//! * **ScalarPred** — single-table aggregates under nested `AND`/`OR`
//!   predicates over bounded columns (membership itself uncertain);
//! * **JoinAgg** — two-way equi-joins (`customer ⋈ orders`,
//!   `orders ⋈ lineitem`) with a bounded filter conjunct, aggregated to
//!   one bounded answer;
//! * **JoinGroup** — grouped aggregates *over join results*
//!   (`GROUP BY nationkey` / `GROUP BY opriority`);
//! * **Grouped** — single-table `GROUP BY` on a non-partition key, so a
//!   sharded service must merge per-shard grouped partials.
//!
//! Order placement follows a zipfian customer-popularity distribution
//! and lineitem supplier keys are zipf-skewed, so join fan-in is
//! realistic rather than uniform. The whole workload — rows, queries,
//! and the exact ground truth of every query, computed engine-
//! independently with hash joins over the master values — is
//! deterministic per seed, which the golden-fingerprint tests pin down.
//!
//! Precision constraints are sized from the *exact* selection statistics
//! of each query (computed during generation), so refresh pressure is
//! controlled: a `pressure` factor below 1 forces the engine to refresh
//! a corresponding fraction of the contributing tuples, which is what
//! makes the suite a workout for multi-tuple join refresh rounds.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trapp_storage::{ColumnDef, Schema, Table};
use trapp_types::{BoundedValue, SourceId, Value, ValueType};

pub use crate::loadgen::{AggTemplate, RowSpec, Zipf};

/// Distinct `nationkey` values (TPC-H has 25 nations).
pub const NATIONS: usize = 25;
/// Distinct `opriority` values (TPC-H has 5 order priorities).
pub const PRIORITIES: i64 = 5;
/// `acctbal` master values are drawn uniformly from this range.
pub const ACCTBAL_RANGE: (f64, f64) = (0.0, 10_000.0);
/// `totalprice` master values are drawn uniformly from this range.
pub const TOTALPRICE_RANGE: (f64, f64) = (1_000.0, 100_000.0);
/// `quantity` master values are drawn uniformly from this range.
pub const QUANTITY_RANGE: (f64, f64) = (1.0, 50.0);
/// `extendedprice` master values are drawn uniformly from this range.
pub const EXTENDEDPRICE_RANGE: (f64, f64) = (100.0, 10_000.0);

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct TpchConfig {
    /// RNG seed (rows, queries, and ground truths are all deterministic
    /// per seed).
    pub seed: u64,
    /// Total rows across the three tables; split `1 : 3 : 12` between
    /// `customer`, `orders`, and `lineitem`. Must be at least 16.
    pub total_rows: usize,
    /// Number of data sources rows are spread across.
    pub sources: usize,
    /// Queries to generate.
    pub queries: usize,
    /// Zipf exponent for customer popularity in order placement (and
    /// supplier popularity in lineitems). `0` = uniform.
    pub zipf_s: f64,
    /// Distinct `suppkey` values.
    pub suppliers: usize,
    /// Relative weights for the four query classes, in
    /// `[ScalarPred, JoinAgg, JoinGroup, Grouped]` order.
    pub class_weights: [u32; 4],
}

impl Default for TpchConfig {
    fn default() -> TpchConfig {
        TpchConfig {
            seed: 7,
            total_rows: 1600,
            sources: 4,
            queries: 32,
            zipf_s: 1.0,
            suppliers: 10,
            class_weights: [2, 2, 1, 1],
        }
    }
}

/// The query classes the suite mixes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TpchClass {
    /// Single-table aggregate under a nested `AND`/`OR` bounded predicate.
    ScalarPred,
    /// Two-way equi-join with a bounded filter, one bounded answer.
    JoinAgg,
    /// Grouped aggregate over a join result.
    JoinGroup,
    /// Single-table `GROUP BY` on a non-partition key.
    Grouped,
}

impl TpchClass {
    /// All classes, in [`TpchConfig::class_weights`] order.
    pub const ALL: [TpchClass; 4] = [
        TpchClass::ScalarPred,
        TpchClass::JoinAgg,
        TpchClass::JoinGroup,
        TpchClass::Grouped,
    ];

    /// Stable lowercase label (profile keys in benches and reports).
    pub fn label(self) -> &'static str {
        match self {
            TpchClass::ScalarPred => "scalar_pred",
            TpchClass::JoinAgg => "join_agg",
            TpchClass::JoinGroup => "join_group",
            TpchClass::Grouped => "grouped",
        }
    }
}

/// The exact answer a query must bound, computed from master values.
#[derive(Clone, Debug)]
pub enum Truth {
    /// One scalar answer.
    Scalar(f64),
    /// Per-group answers, `(key, value)` ascending by key. Groups absent
    /// from this list may still be served (their membership was uncertain
    /// at the initial bounds); their served range must then contain the
    /// aggregate of the empty set — see [`group_violations`].
    Groups(Vec<(i64, f64)>),
}

/// One generated query with its exact ground truth.
#[derive(Clone, Debug)]
pub struct TpchQuery {
    /// Renderable TRAPP SQL.
    pub sql: String,
    /// The query's class.
    pub class: TpchClass,
    /// The aggregate used.
    pub agg: AggTemplate,
    /// The precision constraint.
    pub within: f64,
    /// The fraction of the query's natural answer width the constraint
    /// allows (`1.0` for absolute constraints): below 1, the engine must
    /// refresh roughly `1 - pressure` of the contributing tuples.
    pub pressure: f64,
    /// The exact answer(s) at the generated master values.
    pub truth: Truth,
}

/// A generated workload: three tables of row specs plus a query suite.
#[derive(Clone, Debug)]
pub struct TpchWorkload {
    /// Configuration it was generated from.
    pub config: TpchConfig,
    /// `customer` rows: `[custkey, nationkey, acctbal†]` († bounded).
    pub customer: Vec<RowSpec>,
    /// `orders` rows: `[orderkey, custkey, opriority, totalprice†]`.
    pub orders: Vec<RowSpec>,
    /// `lineitem` rows: `[orderkey, suppkey, quantity†, extendedprice†]`.
    pub lineitem: Vec<RowSpec>,
    /// The query suite, in submission order.
    pub queries: Vec<TpchQuery>,
}

/// The `customer` table schema.
pub fn customer_schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        ColumnDef::exact("custkey", ValueType::Int),
        ColumnDef::exact("nationkey", ValueType::Int),
        ColumnDef::bounded_float("acctbal"),
    ])
    .expect("static schema")
}

/// An empty `customer` table.
pub fn customer_table() -> Table {
    Table::new("customer", customer_schema())
}

/// The `orders` table schema.
pub fn orders_schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        ColumnDef::exact("orderkey", ValueType::Int),
        ColumnDef::exact("custkey", ValueType::Int),
        ColumnDef::exact("opriority", ValueType::Int),
        ColumnDef::bounded_float("totalprice"),
    ])
    .expect("static schema")
}

/// An empty `orders` table.
pub fn orders_table() -> Table {
    Table::new("orders", orders_schema())
}

/// The `lineitem` table schema.
pub fn lineitem_schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        ColumnDef::exact("orderkey", ValueType::Int),
        ColumnDef::exact("suppkey", ValueType::Int),
        ColumnDef::bounded_float("quantity"),
        ColumnDef::bounded_float("extendedprice"),
    ])
    .expect("static schema")
}

/// An empty `lineitem` table.
pub fn lineitem_table() -> Table {
    Table::new("lineitem", lineitem_schema())
}

/// The nation a customer belongs to — a fixed multiplicative hash of the
/// customer key, so nation membership is stable across row counts.
pub fn nation_of(custkey: usize) -> i64 {
    (((custkey as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) % NATIONS as u64) as i64
}

/// Weighted pick from `(item, weight)` pairs.
fn weighted<T: Copy>(rng: &mut StdRng, items: &[(T, u32)]) -> T {
    let total: u32 = items.iter().map(|(_, w)| w).sum();
    debug_assert!(total > 0, "all weights zero");
    let mut pick = rng.gen_range(0..total);
    for &(item, w) in items {
        if pick < w {
            return item;
        }
        pick -= w;
    }
    items[items.len() - 1].0
}

/// Aggregates a selection of master values. `Count` counts them; the
/// empty `Sum`/`Count` is `0`, matching the engine.
fn aggregate(agg: AggTemplate, vals: &[f64]) -> f64 {
    match agg {
        AggTemplate::Count => vals.len() as f64,
        AggTemplate::Sum => vals.iter().sum(),
        AggTemplate::Avg => vals.iter().sum::<f64>() / vals.len() as f64,
        AggTemplate::Min => vals.iter().fold(f64::INFINITY, |a, &v| a.min(v)),
    }
}

/// Column-major master views the truth computations index into.
struct Masters {
    /// Per customer: `(nationkey, acctbal)`, indexed by `custkey`.
    cust: Vec<(i64, f64)>,
    /// Per order: `(custkey, opriority, totalprice)`, indexed by `orderkey`.
    ords: Vec<(usize, i64, f64)>,
    /// Per lineitem: `(orderkey, suppkey, quantity, extendedprice)`.
    line: Vec<(usize, i64, f64, f64)>,
}

/// Precision lists per aggregate for frac-scaled (`Sum`) and absolute
/// constraints; see the `pressure` field docs.
const SUM_FRACS: [(f64, u32); 3] = [(1.3, 1), (0.9, 2), (0.6, 1)];
const COUNT_WITHINS: [(f64, u32); 3] = [(0.5, 1), (2.0, 2), (10.0, 1)];
const AVG_WITHINS: [(f64, u32); 3] = [(0.08, 1), (0.25, 2), (1.0, 1)];
const MIN_WITHINS: [(f64, u32); 3] = [(0.15, 1), (0.5, 2), (2.0, 1)];
/// Join `COUNT` constraints scale with the number of membership-
/// uncertain pairs, which itself scales with the row count.
const JOIN_COUNT_FRACS: [(f64, u32); 3] = [(1.5, 1), (0.75, 2), (0.3, 1)];

/// Generates the workload for `config`.
pub fn generate(config: &TpchConfig) -> TpchWorkload {
    assert!(config.total_rows >= 16, "need at least 16 rows for 1:3:12");
    assert!(config.sources > 0 && config.suppliers > 0);
    assert!(config.class_weights.iter().any(|&w| w > 0));
    let mut rng = StdRng::seed_from_u64(config.seed);

    let customers = (config.total_rows / 16).max(1);
    let orders_n = 3 * customers;
    let lineitems = config.total_rows.saturating_sub(customers + orders_n);
    let src = |i: usize| SourceId::new(1 + (i % config.sources) as u64);

    let mut masters = Masters {
        cust: Vec::with_capacity(customers),
        ords: Vec::with_capacity(orders_n),
        line: Vec::with_capacity(lineitems),
    };

    let mut customer = Vec::with_capacity(customers);
    for c in 0..customers {
        let nation = nation_of(c);
        let acctbal = rng.gen_range(ACCTBAL_RANGE.0..=ACCTBAL_RANGE.1);
        masters.cust.push((nation, acctbal));
        customer.push(RowSpec {
            source: src(c),
            cells: vec![
                BoundedValue::Exact(Value::Int(c as i64)),
                BoundedValue::Exact(Value::Int(nation)),
                BoundedValue::exact_f64(acctbal).expect("finite acctbal"),
            ],
        });
    }

    // Order volume follows customer popularity: rank k of the zipf maps
    // to customer k, so low-key customers are join hot spots.
    let cust_zipf = Zipf::new(customers, config.zipf_s);
    let mut orders = Vec::with_capacity(orders_n);
    for o in 0..orders_n {
        let custkey = cust_zipf.sample(&mut rng);
        let priority = rng.gen_range(1..=PRIORITIES);
        let totalprice = rng.gen_range(TOTALPRICE_RANGE.0..=TOTALPRICE_RANGE.1);
        masters.ords.push((custkey, priority, totalprice));
        orders.push(RowSpec {
            source: src(o + 1),
            cells: vec![
                BoundedValue::Exact(Value::Int(o as i64)),
                BoundedValue::Exact(Value::Int(custkey as i64)),
                BoundedValue::Exact(Value::Int(priority)),
                BoundedValue::exact_f64(totalprice).expect("finite totalprice"),
            ],
        });
    }

    let supp_zipf = Zipf::new(config.suppliers, config.zipf_s);
    let mut lineitem = Vec::with_capacity(lineitems);
    for l in 0..lineitems {
        let orderkey = rng.gen_range(0..orders_n);
        let suppkey = supp_zipf.sample(&mut rng) as i64;
        let quantity = rng.gen_range(QUANTITY_RANGE.0..=QUANTITY_RANGE.1);
        let extendedprice = rng.gen_range(EXTENDEDPRICE_RANGE.0..=EXTENDEDPRICE_RANGE.1);
        masters
            .line
            .push((orderkey, suppkey, quantity, extendedprice));
        lineitem.push(RowSpec {
            source: src(l + 2),
            cells: vec![
                BoundedValue::Exact(Value::Int(orderkey as i64)),
                BoundedValue::Exact(Value::Int(suppkey)),
                BoundedValue::exact_f64(quantity).expect("finite quantity"),
                BoundedValue::exact_f64(extendedprice).expect("finite extendedprice"),
            ],
        });
    }

    let classes: Vec<(TpchClass, u32)> = TpchClass::ALL
        .iter()
        .copied()
        .zip(config.class_weights)
        .collect();
    let mut queries = Vec::with_capacity(config.queries);
    for _ in 0..config.queries {
        queries.push(match weighted(&mut rng, &classes) {
            TpchClass::ScalarPred => scalar_pred_query(&mut rng, &masters, config.suppliers),
            TpchClass::JoinAgg => join_agg_query(&mut rng, &masters),
            TpchClass::JoinGroup => join_group_query(&mut rng, &masters),
            TpchClass::Grouped => grouped_query(&mut rng, &masters),
        });
    }

    TpchWorkload {
        config: config.clone(),
        customer,
        orders,
        lineitem,
        queries,
    }
}

/// Samples a `WITHIN` for `agg` over a selection of `n_sel` values,
/// returning `(within, pressure)`. `Sum` constraints scale with the
/// selection size (each contributing tuple's initial bound is about one
/// unit wide, so `frac < 1` forces refreshing about `1 - frac` of them);
/// the rest use absolute lists.
fn sample_within(rng: &mut StdRng, agg: AggTemplate, n_sel: usize) -> (f64, f64) {
    match agg {
        AggTemplate::Sum => {
            let frac = weighted(rng, &SUM_FRACS);
            (frac * (n_sel.max(1) as f64), frac)
        }
        AggTemplate::Count => (weighted(rng, &COUNT_WITHINS), 1.0),
        AggTemplate::Avg => (weighted(rng, &AVG_WITHINS), 1.0),
        AggTemplate::Min => (weighted(rng, &MIN_WITHINS), 1.0),
    }
}

/// `SELECT agg(quantity) FROM lineitem WHERE suppkey = s AND (quantity >
/// qt OR extendedprice > pt)` — nested AND/OR with bounded membership.
fn scalar_pred_query(rng: &mut StdRng, m: &Masters, suppliers: usize) -> TpchQuery {
    let s = rng.gen_range(0..suppliers) as i64;
    let qt = rng.gen_range(10.0..40.0);
    let pt = rng.gen_range(2000.0..8000.0);
    let mut agg = weighted(
        rng,
        &[
            (AggTemplate::Count, 1),
            (AggTemplate::Sum, 2),
            (AggTemplate::Avg, 1),
            (AggTemplate::Min, 1),
        ],
    );
    let selected: Vec<f64> = m
        .line
        .iter()
        .filter(|&&(_, sk, q, ep)| sk == s && (q > qt || ep > pt))
        .map(|&(_, _, q, _)| q)
        .collect();
    // AVG/MIN of an empty selection is undefined; SUM of it is 0.
    if selected.is_empty() && matches!(agg, AggTemplate::Avg | AggTemplate::Min) {
        agg = AggTemplate::Sum;
    }
    let (within, pressure) = sample_within(rng, agg, selected.len());
    let head = match agg {
        AggTemplate::Count => "COUNT(*)".to_string(),
        AggTemplate::Sum => "SUM(quantity)".to_string(),
        AggTemplate::Avg => "AVG(quantity)".to_string(),
        AggTemplate::Min => "MIN(quantity)".to_string(),
    };
    TpchQuery {
        sql: format!(
            "SELECT {head} WITHIN {within} FROM lineitem \
             WHERE suppkey = {s} AND (quantity > {qt} OR extendedprice > {pt})"
        ),
        class: TpchClass::ScalarPred,
        agg,
        within,
        pressure,
        truth: Truth::Scalar(aggregate(agg, &selected)),
    }
}

/// Two-way equi-join with a bounded filter conjunct: either
/// `customer ⋈ orders` filtered by `acctbal`, or `orders ⋈ lineitem`
/// filtered by `quantity`.
fn join_agg_query(rng: &mut StdRng, m: &Masters) -> TpchQuery {
    if rng.gen_range(0..2) == 0 {
        let at = rng.gen_range(1000.0..9000.0);
        let mut agg = weighted(
            rng,
            &[
                (AggTemplate::Sum, 2),
                (AggTemplate::Count, 1),
                (AggTemplate::Avg, 1),
            ],
        );
        let selected: Vec<f64> = m
            .ords
            .iter()
            .filter(|&&(ck, _, _)| m.cust[ck].1 > at)
            .map(|&(_, _, tp)| tp)
            .collect();
        if selected.is_empty() && agg == AggTemplate::Avg {
            agg = AggTemplate::Sum;
        }
        let (within, pressure) = match agg {
            // AVG of totalprice has magnitude ~1e5; a unit-width list
            // would be indistinguishable from exact.
            AggTemplate::Avg => (weighted(rng, &[(5.0, 1), (25.0, 2), (100.0, 1)]), 1.0),
            _ => sample_within(rng, agg, selected.len()),
        };
        let head = match agg {
            AggTemplate::Count => "COUNT(*)".to_string(),
            AggTemplate::Avg => "AVG(totalprice)".to_string(),
            _ => "SUM(totalprice)".to_string(),
        };
        TpchQuery {
            sql: format!(
                "SELECT {head} WITHIN {within} FROM customer, orders \
                 WHERE customer.custkey = orders.custkey AND acctbal > {at}"
            ),
            class: TpchClass::JoinAgg,
            agg,
            within,
            pressure,
            truth: Truth::Scalar(aggregate(agg, &selected)),
        }
    } else {
        let qt = rng.gen_range(10.0..40.0);
        let agg = weighted(rng, &[(AggTemplate::Count, 1), (AggTemplate::Sum, 1)]);
        let selected: Vec<f64> = m
            .line
            .iter()
            .filter(|&&(_, _, q, _)| q > qt)
            .map(|&(_, _, _, ep)| ep)
            .collect();
        let (within, pressure) = match agg {
            AggTemplate::Count => {
                // Only pairs whose quantity bound straddles the threshold
                // contribute width; size the constraint to that count.
                let straddlers = m.line.iter().filter(|&&(_, _, q, _)| (q - qt).abs() <= 0.5);
                let frac = weighted(rng, &JOIN_COUNT_FRACS);
                ((frac * straddlers.count() as f64).max(1.0), frac)
            }
            _ => sample_within(rng, AggTemplate::Sum, selected.len()),
        };
        let head = match agg {
            AggTemplate::Count => "COUNT(*)",
            _ => "SUM(extendedprice)",
        };
        let truth = match agg {
            AggTemplate::Count => selected.len() as f64,
            _ => selected.iter().sum(),
        };
        TpchQuery {
            sql: format!(
                "SELECT {head} WITHIN {within} FROM orders, lineitem \
                 WHERE orders.orderkey = lineitem.orderkey AND quantity > {qt}"
            ),
            class: TpchClass::JoinAgg,
            agg,
            within,
            pressure,
            truth: Truth::Scalar(truth),
        }
    }
}

/// Grouped aggregate over a join result: `SUM(totalprice)` per nation
/// over `customer ⋈ orders`, or pair counts per order priority over
/// `orders ⋈ lineitem` under a bounded `quantity` filter.
fn join_group_query(rng: &mut StdRng, m: &Masters) -> TpchQuery {
    if rng.gen_range(0..2) == 0 {
        let mut by_nation: BTreeMap<i64, f64> = BTreeMap::new();
        for &(ck, _, tp) in &m.ords {
            *by_nation.entry(m.cust[ck].0).or_default() += tp;
        }
        let frac = weighted(rng, &[(1.5, 1), (1.0, 2), (0.7, 1)]);
        let avg_group = (m.ords.len() as f64 / by_nation.len().max(1) as f64).max(1.0);
        let within = frac * avg_group;
        TpchQuery {
            sql: format!(
                "SELECT SUM(totalprice) WITHIN {within} FROM customer, orders \
                 WHERE customer.custkey = orders.custkey GROUP BY nationkey"
            ),
            class: TpchClass::JoinGroup,
            agg: AggTemplate::Sum,
            within,
            pressure: frac,
            truth: Truth::Groups(by_nation.into_iter().collect()),
        }
    } else {
        let qt = rng.gen_range(10.0..40.0);
        let mut by_priority: BTreeMap<i64, f64> = BTreeMap::new();
        let mut straddlers = 0usize;
        for &(ok, _, q, _) in &m.line {
            if q > qt {
                *by_priority.entry(m.ords[ok].1).or_default() += 1.0;
            }
            if (q - qt).abs() <= 0.5 {
                straddlers += 1;
            }
        }
        let frac = weighted(rng, &JOIN_COUNT_FRACS);
        let within = (frac * straddlers as f64 / PRIORITIES as f64).max(1.0);
        TpchQuery {
            sql: format!(
                "SELECT COUNT(*) WITHIN {within} FROM orders, lineitem \
                 WHERE orders.orderkey = lineitem.orderkey AND quantity > {qt} \
                 GROUP BY opriority"
            ),
            class: TpchClass::JoinGroup,
            agg: AggTemplate::Count,
            within,
            pressure: frac,
            truth: Truth::Groups(by_priority.into_iter().collect()),
        }
    }
}

/// Single-table `GROUP BY nationkey` over `customer` — the group key is
/// not the partition key, so sharded services must merge grouped
/// partials across every shard.
fn grouped_query(rng: &mut StdRng, m: &Masters) -> TpchQuery {
    let agg = weighted(
        rng,
        &[
            (AggTemplate::Count, 1),
            (AggTemplate::Sum, 2),
            (AggTemplate::Avg, 2),
            (AggTemplate::Min, 1),
        ],
    );
    let at = rng.gen_range(1000.0..9000.0);
    let mut by_nation: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
    for &(nation, bal) in &m.cust {
        // COUNT filters by the bounded balance; the others span the group.
        if agg != AggTemplate::Count || bal > at {
            by_nation.entry(nation).or_default().push(bal);
        }
        if agg == AggTemplate::Count {
            by_nation.entry(nation).or_default();
        }
    }
    let avg_group = (m.cust.len() as f64 / NATIONS as f64).max(1.0);
    let (within, pressure) = match agg {
        AggTemplate::Sum => {
            let frac = weighted(rng, &SUM_FRACS);
            (frac * avg_group, frac)
        }
        AggTemplate::Count => (weighted(rng, &COUNT_WITHINS), 1.0),
        AggTemplate::Avg => (weighted(rng, &AVG_WITHINS), 1.0),
        AggTemplate::Min => (weighted(rng, &MIN_WITHINS), 1.0),
    };
    let (head, filter) = match agg {
        AggTemplate::Count => ("COUNT(*)", format!("WHERE acctbal > {at} ")),
        AggTemplate::Sum => ("SUM(acctbal)", String::new()),
        AggTemplate::Avg => ("AVG(acctbal)", String::new()),
        AggTemplate::Min => ("MIN(acctbal)", String::new()),
    };
    let truth = by_nation
        .into_iter()
        .map(|(n, vals)| (n, aggregate(agg, &vals)))
        .collect();
    TpchQuery {
        sql: format!("SELECT {head} WITHIN {within} FROM customer {filter}GROUP BY nationkey"),
        class: TpchClass::Grouped,
        agg,
        within,
        pressure,
        truth: Truth::Groups(truth),
    }
}

/// Whether a served scalar range `[lo, hi]` misses the query's exact
/// truth (with a small float tolerance).
pub fn scalar_violation(q: &TpchQuery, lo: f64, hi: f64) -> bool {
    let Truth::Scalar(t) = q.truth else {
        panic!("scalar_violation on a grouped query: {}", q.sql);
    };
    !(lo - 1e-6 <= t && t <= hi + 1e-6)
}

/// Counts ground-truth violations in served groups `(key, lo, hi)`.
///
/// Every truth group must be served with a range containing its exact
/// value. A served group *absent* from the truth is legitimate when its
/// members were merely uncertain (for joins, a group exists as soon as
/// one pair is not certainly-false at the initial bounds) — but its
/// range must then contain the empty aggregate, `0`, which holds for
/// the `SUM`/`COUNT` aggregates the grouped-join suite is restricted to.
pub fn group_violations(q: &TpchQuery, served: &[(i64, f64, f64)]) -> usize {
    let Truth::Groups(truths) = &q.truth else {
        panic!("group_violations on a scalar query: {}", q.sql);
    };
    let contains = |lo: f64, hi: f64, t: f64| lo - 1e-6 <= t && t <= hi + 1e-6;
    let mut violations = 0;
    for &(key, t) in truths {
        match served.iter().find(|&&(k, _, _)| k == key) {
            Some(&(_, lo, hi)) if contains(lo, hi, t) => {}
            _ => violations += 1,
        }
    }
    for &(key, lo, hi) in served {
        if truths.iter().all(|&(k, _)| k != key) && !contains(lo, hi, 0.0) {
            violations += 1;
        }
    }
    violations
}

/// FNV-1a fingerprint of the workload's rows and query texts — the
/// seed-stability golden the fixture tests pin. Any change to the
/// generator's draw order shows up here.
pub fn fingerprint(w: &TpchWorkload) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for rows in [&w.customer, &w.orders, &w.lineitem] {
        for r in rows {
            eat(&r.source.raw().to_le_bytes());
            for c in &r.cells {
                match c {
                    BoundedValue::Exact(Value::Int(x)) => eat(&x.to_le_bytes()),
                    other => {
                        let m = other.as_interval().expect("numeric cell").midpoint();
                        eat(&m.to_bits().to_le_bytes());
                    }
                }
            }
        }
    }
    for q in &w.queries {
        eat(q.sql.as_bytes());
        match &q.truth {
            Truth::Scalar(t) => eat(&t.to_bits().to_le_bytes()),
            Truth::Groups(g) => {
                for &(k, t) in g {
                    eat(&k.to_le_bytes());
                    eat(&t.to_bits().to_le_bytes());
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use trapp_core::executor::{QuerySession, TableOracle};

    /// Cached tables carry width-1 bounds around each master (the shape a
    /// serving layer installs); the oracle holds the exact masters.
    fn widened_session() -> (TpchWorkload, QuerySession, TableOracle) {
        let w = generate(&TpchConfig {
            total_rows: 320,
            queries: 40,
            class_weights: [1, 1, 1, 1],
            ..TpchConfig::default()
        });
        let mut cached = trapp_storage::Catalog::new();
        let mut masters = trapp_storage::Catalog::new();
        for (rows, make) in [
            (&w.customer, customer_table as fn() -> Table),
            (&w.orders, orders_table),
            (&w.lineitem, lineitem_table),
        ] {
            let (mut c, mut m) = (make(), make());
            for r in rows {
                let widened: Vec<BoundedValue> = r
                    .cells
                    .iter()
                    .map(|cell| match cell {
                        BoundedValue::Exact(Value::Int(_)) => cell.clone(),
                        other => {
                            let mid = other.as_interval().unwrap().midpoint();
                            BoundedValue::bounded(mid - 0.5, mid + 0.5).unwrap()
                        }
                    })
                    .collect();
                c.insert(widened).unwrap();
                m.insert(r.cells.clone()).unwrap();
            }
            cached.add_table(c).unwrap();
            masters.add_table(m).unwrap();
        }
        let session = QuerySession::with_catalog(cached);
        let oracle = TableOracle::new(masters);
        (w, session, oracle)
    }

    #[test]
    fn deterministic_per_seed() {
        let c = TpchConfig::default();
        assert_eq!(fingerprint(&generate(&c)), fingerprint(&generate(&c)));
        let other = generate(&TpchConfig { seed: 8, ..c });
        assert_ne!(fingerprint(&generate(&c)), fingerprint(&other));
    }

    #[test]
    fn cardinality_ratios_hold() {
        let w = generate(&TpchConfig {
            total_rows: 160_000,
            queries: 0,
            ..TpchConfig::default()
        });
        assert_eq!(w.customer.len(), 10_000);
        assert_eq!(w.orders.len(), 30_000);
        assert_eq!(w.lineitem.len(), 120_000);
        // Zipfian order placement: the most popular customer holds far
        // more orders than an average one.
        let mut per_cust = vec![0usize; w.customer.len()];
        for r in &w.orders {
            let BoundedValue::Exact(Value::Int(ck)) = r.cells[1] else {
                panic!("exact custkey expected")
            };
            per_cust[ck as usize] += 1;
        }
        let avg = w.orders.len() / w.customer.len();
        assert!(per_cust[0] > 20 * avg, "no zipf skew: {}", per_cust[0]);
    }

    #[test]
    fn all_classes_generate_and_parse() {
        let w = generate(&TpchConfig {
            queries: 64,
            class_weights: [1, 1, 1, 1],
            ..TpchConfig::default()
        });
        for class in TpchClass::ALL {
            assert!(
                w.queries.iter().any(|q| q.class == class),
                "no {} queries in 64",
                class.label()
            );
        }
        for q in &w.queries {
            trapp_sql::parse_query(&q.sql).unwrap_or_else(|e| panic!("{}: {e}", q.sql));
        }
    }

    /// Every query class executes on a core session over widened caches
    /// and lands inside its engine-independent ground truth.
    #[test]
    fn session_answers_match_ground_truth() {
        let (w, mut session, mut oracle) = widened_session();
        for q in &w.queries {
            let query = trapp_sql::parse_query(&q.sql).unwrap();
            match &q.truth {
                Truth::Scalar(_) => {
                    let r = session.execute(&query, &mut oracle).unwrap();
                    assert!(r.satisfied, "{}", q.sql);
                    assert!(r.answer.width() <= q.within + 1e-9, "{}", q.sql);
                    assert!(
                        !scalar_violation(q, r.answer.range.lo(), r.answer.range.hi()),
                        "{}: truth outside {}",
                        q.sql,
                        r.answer
                    );
                }
                Truth::Groups(_) => {
                    let groups = session.execute_grouped(&query, &mut oracle).unwrap();
                    let served: Vec<(i64, f64, f64)> = groups
                        .iter()
                        .map(|g| {
                            let Value::Int(k) = g.key[0] else {
                                panic!("int group keys expected")
                            };
                            (k, g.result.answer.range.lo(), g.result.answer.range.hi())
                        })
                        .collect();
                    assert!(groups.iter().all(|g| g.result.satisfied), "{}", q.sql);
                    assert_eq!(group_violations(q, &served), 0, "{}", q.sql);
                }
            }
        }
    }

    /// The batched join planner and the one-tuple baseline both satisfy
    /// every join query, and batching never takes more refresh rounds.
    #[test]
    fn join_queries_satisfied_in_both_modes() {
        let (w, mut batched, mut oracle_a) = widened_session();
        let (_, mut one_tuple, mut oracle_b) = widened_session();
        one_tuple.config.join_batch = false;
        for q in w.queries.iter().filter(|q| q.class == TpchClass::JoinAgg) {
            let query = trapp_sql::parse_query(&q.sql).unwrap();
            let a = batched.execute(&query, &mut oracle_a).unwrap();
            let b = one_tuple.execute(&query, &mut oracle_b).unwrap();
            assert!(a.satisfied && b.satisfied, "{}", q.sql);
            assert_eq!(a.answer.range, b.answer.range, "{}", q.sql);
        }
    }

    #[test]
    fn violation_checkers_flag_misses() {
        let q = TpchQuery {
            sql: "test".into(),
            class: TpchClass::JoinAgg,
            agg: AggTemplate::Sum,
            within: 1.0,
            pressure: 1.0,
            truth: Truth::Scalar(10.0),
        };
        assert!(!scalar_violation(&q, 9.0, 11.0));
        assert!(scalar_violation(&q, 11.0, 12.0));

        let g = TpchQuery {
            truth: Truth::Groups(vec![(1, 5.0), (2, 7.0)]),
            ..q
        };
        // Exact match, one uncertain extra group covering 0: no violations.
        assert_eq!(
            group_violations(&g, &[(1, 4.0, 6.0), (2, 7.0, 7.0), (3, -0.5, 0.5)]),
            0
        );
        // Missing truth group, plus an extra group excluding 0: two.
        assert_eq!(group_violations(&g, &[(1, 4.0, 6.0), (3, 1.0, 2.0)]), 2);
    }

    /// Seed-stability goldens: these fingerprints pin the generator's
    /// exact draw order. If an intentional generator change moves them,
    /// update the constants — anything else is a regression.
    #[test]
    fn golden_fingerprints() {
        let small = generate(&TpchConfig::default());
        let larger = generate(&TpchConfig {
            seed: 11,
            total_rows: 8000,
            queries: 16,
            ..TpchConfig::default()
        });
        assert_eq!(small.customer.len(), 100);
        assert_eq!(small.lineitem.len(), 1200);
        assert_eq!(fingerprint(&small), GOLDEN_DEFAULT);
        assert_eq!(fingerprint(&larger), GOLDEN_LARGER);
    }

    const GOLDEN_DEFAULT: u64 = 12280489509909679724;
    const GOLDEN_LARGER: u64 = 2208844861897891012;
}
