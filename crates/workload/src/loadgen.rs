//! Closed-loop service workload generator: zipfian object popularity,
//! mixed aggregate templates, configurable precision-constraint mix.
//!
//! Models the serving regime the query service targets: a `metrics` table
//! partitioned into groups ("segments"), many concurrent clients issuing
//! `SELECT agg(load) WITHIN r FROM metrics WHERE grp = g` with group
//! popularity following a zipfian distribution — so hot groups' replicated
//! objects are hit by many overlapping refresh plans (the coalescing
//! opportunity) and each group's rows span several sources (the batching
//! opportunity).
//!
//! The generator emits plain data — row specs and SQL strings — so the same
//! workload can drive a single-threaded `trapp_system::Simulation`, the
//! concurrent `trapp-server` service, or anything else, and their answers
//! can be compared.
//!
//! Two knobs target **sharded** deployments: `global_fraction` mixes in
//! group-free queries that a sharded service must scatter-gather, and
//! `shard_skew` concentrates query popularity on the groups of one shard
//! (via the same [`trapp_types::shard_of`] hash the server partitions
//! with) to measure scaling under hot-shard imbalance.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trapp_storage::{ColumnDef, Schema, Table};
use trapp_types::{shard_of, BoundedValue, SourceId, Value, ValueType};

/// The `weight > thr` threshold join queries filter segments by.
pub const JOIN_WEIGHT_THRESHOLD: f64 = 0.5;

/// Aggregate templates the generator mixes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggTemplate {
    /// `COUNT(*) … WHERE grp = g AND load > thr` (bounded predicate).
    Count,
    /// `SUM(load) … WHERE grp = g`.
    Sum,
    /// `AVG(load) … WHERE grp = g`.
    Avg,
    /// `MIN(load) … WHERE grp = g`.
    Min,
}

impl AggTemplate {
    /// All templates, in weight order.
    pub const ALL: [AggTemplate; 4] = [
        AggTemplate::Count,
        AggTemplate::Sum,
        AggTemplate::Avg,
        AggTemplate::Min,
    ];
}

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// RNG seed (the whole workload is deterministic per seed).
    pub seed: u64,
    /// Number of groups (distinct `grp` values).
    pub groups: usize,
    /// Rows per group.
    pub rows_per_group: usize,
    /// Number of data sources rows are spread across.
    pub sources: usize,
    /// Queries to generate.
    pub queries: usize,
    /// Zipf exponent for group popularity (`0` = uniform; `≈1` = classic).
    pub zipf_s: f64,
    /// Relative weights for `[COUNT, SUM, AVG, MIN]` templates.
    pub agg_weights: [u32; 4],
    /// Precision-constraint mix: `(R, weight)` pairs.
    pub precision: Vec<(f64, u32)>,
    /// Master values are drawn uniformly from this range.
    pub value_range: (f64, f64),
    /// Fraction of queries issued with **no group predicate**: they span
    /// every group, so a sharded service answers them by cross-shard
    /// scatter-gather. `0.0` (the default) keeps every query group-pinned.
    pub global_fraction: f64,
    /// Shard-skew knob: the probability that a sampled group is remapped
    /// onto the *hot shard* — the shard that owns group 0 under a
    /// [`skew_shards`](LoadConfig::skew_shards)-way
    /// [`trapp_types::shard_of`] partition. `0.0` leaves placement to the
    /// zipf alone (popularity spreads across shards because the partition
    /// hash mixes consecutive group ids); `1.0` aims every group-pinned
    /// query at one shard, the worst case for shard scaling.
    pub shard_skew: f64,
    /// The shard count [`shard_skew`](LoadConfig::shard_skew) targets.
    /// Must match the served topology for the skew to land where
    /// intended; `1` (the default) disables remapping.
    pub skew_shards: usize,
    /// Fraction of queries issued as `GROUP BY grp` over all groups: one
    /// bounded answer per group, each independently under the sampled
    /// `WITHIN`. `0.0` (the default) emits none.
    pub grouped_fraction: f64,
    /// Fraction of queries issued as two-table joins
    /// (`metrics ⋈ segments` on the group key, filtered by the segment's
    /// bounded `weight`). Any non-zero value also adds the `segments`
    /// side table (one row per group) to the workload; `0.0` (the
    /// default) emits neither, keeping historical workloads bit-stable.
    pub join_fraction: f64,
    /// Fraction of queries issued with a `DEADLINE` clause — the
    /// time-bounded (BlinkDB-style) contract, against which the service
    /// trades precision for latency under load. `0.0` (the default)
    /// emits none and leaves historical rng streams bit-stable.
    pub deadline_fraction: f64,
    /// The deadline budget, in milliseconds, attached to deadline-bearing
    /// queries. Ignored while [`deadline_fraction`](LoadConfig::deadline_fraction)
    /// is zero.
    pub deadline_ms: f64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            seed: 42,
            groups: 16,
            rows_per_group: 6,
            sources: 4,
            queries: 256,
            zipf_s: 1.1,
            agg_weights: [1, 2, 2, 1],
            // Mostly tight constraints (they force refreshes — the traffic
            // the service exists to reduce), some loose.
            precision: vec![(0.5, 3), (2.0, 2), (25.0, 1)],
            value_range: (50.0, 100.0),
            global_fraction: 0.0,
            shard_skew: 0.0,
            skew_shards: 1,
            grouped_fraction: 0.0,
            join_fraction: 0.0,
            deadline_fraction: 0.0,
            deadline_ms: 100.0,
        }
    }
}

/// One row of the generated table: which source owns its bounded cell and
/// the cell values to install.
#[derive(Clone, Debug)]
pub struct RowSpec {
    /// The owning source.
    pub source: SourceId,
    /// `[grp (exact int), load (initial master value)]`.
    pub cells: Vec<BoundedValue>,
}

/// The shape of a generated query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryShape {
    /// One bounded answer over `metrics` (group-pinned or global).
    Scalar,
    /// `GROUP BY grp` over all groups: one bounded answer per group.
    Grouped,
    /// `metrics ⋈ segments` on the group key, filtered by the segment's
    /// bounded `weight` — uncertainty on both join sides.
    Join,
}

/// One generated query.
#[derive(Clone, Debug)]
pub struct GeneratedQuery {
    /// Renderable TRAPP/AG SQL.
    pub sql: String,
    /// The targeted group; `None` for a global (all-groups) query, which
    /// a sharded service answers by scatter-gather. Always `None` for
    /// grouped and join shapes.
    pub group: Option<usize>,
    /// The template used (always [`AggTemplate::Sum`] for joins).
    pub agg: AggTemplate,
    /// The precision constraint (per group for grouped queries).
    pub within: f64,
    /// The deadline budget in milliseconds, when the query carries a
    /// `DEADLINE` clause.
    pub deadline: Option<f64>,
    /// The query's shape.
    pub shape: QueryShape,
}

/// Splices a `DEADLINE` clause into rendered SQL (the grammar places it
/// between `WITHIN` and `FROM`).
fn with_deadline(sql: String, deadline: Option<f64>) -> String {
    match deadline {
        Some(d) => sql.replacen(" FROM", &format!(" DEADLINE {d} FROM"), 1),
        None => sql,
    }
}

/// A generated workload: table shape, rows, and a query stream.
#[derive(Clone, Debug)]
pub struct ServiceWorkload {
    /// Configuration it was generated from.
    pub config: LoadConfig,
    /// Rows for the `metrics` table, in insertion order.
    pub rows: Vec<RowSpec>,
    /// Rows for the `segments` side table (one per group, in group
    /// order); empty unless [`LoadConfig::join_fraction`] is non-zero.
    /// Serving layers should add these *after* every `metrics` row so
    /// object ids `1..=rows.len()` keep backing the metrics rows.
    pub segments: Vec<RowSpec>,
    /// The query stream, in submission order.
    pub queries: Vec<GeneratedQuery>,
}

/// The `metrics` table schema: exact group key, bounded load.
pub fn schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        ColumnDef::exact("grp", ValueType::Int),
        ColumnDef::bounded_float("load"),
    ])
    .expect("static schema")
}

/// An empty `metrics` table.
pub fn table() -> Table {
    Table::new("metrics", schema())
}

/// The `segments` side-table schema: exact group key, bounded weight.
pub fn segments_schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        ColumnDef::exact("grp", ValueType::Int),
        ColumnDef::bounded_float("weight"),
    ])
    .expect("static schema")
}

/// An empty `segments` table.
pub fn segments_table() -> Table {
    Table::new("segments", segments_schema())
}

/// The group key of a generated row.
fn row_group(r: &RowSpec) -> i64 {
    match &r.cells[0] {
        BoundedValue::Exact(Value::Int(g)) => *g,
        other => unreachable!("generated rows carry exact int group keys, got {other:?}"),
    }
}

/// The point envelope of the metrics masters (each row known exactly).
fn point_envelope(w: &ServiceWorkload) -> Vec<(f64, f64)> {
    w.rows
        .iter()
        .map(|r| {
            let m = r.cells[1]
                .as_interval()
                .expect("load cell is numeric")
                .midpoint();
            (m, m)
        })
        .collect()
}

/// The master weight of one group's segment row.
pub fn segment_weight(w: &ServiceWorkload, group: i64) -> f64 {
    w.segments
        .iter()
        .find(|s| row_group(s) == group)
        .map(|s| {
            s.cells[1]
                .as_interval()
                .expect("weight cell is numeric")
                .midpoint()
        })
        .unwrap_or_else(|| panic!("no segment row for group {group}"))
}

/// The `(lo, hi)` envelope of one aggregate over the selected rows'
/// per-row envelopes — the shared kernel of every ground-truth checker.
fn agg_bounds(agg: AggTemplate, selected: &[(f64, f64)], mid: f64) -> (f64, f64) {
    let n = selected.len() as f64;
    match agg {
        // A row certainly passes `load > mid` only if its whole envelope
        // does; it possibly passes if any of it does.
        AggTemplate::Count => (
            selected.iter().filter(|&&(lo, _)| lo > mid).count() as f64,
            selected.iter().filter(|&&(_, hi)| hi > mid).count() as f64,
        ),
        AggTemplate::Sum => (
            selected.iter().map(|&(lo, _)| lo).sum(),
            selected.iter().map(|&(_, hi)| hi).sum(),
        ),
        AggTemplate::Avg => (
            selected.iter().map(|&(lo, _)| lo).sum::<f64>() / n,
            selected.iter().map(|&(_, hi)| hi).sum::<f64>() / n,
        ),
        AggTemplate::Min => (
            selected.iter().fold(f64::INFINITY, |a, &(lo, _)| a.min(lo)),
            selected.iter().fold(f64::INFINITY, |a, &(_, hi)| a.min(hi)),
        ),
    }
}

/// The precise aggregate `q` should return, computed from the master
/// values in the workload's row specs — the ground truth benches and
/// tests check bounded answers against (`range` must contain it).
/// Handles scalar *and* join shapes; grouped queries have one truth per
/// group — use [`ground_truth_groups`].
pub fn ground_truth(w: &ServiceWorkload, q: &GeneratedQuery) -> f64 {
    ground_truth_bounds(w, q, &point_envelope(w)).0
}

/// The range the precise aggregate must lie in when each metrics row's
/// master value is only known to lie in `current[i] = (lo, hi)` — the
/// envelope benches use to sanity-check answers while an update stream is
/// concurrently rewriting masters (the instantaneous truth is then a
/// moving target, but it can never leave this envelope). `current` is
/// indexed like [`ServiceWorkload::rows`]; with point intervals this
/// degenerates to the exact [`ground_truth`].
///
/// Join queries select the rows whose group's segment clears the
/// `weight` threshold at its *master* value — segment masters are static
/// (the churn stream only rewrites metrics objects), so membership is
/// exact while values carry the envelope.
pub fn ground_truth_bounds(
    w: &ServiceWorkload,
    q: &GeneratedQuery,
    current: &[(f64, f64)],
) -> (f64, f64) {
    assert_eq!(current.len(), w.rows.len(), "one (lo, hi) per row");
    let mid = (w.config.value_range.0 + w.config.value_range.1) / 2.0;
    let selected: Vec<(f64, f64)> = w
        .rows
        .iter()
        .zip(current)
        .filter(|(r, _)| match q.shape {
            QueryShape::Scalar => match q.group {
                Some(g) => row_group(r) == g as i64,
                None => true,
            },
            QueryShape::Join => segment_weight(w, row_group(r)) > JOIN_WEIGHT_THRESHOLD,
            QueryShape::Grouped => {
                panic!("grouped queries have one truth per group; use ground_truth_group_bounds")
            }
        })
        .map(|(_, &range)| range)
        .collect();
    agg_bounds(q.agg, &selected, mid)
}

/// Per-group precise aggregates for a grouped query, ascending by group
/// id. (Serving layers order groups by *rendered* key — match by id, not
/// by position, when group counts reach double digits.)
pub fn ground_truth_groups(w: &ServiceWorkload, q: &GeneratedQuery) -> Vec<(i64, f64)> {
    ground_truth_group_bounds(w, q, &point_envelope(w))
        .into_iter()
        .map(|(g, (lo, _))| (g, lo))
        .collect()
}

/// Per-group envelope bounds for a grouped query under churn — the
/// grouped counterpart of [`ground_truth_bounds`].
pub fn ground_truth_group_bounds(
    w: &ServiceWorkload,
    q: &GeneratedQuery,
    current: &[(f64, f64)],
) -> Vec<(i64, (f64, f64))> {
    assert_eq!(current.len(), w.rows.len(), "one (lo, hi) per row");
    assert_eq!(q.shape, QueryShape::Grouped, "not a grouped query");
    let mid = (w.config.value_range.0 + w.config.value_range.1) / 2.0;
    let mut by_group: BTreeMap<i64, Vec<(f64, f64)>> = BTreeMap::new();
    for (r, &range) in w.rows.iter().zip(current) {
        by_group.entry(row_group(r)).or_default().push(range);
    }
    by_group
        .into_iter()
        .map(|(g, selected)| (g, agg_bounds(q.agg, &selected, mid)))
        .collect()
}

/// A seeded zipfian sampler over `0..n` (rank `k` has weight
/// `1/(k+1)^s`).
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution; `n` must be nonzero.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "zipf over empty domain");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Samples one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

/// Generates the workload for `config`.
pub fn generate(config: &LoadConfig) -> ServiceWorkload {
    assert!(config.groups > 0 && config.rows_per_group > 0 && config.sources > 0);
    assert!(!config.precision.is_empty(), "empty precision mix");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Rows: group g's i-th row lives at source (g + i) mod sources, so
    // every group with ≥ 2 rows spans several sources and a tight query's
    // refresh plan is a multi-source batch.
    let mut rows = Vec::with_capacity(config.groups * config.rows_per_group);
    for g in 0..config.groups {
        for i in 0..config.rows_per_group {
            let source = SourceId::new(1 + ((g + i) % config.sources) as u64);
            let load = rng.gen_range(config.value_range.0..=config.value_range.1);
            rows.push(RowSpec {
                source,
                cells: vec![
                    BoundedValue::Exact(Value::Int(g as i64)),
                    BoundedValue::exact_f64(load).expect("finite load"),
                ],
            });
        }
    }

    // Segments: one row per group — the join workload's second side.
    // Generated only when join queries are requested, so workloads
    // without them keep their exact historical shape (row set, object-id
    // assignment, rng stream).
    assert!(
        (0.0..=1.0).contains(&(config.grouped_fraction + config.join_fraction)),
        "grouped_fraction + join_fraction must stay within [0, 1]"
    );
    let segments: Vec<RowSpec> = if config.join_fraction > 0.0 {
        (0..config.groups)
            .map(|g| RowSpec {
                source: SourceId::new(1 + (g % config.sources) as u64),
                cells: vec![
                    BoundedValue::Exact(Value::Int(g as i64)),
                    BoundedValue::exact_f64(rng.gen_range(0.0..=1.0)).expect("finite weight"),
                ],
            })
            .collect()
    } else {
        Vec::new()
    };

    // Queries: zipfian group, weighted template, weighted precision.
    let zipf = Zipf::new(config.groups, config.zipf_s);
    let agg_total: u32 = config.agg_weights.iter().sum();
    assert!(agg_total > 0, "all aggregate weights zero");
    let precision_total: u32 = config.precision.iter().map(|(_, w)| w).sum();
    assert!(precision_total > 0, "all precision weights zero");
    let mid_threshold = (config.value_range.0 + config.value_range.1) / 2.0;

    // The hot shard's groups, for the shard-skew remap: every group that
    // `shard_of` co-locates with group 0 under a `skew_shards`-way
    // partition. Non-empty by construction (it contains group 0).
    let hot_groups: Vec<usize> = if config.skew_shards > 1 && config.shard_skew > 0.0 {
        let hot = shard_of(0, config.skew_shards);
        (0..config.groups)
            .filter(|&g| shard_of(g as u64, config.skew_shards) == hot)
            .collect()
    } else {
        Vec::new()
    };

    let mut queries = Vec::with_capacity(config.queries);
    for _ in 0..config.queries {
        let mut group = Some(zipf.sample(&mut rng));
        if !hot_groups.is_empty() && rng.gen_range(0.0..1.0) < config.shard_skew {
            // Preserve the zipf rank ordering while landing on the hot
            // shard: popular ranks map to popular hot-shard groups.
            group = group.map(|g| hot_groups[g % hot_groups.len()]);
        }
        if config.global_fraction > 0.0 && rng.gen_range(0.0..1.0) < config.global_fraction {
            group = None;
        }
        let agg = {
            let mut pick = rng.gen_range(0..agg_total);
            let mut chosen = AggTemplate::ALL[0];
            for (template, &w) in AggTemplate::ALL.iter().zip(&config.agg_weights) {
                if pick < w {
                    chosen = *template;
                    break;
                }
                pick -= w;
            }
            chosen
        };
        let within = {
            let mut pick = rng.gen_range(0..precision_total);
            let mut chosen = config.precision[0].0;
            for &(r, w) in &config.precision {
                if pick < w {
                    chosen = r;
                    break;
                }
                pick -= w;
            }
            chosen
        };
        // Shape draw last, and only when shaped queries are requested —
        // historical seeds keep their exact query streams otherwise.
        let shape = if config.grouped_fraction > 0.0 || config.join_fraction > 0.0 {
            let u: f64 = rng.gen_range(0.0..1.0);
            if u < config.join_fraction {
                QueryShape::Join
            } else if u < config.join_fraction + config.grouped_fraction {
                QueryShape::Grouped
            } else {
                QueryShape::Scalar
            }
        } else {
            QueryShape::Scalar
        };
        // Deadline draw after the shape draw, and only when deadlines are
        // requested — again keeping historical rng streams untouched.
        let deadline = if config.deadline_fraction > 0.0
            && rng.gen_range(0.0..1.0) < config.deadline_fraction
        {
            Some(config.deadline_ms)
        } else {
            None
        };
        match shape {
            QueryShape::Join => {
                // Joins aggregate SUM(load) over metrics ⋈ segments: the
                // exact equi-join pins membership per group, the bounded
                // weight filter makes membership itself uncertain — the
                // two-sided refresh regime of §7.
                queries.push(GeneratedQuery {
                    sql: with_deadline(
                        format!(
                            "SELECT SUM(load) WITHIN {within} FROM metrics, segments \
                             WHERE metrics.grp = segments.grp AND weight > {JOIN_WEIGHT_THRESHOLD}"
                        ),
                        deadline,
                    ),
                    group: None,
                    agg: AggTemplate::Sum,
                    within,
                    deadline,
                    shape,
                });
                continue;
            }
            QueryShape::Grouped => {
                let sql = match agg {
                    AggTemplate::Count => format!(
                        "SELECT COUNT(*) WITHIN {within} FROM metrics \
                         WHERE load > {mid_threshold} GROUP BY grp"
                    ),
                    AggTemplate::Sum => {
                        format!("SELECT SUM(load) WITHIN {within} FROM metrics GROUP BY grp")
                    }
                    AggTemplate::Avg => {
                        format!("SELECT AVG(load) WITHIN {within} FROM metrics GROUP BY grp")
                    }
                    AggTemplate::Min => {
                        format!("SELECT MIN(load) WITHIN {within} FROM metrics GROUP BY grp")
                    }
                };
                queries.push(GeneratedQuery {
                    sql: with_deadline(sql, deadline),
                    group: None,
                    agg,
                    within,
                    deadline,
                    shape,
                });
                continue;
            }
            QueryShape::Scalar => {}
        }
        let sql = match (agg, group) {
            (AggTemplate::Count, Some(g)) => format!(
                "SELECT COUNT(*) WITHIN {within} FROM metrics \
                 WHERE grp = {g} AND load > {mid_threshold}"
            ),
            (AggTemplate::Count, None) => {
                format!("SELECT COUNT(*) WITHIN {within} FROM metrics WHERE load > {mid_threshold}")
            }
            (AggTemplate::Sum, Some(g)) => {
                format!("SELECT SUM(load) WITHIN {within} FROM metrics WHERE grp = {g}")
            }
            (AggTemplate::Sum, None) => {
                format!("SELECT SUM(load) WITHIN {within} FROM metrics")
            }
            (AggTemplate::Avg, Some(g)) => {
                format!("SELECT AVG(load) WITHIN {within} FROM metrics WHERE grp = {g}")
            }
            (AggTemplate::Avg, None) => {
                format!("SELECT AVG(load) WITHIN {within} FROM metrics")
            }
            (AggTemplate::Min, Some(g)) => {
                format!("SELECT MIN(load) WITHIN {within} FROM metrics WHERE grp = {g}")
            }
            (AggTemplate::Min, None) => {
                format!("SELECT MIN(load) WITHIN {within} FROM metrics")
            }
        };
        queries.push(GeneratedQuery {
            sql: with_deadline(sql, deadline),
            group,
            agg,
            within,
            deadline,
            shape: QueryShape::Scalar,
        });
    }

    ServiceWorkload {
        config: config.clone(),
        rows,
        segments,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trapp_core::executor::{QuerySession, TableOracle};

    #[test]
    fn deterministic_per_seed() {
        let c = LoadConfig::default();
        let a = generate(&c);
        let b = generate(&c);
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.sql, y.sql);
        }
        let c2 = LoadConfig {
            seed: 43,
            ..LoadConfig::default()
        };
        let d = generate(&c2);
        assert!(a
            .queries
            .iter()
            .zip(&d.queries)
            .any(|(x, y)| x.sql != y.sql));
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..5000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4] && counts[4] > 0, "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 5000);
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 700, "{counts:?}");
        }
    }

    #[test]
    fn groups_span_multiple_sources() {
        let w = generate(&LoadConfig::default());
        let per_group = w.config.rows_per_group;
        for g in 0..w.config.groups {
            let sources: std::collections::BTreeSet<SourceId> = w.rows
                [g * per_group..(g + 1) * per_group]
                .iter()
                .map(|r| r.source)
                .collect();
            assert!(sources.len() > 1, "group {g} lives on one source");
        }
    }

    #[test]
    fn shard_skew_concentrates_on_the_hot_shard() {
        let shards = 4;
        let skewed = generate(&LoadConfig {
            seed: 13,
            groups: 32,
            queries: 400,
            shard_skew: 1.0,
            skew_shards: shards,
            ..LoadConfig::default()
        });
        let hot = shard_of(0, shards);
        for q in &skewed.queries {
            let g = q.group.expect("no global queries by default");
            assert_eq!(shard_of(g as u64, shards), hot, "{}", q.sql);
        }

        // Without skew the zipf alone must leave several shards busy.
        let spread = generate(&LoadConfig {
            seed: 13,
            groups: 32,
            queries: 400,
            ..LoadConfig::default()
        });
        let shards_hit: std::collections::BTreeSet<usize> = spread
            .queries
            .iter()
            .map(|q| shard_of(q.group.unwrap() as u64, shards))
            .collect();
        assert!(shards_hit.len() > 1, "unskewed load stuck on one shard");
    }

    #[test]
    fn global_fraction_emits_group_free_queries() {
        let w = generate(&LoadConfig {
            seed: 21,
            queries: 200,
            global_fraction: 0.3,
            ..LoadConfig::default()
        });
        let globals = w.queries.iter().filter(|q| q.group.is_none()).count();
        assert!(
            (20..=120).contains(&globals),
            "expected roughly 30% global queries, got {globals}/200"
        );
        for q in w.queries.iter().filter(|q| q.group.is_none()) {
            assert!(!q.sql.contains("grp ="), "{}", q.sql);
        }
    }

    #[test]
    fn ground_truth_bounds_widen_with_the_envelope() {
        let w = generate(&LoadConfig {
            queries: 50,
            global_fraction: 0.2,
            ..LoadConfig::default()
        });
        // Point envelopes reproduce the exact ground truth.
        let points: Vec<(f64, f64)> = w
            .rows
            .iter()
            .map(|r| {
                let m = r.cells[1].as_interval().unwrap().midpoint();
                (m, m)
            })
            .collect();
        for q in &w.queries {
            let t = ground_truth(&w, q);
            assert_eq!(ground_truth_bounds(&w, q, &points), (t, t), "{}", q.sql);
        }
        // Widening every row's envelope widens (never shrinks) the bound,
        // and the exact truth stays inside it.
        let widened: Vec<(f64, f64)> = points
            .iter()
            .map(|&(lo, hi)| (lo - 3.0, hi + 3.0))
            .collect();
        for q in &w.queries {
            let t = ground_truth(&w, q);
            let (lo, hi) = ground_truth_bounds(&w, q, &widened);
            assert!(lo <= t && t <= hi, "{}: {t} outside [{lo}, {hi}]", q.sql);
        }
    }

    #[test]
    fn queries_parse_and_run() {
        let w = generate(&LoadConfig {
            queries: 40,
            ..LoadConfig::default()
        });
        // Build identical cached and master tables from the row specs and
        // run the stream with loose session defaults.
        let (mut cached, mut master) = (table(), table());
        for r in &w.rows {
            cached.insert(r.cells.clone()).unwrap();
            master.insert(r.cells.clone()).unwrap();
        }
        let mut session = QuerySession::new(cached);
        let mut oracle = TableOracle::from_table(master);
        for q in &w.queries {
            let r = session.execute_sql(&q.sql, &mut oracle).unwrap();
            assert!(r.satisfied, "{}", q.sql);
        }
    }

    /// A zero join fraction leaves historical workloads bit-stable: no
    /// segments, no shape draws perturbing the rng stream.
    #[test]
    fn zero_fractions_preserve_historical_streams() {
        let plain = generate(&LoadConfig::default());
        assert!(plain.segments.is_empty());
        assert!(plain.queries.iter().all(|q| q.shape == QueryShape::Scalar));
        assert!(plain.queries.iter().all(|q| q.deadline.is_none()));
        assert!(plain.queries.iter().all(|q| !q.sql.contains("DEADLINE")));
    }

    /// Deadline-bearing queries generate at roughly the requested rate,
    /// carry the configured budget, and render SQL the parser accepts.
    #[test]
    fn deadline_knob_emits_parsing_deadline_queries() {
        let w = generate(&LoadConfig {
            seed: 47,
            queries: 200,
            deadline_fraction: 0.5,
            deadline_ms: 75.0,
            grouped_fraction: 0.2,
            join_fraction: 0.2,
            ..LoadConfig::default()
        });
        let with_deadline = w.queries.iter().filter(|q| q.deadline.is_some()).count();
        assert!(
            (60..=140).contains(&with_deadline),
            "{with_deadline} of 200 carried a deadline"
        );
        for q in &w.queries {
            let parsed =
                trapp_sql::parse_query(&q.sql).unwrap_or_else(|e| panic!("{}: {e}", q.sql));
            assert_eq!(parsed.deadline, q.deadline, "{}", q.sql);
            if let Some(d) = q.deadline {
                assert_eq!(d, 75.0);
                assert!(q.sql.contains("DEADLINE 75"), "{}", q.sql);
            }
        }
    }

    /// Grouped and join queries generate at roughly the requested rates,
    /// parse, execute on a core session, and agree with the extended
    /// ground-truth checkers.
    #[test]
    fn grouped_and_join_queries_run_and_match_ground_truth() {
        let w = generate(&LoadConfig {
            seed: 31,
            groups: 6,
            rows_per_group: 3,
            sources: 2,
            queries: 120,
            grouped_fraction: 0.3,
            join_fraction: 0.3,
            ..LoadConfig::default()
        });
        assert_eq!(w.segments.len(), 6, "one segment per group");
        let grouped = w
            .queries
            .iter()
            .filter(|q| q.shape == QueryShape::Grouped)
            .count();
        let joins = w
            .queries
            .iter()
            .filter(|q| q.shape == QueryShape::Join)
            .count();
        assert!(
            (15..=60).contains(&grouped) && (15..=60).contains(&joins),
            "{grouped} grouped / {joins} joins of 120"
        );

        let mut catalog = trapp_storage::Catalog::new();
        let mut masters = trapp_storage::Catalog::new();
        let (mut cached, mut master) = (table(), table());
        for r in &w.rows {
            cached.insert(r.cells.clone()).unwrap();
            master.insert(r.cells.clone()).unwrap();
        }
        let (mut cseg, mut mseg) = (segments_table(), segments_table());
        for s in &w.segments {
            cseg.insert(s.cells.clone()).unwrap();
            mseg.insert(s.cells.clone()).unwrap();
        }
        catalog.add_table(cached).unwrap();
        catalog.add_table(cseg).unwrap();
        masters.add_table(master).unwrap();
        masters.add_table(mseg).unwrap();
        let mut session = QuerySession::with_catalog(catalog);
        let mut oracle = TableOracle::new(masters);

        let contains =
            |range: trapp_types::Interval, t: f64| range.lo() - 1e-9 <= t && t <= range.hi() + 1e-9;
        for q in &w.queries {
            let query = trapp_sql::parse_query(&q.sql).unwrap();
            match q.shape {
                QueryShape::Grouped => {
                    let groups = session.execute_grouped(&query, &mut oracle).unwrap();
                    let truths = ground_truth_groups(&w, q);
                    assert_eq!(groups.len(), truths.len(), "{}", q.sql);
                    for g in &groups {
                        let Value::Int(id) = g.key[0] else {
                            panic!("int group keys expected")
                        };
                        let &(_, t) = truths.iter().find(|(tg, _)| *tg == id).unwrap();
                        assert!(g.result.satisfied, "{}", q.sql);
                        assert!(
                            contains(g.result.answer.range, t),
                            "{}: group {id} truth {t} outside {}",
                            q.sql,
                            g.result.answer
                        );
                    }
                }
                QueryShape::Scalar | QueryShape::Join => {
                    let r = session.execute(&query, &mut oracle).unwrap();
                    let t = ground_truth(&w, q);
                    assert!(r.satisfied, "{}", q.sql);
                    assert!(
                        contains(r.answer.range, t),
                        "{}: truth {t} outside {}",
                        q.sql,
                        r.answer
                    );
                }
            }
        }
    }

    /// The grouped envelope checker widens with the envelope and keeps
    /// every group's exact truth inside it.
    #[test]
    fn grouped_ground_truth_bounds_cover_the_truth() {
        let w = generate(&LoadConfig {
            seed: 8,
            groups: 12,
            queries: 30,
            grouped_fraction: 1.0,
            ..LoadConfig::default()
        });
        let points: Vec<(f64, f64)> = w
            .rows
            .iter()
            .map(|r| {
                let m = r.cells[1].as_interval().unwrap().midpoint();
                (m, m)
            })
            .collect();
        let widened: Vec<(f64, f64)> = points
            .iter()
            .map(|&(lo, hi)| (lo - 3.0, hi + 3.0))
            .collect();
        for q in &w.queries {
            let truths = ground_truth_groups(&w, q);
            assert_eq!(truths.len(), w.config.groups);
            for ((g, t), (g2, (lo, hi))) in truths
                .iter()
                .zip(ground_truth_group_bounds(&w, q, &widened))
            {
                assert_eq!(*g, g2);
                assert!(lo <= *t && *t <= hi, "{}: group {g}", q.sql);
            }
        }
    }
}
