//! Network-monitoring topologies (§1.1) at configurable scale.
//!
//! Generates a network of `n` nodes and `m` links with random-walk latency /
//! bandwidth / traffic metrics, producing: the cached and master tables
//! (like Figure 2 but larger), a path for Q1/Q2-style queries, refresh
//! costs, and an *update stream* for driving `trapp-system` simulations.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trapp_storage::{ColumnDef, Schema, Table};
use trapp_types::{BoundedValue, Value, ValueType};

/// Column indexes in the generated `links` table.
pub const LATENCY: usize = 2;
/// Bandwidth column.
pub const BANDWIDTH: usize = 3;
/// Traffic column.
pub const TRAFFIC: usize = 4;

/// One generated link.
#[derive(Clone, Debug)]
pub struct Link {
    /// Source node.
    pub from: usize,
    /// Destination node.
    pub to: usize,
    /// Precise metrics `(latency ms, bandwidth Mbps, traffic units)`.
    pub metrics: [f64; 3],
    /// Cached bounds per metric.
    pub bounds: [(f64, f64); 3],
    /// Refresh cost.
    pub cost: f64,
    /// Whether the link lies on the designated monitoring path.
    pub on_path: bool,
}

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Node count.
    pub nodes: usize,
    /// Extra random links beyond the spanning path.
    pub extra_links: usize,
    /// Relative half-width of the cached bounds (e.g. 0.1 = ±10%).
    pub bound_slack: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> NetworkConfig {
        NetworkConfig {
            nodes: 50,
            extra_links: 100,
            bound_slack: 0.15,
            seed: 7,
        }
    }
}

/// A generated monitoring scenario.
#[derive(Clone, Debug)]
pub struct Network {
    /// All links; the first `nodes − 1` form the monitoring path.
    pub links: Vec<Link>,
    /// Number of nodes.
    pub nodes: usize,
}

/// Generates a topology: a path through all nodes (providing the Q1/Q2
/// scenario) plus `extra_links` random chords.
pub fn generate(config: &NetworkConfig) -> Network {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut links = Vec::with_capacity(config.nodes.saturating_sub(1) + config.extra_links);

    let mk_link = |from: usize, to: usize, on_path: bool, rng: &mut StdRng| {
        let latency = rng.gen_range(1.0..50.0);
        let bandwidth = rng.gen_range(10.0..1000.0);
        let traffic = rng.gen_range(50.0..500.0);
        let metrics = [latency, bandwidth, traffic];
        let mut bounds = [(0.0, 0.0); 3];
        for (i, &m) in metrics.iter().enumerate() {
            // The precise value sits uniformly inside its bound, matching
            // how a value drifts after the last refresh.
            let half = m * config.bound_slack;
            let off = rng.gen_range(-half..=half);
            bounds[i] = (m - half + off, m + half + off);
        }
        Link {
            from,
            to,
            metrics,
            bounds,
            cost: rng.gen_range(1..=10) as f64,
            on_path,
        }
    };

    for i in 0..config.nodes.saturating_sub(1) {
        links.push(mk_link(i, i + 1, true, &mut rng));
    }
    for _ in 0..config.extra_links {
        let from = rng.gen_range(0..config.nodes);
        let mut to = rng.gen_range(0..config.nodes);
        if to == from {
            to = (to + 1) % config.nodes;
        }
        links.push(mk_link(from, to, false, &mut rng));
    }

    Network {
        links,
        nodes: config.nodes,
    }
}

/// The `links` schema (same shape as Figure 2).
pub fn schema() -> Arc<Schema> {
    Schema::new(vec![
        ColumnDef::exact("from_node", ValueType::Int),
        ColumnDef::exact("to_node", ValueType::Int),
        ColumnDef::bounded_float("latency"),
        ColumnDef::bounded_float("bandwidth"),
        ColumnDef::bounded_float("traffic"),
        ColumnDef::exact("on_path", ValueType::Bool),
    ])
    .expect("static schema")
}

impl Network {
    /// Builds the cached (bounds) and master (precise) tables.
    pub fn build_tables(&self) -> (Table, Table) {
        let mut cache = Table::new("links", schema());
        let mut master = Table::new("links", schema());
        for l in &self.links {
            let exact_cols = |lat: BoundedValue, bw: BoundedValue, tr: BoundedValue| {
                vec![
                    BoundedValue::Exact(Value::Int(l.from as i64)),
                    BoundedValue::Exact(Value::Int(l.to as i64)),
                    lat,
                    bw,
                    tr,
                    BoundedValue::Exact(Value::Bool(l.on_path)),
                ]
            };
            cache
                .insert_with_cost(
                    exact_cols(
                        BoundedValue::bounded(l.bounds[0].0, l.bounds[0].1).expect("bound"),
                        BoundedValue::bounded(l.bounds[1].0, l.bounds[1].1).expect("bound"),
                        BoundedValue::bounded(l.bounds[2].0, l.bounds[2].1).expect("bound"),
                    ),
                    l.cost,
                )
                .expect("row");
            master
                .insert_with_cost(
                    exact_cols(
                        BoundedValue::exact_f64(l.metrics[0]).expect("value"),
                        BoundedValue::exact_f64(l.metrics[1]).expect("value"),
                        BoundedValue::exact_f64(l.metrics[2]).expect("value"),
                    ),
                    l.cost,
                )
                .expect("row");
        }
        (cache, master)
    }

    /// A random-walk update stream over link metrics:
    /// `(time, link index, metric index, new value)` tuples, `ticks` steps
    /// with `updates_per_tick` updates each.
    pub fn update_stream(
        &self,
        ticks: usize,
        updates_per_tick: usize,
        step: f64,
        seed: u64,
    ) -> Vec<(f64, usize, usize, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut current: Vec<[f64; 3]> = self.links.iter().map(|l| l.metrics).collect();
        let mut out = Vec::with_capacity(ticks * updates_per_tick);
        for t in 0..ticks {
            for _ in 0..updates_per_tick {
                let li = rng.gen_range(0..self.links.len());
                let mi = rng.gen_range(0..3usize);
                let delta = rng.gen_range(-step..=step) * current[li][mi].max(1.0);
                current[li][mi] = (current[li][mi] + delta).max(0.0);
                out.push((t as f64, li, mi, current[li][mi]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_shape() {
        let n = generate(&NetworkConfig::default());
        assert_eq!(n.links.len(), 49 + 100);
        assert_eq!(n.links.iter().filter(|l| l.on_path).count(), 49);
        for l in &n.links {
            assert_ne!(l.from, l.to, "no self-loops");
            for (i, &(lo, hi)) in l.bounds.iter().enumerate() {
                assert!(lo <= l.metrics[i] && l.metrics[i] <= hi, "{l:?}");
            }
        }
    }

    #[test]
    fn determinism() {
        let c = NetworkConfig::default();
        let a = generate(&c);
        let b = generate(&c);
        assert_eq!(a.links.len(), b.links.len());
        for (x, y) in a.links.iter().zip(&b.links) {
            assert_eq!(x.metrics, y.metrics);
            assert_eq!(x.cost, y.cost);
        }
    }

    #[test]
    fn tables_are_consistent() {
        let n = generate(&NetworkConfig {
            nodes: 10,
            extra_links: 5,
            ..NetworkConfig::default()
        });
        let (cache, master) = n.build_tables();
        assert_eq!(cache.len(), 14);
        for (tid, row) in cache.scan() {
            for col in [LATENCY, BANDWIDTH, TRAFFIC] {
                let bound = row.interval(col).unwrap();
                let v = master
                    .row(tid)
                    .unwrap()
                    .exact(col)
                    .unwrap()
                    .as_f64()
                    .unwrap();
                assert!(bound.contains(v));
            }
        }
    }

    #[test]
    fn update_stream_walks_from_current_metrics() {
        let n = generate(&NetworkConfig {
            nodes: 5,
            extra_links: 0,
            ..NetworkConfig::default()
        });
        let stream = n.update_stream(10, 3, 0.05, 1);
        assert_eq!(stream.len(), 30);
        for &(t, li, mi, v) in &stream {
            assert!(t >= 0.0 && li < n.links.len() && mi < 3);
            assert!(v >= 0.0);
        }
        // Deterministic per seed.
        assert_eq!(stream, n.update_stream(10, 3, 0.05, 1));
    }

    #[test]
    fn queries_run_against_generated_tables() {
        use trapp_core::executor::{QuerySession, TableOracle};
        let n = generate(&NetworkConfig {
            nodes: 20,
            extra_links: 30,
            ..NetworkConfig::default()
        });
        let (cache, master) = n.build_tables();
        let mut s = QuerySession::new(cache);
        let mut o = TableOracle::from_table(master);
        let r = s
            .execute_sql(
                "SELECT MIN(bandwidth) WITHIN 20 FROM links WHERE on_path = TRUE",
                &mut o,
            )
            .unwrap();
        assert!(r.satisfied);
        let r = s
            .execute_sql(
                "SELECT AVG(latency) WITHIN 1 FROM links WHERE traffic > 200",
                &mut o,
            )
            .unwrap();
        assert!(r.satisfied);
    }
}
