//! # trapp-workload
//!
//! Workload generators for the TRAPP experiments:
//!
//! * [`figure2`] — the paper's 6-link network-monitoring fixture (Figure 2)
//!   with the worked examples Q1–Q6 as an executable specification;
//! * [`stocks`] — the §5.2.1 experimental workload: intraday stock prices
//!   whose day high/low become the cached bounds and whose close is the
//!   precise value, with uniform-random integer refresh costs 1..=10.
//!   **Substitution** (documented in DESIGN.md): the paper used 90 *actual*
//!   stock prices; this generator produces seeded geometric random walks
//!   with the same high/low/close structure;
//! * [`netmon`] — larger network-monitoring topologies (the §1.1 scenario)
//!   with random-walk link metrics, path queries, and update streams for
//!   driving `trapp-system` simulations;
//! * [`loadgen`] — the closed-loop serving workload for `trapp-server`:
//!   zipfian group popularity, mixed COUNT/SUM/AVG/MIN templates, and a
//!   configurable precision-constraint mix;
//! * [`tpch`] — a TPC-H-derived three-table scenario (customer / orders /
//!   lineitem at realistic cardinality ratios) with multi-way joins,
//!   nested AND/OR predicates, grouped aggregates over join results, and
//!   engine-independent exact ground-truth checkers, sized for 100k–1M
//!   row scaling studies.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod figure2;
pub mod loadgen;
pub mod netmon;
pub mod stocks;
pub mod tpch;
