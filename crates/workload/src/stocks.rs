//! The §5.2.1 experimental workload: intraday stock prices.
//!
//! The paper: "We implemented the algorithm and ran experiments using 90
//! actual stock prices that varied highly in one day. The high and low
//! values for the day were used as the bounds `[Lᵢ, Hᵢ]`, the closing value
//! was used as the precise value `Vᵢ`, and the refresh cost `Cᵢ` for each
//! data object was set to a random number between 1 and 10."
//!
//! Substitution (see DESIGN.md): actual 2000-era intraday data is not
//! available offline, so prices follow seeded geometric random walks. The
//! properties the experiments depend on — the distribution of `high − low`
//! widths and the independent integer costs — are preserved; every run is
//! reproducible from its seed.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trapp_storage::{ColumnDef, Schema, Table};
use trapp_types::{BoundedValue, Value, ValueType};

/// One synthesized stock day.
#[derive(Clone, Debug, PartialEq)]
pub struct StockDay {
    /// Ticker-ish identifier.
    pub symbol: String,
    /// Day low (bound lower endpoint).
    pub low: f64,
    /// Day high (bound upper endpoint).
    pub high: f64,
    /// Closing price (the precise master value).
    pub close: f64,
    /// Refresh cost, uniform integer 1..=10 as in the paper.
    pub cost: f64,
}

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct StockConfig {
    /// Number of symbols (the paper uses 90).
    pub symbols: usize,
    /// Intraday steps (minutes) per symbol.
    pub steps: usize,
    /// Initial price range (uniform).
    pub price_range: (f64, f64),
    /// Per-step volatility (relative standard deviation of the walk).
    pub volatility: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StockConfig {
    fn default() -> StockConfig {
        StockConfig {
            symbols: 90,
            steps: 390, // one 6.5h trading day of minutes
            price_range: (10.0, 200.0),
            volatility: 0.002,
            seed: 42,
        }
    }
}

/// Generates one day of prices per symbol.
pub fn generate(config: &StockConfig) -> Vec<StockDay> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.symbols);
    for i in 0..config.symbols {
        let open = rng.gen_range(config.price_range.0..=config.price_range.1);
        let mut price = open;
        let mut low = open;
        let mut high = open;
        for _ in 0..config.steps {
            // Geometric step: multiplicative, symmetric in log space.
            let step: f64 = rng.gen_range(-1.0..=1.0) * config.volatility;
            price *= (1.0 + step).max(0.01);
            low = low.min(price);
            high = high.max(price);
        }
        out.push(StockDay {
            symbol: format!("SYM{i:03}"),
            low,
            high,
            close: price,
            cost: rng.gen_range(1..=10) as f64,
        });
    }
    out
}

/// The `stocks(symbol STRING, price BOUNDED)` schema.
pub fn schema() -> Arc<Schema> {
    Schema::new(vec![
        ColumnDef::exact("symbol", ValueType::Str),
        ColumnDef::bounded_float("price"),
    ])
    .expect("static schema")
}

/// Index of the `price` column.
pub const PRICE: usize = 1;

/// Builds the cached table (day-range bounds) and the master table
/// (closing prices) for a generated day.
pub fn build_tables(days: &[StockDay]) -> (Table, Table) {
    let mut cache = Table::new("stocks", schema());
    let mut master = Table::new("stocks", schema());
    for d in days {
        cache
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Str(d.symbol.clone())),
                    BoundedValue::bounded(d.low, d.high).expect("low <= high"),
                ],
                d.cost,
            )
            .expect("schema-consistent row");
        master
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Str(d.symbol.clone())),
                    BoundedValue::exact_f64(d.close).expect("finite close"),
                ],
                d.cost,
            )
            .expect("schema-consistent row");
    }
    (cache, master)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let c = StockConfig::default();
        let a = generate(&c);
        let b = generate(&c);
        assert_eq!(a, b);
        let c2 = StockConfig { seed: 43, ..c };
        assert_ne!(generate(&c2), a);
    }

    #[test]
    fn invariants_hold() {
        let days = generate(&StockConfig::default());
        assert_eq!(days.len(), 90);
        for d in &days {
            assert!(d.low <= d.close && d.close <= d.high, "{d:?}");
            assert!(d.low > 0.0);
            assert!((1.0..=10.0).contains(&d.cost));
            assert_eq!(d.cost.fract(), 0.0, "costs are integers as in the paper");
            assert!(d.high - d.low > 0.0, "a day with zero range is useless");
        }
    }

    #[test]
    fn tables_align_cache_and_master() {
        let days = generate(&StockConfig {
            symbols: 10,
            ..StockConfig::default()
        });
        let (cache, master) = build_tables(&days);
        assert_eq!(cache.len(), 10);
        for (tid, row) in cache.scan() {
            let bound = row.interval(PRICE).unwrap();
            let close = master
                .row(tid)
                .unwrap()
                .exact(PRICE)
                .unwrap()
                .as_f64()
                .unwrap();
            assert!(bound.contains(close));
            assert_eq!(cache.cost(tid).unwrap(), master.cost(tid).unwrap());
        }
    }

    #[test]
    fn widths_vary_across_symbols() {
        let days = generate(&StockConfig::default());
        let widths: Vec<f64> = days.iter().map(|d| d.high - d.low).collect();
        let min = widths.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = widths.iter().cloned().fold(0.0, f64::max);
        // The knapsack experiments need heterogeneous weights.
        assert!(max / min > 2.0, "widths too uniform: {min}..{max}");
    }
}
