//! The paper's Figure 2 fixture and worked examples Q1–Q6.
//!
//! Schema: `links(from_node INT, to_node INT, latency BOUNDED, bandwidth
//! BOUNDED, traffic BOUNDED, on_path BOOL)`, where `on_path` marks the
//! tuples {1, 2, 5, 6} forming the path N1→N2→N4→N5→N6 used by Q1/Q2.
//! Per-tuple refresh costs come from the paper's `refresh cost` column.

use std::sync::Arc;

use trapp_storage::{ColumnDef, Schema, Table};
use trapp_types::{BoundedValue, Value, ValueType};

/// Index of the `latency` column.
pub const LATENCY: usize = 2;
/// Index of the `bandwidth` column.
pub const BANDWIDTH: usize = 3;
/// Index of the `traffic` column.
pub const TRAFFIC: usize = 4;

/// One Figure 2 row: `(from, to, latency bound, bandwidth bound,
/// traffic bound, cost, on_path)`.
pub type FixtureRow = (i64, i64, (f64, f64), (f64, f64), (f64, f64), f64, bool);

/// The cached rows of Figure 2.
pub const ROWS: [FixtureRow; 6] = [
    (1, 2, (2.0, 4.0), (60.0, 70.0), (95.0, 105.0), 3.0, true),
    (2, 4, (5.0, 7.0), (45.0, 60.0), (110.0, 120.0), 6.0, true),
    (3, 4, (12.0, 16.0), (55.0, 70.0), (95.0, 110.0), 6.0, false),
    (2, 3, (9.0, 11.0), (65.0, 70.0), (120.0, 145.0), 8.0, false),
    (4, 5, (8.0, 11.0), (40.0, 55.0), (90.0, 110.0), 4.0, true),
    (5, 6, (4.0, 6.0), (45.0, 60.0), (90.0, 105.0), 2.0, true),
];

/// `(latency, bandwidth, traffic)` — the precise master values of Figure 2.
pub const PRECISE: [(f64, f64, f64); 6] = [
    (3.0, 61.0, 98.0),
    (7.0, 53.0, 116.0),
    (13.0, 62.0, 105.0),
    (9.0, 68.0, 127.0),
    (11.0, 50.0, 95.0),
    (5.0, 45.0, 103.0),
];

/// The `links` schema.
pub fn schema() -> Arc<Schema> {
    Schema::new(vec![
        ColumnDef::exact("from_node", ValueType::Int),
        ColumnDef::exact("to_node", ValueType::Int),
        ColumnDef::bounded_float("latency"),
        ColumnDef::bounded_float("bandwidth"),
        ColumnDef::bounded_float("traffic"),
        ColumnDef::exact("on_path", ValueType::Bool),
    ])
    .expect("static schema")
}

/// The cached table (bounds).
pub fn links_table() -> Table {
    let mut t = Table::new("links", schema());
    for (from, to, lat, bw, tr, cost, on_path) in ROWS {
        t.insert_with_cost(
            vec![
                BoundedValue::Exact(Value::Int(from)),
                BoundedValue::Exact(Value::Int(to)),
                BoundedValue::bounded(lat.0, lat.1).expect("static bound"),
                BoundedValue::bounded(bw.0, bw.1).expect("static bound"),
                BoundedValue::bounded(tr.0, tr.1).expect("static bound"),
                BoundedValue::Exact(Value::Bool(on_path)),
            ],
            cost,
        )
        .expect("static row");
    }
    t
}

/// The master table (precise values).
pub fn master_table() -> Table {
    let mut t = Table::new("links", schema());
    for (i, (from, to, _, _, _, cost, on_path)) in ROWS.into_iter().enumerate() {
        let (lat, bw, tr) = PRECISE[i];
        t.insert_with_cost(
            vec![
                BoundedValue::Exact(Value::Int(from)),
                BoundedValue::Exact(Value::Int(to)),
                BoundedValue::exact_f64(lat).expect("static value"),
                BoundedValue::exact_f64(bw).expect("static value"),
                BoundedValue::exact_f64(tr).expect("static value"),
                BoundedValue::Exact(Value::Bool(on_path)),
            ],
            cost,
        )
        .expect("static row");
    }
    t
}

/// One worked example from the paper: the query text, its description, and
/// the expected initial/final bounded answers at the stated `R`.
#[derive(Clone, Debug)]
pub struct WorkedExample {
    /// Identifier (Q1–Q6).
    pub id: &'static str,
    /// What the query asks (§1.1).
    pub description: &'static str,
    /// TRAPP/AG SQL.
    pub sql: &'static str,
    /// Expected cache-only bounded answer.
    pub expect_initial: (f64, f64),
    /// Expected bounded answer after CHOOSE_REFRESH + refresh.
    pub expect_final: (f64, f64),
    /// Expected tuples refreshed (1-based Figure 2 row numbers).
    pub expect_refreshed: &'static [u64],
}

/// The six worked examples of the paper, with the answers it reports.
pub fn worked_examples() -> Vec<WorkedExample> {
    vec![
        WorkedExample {
            id: "Q1",
            description: "bottleneck (minimum bandwidth) along the path",
            sql: "SELECT MIN(bandwidth) WITHIN 10 FROM links WHERE on_path = TRUE",
            expect_initial: (40.0, 55.0),
            expect_final: (45.0, 50.0),
            expect_refreshed: &[5],
        },
        WorkedExample {
            id: "Q2",
            description: "total latency along the path",
            sql: "SELECT SUM(latency) WITHIN 5 FROM links WHERE on_path = TRUE",
            expect_initial: (19.0, 28.0),
            expect_final: (21.0, 26.0),
            expect_refreshed: &[1, 6],
        },
        WorkedExample {
            id: "Q3",
            description: "average traffic level in the network",
            sql: "SELECT AVG(traffic) WITHIN 10 FROM links",
            expect_initial: (100.0, 695.0 / 6.0),
            expect_final: (103.0, 113.0),
            expect_refreshed: &[5, 6],
        },
        WorkedExample {
            id: "Q4",
            description: "minimum traffic on fast links (bw > 50, lat < 10)",
            sql: "SELECT MIN(traffic) WITHIN 10 FROM links \
                  WHERE bandwidth > 50 AND latency < 10",
            expect_initial: (90.0, 105.0),
            expect_final: (95.0, 105.0),
            expect_refreshed: &[5, 6],
        },
        WorkedExample {
            id: "Q5",
            description: "number of high-latency links (lat > 10)",
            sql: "SELECT COUNT(*) WITHIN 1 FROM links WHERE latency > 10",
            expect_initial: (1.0, 3.0),
            expect_final: (2.0, 3.0),
            expect_refreshed: &[5],
        },
        WorkedExample {
            id: "Q6",
            description: "average latency of high-traffic links (traffic > 100)",
            sql: "SELECT AVG(latency) WITHIN 2 FROM links WHERE traffic > 100",
            expect_initial: (5.0, 34.0 / 3.0),
            expect_final: (8.0, 9.0),
            expect_refreshed: &[1, 3, 5, 6],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use trapp_core::{QuerySession, SolverStrategy, TableOracle};

    /// The fixture is an executable specification: every worked example
    /// reproduces the paper's numbers end-to-end.
    #[test]
    fn all_worked_examples_reproduce() {
        for ex in worked_examples() {
            let mut session = QuerySession::new(links_table());
            session.config.strategy = SolverStrategy::Exact;
            let mut oracle = TableOracle::from_table(master_table());
            let r = session.execute_sql(ex.sql, &mut oracle).unwrap();
            let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
            assert!(
                close(r.initial_answer.range.lo(), ex.expect_initial.0)
                    && close(r.initial_answer.range.hi(), ex.expect_initial.1),
                "{}: initial {} vs expected {:?}",
                ex.id,
                r.initial_answer,
                ex.expect_initial
            );
            assert!(
                close(r.answer.range.lo(), ex.expect_final.0)
                    && close(r.answer.range.hi(), ex.expect_final.1),
                "{}: final {} vs expected {:?}",
                ex.id,
                r.answer,
                ex.expect_final
            );
            let refreshed: Vec<u64> = r.refreshed.iter().map(|(_, t)| t.raw()).collect();
            assert_eq!(refreshed, ex.expect_refreshed, "{}: refresh set", ex.id);
            assert!(r.satisfied, "{}", ex.id);
        }
    }

    #[test]
    fn master_values_lie_within_cached_bounds() {
        let cache = links_table();
        let master = master_table();
        for (tid, row) in cache.scan() {
            for col in [LATENCY, BANDWIDTH, TRAFFIC] {
                let bound = row.interval(col).unwrap();
                let precise = master
                    .row(tid)
                    .unwrap()
                    .exact(col)
                    .unwrap()
                    .as_f64()
                    .unwrap();
                assert!(bound.contains(precise), "{tid} col {col}");
            }
        }
    }
}
