//! Greedy knapsack heuristics.

use crate::{finish, Instance, Solution};

/// Density greedy with best-single-item fallback.
///
/// Items are considered in non-increasing `profit/weight` order (zero-weight
/// items first — infinite density); each is taken if it still fits. The
/// result is compared against the single best-fitting item, which upgrades
/// plain greedy from arbitrarily bad to a ½-approximation — the classic
/// argument: `greedy + first_rejected ≥ fractional-OPT ≥ OPT`, so
/// `max(greedy, best_single) ≥ OPT/2`.
pub fn solve_density(inst: &Instance) -> Solution {
    let items = inst.items();
    let cap = inst.capacity();
    let mut order: Vec<usize> = (0..items.len())
        .filter(|&i| items[i].weight <= cap)
        .collect();
    order.sort_by(|&a, &b| {
        density(items[a].profit, items[a].weight)
            .total_cmp(&density(items[b].profit, items[b].weight))
            .reverse()
            .then(a.cmp(&b))
    });

    let mut chosen = Vec::new();
    let mut used = 0.0;
    for &i in &order {
        let w = items[i].weight;
        if used + w <= cap {
            used += w;
            chosen.push(i);
        }
    }
    let greedy = finish(items, chosen, false);

    // Best single item that fits.
    let best_single = (0..items.len())
        .filter(|&i| items[i].weight <= cap)
        .max_by(|&a, &b| items[a].profit.total_cmp(&items[b].profit));
    if let Some(b) = best_single {
        if items[b].profit > greedy.profit {
            return finish(items, vec![b], false);
        }
    }
    greedy
}

/// Weight-ascending greedy: "place objects in the knapsack in order of
/// increasing weight until the knapsack cannot hold any more" (§5.2). With
/// uniform profits this is *optimal*: any solution is characterized only by
/// how many items it holds, and taking lightest-first maximizes the count.
///
/// We use the refinement of continuing past the first non-fit (skip and try
/// the next), which never hurts; with uniform profits the first non-fit
/// implies all later (heavier) items also fail, so behaviour is identical.
pub fn solve_by_weight(inst: &Instance) -> Solution {
    let items = inst.items();
    let cap = inst.capacity();
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| items[a].weight.total_cmp(&items[b].weight).then(a.cmp(&b)));
    let mut chosen = Vec::new();
    let mut used = 0.0;
    for &i in &order {
        let w = items[i].weight;
        if used + w <= cap {
            used += w;
            chosen.push(i);
        }
    }
    // Optimal only under uniform profits; report optimal=true only then.
    let uniform = items.windows(2).all(|w| w[0].profit == w[1].profit);
    finish(items, chosen, uniform)
}

fn density(profit: f64, weight: f64) -> f64 {
    if weight == 0.0 {
        f64::INFINITY
    } else {
        profit / weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Item;

    fn inst(items: &[(f64, f64)], cap: f64) -> Instance {
        Instance::new(
            items
                .iter()
                .map(|&(p, w)| Item::new(p, w).unwrap())
                .collect(),
            cap,
        )
        .unwrap()
    }

    #[test]
    fn density_prefers_efficient_items() {
        // item 0: density 10, item 1: density 1. Capacity fits only one.
        let i = inst(&[(10.0, 1.0), (10.0, 10.0)], 1.0);
        let s = i.solve_greedy_density();
        assert_eq!(s.chosen, vec![0]);
        assert_eq!(s.profit, 10.0);
    }

    #[test]
    fn single_item_fallback_beats_bad_greedy() {
        // Greedy takes the dense small item (profit 2, weight 1) and then the
        // big one (profit 100, weight 100) no longer fits capacity 100.
        let i = inst(&[(2.0, 1.0), (100.0, 100.0)], 100.0);
        let s = i.solve_greedy_density();
        assert_eq!(s.profit, 100.0);
        assert_eq!(s.chosen, vec![1]);
    }

    #[test]
    fn zero_weight_items_always_ride() {
        let i = inst(&[(5.0, 0.0), (1.0, 0.0), (3.0, 2.0)], 0.0);
        let s = i.solve_greedy_density();
        assert_eq!(s.chosen, vec![0, 1]);
        assert_eq!(s.profit, 6.0);
        assert_eq!(s.weight, 0.0);
    }

    #[test]
    fn by_weight_takes_lightest_first() {
        let i = inst(&[(1.0, 5.0), (1.0, 1.0), (1.0, 3.0), (1.0, 4.0)], 8.0);
        let s = i.solve_greedy_by_weight();
        // weights sorted: 1, 3, 4, 5 → take 1+3+4=8.
        assert_eq!(s.chosen, vec![1, 2, 3]);
        assert_eq!(s.weight, 8.0);
        assert!(s.optimal); // uniform profits
    }

    #[test]
    fn by_weight_not_marked_optimal_for_nonuniform() {
        let i = inst(&[(1.0, 5.0), (9.0, 6.0)], 6.0);
        let s = i.solve_greedy_by_weight();
        assert!(!s.optimal);
        assert_eq!(s.chosen, vec![0]); // lightest-first, not best
    }

    #[test]
    fn never_overfills_exactly() {
        // Weights that sum to capacity + tiny epsilon must not all fit.
        let i = inst(&[(1.0, 0.3), (1.0, 0.3), (1.0, 0.4000000001)], 1.0);
        let s = i.solve_greedy_by_weight();
        assert!(s.weight <= 1.0);
        assert_eq!(s.chosen.len(), 2);
    }

    #[test]
    fn empty_and_zero_capacity() {
        let i = inst(&[], 5.0);
        assert_eq!(i.solve_greedy_density().profit, 0.0);
        let i = inst(&[(3.0, 1.0)], 0.0);
        assert!(i.solve_greedy_density().chosen.is_empty());
    }
}
