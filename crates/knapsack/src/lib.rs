//! # trapp-knapsack
//!
//! 0/1 knapsack solvers for TRAPP's CHOOSE_REFRESH algorithms.
//!
//! §5.2 of the paper reduces "choose the cheapest set of tuples to refresh
//! for a SUM query with precision constraint R" to 0/1 knapsack: the items
//! are the tuples *not* refreshed, profit `Pᵢ = Cᵢ` (the refresh cost you
//! avoid paying), weight `Wᵢ = Hᵢ − Lᵢ` (the uncertainty you keep), and
//! capacity `M = R`. AVG with a predicate (Appendix F) produces the same
//! structure with adjusted weights and capacity.
//!
//! Weights are **real numbers** (bound widths), so the textbook
//! integer-weight DP does not apply. This crate provides the solver
//! portfolio the paper calls for:
//!
//! * [`Instance::solve_greedy_by_weight`] — the uniform-cost special case
//!   (§5.2): take items in increasing weight order; optimal when all profits
//!   are equal, `O(n log n)` (sub-linear with a width index upstream).
//! * [`Instance::solve_greedy_density`] — classic density greedy with the
//!   best-single-item fallback; a ½-approximation used as the FPTAS seed.
//! * [`Instance::solve_exact`] — branch-and-bound with the Dantzig
//!   (fractional-relaxation) upper bound; exact for the modest `n` of the
//!   paper's experiments, with a node budget for safety.
//! * [`Instance::solve_fptas`] — the Ibarra–Kim approximation scheme
//!   (\[IK75\]) with profit scaling and large/small item separation, profit
//!   ≥ `(1 − ε)·OPT` in `O(n log n) + O((3/ε)²·n)` time — the bound quoted
//!   in §5.2.
//!
//! All solvers share two TRAPP-critical properties:
//!
//! 1. **Never overfill**: chosen weight ≤ capacity holds *exactly* (strict
//!    floating-point comparison, no epsilon slack), because the complement
//!    set's residual uncertainty is what guarantees the user's precision
//!    constraint.
//! 2. **Zero-weight items ride free**: already-exact tuples are always kept
//!    in the knapsack.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod branch_bound;
mod dp;
mod fptas;
mod greedy;

use std::fmt;

/// One knapsack item.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Item {
    /// Profit gained if the item is placed in the knapsack (`≥ 0`).
    pub profit: f64,
    /// Capacity consumed (`≥ 0`; real-valued).
    pub weight: f64,
}

impl Item {
    /// Creates an item, validating non-negativity and rejecting NaN.
    pub fn new(profit: f64, weight: f64) -> Result<Item, KnapsackError> {
        if profit.is_nan() || weight.is_nan() {
            return Err(KnapsackError::NanInput);
        }
        if profit < 0.0 {
            return Err(KnapsackError::NegativeProfit(profit));
        }
        if weight < 0.0 {
            return Err(KnapsackError::NegativeWeight(weight));
        }
        Ok(Item { profit, weight })
    }
}

/// Errors from instance construction or solving.
#[derive(Clone, Debug, PartialEq)]
pub enum KnapsackError {
    /// NaN profit, weight, or capacity.
    NanInput,
    /// A profit was negative.
    NegativeProfit(f64),
    /// A weight was negative.
    NegativeWeight(f64),
    /// Capacity was negative.
    NegativeCapacity(f64),
    /// The ε parameter was outside `(0, 1)`.
    BadEpsilon(f64),
}

impl fmt::Display for KnapsackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnapsackError::NanInput => write!(f, "knapsack inputs must not be NaN"),
            KnapsackError::NegativeProfit(p) => write!(f, "negative profit: {p}"),
            KnapsackError::NegativeWeight(w) => write!(f, "negative weight: {w}"),
            KnapsackError::NegativeCapacity(c) => write!(f, "negative capacity: {c}"),
            KnapsackError::BadEpsilon(e) => {
                write!(f, "epsilon must lie in (0, 1), got {e}")
            }
        }
    }
}

impl std::error::Error for KnapsackError {}

/// A solved knapsack: which item indices were chosen, and their totals.
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    /// Indices (into the instance's item list) of chosen items, sorted.
    pub chosen: Vec<usize>,
    /// Total profit of the chosen set.
    pub profit: f64,
    /// Total weight of the chosen set (`≤ capacity`, exactly).
    pub weight: f64,
    /// `true` if the solver proves optimality (exact solvers within node
    /// budget); approximation schemes report `false`.
    pub optimal: bool,
}

impl Solution {
    /// The empty solution (nothing chosen; optimal when nothing fits).
    pub fn empty() -> Solution {
        Solution {
            chosen: Vec::new(),
            profit: 0.0,
            weight: 0.0,
            optimal: true,
        }
    }

    /// The complement of the chosen set over `n` items — for TRAPP, the
    /// tuples that *must be refreshed*.
    pub fn complement(&self, n: usize) -> Vec<usize> {
        let mut in_set = vec![false; n];
        for &i in &self.chosen {
            in_set[i] = true;
        }
        (0..n).filter(|&i| !in_set[i]).collect()
    }
}

/// A knapsack instance: items plus capacity.
#[derive(Clone, Debug)]
pub struct Instance {
    items: Vec<Item>,
    capacity: f64,
}

impl Instance {
    /// Creates an instance, validating capacity.
    pub fn new(items: Vec<Item>, capacity: f64) -> Result<Instance, KnapsackError> {
        if capacity.is_nan() {
            return Err(KnapsackError::NanInput);
        }
        if capacity < 0.0 {
            return Err(KnapsackError::NegativeCapacity(capacity));
        }
        Ok(Instance { items, capacity })
    }

    /// The items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// The capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Exact branch-and-bound solve (Dantzig bound). `node_budget` caps the
    /// search; on exhaustion the best solution found so far is returned with
    /// `optimal = false`. [`Instance::solve_exact`] uses a generous default.
    pub fn solve_exact_with_budget(&self, node_budget: u64) -> Solution {
        branch_bound::solve(self, node_budget)
    }

    /// Exact branch-and-bound solve with a default node budget of 50M
    /// (ample for the paper-scale instances; see
    /// [`Instance::solve_exact_with_budget`] to tune).
    pub fn solve_exact(&self) -> Solution {
        self.solve_exact_with_budget(50_000_000)
    }

    /// The Ibarra–Kim FPTAS: profit ≥ `(1 − ε)·OPT`, never overfilling.
    pub fn solve_fptas(&self, epsilon: f64) -> Result<Solution, KnapsackError> {
        if epsilon.is_nan() || !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(KnapsackError::BadEpsilon(epsilon));
        }
        Ok(fptas::solve(self, epsilon))
    }

    /// Density greedy with best-single-item fallback (½-approximation).
    pub fn solve_greedy_density(&self) -> Solution {
        greedy::solve_density(self)
    }

    /// Weight-ascending greedy — optimal for uniform profits (§5.2's
    /// special case). Does not require profits to actually be uniform, but
    /// only then is the result optimal.
    pub fn solve_greedy_by_weight(&self) -> Solution {
        greedy::solve_by_weight(self)
    }

    /// Exact dynamic program over *integer* profits. Profits are rounded
    /// **down** to integers — exact when all profits are integral (as in the
    /// paper's cost model of uniform random integer costs 1..=10).
    pub fn solve_dp_by_profit(&self) -> Solution {
        dp::solve_integral_profits(self)
    }

    /// Sum of all profits (an upper bound on any solution).
    pub fn total_profit(&self) -> f64 {
        self.items.iter().map(|i| i.profit).sum()
    }

    /// Sum of all weights.
    pub fn total_weight(&self) -> f64 {
        self.items.iter().map(|i| i.weight).sum()
    }
}

/// Builds the final [`Solution`] from chosen indices, recomputing totals in
/// index order for determinism.
pub(crate) fn finish(items: &[Item], mut chosen: Vec<usize>, optimal: bool) -> Solution {
    chosen.sort_unstable();
    chosen.dedup();
    let mut profit = 0.0;
    let mut weight = 0.0;
    for &i in &chosen {
        profit += items[i].profit;
        weight += items[i].weight;
    }
    Solution {
        chosen,
        profit,
        weight,
        optimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_validation() {
        assert!(Item::new(1.0, 1.0).is_ok());
        assert!(Item::new(-1.0, 1.0).is_err());
        assert!(Item::new(1.0, -1.0).is_err());
        assert!(Item::new(f64::NAN, 1.0).is_err());
        assert!(Instance::new(vec![], -1.0).is_err());
        assert!(Instance::new(vec![], f64::NAN).is_err());
    }

    #[test]
    fn complement_is_the_refresh_set() {
        let sol = Solution {
            chosen: vec![0, 2],
            profit: 0.0,
            weight: 0.0,
            optimal: true,
        };
        assert_eq!(sol.complement(4), vec![1, 3]);
        assert_eq!(Solution::empty().complement(2), vec![0, 1]);
    }

    #[test]
    fn epsilon_validation() {
        let inst = Instance::new(vec![], 1.0).unwrap();
        assert!(inst.solve_fptas(0.0).is_err());
        assert!(inst.solve_fptas(1.0).is_err());
        assert!(inst.solve_fptas(f64::NAN).is_err());
        assert!(inst.solve_fptas(0.1).is_ok());
    }
}
