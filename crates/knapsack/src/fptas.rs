//! The Ibarra–Kim fully polynomial-time approximation scheme ([IK75]).
//!
//! §5.2 of the TRAPP paper uses this algorithm for CHOOSE_REFRESH on SUM:
//! "an approximation algorithm exists that, in polynomial time, finds a
//! solution having total profit that is within a fraction ε of optimal …
//! The running time of the algorithm is O(n·log n) + O((3/ε)²·n)."
//!
//! The structure (with `δ = ε/3`):
//!
//! 1. **Seed**: density greedy with single-item fallback gives `P₀` with
//!    `OPT/2 ≤ P₀ ≤ OPT`.
//! 2. **Split**: items with profit `> T = δ·P₀` are *large*, the rest
//!    *small*. Any feasible solution holds at most `2/δ` large items.
//! 3. **Scale**: large profits are scaled by `K = δ²·P₀` and floored; total
//!    scaled profit of any feasible solution is at most
//!    `Q = ⌊2P₀/K⌋ = ⌊2/δ²⌋`, so the profit-indexed DP table has
//!    `O((3/ε)²)` entries — the paper's quoted factor.
//! 4. **Combine**: for every reachable DP state, greedily fill the residual
//!    capacity with small items by density; return the best combination.
//!
//! Error accounting: scaling loses `< K` per large item (`≤ 2/δ` of them →
//! `≤ 2δ·P₀`), and the greedy small fill loses less than one small item
//! (`≤ T = δ·P₀`); in total `≤ 3δ·OPT = ε·OPT`.

use crate::dp::{profit_dp, reconstruct};
use crate::{branch_bound, finish, Instance, Solution};

/// DP-table guard: beyond this many states the requested ε is so small that
/// exact branch-and-bound is the better tool; its answer trivially satisfies
/// the `(1 − ε)` guarantee when optimal.
const MAX_TABLE: usize = 2_000_000;

pub(crate) fn solve(inst: &Instance, epsilon: f64) -> Solution {
    let cap = inst.capacity();
    let items = inst.items();

    let mut free: Vec<usize> = Vec::new();
    let mut active: Vec<usize> = Vec::new();
    for (i, it) in items.iter().enumerate() {
        if it.weight == 0.0 {
            free.push(i);
        } else if it.weight <= cap {
            active.push(i);
        }
    }
    if active.is_empty() {
        return finish(items, free, true);
    }

    // 1. Greedy seed on the active items.
    let greedy = {
        let sub = Instance {
            items: active.iter().map(|&i| items[i]).collect(),
            capacity: cap,
        };
        sub.solve_greedy_density()
    };
    let p0 = greedy.profit;
    if p0 <= 0.0 {
        // All active profits are zero; the empty active set is optimal.
        return finish(items, free, true);
    }

    let delta = epsilon / 3.0;
    let threshold = delta * p0;
    let scale = delta * delta * p0;
    let qmax = (2.0 / (delta * delta)).floor() as usize;
    if qmax > MAX_TABLE {
        let bb = branch_bound::solve(inst, 50_000_000);
        if bb.optimal {
            return bb;
        }
        // Budget exhausted: fall through to the scheme with a coarser table.
    }
    let qmax = qmax.min(MAX_TABLE);

    let mut large: Vec<usize> = Vec::new();
    let mut small: Vec<usize> = Vec::new();
    for &i in &active {
        if items[i].profit > threshold {
            large.push(i);
        } else {
            small.push(i);
        }
    }
    // Small items in density order for the greedy fill.
    small.sort_by(|&a, &b| {
        let da = items[a].profit / items[a].weight;
        let db = items[b].profit / items[b].weight;
        db.total_cmp(&da).then(a.cmp(&b))
    });

    // 3. Profit-scaled DP over the large items.
    let scaled: Vec<u64> = large
        .iter()
        .map(|&i| ((items[i].profit / scale).floor() as u64).min(qmax as u64))
        .collect();
    let weights: Vec<f64> = large.iter().map(|&i| items[i].weight).collect();
    let (min_w, take) = profit_dp(&scaled, &weights, qmax);

    // 4. For each reachable state, fill with small items; track the best
    //    candidate by the (q·K + small-fill) proxy the analysis bounds.
    let mut best_score = f64::NEG_INFINITY;
    let mut best_q = 0usize;
    let mut best_small: Vec<usize> = Vec::new();
    let mut small_buf: Vec<usize> = Vec::new();
    for (q, &w) in min_w.iter().enumerate() {
        if w > cap {
            continue;
        }
        small_buf.clear();
        let mut room = cap - w;
        let mut small_profit = 0.0;
        for &i in &small {
            if items[i].weight <= room {
                room -= items[i].weight;
                small_profit += items[i].profit;
                small_buf.push(i);
            }
        }
        let score = q as f64 * scale + small_profit;
        if score > best_score {
            best_score = score;
            best_q = q;
            best_small = small_buf.clone();
        }
    }

    let mut chosen: Vec<usize> = reconstruct(&scaled, &take, best_q)
        .into_iter()
        .map(|k| large[k])
        .collect();
    chosen.extend_from_slice(&best_small);

    let mut candidate = finish(items, chosen, false);
    // Insurance: the greedy solution is sometimes better in actual profit
    // (the DP optimizes floored profits); keep whichever is best.
    let greedy_global: Vec<usize> = greedy.chosen.iter().map(|&k| active[k]).collect();
    let greedy_candidate = finish(items, greedy_global, false);
    if greedy_candidate.profit > candidate.profit {
        candidate = greedy_candidate;
    }
    candidate.chosen.extend_from_slice(&free);
    finish(items, candidate.chosen, false)
}

#[cfg(test)]
mod tests {
    use crate::{Instance, Item};

    fn inst(items: &[(f64, f64)], cap: f64) -> Instance {
        Instance::new(
            items
                .iter()
                .map(|&(p, w)| Item::new(p, w).unwrap())
                .collect(),
            cap,
        )
        .unwrap()
    }

    /// Deterministic pseudo-random instance generator (xorshift).
    fn random_instance(seed: u64, n: usize) -> (Vec<(f64, f64)>, f64) {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            (s.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let items: Vec<(f64, f64)> = (0..n)
            .map(|_| (1.0 + 9.0 * next(), 0.5 + 4.5 * next()))
            .collect();
        let total_w: f64 = items.iter().map(|i| i.1).sum();
        let cap = total_w * 0.4;
        (items, cap)
    }

    #[test]
    fn fptas_respects_guarantee_across_epsilons() {
        for seed in 1..=10u64 {
            let (items, cap) = random_instance(seed, 18);
            let i = inst(&items, cap);
            let exact = i.solve_exact();
            assert!(exact.optimal);
            for eps in [0.01, 0.05, 0.1, 0.3, 0.5] {
                let approx = i.solve_fptas(eps).unwrap();
                assert!(
                    approx.profit >= (1.0 - eps) * exact.profit - 1e-9,
                    "seed {seed} eps {eps}: {} < (1-eps)*{}",
                    approx.profit,
                    exact.profit
                );
                assert!(approx.weight <= cap, "seed {seed} eps {eps}: overfilled");
            }
        }
    }

    #[test]
    fn smaller_epsilon_never_hurts_much() {
        let (items, cap) = random_instance(42, 60);
        let i = inst(&items, cap);
        let coarse = i.solve_fptas(0.5).unwrap();
        let fine = i.solve_fptas(0.02).unwrap();
        // Not strictly monotone in theory, but the fine solution must meet
        // its own tighter guarantee, so it can't be much worse.
        assert!(fine.profit >= coarse.profit * 0.95);
    }

    #[test]
    fn handles_degenerate_instances() {
        // Empty.
        let i = inst(&[], 5.0);
        assert_eq!(i.solve_fptas(0.1).unwrap().profit, 0.0);
        // Nothing fits.
        let i = inst(&[(5.0, 10.0)], 1.0);
        let s = i.solve_fptas(0.1).unwrap();
        assert!(s.chosen.is_empty());
        // Zero-profit items only.
        let i = inst(&[(0.0, 1.0), (0.0, 2.0)], 10.0);
        assert_eq!(i.solve_fptas(0.1).unwrap().profit, 0.0);
        // Zero-weight items ride free.
        let i = inst(&[(3.0, 0.0), (1.0, 5.0)], 1.0);
        let s = i.solve_fptas(0.1).unwrap();
        assert_eq!(s.profit, 3.0);
    }

    #[test]
    fn paper_q2_is_solved_well_even_approximately() {
        let i = inst(&[(3.0, 2.0), (6.0, 2.0), (4.0, 3.0), (2.0, 2.0)], 5.0);
        let s = i.solve_fptas(0.1).unwrap();
        // OPT = 10; (1−0.1)·10 = 9 ⇒ the approximation must find ≥ 9,
        // and with these values only the optimum reaches that.
        assert!(s.profit >= 9.0);
        assert!(s.weight <= 5.0);
    }
}
