//! Exact dynamic programming over integer profits.
//!
//! The classic `O(n · ΣP)` profit-indexed DP: `min_w[q]` is the minimum
//! weight achieving scaled profit exactly `q`. Real-valued *weights* are fine
//! here (they only participate in min/+), which is what makes this DP the
//! workhorse inside the FPTAS. As a public solver it is exact when all
//! profits are integers — true for the paper's experimental cost model
//! (uniform integer costs 1..=10).

use crate::{branch_bound, finish, Instance, Solution};

/// Bit-matrix recording, per (item-layer, profit) state, whether the item
/// was taken — needed to reconstruct the chosen set from the DP.
pub(crate) struct TakeBits {
    bits: Vec<u64>,
    cols: usize,
}

impl TakeBits {
    pub(crate) fn new(rows: usize, cols: usize) -> TakeBits {
        let words_per_row = cols.div_ceil(64);
        TakeBits {
            bits: vec![0u64; rows * words_per_row],
            cols: words_per_row,
        }
    }

    #[inline]
    pub(crate) fn set(&mut self, row: usize, col: usize) {
        let idx = row * self.cols + col / 64;
        self.bits[idx] |= 1u64 << (col % 64);
    }

    #[inline]
    pub(crate) fn get(&self, row: usize, col: usize) -> bool {
        let idx = row * self.cols + col / 64;
        self.bits[idx] & (1u64 << (col % 64)) != 0
    }
}

/// Profit-indexed 0/1 knapsack DP over pre-scaled integer profits.
///
/// `scaled[i]` is item `i`'s integer profit; `weights[i]` its real weight.
/// Returns `(min_w, take)` where `min_w[q]` is the minimal weight reaching
/// scaled profit `q` (`f64::INFINITY` if unreachable).
pub(crate) fn profit_dp(scaled: &[u64], weights: &[f64], qmax: usize) -> (Vec<f64>, TakeBits) {
    let n = scaled.len();
    let mut min_w = vec![f64::INFINITY; qmax + 1];
    min_w[0] = 0.0;
    let mut take = TakeBits::new(n, qmax + 1);
    for i in 0..n {
        let qi = scaled[i] as usize;
        if qi == 0 {
            // Zero-profit items never improve any state (weights ≥ 0).
            continue;
        }
        let wi = weights[i];
        // Descend so each item is used at most once.
        for q in (qi..=qmax).rev() {
            let cand = min_w[q - qi] + wi;
            if cand < min_w[q] {
                min_w[q] = cand;
                take.set(i, q);
            }
        }
    }
    (min_w, take)
}

/// Walks the take-bits back from state `q`, returning item indices.
pub(crate) fn reconstruct(scaled: &[u64], take: &TakeBits, mut q: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for i in (0..scaled.len()).rev() {
        if q == 0 {
            break;
        }
        if take.get(i, q) {
            out.push(i);
            q -= scaled[i] as usize;
        }
    }
    debug_assert_eq!(q, 0, "DP reconstruction must land at profit 0");
    out.reverse();
    out
}

/// Threshold above which the profit table would be unreasonably large and
/// branch-and-bound takes over.
const MAX_TABLE: usize = 5_000_000;

/// Exact solve for integral profits; see [`Instance::solve_dp_by_profit`].
pub(crate) fn solve_integral_profits(inst: &Instance) -> Solution {
    let cap = inst.capacity();
    let items = inst.items();

    let mut free: Vec<usize> = Vec::new();
    let mut active: Vec<usize> = Vec::new();
    for (i, it) in items.iter().enumerate() {
        if it.weight == 0.0 {
            free.push(i);
        } else if it.weight <= cap {
            active.push(i);
        }
    }

    let scaled: Vec<u64> = active.iter().map(|&i| items[i].profit as u64).collect();
    let qmax: usize = scaled.iter().map(|&q| q as usize).sum();
    if qmax > MAX_TABLE {
        return branch_bound::solve(inst, 50_000_000);
    }

    let weights: Vec<f64> = active.iter().map(|&i| items[i].weight).collect();
    let (min_w, take) = profit_dp(&scaled, &weights, qmax);

    let best_q = (0..=qmax).rev().find(|&q| min_w[q] <= cap).unwrap_or(0);
    let mut chosen: Vec<usize> = reconstruct(&scaled, &take, best_q)
        .into_iter()
        .map(|k| active[k])
        .collect();
    chosen.extend_from_slice(&free);
    // Exactness holds when profits were integral to begin with.
    let integral = active.iter().all(|&i| items[i].profit.fract() == 0.0);
    finish(items, chosen, integral)
}

#[cfg(test)]
mod tests {
    use crate::{Instance, Item};

    fn inst(items: &[(f64, f64)], cap: f64) -> Instance {
        Instance::new(
            items
                .iter()
                .map(|&(p, w)| Item::new(p, w).unwrap())
                .collect(),
            cap,
        )
        .unwrap()
    }

    #[test]
    fn dp_matches_branch_and_bound_on_integer_profits() {
        let cases: Vec<(Vec<(f64, f64)>, f64)> = vec![
            (
                vec![
                    (6.0, 2.0),
                    (5.0, 3.0),
                    (8.0, 6.0),
                    (9.0, 7.0),
                    (6.0, 5.0),
                    (7.0, 9.0),
                    (3.0, 4.0),
                ],
                9.0,
            ),
            (vec![(3.0, 2.0), (6.0, 2.0), (4.0, 3.0), (2.0, 2.0)], 5.0),
            (vec![(1.0, 0.5), (2.0, 1.5), (3.0, 2.25)], 3.0),
            (vec![(5.0, 0.0), (7.0, 3.0)], 1.0),
        ];
        for (items, cap) in cases {
            let i = inst(&items, cap);
            let dp = i.solve_dp_by_profit();
            let bb = i.solve_exact();
            assert!(dp.optimal && bb.optimal);
            assert!(
                (dp.profit - bb.profit).abs() < 1e-9,
                "items {items:?} cap {cap}: dp {} vs bb {}",
                dp.profit,
                bb.profit
            );
            assert!(dp.weight <= cap);
        }
    }

    #[test]
    fn dp_with_fractional_profits_is_flagged_inexact() {
        let i = inst(&[(1.5, 1.0), (1.5, 1.0)], 1.0);
        let s = i.solve_dp_by_profit();
        assert!(!s.optimal); // floors 1.5 → 1, so exactness is not promised
        assert!(s.weight <= 1.0);
    }

    #[test]
    fn real_weights_are_respected_exactly() {
        // Two items of weight 0.6 cannot both fit capacity 1.0.
        let i = inst(&[(1.0, 0.6), (1.0, 0.6)], 1.0);
        let s = i.solve_dp_by_profit();
        assert_eq!(s.chosen.len(), 1);
        assert!(s.weight <= 1.0);
    }
}
