//! Exact branch-and-bound with the Dantzig (fractional) upper bound.
//!
//! Items are sorted by non-increasing density; the search tree branches on
//! include/exclude in that order, pruning any node whose fractional
//! relaxation cannot beat the incumbent. With real-valued weights this is
//! the natural exact algorithm (profit/weight DP tables don't apply), and it
//! is comfortably fast at the paper's instance sizes (n ≈ 90). A node
//! budget keeps adversarial instances from hanging callers; on exhaustion
//! the incumbent is returned with `optimal = false`.

use crate::{finish, Instance, Solution};

pub(crate) fn solve(inst: &Instance, node_budget: u64) -> Solution {
    let cap = inst.capacity();
    let items = inst.items();

    // Zero-weight items always ride; items heavier than capacity never fit.
    let mut free: Vec<usize> = Vec::new();
    let mut active: Vec<usize> = Vec::new();
    for (i, it) in items.iter().enumerate() {
        if it.weight == 0.0 {
            free.push(i);
        } else if it.weight <= cap {
            active.push(i);
        }
    }
    active.sort_by(|&a, &b| {
        let da = items[a].profit / items[a].weight;
        let db = items[b].profit / items[b].weight;
        db.total_cmp(&da).then(a.cmp(&b))
    });

    // Seed the incumbent with density greedy (restricted to active items).
    let mut best_profit = 0.0;
    let mut best_set: Vec<usize> = Vec::new();
    {
        let mut used = 0.0;
        for &i in &active {
            if used + items[i].weight <= cap {
                used += items[i].weight;
                best_profit += items[i].profit;
                best_set.push(i);
            }
        }
    }

    let n = active.len();

    // Iterative DFS over (depth, decision) with explicit state.
    // stack entries: (depth, profit, weight, taken-bitset as Vec<bool>) would
    // allocate heavily; instead do recursive DFS with a path vector.
    struct Ctx<'a> {
        items: &'a [crate::Item],
        active: &'a [usize],
        cap: f64,
        best_profit: f64,
        best_set: Vec<usize>,
        path: Vec<usize>,
        nodes: u64,
        budget: u64,
        exhausted: bool,
    }

    fn upper_bound(ctx: &Ctx<'_>, depth: usize, profit: f64, weight: f64) -> f64 {
        // Dantzig: fill remaining capacity fractionally in density order.
        let mut ub = profit;
        let mut room = ctx.cap - weight;
        for &i in &ctx.active[depth..] {
            let it = ctx.items[i];
            if it.weight <= room {
                room -= it.weight;
                ub += it.profit;
            } else {
                ub += it.profit * (room / it.weight);
                break;
            }
        }
        ub
    }

    fn dfs(ctx: &mut Ctx<'_>, depth: usize, profit: f64, weight: f64) {
        ctx.nodes += 1;
        if ctx.nodes > ctx.budget {
            ctx.exhausted = true;
            return;
        }
        if profit > ctx.best_profit {
            ctx.best_profit = profit;
            ctx.best_set = ctx.path.clone();
        }
        if depth == ctx.active.len() {
            return;
        }
        if upper_bound(ctx, depth, profit, weight) <= ctx.best_profit {
            return; // cannot improve
        }
        let i = ctx.active[depth];
        let it = ctx.items[i];
        // Include branch first (density order makes it the promising one).
        if weight + it.weight <= ctx.cap {
            ctx.path.push(i);
            dfs(ctx, depth + 1, profit + it.profit, weight + it.weight);
            ctx.path.pop();
            if ctx.exhausted {
                return;
            }
        }
        // Exclude branch.
        dfs(ctx, depth + 1, profit, weight);
    }

    let mut ctx = Ctx {
        items,
        active: &active,
        cap,
        best_profit,
        best_set,
        path: Vec::with_capacity(n),
        nodes: 0,
        budget: node_budget,
        exhausted: false,
    };
    dfs(&mut ctx, 0, 0.0, 0.0);
    let mut chosen = ctx.best_set;
    chosen.extend_from_slice(&free);
    finish(items, chosen, !ctx.exhausted)
}

#[cfg(test)]
mod tests {
    use crate::{Instance, Item};

    fn inst(items: &[(f64, f64)], cap: f64) -> Instance {
        Instance::new(
            items
                .iter()
                .map(|&(p, w)| Item::new(p, w).unwrap())
                .collect(),
            cap,
        )
        .unwrap()
    }

    /// Brute force for cross-checking.
    fn brute(items: &[(f64, f64)], cap: f64) -> f64 {
        let n = items.len();
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let (mut p, mut w) = (0.0, 0.0);
            for (i, item) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    p += item.0;
                    w += item.1;
                }
            }
            if w <= cap && p > best {
                best = p;
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        let cases: Vec<(Vec<(f64, f64)>, f64)> = vec![
            (
                vec![
                    (6.0, 2.0),
                    (5.0, 3.0),
                    (8.0, 6.0),
                    (9.0, 7.0),
                    (6.0, 5.0),
                    (7.0, 9.0),
                    (3.0, 4.0),
                ],
                9.0,
            ),
            (vec![(2.0, 2.0), (4.0, 4.0), (6.0, 6.0), (9.0, 9.0)], 10.0),
            (vec![(1.5, 0.5), (2.5, 1.5), (3.5, 2.5)], 3.0),
            (vec![], 3.0),
            (vec![(10.0, 5.0)], 4.0),
        ];
        for (items, cap) in cases {
            let s = inst(&items, cap).solve_exact();
            assert!(s.optimal);
            let expect = brute(&items, cap);
            assert!(
                (s.profit - expect).abs() < 1e-9,
                "items {items:?} cap {cap}: got {} want {expect}",
                s.profit
            );
            assert!(s.weight <= cap);
        }
    }

    /// The paper's Q2 worked example: weights W = {2, 2, 3, 2} for tuples
    /// {1, 2, 5, 6}, profits = refresh costs {3, 6, 4, 2}, capacity R = 5.
    /// Optimal knapsack keeps tuples 2 and 5 (indices 1 and 2).
    #[test]
    fn paper_q2_example() {
        let i = inst(&[(3.0, 2.0), (6.0, 2.0), (4.0, 3.0), (2.0, 2.0)], 5.0);
        let s = i.solve_exact();
        assert_eq!(s.chosen, vec![1, 2]);
        assert_eq!(s.profit, 10.0);
        assert_eq!(s.weight, 5.0);
        // The complement — the refresh set — is tuples 1 and 6 (indices 0, 3).
        assert_eq!(s.complement(4), vec![0, 3]);
    }

    /// The paper's Q3 worked example: AVG traffic with R = 10 over 6 tuples
    /// → SUM with capacity 60; weights W' = {10, 10, 15, 25, 20, 15},
    /// profits = costs {3, 6, 6, 8, 4, 2}. Optimal keeps {1,2,3,4} (indices
    /// 0..=3), refreshing tuples 5 and 6.
    #[test]
    fn paper_q3_example() {
        let i = inst(
            &[
                (3.0, 10.0),
                (6.0, 10.0),
                (6.0, 15.0),
                (8.0, 25.0),
                (4.0, 20.0),
                (2.0, 15.0),
            ],
            60.0,
        );
        let s = i.solve_exact();
        assert_eq!(s.chosen, vec![0, 1, 2, 3]);
        assert_eq!(s.complement(6), vec![4, 5]);
    }

    #[test]
    fn zero_weight_items_included_even_at_zero_capacity() {
        let i = inst(&[(1.0, 0.0), (5.0, 2.0)], 0.0);
        let s = i.solve_exact();
        assert_eq!(s.chosen, vec![0]);
        assert_eq!(s.profit, 1.0);
    }

    #[test]
    fn node_budget_degrades_gracefully() {
        let items: Vec<(f64, f64)> = (0..30)
            .map(|i| (1.0 + (i as f64 * 7.3) % 5.0, 1.0 + (i as f64 * 3.1) % 4.0))
            .collect();
        let i = inst(&items, 20.0);
        let full = i.solve_exact();
        assert!(full.optimal);
        let tiny = i.solve_exact_with_budget(10);
        assert!(!tiny.optimal);
        assert!(tiny.profit <= full.profit);
        assert!(tiny.weight <= 20.0);
    }
}
