//! Cross-solver property tests: every solver must (1) never overfill,
//! (2) respect its advertised quality guarantee relative to the exact
//! branch-and-bound optimum.

use proptest::prelude::*;
use trapp_knapsack::{Instance, Item};

fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((0.0f64..20.0, 0.0f64..10.0), 0..14),
        0.0f64..30.0,
    )
        .prop_map(|(pairs, cap)| {
            let items = pairs
                .into_iter()
                .map(|(p, w)| Item::new(p, w).unwrap())
                .collect();
            Instance::new(items, cap).unwrap()
        })
}

/// Brute force over all subsets (instances are ≤ 14 items).
fn brute_force(inst: &Instance) -> f64 {
    let items = inst.items();
    let n = items.len();
    let mut best = 0.0f64;
    for mask in 0u32..(1u32 << n) {
        let (mut p, mut w) = (0.0, 0.0);
        for (i, it) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                p += it.profit;
                w += it.weight;
            }
        }
        if w <= inst.capacity() && p > best {
            best = p;
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn exact_matches_brute_force(inst in arb_instance()) {
        let opt = brute_force(&inst);
        let s = inst.solve_exact();
        prop_assert!(s.optimal);
        prop_assert!((s.profit - opt).abs() < 1e-9, "bb {} vs brute {opt}", s.profit);
        prop_assert!(s.weight <= inst.capacity());
    }

    #[test]
    fn fptas_meets_guarantee(inst in arb_instance(), eps in 0.05f64..0.9) {
        let opt = brute_force(&inst);
        let s = inst.solve_fptas(eps).unwrap();
        prop_assert!(s.weight <= inst.capacity());
        prop_assert!(
            s.profit >= (1.0 - eps) * opt - 1e-9,
            "eps {eps}: {} < {}", s.profit, (1.0 - eps) * opt
        );
    }

    #[test]
    fn greedy_density_is_half_approximation(inst in arb_instance()) {
        let opt = brute_force(&inst);
        let s = inst.solve_greedy_density();
        prop_assert!(s.weight <= inst.capacity());
        prop_assert!(s.profit >= 0.5 * opt - 1e-9, "greedy {} vs opt {opt}", s.profit);
    }

    #[test]
    fn by_weight_optimal_for_uniform_profits(
        weights in proptest::collection::vec(0.0f64..10.0, 0..14),
        cap in 0.0f64..30.0,
    ) {
        let items: Vec<Item> = weights.iter().map(|&w| Item::new(1.0, w).unwrap()).collect();
        let inst = Instance::new(items, cap).unwrap();
        let opt = brute_force(&inst);
        let s = inst.solve_greedy_by_weight();
        prop_assert!(s.optimal);
        prop_assert!((s.profit - opt).abs() < 1e-9);
        prop_assert!(s.weight <= cap);
    }

    #[test]
    fn dp_exact_for_integer_profits(
        pairs in proptest::collection::vec((0u8..20, 0.0f64..10.0), 0..14),
        cap in 0.0f64..30.0,
    ) {
        let items: Vec<Item> = pairs
            .iter()
            .map(|&(p, w)| Item::new(p as f64, w).unwrap())
            .collect();
        let inst = Instance::new(items, cap).unwrap();
        let opt = brute_force(&inst);
        let s = inst.solve_dp_by_profit();
        prop_assert!(s.optimal);
        prop_assert!((s.profit - opt).abs() < 1e-9, "dp {} vs brute {opt}", s.profit);
        prop_assert!(s.weight <= cap);
    }

    /// The TRAPP-critical invariant: the complement (refresh set) plus the
    /// chosen set partitions the items.
    #[test]
    fn complement_partitions(inst in arb_instance()) {
        let s = inst.solve_exact();
        let n = inst.len();
        let comp = s.complement(n);
        let mut all: Vec<usize> = s.chosen.iter().copied().chain(comp).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}
