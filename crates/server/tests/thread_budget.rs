//! The acceptance property of the completion-based transport: a service
//! built over [`ServiceBuilder::build_completion`] uses `O(pool + workers)`
//! OS threads **independent of the source × shard count**, where the
//! thread-per-source [`build_channel`](ServiceBuilder::build_channel)
//! stack scales its thread count with the topology.
//!
//! Kept in its own integration-test binary so no sibling test's threads
//! pollute the `/proc/self/task` census.

#![cfg(target_os = "linux")]

use std::time::Duration;

use trapp_server::{QueryService, ServiceBuilder, ServiceConfig};
use trapp_workload::loadgen::{self, LoadConfig, ServiceWorkload};

/// Live OS threads in this process (Linux: one /proc/self/task entry per
/// thread, including the main thread).
fn os_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("linux procfs")
        .count()
}

const WORKERS: usize = 4;
const SHARDS: usize = 4;
const POOL: usize = 4;

fn workload() -> ServiceWorkload {
    // 64 sources spread over 4 shards: the channel transport spawns one
    // actor thread per (shard, source) pair that owns rows there.
    loadgen::generate(&LoadConfig {
        seed: 3,
        groups: 64,
        rows_per_group: 2,
        sources: 64,
        queries: 24,
        global_fraction: 0.1,
        ..LoadConfig::default()
    })
}

fn builder(w: &ServiceWorkload) -> ServiceBuilder {
    let mut b = ServiceBuilder::new()
        .config(ServiceConfig {
            workers: WORKERS,
            shards: SHARDS,
            coalesce: true,
            batch_refreshes: true,
            cache_views: true,
            batch_join_rounds: true,
            ..ServiceConfig::default()
        })
        .partition_by("grp")
        .table(loadgen::table());
    for r in &w.rows {
        b = b.row("metrics", r.source, r.cells.clone());
    }
    b
}

fn exercise(service: &QueryService, w: &ServiceWorkload) {
    service.advance_clock(25.0);
    for q in &w.queries {
        let reply = service.query(&q.sql).expect("query runs");
        assert!(reply.result.satisfied, "{}", q.sql);
    }
}

#[test]
fn completion_service_threads_are_o_pool_plus_workers() {
    let w = workload();
    let baseline = os_threads();

    // Thread-per-source baseline: actor threads scale with the topology.
    let channel = builder(&w)
        .build_channel(Duration::ZERO)
        .expect("channel service");
    let channel_added = os_threads() - baseline;
    exercise(&channel, &w);
    drop(channel);

    // Completion transport: one service-wide pool, O(pool + workers)
    // threads no matter how many sources × shards exist.
    let completion = builder(&w)
        .build_completion(Duration::ZERO, POOL)
        .expect("completion service");
    let completion_added = os_threads() - baseline;
    exercise(&completion, &w);

    // workers + pool demux threads + 1 timer; a little slack for runtime
    // housekeeping threads, none of which scale with sources.
    let budget = WORKERS + POOL + 1 + 2;
    assert!(
        completion_added <= budget,
        "completion service spawned {completion_added} threads (budget {budget})"
    );
    assert!(
        channel_added > 2 * budget,
        "channel baseline unexpectedly small ({channel_added} threads ≤ {}): \
         the comparison no longer demonstrates the win",
        2 * budget
    );

    // Shutdown joins everything the service spawned.
    drop(completion);
    let after = os_threads();
    assert!(
        after <= baseline + 1,
        "threads leaked past shutdown: {baseline} before, {after} after"
    );
}
