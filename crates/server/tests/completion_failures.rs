//! Failure semantics on the completion-based transport: a source that
//! fails mid-completion must surface [`TrappError::PartialResult`] while
//! every refresh that *did* arrive is installed — the mirror of the
//! scatter shard-loss test, run over [`ServiceBuilder::build_completion`]
//! instead of the blocking stack.

use std::time::Duration;

use trapp_server::{QueryService, ServiceBuilder, ServiceConfig};
use trapp_types::{shard_of, ObjectId, SourceId, TrappError};
use trapp_workload::loadgen::{self, LoadConfig, ServiceWorkload};

const SHARDS: usize = 4;

fn build(w: &ServiceWorkload) -> QueryService {
    let mut b = ServiceBuilder::new()
        .config(ServiceConfig {
            workers: 2,
            shards: SHARDS,
            coalesce: true,
            batch_refreshes: true,
            cache_views: true,
            batch_join_rounds: true,
            ..ServiceConfig::default()
        })
        .partition_by("grp")
        .table(loadgen::table());
    for r in &w.rows {
        b = b.row("metrics", r.source, r.cells.clone());
    }
    b.build_completion(Duration::from_micros(200), 2).unwrap()
}

/// A refresh batch that dies mid-completion (unknown object at the
/// source) turns the scatter into a partial-result error; the surviving
/// sources' refreshes are installed anyway — their Refresh Monitors
/// already narrowed — and healthy shards keep serving.
#[test]
fn source_failure_mid_completion_surfaces_partial_result_with_survivors_installed() {
    let w = loadgen::generate(&LoadConfig {
        seed: 5,
        groups: 8,
        rows_per_group: 3,
        sources: 2,
        queries: 0,
        ..LoadConfig::default()
    });
    let service = build(&w);
    service.advance_clock(25.0);

    // Sabotage one shard that owns rows: rebind one of its bounded cells
    // to an object no source registered. Source 1's whole batch on that
    // shard then fails atomically mid-completion; source 2's batch
    // completes and must still be installed.
    let sabotaged_shard = (0..SHARDS)
        .find(|&s| {
            service.with_shard_cache(s, |cache| {
                cache
                    .session()
                    .catalog()
                    .table("metrics")
                    .unwrap()
                    .scan()
                    .next()
                    .is_some()
            })
        })
        .expect("some shard holds rows");
    let sabotaged_tid = service.with_shard_cache(sabotaged_shard, |cache| {
        let tid = cache
            .session()
            .catalog()
            .table("metrics")
            .unwrap()
            .scan()
            .next()
            .unwrap()
            .0;
        cache
            .bind_object(ObjectId::new(999_999), SourceId::new(1), "metrics", tid, 1)
            .unwrap();
        tid
    });

    // WITHIN 0 forces every tuple into the refresh plan.
    let err = service
        .query("SELECT SUM(load) WITHIN 0 FROM metrics")
        .unwrap_err();
    assert!(
        matches!(err, TrappError::PartialResult(_)),
        "expected a partial-result error, got: {err}"
    );

    // Surviving refreshes were installed on the failed shard: with the
    // clock unmoved since the fetch, an installed bound is a point at its
    // refresh instant, while un-refreshed cells stay wide. Source 2's
    // tuples must be points; the sabotaged tuple must not be.
    service.with_shard_cache(sabotaged_shard, |cache| {
        cache.materialize().unwrap();
        let table = cache.session().catalog().table("metrics").unwrap();
        let mut survivors = 0;
        for (tid, row) in table.scan() {
            let interval = row.interval(1).unwrap();
            if tid == sabotaged_tid {
                assert!(
                    !interval.is_point(),
                    "the failed batch's tuple cannot have been refreshed"
                );
            } else if interval.is_point() {
                survivors += 1;
            }
        }
        assert!(
            survivors > 0,
            "no surviving refresh was installed on the failed shard"
        );
    });

    // Healthy shards keep serving exact answers.
    let healthy_group = (0..w.config.groups)
        .find(|&g| shard_of(g as u64, SHARDS) != sabotaged_shard)
        .expect("some group lives elsewhere");
    let reply = service
        .query(format!(
            "SELECT SUM(load) WITHIN 0 FROM metrics WHERE grp = {healthy_group}"
        ))
        .unwrap();
    assert!(reply.result.satisfied);
    assert!(reply.result.answer.is_exact());
}

/// A batched update sweep reaches every owning shard with one completion
/// per (shard, source) batch, the last write per object wins, and the
/// gateways' memoized entries are invalidated exactly as on the
/// one-write-at-a-time path.
#[test]
fn update_batches_deliver_and_invalidate_across_shards() {
    let w = loadgen::generate(&LoadConfig {
        seed: 13,
        groups: 8,
        rows_per_group: 2,
        sources: 3,
        queries: 0,
        ..LoadConfig::default()
    });
    let service = build(&w);
    service.advance_clock(5.0);

    // Warm every bound (and the gateways' in-flight tables) first.
    let warm = service
        .query("SELECT SUM(load) WITHIN 0 FROM metrics")
        .unwrap();
    assert!(warm.result.answer.is_exact());

    // One batch spanning every shard and source: two writes per object
    // for the first four rows — the second must win.
    let updates: Vec<(ObjectId, f64)> = (0..4u64)
        .flat_map(|row| {
            [
                (ObjectId::new(row + 1), 1_000.0 + row as f64),
                (ObjectId::new(row + 1), 2_000.0 + row as f64),
            ]
        })
        .collect();
    let delivered = service.apply_update_batch(&updates).unwrap();
    assert!(
        delivered >= 4,
        "escaping batched updates must reach their caches (got {delivered})"
    );

    // The post-batch masters are visible exactly: same instant, so any
    // stale memoized refresh would surface here.
    let reply = service
        .query("SELECT SUM(load) WITHIN 0 FROM metrics")
        .unwrap();
    let expected: f64 = w
        .rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i < 4 {
                2_000.0 + i as f64
            } else {
                r.cells[1].as_interval().unwrap().midpoint()
            }
        })
        .sum();
    assert!(reply.result.answer.is_exact());
    assert!(
        (reply.result.answer.range.lo() - expected).abs() < 1e-9,
        "batched masters not visible: {} vs {expected}",
        reply.result.answer
    );

    // Unknown objects fail the whole batch up front.
    assert!(service
        .apply_update_batch(&[(ObjectId::new(54_321), 1.0)])
        .is_err());
}

/// Updates routed through the completion transport reach the owning
/// shard's cache exactly as on the blocking transports.
#[test]
fn updates_deliver_through_the_completion_transport() {
    let w = loadgen::generate(&LoadConfig {
        seed: 9,
        groups: 4,
        rows_per_group: 2,
        sources: 2,
        queries: 0,
        ..LoadConfig::default()
    });
    let service = build(&w);
    service.advance_clock(5.0);

    // Row 0 (group 0) is backed by object 1 in global assignment order.
    let delivered = service.apply_update(ObjectId::new(1), 500.0).unwrap();
    assert_eq!(delivered, 1, "an escaping update must reach the cache");

    let reply = service
        .query("SELECT SUM(load) WITHIN 0 FROM metrics WHERE grp = 0")
        .unwrap();
    let expected = 500.0 + w.rows[1].cells[1].as_interval().unwrap().midpoint();
    assert!(reply.result.answer.is_exact());
    assert!(
        (reply.result.answer.range.lo() - expected).abs() < 1e-9,
        "updated master not visible: {} vs {expected}",
        reply.result.answer
    );
}
