//! Service-level integration tests: the issue's acceptance criteria.
//!
//! * sequential service execution is *bit-identical* to the single-threaded
//!   [`Simulation`] on the same workload (same answers, same refresh sets,
//!   same costs);
//! * ≥ 8 concurrent clients get correct bounded answers (contain the true
//!   aggregate, satisfy their precision constraints);
//! * two concurrent queries overlapping on an object trigger exactly one
//!   refresh for it, with answers identical to the uncoalesced path.

use std::time::Duration;

use trapp_server::{QueryService, ServiceBuilder, ServiceConfig};
use trapp_system::Simulation;
use trapp_types::SourceId;
use trapp_workload::loadgen::{self, LoadConfig, ServiceWorkload};

fn small_workload() -> ServiceWorkload {
    loadgen::generate(&LoadConfig {
        seed: 7,
        groups: 8,
        rows_per_group: 4,
        sources: 3,
        queries: 64,
        ..LoadConfig::default()
    })
}

fn build_simulation(w: &ServiceWorkload) -> Simulation {
    let mut sim = Simulation::builder().build().unwrap();
    for s in 1..=w.config.sources as u64 {
        sim.add_source(SourceId::new(s));
    }
    sim.add_table(loadgen::table()).unwrap();
    for r in &w.rows {
        sim.add_row("metrics", r.source, r.cells.clone()).unwrap();
    }
    sim
}

fn build_service(w: &ServiceWorkload, config: ServiceConfig) -> QueryService {
    let mut b = ServiceBuilder::new().config(config).table(loadgen::table());
    for r in &w.rows {
        b = b.row("metrics", r.source, r.cells.clone());
    }
    b.build_direct().unwrap()
}

/// Run sequentially through the service and the simulation in lockstep:
/// every answer, refresh set, and cost must match exactly — the service's
/// phased plan/fetch/install execution is semantically the seed loop.
#[test]
fn sequential_service_is_bit_identical_to_simulation() {
    let w = small_workload();
    let mut sim = build_simulation(&w);
    let service = build_service(
        &w,
        ServiceConfig {
            workers: 1,
            shards: 1,
            coalesce: true,
            batch_refreshes: true,
            cache_views: true,
            batch_join_rounds: true,
            ..ServiceConfig::default()
        },
    );

    for (i, q) in w.queries.iter().enumerate() {
        if i % 8 == 0 {
            sim.clock.advance(25.0);
            service.advance_clock(25.0);
        }
        let a = sim.run_query(&q.sql).unwrap();
        let b = service.query(&q.sql).unwrap();
        assert_eq!(
            a.answer.range, b.result.answer.range,
            "query {i}: {}",
            q.sql
        );
        assert_eq!(a.satisfied, b.result.satisfied);
        assert_eq!(a.refreshed, b.result.refreshed, "query {i}: {}", q.sql);
        assert_eq!(a.refresh_cost, b.result.refresh_cost);
    }
    // Same total transport traffic, too.
    assert_eq!(sim.stats().query_initiated, {
        let s = service.stats();
        s.refreshes_forwarded
    });
}

/// Acceptance: ≥ 8 concurrent clients, every bounded answer correct.
#[test]
fn eight_concurrent_clients_get_correct_bounded_answers() {
    let w = loadgen::generate(&LoadConfig {
        seed: 11,
        groups: 12,
        rows_per_group: 5,
        sources: 4,
        queries: 160,
        ..LoadConfig::default()
    });
    let service = build_service(
        &w,
        ServiceConfig {
            workers: 8,
            shards: 1,
            coalesce: true,
            batch_refreshes: true,
            cache_views: true,
            batch_join_rounds: true,
            ..ServiceConfig::default()
        },
    );
    service.advance_clock(25.0);

    let clients = 8;
    let per_client = w.queries.len().div_ceil(clients);
    let service_ref = &service;
    let w_ref = &w;
    std::thread::scope(|s| {
        for chunk in w.queries.chunks(per_client) {
            s.spawn(move || {
                for q in chunk {
                    let reply = service_ref.query(&q.sql).unwrap();
                    let t = loadgen::ground_truth(w_ref, q);
                    let range = reply.result.answer.range;
                    assert!(reply.result.satisfied, "{}", q.sql);
                    assert!(
                        range.lo() - 1e-9 <= t && t <= range.hi() + 1e-9,
                        "{}: {range:?} excludes truth {t}",
                        q.sql
                    );
                }
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.queries, w.queries.len() as u64);
    assert_eq!(stats.errors, 0);
}

/// Acceptance: two concurrent queries overlapping on an object refresh it
/// exactly once, and coalescing does not change answers.
#[test]
fn overlapping_concurrent_queries_share_refreshes() {
    // One group, two rows → WITHIN 0 forces both objects to refresh.
    let w = loadgen::generate(&LoadConfig {
        seed: 3,
        groups: 1,
        rows_per_group: 2,
        sources: 2,
        queries: 0,
        ..LoadConfig::default()
    });
    let sql = "SELECT SUM(load) WITHIN 0 FROM metrics WHERE grp = 0";

    let run = |coalesce: bool| {
        let service = build_service(
            &w,
            ServiceConfig {
                workers: 2,
                shards: 1,
                coalesce,
                batch_refreshes: true,
                cache_views: true,
                batch_join_rounds: true,
                ..ServiceConfig::default()
            },
        );
        service.advance_clock(25.0);
        // Submit both before waiting: both are queued at the same logical
        // instant and may execute fully concurrently.
        let t1 = service.submit(sql);
        let t2 = service.submit(sql);
        let r1 = t1.wait().unwrap();
        let r2 = t2.wait().unwrap();
        let stats = service.stats();
        (r1, r2, stats)
    };

    let (c1, c2, coalesced_stats) = run(true);
    let (u1, u2, _) = run(false);

    // Whatever the interleaving, with coalescing each of the two objects
    // reaches a source exactly once.
    assert_eq!(
        coalesced_stats.refreshes_forwarded, 2,
        "each overlapping object must be refreshed exactly once"
    );
    // Identical answers with and without coalescing (WITHIN 0 pins both
    // rows, so all four replies are the exact sum).
    for r in [&c1, &c2, &u1, &u2] {
        assert!(r.result.satisfied);
        assert!(r.result.answer.is_exact());
    }
    assert_eq!(c1.result.answer.range, u1.result.answer.range);
    assert_eq!(c2.result.answer.range, u2.result.answer.range);
}

/// The coalescing path genuinely fires under forced overlap: with the
/// threaded transport's per-round-trip latency, two identical tight
/// queries submitted together make the second share the first's in-flight
/// refreshes (or arrive after the install and skip refreshing entirely) —
/// either way the sources see each object once.
#[test]
fn coalescing_saves_refreshes_under_latency() {
    let w = loadgen::generate(&LoadConfig {
        seed: 5,
        groups: 1,
        rows_per_group: 6,
        sources: 3,
        queries: 0,
        ..LoadConfig::default()
    });
    let mut b = ServiceBuilder::new()
        .config(ServiceConfig {
            workers: 4,
            shards: 1,
            coalesce: true,
            batch_refreshes: true,
            cache_views: true,
            batch_join_rounds: true,
            ..ServiceConfig::default()
        })
        .table(loadgen::table());
    for r in &w.rows {
        b = b.row("metrics", r.source, r.cells.clone());
    }
    let service = b.build_channel(Duration::from_millis(2)).unwrap();
    service.advance_clock(25.0);

    let sql = "SELECT SUM(load) WITHIN 0 FROM metrics WHERE grp = 0";
    let tickets: Vec<_> = (0..4).map(|_| service.submit(sql)).collect();
    let replies: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    for r in &replies {
        assert!(r.result.satisfied);
        assert!(r.result.answer.is_exact());
    }
    let stats = service.stats();
    assert_eq!(
        stats.refreshes_forwarded, 6,
        "six objects, each refreshed exactly once across four identical queries"
    );
    assert_eq!(stats.errors, 0);
}
