//! Deadline-matrix tests: the service under per-query `DEADLINE` budgets
//! and seeded slow-source latency chaos, plus the admission-control
//! ladder at the front door.
//!
//! The invariants under test are the overload story (see
//! `ARCHITECTURE.md` §9):
//!
//! * **Strict** never returns a *late* answer: a query whose deadline
//!   cannot be met surfaces as a typed
//!   [`TrappError::DeadlineExceeded`] — never a wrong bound, never an
//!   answer after its budget.
//! * **BestEffort** never errors on a blown deadline: it trades
//!   precision for time (widening the constraint, ultimately answering
//!   from cache alone), and the reply's bound still contains the exact
//!   answer.
//! * The install invariant holds mid-overload: refreshes that *did*
//!   land before the deadline expired are installed before the reply —
//!   a deadline abandons waiting, never served refreshes. Stragglers
//!   (round-trips that outlive their wait) park and install later.

use std::time::{Duration, Instant};

use trapp_server::{
    AdmissionConfig, DegradationPolicy, HealthConfig, QueryService, RetryPolicy, ServiceBuilder,
    ServiceConfig, ServiceReply,
};
use trapp_storage::{ColumnDef, Schema, Table};
use trapp_system::{ChaosConfig, DelaySpec};
use trapp_types::{BoundedValue, SourceId, TrappError, Value, ValueType};

/// Which transport stack a test run builds over.
#[derive(Clone, Copy, Debug)]
enum Stack {
    /// Blocking request/reply over per-source actor threads.
    Channel,
    /// Nonblocking completions over a shared fetch pool.
    Completion,
}

const STACKS: [Stack; 2] = [Stack::Channel, Stack::Completion];

fn metrics_table() -> Table {
    let schema = Schema::new(vec![
        ColumnDef::exact("grp", ValueType::Int),
        ColumnDef::bounded_float("load"),
    ])
    .unwrap();
    Table::new("metrics", schema)
}

/// Two groups on two sources: grp 0 lives on source 1, grp 1 on
/// source 2 — so per-source latency chaos maps cleanly onto groups.
fn builder(degradation: DegradationPolicy, admission: AdmissionConfig) -> ServiceBuilder {
    let mut b = ServiceBuilder::new()
        .config(ServiceConfig {
            workers: 2,
            shards: 1,
            degradation,
            retry: RetryPolicy {
                max_retries: 0,
                fetch_timeout: Duration::from_millis(100),
                initial_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_millis(2),
            },
            // Keep breakers out of the way: these tests isolate the
            // deadline machinery, not the fault machinery.
            health: HealthConfig {
                failure_threshold: 1000,
                cooldown: Duration::from_secs(3600),
            },
            admission,
            ..ServiceConfig::default()
        })
        .partition_by("grp")
        .table(metrics_table());
    for (grp, source, load) in [
        (0i64, 1u64, 10.0f64),
        (0, 1, 20.0),
        (1, 2, 30.0),
        (1, 2, 40.0),
    ] {
        b = b.row(
            "metrics",
            SourceId::new(source),
            vec![
                BoundedValue::Exact(Value::Int(grp)),
                BoundedValue::exact_f64(load).unwrap(),
            ],
        );
    }
    b
}

fn build(
    stack: Stack,
    degradation: DegradationPolicy,
    admission: AdmissionConfig,
    chaos: ChaosConfig,
) -> QueryService {
    let b = builder(degradation, admission).chaos(chaos);
    match stack {
        Stack::Channel => b.build_channel(Duration::from_micros(100)).unwrap(),
        Stack::Completion => b.build_completion(Duration::from_micros(100), 2).unwrap(),
    }
}

/// The reply's bound must contain the exact aggregate (chaos never moves
/// master values).
fn assert_contains(reply: &ServiceReply, exact: f64, sql: &str) {
    let range = reply.result.answer.range;
    assert!(
        range.lo() <= exact + 1e-9 && exact <= range.hi() + 1e-9,
        "wrong answer for `{sql}`: {range:?} does not contain {exact}"
    );
}

/// Satellite: a round-trip that outlives its wait on the *blocking*
/// transport under latency chaos surfaces as a typed
/// [`TrappError::Timeout`], parks as a straggler, and installs once a
/// later fetch reaps it — proven by a follow-up query on the slow group
/// answering at full precision from cache with zero round-trips.
#[test]
fn blocking_transport_timeout_parks_straggler_and_installs_on_reap() {
    let service = build(
        Stack::Channel,
        DegradationPolicy::Strict,
        AdmissionConfig::default(),
        ChaosConfig {
            seed: 3,
            delay: vec![(
                SourceId::new(2),
                DelaySpec::fixed(Duration::from_millis(400)),
            )],
            ..ChaosConfig::default()
        },
    );
    service.advance_clock(100.0); // widen every bound: queries must fetch

    // Slow group: the single attempt (fetch_timeout 100 ms, no retries)
    // expires under the 400 ms wire delay.
    let err = service
        .query("SELECT SUM(load) WITHIN 0.5 FROM metrics WHERE grp = 1")
        .unwrap_err();
    let TrappError::Timeout { source, waited_ms } = err else {
        panic!("expected a typed timeout, got {err:?}");
    };
    assert_eq!(source, SourceId::new(2));
    assert!(waited_ms >= 100, "waited {waited_ms} ms < the attempt cap");
    assert!(
        service.chaos_control().unwrap().injected_delays() > 0,
        "the schedule must actually have charged a delay"
    );

    // Let the delayed round-trip land in the park...
    std::thread::sleep(Duration::from_millis(500));
    // ...then any fetch through the same gateway reaps it. The fast
    // group's fetch does.
    service
        .query("SELECT SUM(load) WITHIN 0.5 FROM metrics WHERE grp = 0")
        .unwrap();

    // The straggler's refresh is installed: the slow group now answers
    // at full precision from cache, with no new round-trip (a fetch
    // would have hit the 400 ms delay and timed out loudly).
    let reply = service
        .query("SELECT SUM(load) WITHIN 0.5 FROM metrics WHERE grp = 1")
        .unwrap();
    assert!(reply.result.satisfied);
    assert_eq!(
        reply.round_trips, 0,
        "slow group should be served from the reaped straggler's install"
    );
    assert_contains(&reply, 70.0, "grp 1 after reap");
    service.shutdown();
}

/// Regression: a deadline hit mid-fetch installs the refreshes that did
/// arrive before answering. The fast source's refreshes land inside the
/// budget; the slow source blows it; best-effort still answers — and a
/// follow-up full-precision query over the fast group runs entirely from
/// cache, proving the survivors were installed.
#[test]
fn deadline_hit_mid_fetch_installs_surviving_refreshes_before_answering() {
    for stack in STACKS {
        let service = build(
            stack,
            DegradationPolicy::BestEffort,
            AdmissionConfig::default(),
            ChaosConfig {
                seed: 5,
                delay: vec![(
                    SourceId::new(2),
                    DelaySpec::fixed(Duration::from_millis(500)),
                )],
                ..ChaosConfig::default()
            },
        );
        service.advance_clock(100.0);

        let started = Instant::now();
        let reply = service
            .query("SELECT SUM(load) WITHIN 0.5 DEADLINE 150 FROM metrics")
            .unwrap_or_else(|e| panic!("BestEffort must answer, got {e} ({stack:?})"));
        let took = started.elapsed();
        assert_contains(&reply, 100.0, "global under deadline");
        let degraded = reply
            .degraded
            .as_ref()
            .unwrap_or_else(|| panic!("blown budget must surface as degraded ({stack:?})"));
        assert!(
            degraded.dark_sources.contains(&SourceId::new(2)),
            "the source that blew the deadline must be named ({stack:?})"
        );
        assert_eq!(degraded.requested_width, Some(0.5));
        assert!(
            took < Duration::from_secs(1),
            "deadline-bounded query took {took:?} ({stack:?})"
        );

        // Same sim instant: the fast group's refresh was installed
        // before the degraded answer went out, so full precision comes
        // straight from cache.
        let reply = service
            .query("SELECT SUM(load) WITHIN 0.5 FROM metrics WHERE grp = 0")
            .unwrap();
        assert!(reply.result.satisfied);
        assert_eq!(
            reply.round_trips, 0,
            "surviving refreshes must already be installed ({stack:?})"
        );
        assert_contains(&reply, 30.0, "grp 0 after deadline hit");
        service.shutdown();
    }
}

/// Strict + slow sources: every blown budget is a typed
/// [`TrappError::DeadlineExceeded`] — never a raw transport symptom,
/// never a late answer.
#[test]
fn strict_deadline_surfaces_only_typed_deadline_errors() {
    for stack in STACKS {
        let service = build(
            stack,
            DegradationPolicy::Strict,
            AdmissionConfig::default(),
            ChaosConfig {
                seed: 9,
                default_delay: Some(DelaySpec::fixed(Duration::from_millis(300))),
                ..ChaosConfig::default()
            },
        );
        let mut deadline_errors = 0usize;
        for i in 0..4 {
            service.advance_clock(50.0);
            let started = Instant::now();
            let sql = format!(
                "SELECT SUM(load) WITHIN 0.5 DEADLINE 80 FROM metrics WHERE grp = {}",
                i % 2
            );
            match service.query(&sql) {
                Ok(reply) => {
                    // An on-time answer is fine — but it must be on time.
                    assert!(
                        started.elapsed() < Duration::from_millis(500),
                        "late Ok under Strict ({stack:?})"
                    );
                    assert!(reply.degraded.is_none() || reply.degraded.as_ref().is_some());
                }
                Err(TrappError::DeadlineExceeded { deadline_ms, .. }) => {
                    // `elapsed_ms` may be *under* the budget: once the
                    // fetch-rate estimate warms up, Strict refuses
                    // proactively when it can prove the plan cannot fit
                    // the remaining budget, rather than burning it.
                    assert_eq!(deadline_ms, 80);
                    deadline_errors += 1;
                }
                Err(e) => panic!("expected DeadlineExceeded, got {e:?} ({stack:?})"),
            }
        }
        assert!(
            deadline_errors > 0,
            "300 ms wire delay against an 80 ms budget must blow deadlines ({stack:?})"
        );
        service.shutdown();
    }
}

/// A zero deadline is the degenerate pre-execution shed: Strict refuses
/// before any work; BestEffort answers from cache alone, degraded.
#[test]
fn zero_deadline_sheds_before_execution() {
    let strict = builder(DegradationPolicy::Strict, AdmissionConfig::default())
        .build_direct()
        .unwrap();
    strict.advance_clock(100.0);
    let err = strict
        .query("SELECT SUM(load) WITHIN 0.5 DEADLINE 0 FROM metrics")
        .unwrap_err();
    assert!(
        matches!(err, TrappError::DeadlineExceeded { deadline_ms: 0, .. }),
        "got {err:?}"
    );
    strict.shutdown();

    let best = builder(DegradationPolicy::BestEffort, AdmissionConfig::default())
        .build_direct()
        .unwrap();
    best.advance_clock(100.0);
    let reply = best
        .query("SELECT SUM(load) WITHIN 0.5 DEADLINE 0 FROM metrics")
        .unwrap();
    assert_contains(&reply, 100.0, "DEADLINE 0 cache-only answer");
    let degraded = reply.degraded.expect("cache-only answer must be degraded");
    assert!(degraded.load_shed, "deadline widening is a load shed");
    assert_eq!(degraded.requested_width, Some(0.5));
    assert_eq!(reply.round_trips, 0, "no fetch inside a zero budget");
    assert_eq!(best.stats().deadline_widened, 1);
    best.shutdown();
}

/// The admission ladder at the front door: above the widen watermark a
/// query runs with a relaxed constraint (reply names the original ask);
/// above the reject watermark it sheds with a typed
/// [`TrappError::Overloaded`] before touching the worker queue.
#[test]
fn admission_ladder_widens_then_sheds_at_the_front_door() {
    // widen_watermark 0: every query admits widened ×1000 — wide enough
    // that the cache answers without a fetch.
    let service = builder(
        DegradationPolicy::BestEffort,
        AdmissionConfig {
            widen_watermark: 0,
            widen_factor: 1000.0,
            ..AdmissionConfig::default()
        },
    )
    .build_direct()
    .unwrap();
    service.advance_clock(25.0);
    let reply = service
        .query("SELECT SUM(load) WITHIN 0.5 FROM metrics")
        .unwrap();
    assert_contains(&reply, 100.0, "admission-widened global");
    let degraded = reply.degraded.expect("widened reply must be degraded");
    assert!(degraded.load_shed);
    assert_eq!(degraded.requested_width, Some(0.5));
    assert_eq!(reply.round_trips, 0, "×1000 constraint needs no fetch");
    assert_eq!(service.stats().admission_widened, 1);
    service.shutdown();

    // reject_watermark 0: everything sheds.
    let service = builder(
        DegradationPolicy::Strict,
        AdmissionConfig {
            reject_watermark: 0,
            ..AdmissionConfig::default()
        },
    )
    .build_direct()
    .unwrap();
    let err = service
        .query("SELECT SUM(load) WITHIN 0.5 FROM metrics")
        .unwrap_err();
    assert!(
        matches!(err, TrappError::Overloaded { limit: 0, .. }),
        "got {err:?}"
    );
    let stats = service.stats();
    assert_eq!(stats.admission_rejected, 1);
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.queries, 0, "a shed query never executes");
    service.shutdown();
}

/// BestEffort under uniform latency chaos with a deadline: zero errors,
/// zero bound violations, and per-query latency bounded by the budget
/// (plus scheduling slack) — precision floats instead of time.
#[test]
fn best_effort_deadline_bounds_latency_not_precision() {
    for stack in STACKS {
        let service = build(
            stack,
            DegradationPolicy::BestEffort,
            AdmissionConfig::default(),
            ChaosConfig {
                seed: 13,
                default_delay: Some(DelaySpec::fixed(Duration::from_millis(250))),
                ..ChaosConfig::default()
            },
        );
        for _ in 0..4 {
            service.advance_clock(50.0);
            let started = Instant::now();
            let reply = service
                .query("SELECT SUM(load) WITHIN 0.5 DEADLINE 120 FROM metrics")
                .unwrap_or_else(|e| panic!("BestEffort must never error, got {e} ({stack:?})"));
            let took = started.elapsed();
            assert_contains(&reply, 100.0, "best-effort deadline global");
            assert!(
                took < Duration::from_secs(1),
                "deadline-bounded query took {took:?} ({stack:?})"
            );
            assert!(
                reply.result.satisfied || reply.degraded.is_some(),
                "an unmet constraint must surface as degraded ({stack:?})"
            );
        }
        let stats = service.stats();
        assert_eq!(stats.errors, 0);
        service.shutdown();
    }
}
