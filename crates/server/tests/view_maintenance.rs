//! Serving-layer acceptance for incremental band views: a service that
//! plans from memoized views (`ServiceConfig::cache_views = true`, the
//! default) must be **bit-identical** to the full-scan planner under
//! random interleavings of master-value updates (which install
//! value-initiated refreshes), clock advances (which re-widen every
//! bound), and queries (whose query-initiated refreshes install between
//! the two plan passes) — on the blocking transport *and* on the
//! completion transport, at one shard and at several.

use proptest::prelude::*;
use trapp_server::{QueryService, ServiceBuilder, ServiceConfig, ServiceReply};
use trapp_types::ObjectId;
use trapp_workload::loadgen::{self, LoadConfig, ServiceWorkload};

/// Which transport stack a service is built over.
#[derive(Clone, Copy, Debug)]
enum Stack {
    Blocking,
    Completion,
}

fn build(w: &ServiceWorkload, shards: usize, views: bool, stack: Stack) -> QueryService {
    let mut b = ServiceBuilder::new()
        .config(ServiceConfig {
            workers: 1,
            shards,
            coalesce: true,
            batch_refreshes: true,
            cache_views: views,
            batch_join_rounds: true,
            ..ServiceConfig::default()
        })
        .partition_by("grp")
        .table(loadgen::table());
    if !w.segments.is_empty() {
        b = b.table(loadgen::segments_table());
    }
    for r in &w.rows {
        b = b.row("metrics", r.source, r.cells.clone());
    }
    for s in &w.segments {
        b = b.row("segments", s.source, s.cells.clone());
    }
    match stack {
        Stack::Blocking => b.build_direct().unwrap(),
        Stack::Completion => b.build_completion(std::time::Duration::ZERO, 2).unwrap(),
    }
}

fn assert_replies_match(a: &ServiceReply, b: &ServiceReply, context: &str) -> Result<(), String> {
    prop_assert_eq!(
        a.result.answer.range,
        b.result.answer.range,
        "answer for {}",
        context
    );
    prop_assert_eq!(
        a.result.initial_answer.range,
        b.result.initial_answer.range,
        "initial for {}",
        context
    );
    prop_assert_eq!(a.result.satisfied, b.result.satisfied, "{}", context);
    prop_assert_eq!(
        &a.result.refreshed,
        &b.result.refreshed,
        "refresh set for {}",
        context
    );
    prop_assert_eq!(
        a.result.refresh_cost,
        b.result.refresh_cost,
        "cost for {}",
        context
    );
    prop_assert_eq!(a.groups.len(), b.groups.len(), "groups for {}", context);
    for (ga, gb) in a.groups.iter().zip(&b.groups) {
        prop_assert_eq!(&ga.key, &gb.key, "group key for {}", context);
        prop_assert_eq!(
            ga.result.answer.range,
            gb.result.answer.range,
            "group answer for {}",
            context
        );
        prop_assert_eq!(
            &ga.result.refreshed,
            &gb.result.refreshed,
            "group refresh set for {}",
            context
        );
        prop_assert_eq!(
            ga.result.refresh_cost,
            gb.result.refresh_cost,
            "group cost for {}",
            context
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The satellite acceptance property: view-planned and scan-planned
    /// services stay bit-identical while refresh installs (query- and
    /// value-initiated), update batches, and clock advances interleave
    /// with the query stream, on both transports.
    #[test]
    fn view_planning_is_bit_identical_to_scans_under_interleaving(
        seed in 0u64..1000,
        groups in 2usize..8,
        rows_per_group in 1usize..4,
        sources in 1usize..4,
        shards in 1usize..4,
        update_gap in 2usize..5,
        advance_gap in 4usize..8,
    ) {
        let w = loadgen::generate(&LoadConfig {
            seed,
            groups,
            rows_per_group,
            sources,
            queries: 20,
            global_fraction: 0.3,
            grouped_fraction: 0.2,
            ..LoadConfig::default()
        });
        for stack in [Stack::Blocking, Stack::Completion] {
            let with_views = build(&w, shards, true, stack);
            let with_scans = build(&w, shards, false, stack);
            for (i, q) in w.queries.iter().enumerate() {
                if i % advance_gap == 0 {
                    with_views.advance_clock(25.0);
                    with_scans.advance_clock(25.0);
                }
                if i % update_gap == 0 && !w.rows.is_empty() {
                    // A deterministic update batch: walk a few masters.
                    let batch: Vec<(ObjectId, f64)> = (0..3)
                        .map(|k| {
                            let row = (seed as usize + i + k) % w.rows.len();
                            let v = 50.0 + ((seed + i as u64 * 7 + k as u64) % 50) as f64;
                            (ObjectId::new(row as u64 + 1), v)
                        })
                        .collect();
                    let da = with_views.apply_update_batch(&batch).unwrap();
                    let db = with_scans.apply_update_batch(&batch).unwrap();
                    prop_assert_eq!(da, db, "update delivery diverged at query {}", i);
                }
                let a = with_views.query(&q.sql).unwrap();
                let b = with_scans.query(&q.sql).unwrap();
                assert_replies_match(
                    &a,
                    &b,
                    &format!("query {i} ({:?}, {shards} shards): {}", stack, q.sql),
                )?;
            }
        }
    }
}
