//! Cross-shard scatter-gather correctness: the sharded service must be
//! indistinguishable from the single-cache service — not approximately,
//! **bit-for-bit** — and a lost shard must surface an error instead of a
//! silently narrowed bound.
//!
//! * property: for random workloads and shard counts, every COUNT / SUM /
//!   AVG / MIN answer (global *and* group-pinned), refresh set, and
//!   refresh cost matches the 1-shard service exactly — on the blocking
//!   transport *and* on the completion-based transport (whose shared
//!   fetch pool and nonblocking submits must not perturb a single bit);
//! * a shard that fails mid-fetch turns the query into
//!   [`TrappError::PartialResult`], while healthy shards keep serving;
//! * updates route to the shard whose cache subscribes the object;
//! * concurrent mixed pinned/global load over 4 shards stays within every
//!   precision contract.

use proptest::prelude::*;
use trapp_server::{QueryService, ServiceBuilder, ServiceConfig, ServiceReply};
use trapp_types::{shard_of, ObjectId, SourceId, TrappError, Value};
use trapp_workload::loadgen::{self, LoadConfig, QueryShape, ServiceWorkload};

/// Which transport stack a service is built over.
#[derive(Clone, Copy, Debug)]
enum Stack {
    /// Blocking, synchronous [`trapp_system::DirectTransport`].
    Blocking,
    /// Completion-based transport over a 2-thread shared fetch pool.
    Completion,
}

fn build_on(w: &ServiceWorkload, shards: usize, workers: usize, stack: Stack) -> QueryService {
    let mut b = ServiceBuilder::new()
        .config(ServiceConfig {
            workers,
            shards,
            coalesce: true,
            batch_refreshes: true,
            cache_views: true,
            batch_join_rounds: true,
            ..ServiceConfig::default()
        })
        .partition_by("grp")
        .table(loadgen::table());
    if !w.segments.is_empty() {
        b = b.table(loadgen::segments_table());
    }
    for r in &w.rows {
        b = b.row("metrics", r.source, r.cells.clone());
    }
    // Segments after every metrics row, so metrics rows keep backing
    // objects 1..=rows.len().
    for s in &w.segments {
        b = b.row("segments", s.source, s.cells.clone());
    }
    match stack {
        Stack::Blocking => b.build_direct().unwrap(),
        Stack::Completion => b.build_completion(std::time::Duration::ZERO, 2).unwrap(),
    }
}

fn build(w: &ServiceWorkload, shards: usize, workers: usize) -> QueryService {
    build_on(w, shards, workers, Stack::Blocking)
}

/// Asserts two replies are bit-identical — scalar roll-up and per-group
/// results alike.
fn assert_replies_match(a: &ServiceReply, b: &ServiceReply, context: &str) {
    assert_eq!(
        a.result.answer.range, b.result.answer.range,
        "answer for {context}"
    );
    assert_eq!(
        a.result.initial_answer.range, b.result.initial_answer.range,
        "initial answer for {context}"
    );
    assert_eq!(a.result.satisfied, b.result.satisfied, "{context}");
    assert_eq!(
        a.result.refreshed, b.result.refreshed,
        "refresh sets for {context}"
    );
    assert_eq!(
        a.result.refresh_cost, b.result.refresh_cost,
        "refresh cost for {context}"
    );
    assert_eq!(a.result.rounds, b.result.rounds, "rounds for {context}");
    assert_eq!(a.groups.len(), b.groups.len(), "group count for {context}");
    for (ga, gb) in a.groups.iter().zip(&b.groups) {
        assert_eq!(ga.key, gb.key, "group keys for {context}");
        assert_eq!(
            ga.result.answer.range, gb.result.answer.range,
            "group {:?} answer for {context}",
            ga.key
        );
        assert_eq!(
            ga.result.initial_answer.range, gb.result.initial_answer.range,
            "group {:?} initial for {context}",
            ga.key
        );
        assert_eq!(ga.result.satisfied, gb.result.satisfied, "{context}");
        assert_eq!(
            ga.result.refreshed, gb.result.refreshed,
            "group {:?} refresh set for {context}",
            ga.key
        );
        assert_eq!(
            ga.result.refresh_cost, gb.result.refresh_cost,
            "group {:?} cost for {context}",
            ga.key
        );
        assert_eq!(
            ga.result.rounds, gb.result.rounds,
            "group {:?} rounds for {context}",
            ga.key
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property: running the same mixed stream (half the
    /// queries group-free, i.e. scatter-gathered) sequentially against an
    /// N-shard service and a 1-shard service yields bit-identical bounded
    /// answers, identical refresh sets (in global tuple ids), and
    /// identical refresh costs — across clock advances that force
    /// re-refreshing, and on **both** transport stacks: the sharded
    /// service runs once over the blocking transport and once over the
    /// completion transport, and each must match the single cache
    /// bit-for-bit.
    #[test]
    fn scatter_gather_is_bit_equivalent_to_single_cache(
        seed in 0u64..1000,
        groups in 2usize..9,
        rows_per_group in 1usize..5,
        sources in 1usize..4,
        shards in 2usize..5,
    ) {
        let w = loadgen::generate(&LoadConfig {
            seed,
            groups,
            rows_per_group,
            sources,
            queries: 24,
            global_fraction: 0.5,
            ..LoadConfig::default()
        });
        let single = build(&w, 1, 1);
        let sharded = build_on(&w, shards, 1, Stack::Blocking);
        let completion = build_on(&w, shards, 1, Stack::Completion);
        for (i, q) in w.queries.iter().enumerate() {
            if i % 6 == 0 {
                single.advance_clock(25.0);
                sharded.advance_clock(25.0);
                completion.advance_clock(25.0);
            }
            let a = single.query(&q.sql).unwrap();
            for (stack, service) in [("blocking", &sharded), ("completion", &completion)] {
                let b = service.query(&q.sql).unwrap();
                prop_assert_eq!(
                    a.result.answer.range, b.result.answer.range,
                    "query {}: {} (shards={}, {})", i, q.sql, shards, stack
                );
                prop_assert_eq!(
                    a.result.initial_answer.range, b.result.initial_answer.range,
                    "initial answer for {} ({})", q.sql, stack
                );
                prop_assert_eq!(a.result.satisfied, b.result.satisfied, "{} ({})", q.sql, stack);
                prop_assert_eq!(
                    &a.result.refreshed, &b.result.refreshed,
                    "refresh sets for {} ({})", q.sql, stack
                );
                prop_assert_eq!(
                    a.result.refresh_cost, b.result.refresh_cost,
                    "refresh cost for {} ({})", q.sql, stack
                );
                prop_assert_eq!(a.result.rounds, b.result.rounds, "{} ({})", q.sql, stack);
            }
        }
        for service in [&sharded, &completion] {
            prop_assert!(
                service.stats().scatter_queries > 0,
                "no query exercised the scatter path"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full-query-surface acceptance property: a mixed stream of
    /// pinned, global, `GROUP BY`, and join queries runs bit-identically
    /// on an N-shard service and the 1-shard service — per-group answers,
    /// refresh sets (global tuple ids), and costs included — on the
    /// blocking *and* completion transports.
    #[test]
    fn grouped_and_join_scatter_is_bit_equivalent(
        seed in 0u64..1000,
        groups in 2usize..8,
        rows_per_group in 1usize..4,
        sources in 1usize..4,
        shards in 2usize..5,
    ) {
        let w = loadgen::generate(&LoadConfig {
            seed,
            groups,
            rows_per_group,
            sources,
            queries: 20,
            global_fraction: 0.25,
            grouped_fraction: 0.3,
            join_fraction: 0.3,
            ..LoadConfig::default()
        });
        let single = build(&w, 1, 1);
        let sharded = build_on(&w, shards, 1, Stack::Blocking);
        let completion = build_on(&w, shards, 1, Stack::Completion);
        for (i, q) in w.queries.iter().enumerate() {
            if i % 5 == 0 {
                single.advance_clock(25.0);
                sharded.advance_clock(25.0);
                completion.advance_clock(25.0);
            }
            let a = single.query(&q.sql).unwrap();
            for (stack, service) in [("blocking", &sharded), ("completion", &completion)] {
                let b = service.query(&q.sql).unwrap();
                assert_replies_match(
                    &a,
                    &b,
                    &format!("query {i}: {} (shards={shards}, {stack})", q.sql),
                );
            }
        }
    }
}

/// The tentpole acceptance scenario, deterministically: `GROUP BY` and
/// join queries execute on an **8-shard completion-transport** service
/// with answers bit-identical to the single-cache service, every query
/// scatter-gathered (no `Unsupported` fallback anywhere), and every
/// answer containing its ground truth.
#[test]
fn grouped_and_join_on_eight_shard_completion_service() {
    let w = loadgen::generate(&LoadConfig {
        seed: 77,
        groups: 24,
        rows_per_group: 3,
        sources: 6,
        queries: 48,
        grouped_fraction: 0.5,
        join_fraction: 0.5, // every query is grouped or join
        ..LoadConfig::default()
    });
    let single = build(&w, 1, 2);
    let service = build_on(&w, 8, 4, Stack::Completion);

    let mut saw = (0usize, 0usize);
    for (i, q) in w.queries.iter().enumerate() {
        if i % 8 == 0 {
            single.advance_clock(25.0);
            service.advance_clock(25.0);
        }
        match q.shape {
            QueryShape::Grouped => saw.0 += 1,
            QueryShape::Join => saw.1 += 1,
            QueryShape::Scalar => unreachable!("fractions sum to 1"),
        }
        let a = single.query(&q.sql).unwrap();
        let b = service.query(&q.sql).unwrap();
        assert_replies_match(&a, &b, &format!("query {i}: {}", q.sql));

        // Correctness against the master values, not just equivalence.
        match q.shape {
            QueryShape::Grouped => {
                let truths = loadgen::ground_truth_groups(&w, q);
                assert_eq!(b.groups.len(), truths.len(), "{}", q.sql);
                for g in &b.groups {
                    let Value::Int(id) = g.key[0] else {
                        panic!("int group key expected")
                    };
                    let &(_, t) = truths.iter().find(|(tg, _)| *tg == id).unwrap();
                    let range = g.result.answer.range;
                    assert!(g.result.satisfied, "{}: group {id}", q.sql);
                    assert!(
                        range.lo() - 1e-9 <= t && t <= range.hi() + 1e-9,
                        "{}: group {id} truth {t} outside {range:?}",
                        q.sql
                    );
                }
            }
            _ => {
                let t = loadgen::ground_truth(&w, q);
                let range = b.result.answer.range;
                assert!(b.result.satisfied, "{}", q.sql);
                assert!(
                    range.lo() - 1e-9 <= t && t <= range.hi() + 1e-9,
                    "{}: truth {t} outside {range:?}",
                    q.sql
                );
            }
        }
    }
    assert!(saw.0 > 0 && saw.1 > 0, "stream must exercise both shapes");

    let stats = service.stats();
    assert_eq!(stats.errors, 0);
    assert_eq!(
        stats.scatter_queries,
        w.queries.len() as u64,
        "grouped and join queries must scatter-gather, not error"
    );
}

/// A shard that dies while its slice of a *join* round is being fetched
/// surfaces [`TrappError::PartialResult`] instead of an answer that
/// pretends the lost base tuples are exact; healthy groups keep serving.
#[test]
fn lost_shard_mid_join_gather_surfaces_partial_result() {
    let shards = 4;
    let w = loadgen::generate(&LoadConfig {
        seed: 5,
        groups: 8,
        rows_per_group: 2,
        sources: 2,
        queries: 0,
        join_fraction: 0.5, // generates the segments side table
        ..LoadConfig::default()
    });
    let service = build(&w, shards, 2);
    service.advance_clock(25.0);

    // Sabotage one shard that owns metrics rows: rebind one of its bounded
    // cells to an object id no source has ever registered.
    let sabotaged = (0..shards)
        .find(|&s| {
            service.with_shard_cache(s, |cache| {
                cache
                    .session()
                    .catalog()
                    .table("metrics")
                    .unwrap()
                    .scan()
                    .next()
                    .is_some()
            })
        })
        .expect("some shard holds rows");
    service.with_shard_cache(sabotaged, |cache| {
        let tid = cache
            .session()
            .catalog()
            .table("metrics")
            .unwrap()
            .scan()
            .next()
            .unwrap()
            .0;
        cache
            .bind_object(ObjectId::new(999_999), SourceId::new(1), "metrics", tid, 1)
            .unwrap();
    });

    // WITHIN 0 over the exact equi-join forces every metrics load into
    // the join refresh rounds; the sabotaged tuple's round fails at the
    // transport mid-gather.
    let err = service
        .query("SELECT SUM(load) WITHIN 0 FROM metrics, segments WHERE metrics.grp = segments.grp")
        .unwrap_err();
    assert!(
        matches!(err, TrappError::PartialResult(_)),
        "expected a partial-result error, got: {err}"
    );

    // A group on a healthy shard still gets exact answers.
    let healthy_group = (0..w.config.groups)
        .find(|&g| shard_of(g as u64, shards) != sabotaged)
        .expect("some group lives elsewhere");
    let reply = service
        .query(format!(
            "SELECT SUM(load) WITHIN 0 FROM metrics WHERE grp = {healthy_group}"
        ))
        .unwrap();
    assert!(reply.result.satisfied);
    assert!(reply.result.answer.is_exact());
}

/// Iterative mode stays the one unsupported shape on a multi-shard
/// service — and the error now names the feature and the alternative.
#[test]
fn iterative_mode_error_names_feature_and_alternative() {
    let w = loadgen::generate(&LoadConfig {
        seed: 2,
        groups: 4,
        rows_per_group: 2,
        sources: 2,
        queries: 0,
        ..LoadConfig::default()
    });
    let service = build(&w, 3, 1);
    for s in 0..3 {
        service.with_shard_cache(s, |cache| {
            cache.session_mut().config.mode = trapp_core::ExecutionMode::Iterative(
                trapp_core::refresh::iterative::IterativeHeuristic::BestRatio,
            );
        });
    }
    let err = service
        .query("SELECT SUM(load) WITHIN 1 FROM metrics")
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        matches!(err, TrappError::Unsupported(_)),
        "expected Unsupported, got {err:?}"
    );
    assert!(
        msg.contains("iterative") && msg.contains("shards = 1"),
        "error must name the feature and the supported alternative: {msg}"
    );
}

/// A shard that fails mid-fetch must not produce an answer: the merged
/// bound would silently treat the lost shard's tuples as exact. The query
/// reports a partial-result error; healthy shards keep serving.
#[test]
fn lost_shard_surfaces_partial_result_error() {
    let shards = 4;
    let w = loadgen::generate(&LoadConfig {
        seed: 5,
        groups: 8,
        rows_per_group: 3,
        sources: 2,
        queries: 0,
        ..LoadConfig::default()
    });
    let service = build(&w, shards, 2);
    service.advance_clock(25.0);

    // Sabotage one shard that owns rows: rebind one of its bounded cells
    // to an object id no source has ever registered, so its slice of any
    // refresh plan fails at the transport.
    let sabotaged = (0..shards)
        .find(|&s| {
            service.with_shard_cache(s, |cache| {
                cache
                    .session()
                    .catalog()
                    .table("metrics")
                    .unwrap()
                    .scan()
                    .next()
                    .is_some()
            })
        })
        .expect("some shard holds rows");
    service.with_shard_cache(sabotaged, |cache| {
        let tid = cache
            .session()
            .catalog()
            .table("metrics")
            .unwrap()
            .scan()
            .next()
            .unwrap()
            .0;
        cache
            .bind_object(ObjectId::new(999_999), SourceId::new(1), "metrics", tid, 1)
            .unwrap();
    });

    // WITHIN 0 forces every shard to refresh: the sabotaged one fails.
    let err = service
        .query("SELECT SUM(load) WITHIN 0 FROM metrics")
        .unwrap_err();
    assert!(
        matches!(err, TrappError::PartialResult(_)),
        "expected a partial-result error, got: {err}"
    );

    // A group on a healthy shard still gets exact answers.
    let healthy_group = (0..w.config.groups)
        .find(|&g| shard_of(g as u64, shards) != sabotaged)
        .expect("some group lives elsewhere");
    let reply = service
        .query(format!(
            "SELECT SUM(load) WITHIN 0 FROM metrics WHERE grp = {healthy_group}"
        ))
        .unwrap();
    assert!(reply.result.satisfied);
    assert!(reply.result.answer.is_exact());
}

/// Updates reach the shard whose cache subscribes the object, and the next
/// pinned query on that shard observes the new master value.
#[test]
fn updates_route_to_the_owning_shard() {
    let w = loadgen::generate(&LoadConfig {
        seed: 9,
        groups: 4,
        rows_per_group: 2,
        sources: 2,
        queries: 0,
        ..LoadConfig::default()
    });
    let service = build(&w, 3, 2);
    service.advance_clock(5.0);

    // The loadgen schema has one bounded column, so row k (0-based, global
    // order) is backed by object k+1. Row 0 belongs to group 0.
    let delivered = service.apply_update(ObjectId::new(1), 500.0).unwrap();
    assert_eq!(delivered, 1, "an escaping update must reach the cache");

    let reply = service
        .query("SELECT SUM(load) WITHIN 0 FROM metrics WHERE grp = 0")
        .unwrap();
    let expected = 500.0 + w.rows[1].cells[1].as_interval().unwrap().midpoint();
    assert!(reply.result.answer.is_exact());
    assert!(
        (reply.result.answer.range.lo() - expected).abs() < 1e-9,
        "updated master not visible: {} vs {expected}",
        reply.result.answer
    );

    // Unknown objects are rejected, not misrouted.
    assert!(service.apply_update(ObjectId::new(12_345), 1.0).is_err());
}

/// Concurrent mixed load (8 clients, pinned + global queries) over four
/// shards: every bounded answer contains the truth and satisfies its
/// precision constraint, and both execution paths are exercised.
#[test]
fn concurrent_mixed_load_on_four_shards_is_correct() {
    let w = loadgen::generate(&LoadConfig {
        seed: 17,
        groups: 16,
        rows_per_group: 4,
        sources: 4,
        queries: 160,
        global_fraction: 0.15,
        ..LoadConfig::default()
    });
    let service = build(&w, 4, 8);
    service.advance_clock(25.0);

    let clients = 8;
    let per_client = w.queries.len().div_ceil(clients);
    let service_ref = &service;
    let w_ref = &w;
    std::thread::scope(|s| {
        for chunk in w.queries.chunks(per_client) {
            s.spawn(move || {
                for q in chunk {
                    let reply = service_ref.query(&q.sql).unwrap();
                    let t = loadgen::ground_truth(w_ref, q);
                    let range = reply.result.answer.range;
                    assert!(reply.result.satisfied, "{}", q.sql);
                    assert!(
                        range.lo() - 1e-9 <= t && t <= range.hi() + 1e-9,
                        "{}: {range:?} excludes truth {t}",
                        q.sql
                    );
                }
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.queries, w.queries.len() as u64);
    assert_eq!(stats.errors, 0);
    assert!(stats.scatter_queries > 0, "global queries must scatter");
    assert!(
        stats.scatter_queries < stats.queries,
        "pinned queries must route single-shard"
    );
}
