//! Fault-matrix tests: the service under a deterministic
//! [`ChaosTransport`] schedule, on both the blocking and the
//! completion-based transports.
//!
//! The invariants under test are the paper's availability story:
//!
//! * **Strict** never returns a wrong answer — every `Ok` reply's bound
//!   contains the exact aggregate and meets its `WITHIN`; every failure
//!   surfaces as a *structured* error (partial result / typed timeout /
//!   source unavailable), never a silently-wrong bound.
//! * **BestEffort** never errors and never violates a bound — replies
//!   that could not meet their constraint carry
//!   [`ServiceReply::degraded`], and the widened bound still contains
//!   the exact value (TRAPP bounds are correct at any staleness;
//!   degradation only loses the ability to *narrow*).
//! * Retry + circuit breakers **recover**: once a scripted outage ends
//!   and the breaker cooldown elapses, queries go back to full-precision
//!   answers.
//!
//! Chaos never moves master values (the update plane passes through
//! untouched), so the exact aggregate of each query is computable from
//! the workload's initial masters throughout.

use std::collections::HashSet;
use std::time::Duration;

use proptest::prelude::*;
use trapp_server::{
    DegradationPolicy, HealthConfig, QueryService, RetryPolicy, ServiceBuilder, ServiceConfig,
};
use trapp_system::{ChaosConfig, OutageWindow};
use trapp_types::{BoundedValue, SourceId, TrappError, Value};
use trapp_workload::loadgen::{self, AggTemplate, GeneratedQuery, LoadConfig, ServiceWorkload};

/// Which transport stack a test run builds over.
#[derive(Clone, Copy, Debug)]
enum Stack {
    /// Blocking request/reply over per-source actor threads.
    Channel,
    /// Nonblocking completions over a shared fetch pool.
    Completion,
}

const STACKS: [Stack; 2] = [Stack::Channel, Stack::Completion];

fn workload(seed: u64, queries: usize) -> ServiceWorkload {
    loadgen::generate(&LoadConfig {
        seed,
        groups: 8,
        rows_per_group: 3,
        sources: 3,
        queries,
        global_fraction: 0.35,
        ..LoadConfig::default()
    })
}

/// Builds a 2-shard service over `stack` with the given chaos schedule.
fn build(
    w: &ServiceWorkload,
    stack: Stack,
    degradation: DegradationPolicy,
    chaos: ChaosConfig,
) -> QueryService {
    let mut b = ServiceBuilder::new()
        .config(ServiceConfig {
            workers: 2,
            shards: 2,
            degradation,
            // Short per-attempt deadlines and near-zero backoff keep the
            // retry machinery exercised without slowing the suite.
            retry: RetryPolicy {
                max_retries: 2,
                fetch_timeout: Duration::from_millis(500),
                initial_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_millis(2),
            },
            health: HealthConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(50),
            },
            ..ServiceConfig::default()
        })
        .partition_by("grp")
        .table(loadgen::table())
        .chaos(chaos);
    for r in &w.rows {
        b = b.row("metrics", r.source, r.cells.clone());
    }
    match stack {
        Stack::Channel => b.build_channel(Duration::from_micros(100)).unwrap(),
        Stack::Completion => b.build_completion(Duration::from_micros(100), 2).unwrap(),
    }
}

/// The exact aggregate a query's bound must contain, computed from the
/// workload's master values (which chaos never moves).
fn truth(w: &ServiceWorkload, q: &GeneratedQuery) -> f64 {
    let threshold = (w.config.value_range.0 + w.config.value_range.1) / 2.0;
    let masters: Vec<f64> = w
        .rows
        .iter()
        .filter(|r| match (q.group, &r.cells[0]) {
            (None, _) => true,
            (Some(g), BoundedValue::Exact(Value::Int(row_g))) => *row_g == g as i64,
            _ => false,
        })
        .map(|r| r.cells[1].as_interval().unwrap().midpoint())
        .collect();
    match q.agg {
        AggTemplate::Count => masters.iter().filter(|&&v| v > threshold).count() as f64,
        AggTemplate::Sum => masters.iter().sum(),
        AggTemplate::Avg => masters.iter().sum::<f64>() / masters.len() as f64,
        AggTemplate::Min => masters.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
    }
}

/// Every `Ok` reply must bound the truth; satisfied replies must also
/// meet their `WITHIN`. Returns whether the reply was degraded.
fn check_reply(
    w: &ServiceWorkload,
    q: &GeneratedQuery,
    reply: &trapp_server::ServiceReply,
) -> bool {
    let exact = truth(w, q);
    let range = reply.result.answer.range;
    assert!(
        range.lo() <= exact + 1e-9 && exact <= range.hi() + 1e-9,
        "wrong answer for `{}`: {range:?} does not contain {exact}",
        q.sql
    );
    if reply.result.satisfied {
        assert!(
            range.width() <= q.within + 1e-9,
            "precision violation for `{}`: width {} > WITHIN {}",
            q.sql,
            range.width(),
            q.within
        );
    }
    if let Some(d) = &reply.degraded {
        assert!(
            !d.dark_sources.is_empty(),
            "degraded reply must name its dark sources"
        );
        assert_eq!(d.requested_width, Some(q.within));
    }
    reply.degraded.is_some()
}

/// A failure under chaos must be one of the structured fault classes —
/// never a parse/internal error, and never a silently-wrong answer.
fn assert_structured(err: &TrappError) {
    assert!(
        matches!(
            err,
            TrappError::PartialResult(_)
                | TrappError::Timeout { .. }
                | TrappError::SourceUnavailable(_)
                | TrappError::RefreshFailed(_)
        ),
        "unstructured failure under chaos: {err:?}"
    );
}

/// Acceptance (Strict): one source failing with p = 0.2, on both
/// transports — zero wrong answers; every failure is structured.
#[test]
fn strict_under_chaos_never_returns_a_wrong_answer() {
    for stack in STACKS {
        let w = workload(21, 48);
        let service = build(
            &w,
            stack,
            DegradationPolicy::Strict,
            ChaosConfig {
                seed: 7,
                fail_p: vec![(SourceId::new(1), 0.2)],
                ..ChaosConfig::default()
            },
        );
        let mut succeeded = 0usize;
        for (i, q) in w.queries.iter().enumerate() {
            if i % 4 == 0 {
                service.advance_clock(10.0); // re-widen so queries keep fetching
            }
            match service.query(&q.sql) {
                Ok(reply) => {
                    let degraded = check_reply(&w, q, &reply);
                    assert!(
                        !degraded,
                        "Strict must error rather than degrade ({stack:?})"
                    );
                    succeeded += 1;
                }
                Err(e) => assert_structured(&e),
            }
        }
        assert!(
            succeeded > 0,
            "chaos at p=0.2 with retries should leave most queries succeeding ({stack:?})"
        );
        assert!(
            service.chaos_control().unwrap().injected_failures() > 0,
            "the schedule must actually have injected faults ({stack:?})"
        );
        service.shutdown();
    }
}

/// Acceptance (BestEffort): same schedule — zero errors, zero bound
/// violations; unmet constraints surface as degraded replies instead.
#[test]
fn best_effort_under_chaos_never_errors_and_never_violates_a_bound() {
    for stack in STACKS {
        let w = workload(22, 48);
        let service = build(
            &w,
            stack,
            DegradationPolicy::BestEffort,
            ChaosConfig {
                seed: 11,
                fail_p: vec![(SourceId::new(1), 0.2)],
                ..ChaosConfig::default()
            },
        );
        for (i, q) in w.queries.iter().enumerate() {
            if i % 4 == 0 {
                service.advance_clock(10.0);
            }
            let reply = service
                .query(&q.sql)
                .unwrap_or_else(|e| panic!("BestEffort must never error, got {e} ({stack:?})"));
            let degraded = check_reply(&w, q, &reply);
            assert!(
                reply.result.satisfied || degraded,
                "an unsatisfied best-effort reply must be marked degraded ({stack:?})"
            );
        }
        let stats = service.stats();
        assert_eq!(stats.errors, 0);
        service.shutdown();
    }
}

/// Acceptance (recovery): a scripted outage of one source mid-churn. The
/// breaker opens (the source goes dark, queries degrade), and once the
/// outage ends and the cooldown elapses, a half-open probe snaps it
/// closed — ≥ 95 % of post-outage queries come back at full precision.
#[test]
fn breaker_recovers_full_precision_after_a_scripted_outage() {
    for stack in STACKS {
        let w = workload(23, 0);
        let service = build(
            &w,
            stack,
            DegradationPolicy::BestEffort,
            ChaosConfig::default(), // faults come from the manual kill switch
        );
        let control = service.chaos_control().unwrap().clone();
        let down = SourceId::new(1);
        let sql = "SELECT SUM(load) WITHIN 0.5 FROM metrics";

        // Healthy warm-up: full precision, no degradation.
        service.advance_clock(10.0);
        let reply = service.query(sql).unwrap();
        assert!(reply.result.satisfied && reply.degraded.is_none());

        // Outage: every query still answers (bounds stay correct) but the
        // ones needing the dark source degrade; the breaker opens.
        control.force_down(down);
        let mut degraded_during_outage = 0usize;
        for _ in 0..10 {
            service.advance_clock(10.0);
            let reply = service.query(sql).unwrap();
            if check_reply(
                &w,
                &GeneratedQuery {
                    sql: sql.to_string(),
                    group: None,
                    agg: AggTemplate::Sum,
                    within: 0.5,
                    deadline: None,
                    shape: loadgen::QueryShape::Scalar,
                },
                &reply,
            ) {
                degraded_during_outage += 1;
            }
        }
        assert!(
            degraded_during_outage > 0,
            "a downed source under tight WITHIN must force degradation ({stack:?})"
        );
        assert!(
            service.dark_sources().contains(&down),
            "the breaker must have opened for the downed source ({stack:?})"
        );

        // Outage ends; wait out the cooldown so the next plan may probe.
        control.restore(down);
        std::thread::sleep(Duration::from_millis(80));

        let rounds = 40usize;
        let mut full_precision = 0usize;
        for _ in 0..rounds {
            service.advance_clock(10.0);
            let reply = service.query(sql).unwrap();
            if reply.result.satisfied && reply.degraded.is_none() {
                full_precision += 1;
            }
        }
        assert!(
            full_precision * 100 >= rounds * 95,
            "only {full_precision}/{rounds} queries recovered full precision ({stack:?})"
        );
        assert!(
            service.dark_sources().is_empty(),
            "breakers must close again after recovery ({stack:?})"
        );
        service.shutdown();
    }
}

/// The builder wires exactly one chaos control across all shards, and
/// only when asked.
#[test]
fn chaos_control_is_exposed_only_when_configured() {
    let w = workload(24, 0);
    let with_chaos = build(
        &w,
        Stack::Channel,
        DegradationPolicy::Strict,
        ChaosConfig::default(),
    );
    assert!(with_chaos.chaos_control().is_some());
    assert_eq!(with_chaos.chaos_control().unwrap().ops(), 0);
    with_chaos.shutdown();

    let mut b = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .table(loadgen::table());
    for r in &w.rows {
        b = b.row("metrics", r.source, r.cells.clone());
    }
    let without = b.build_direct().unwrap();
    assert!(without.chaos_control().is_none());
    assert!(without.dark_sources().is_empty());
    without.shutdown();
}

/// One seeded schedule run on one stack under one policy; asserts the
/// full invariant set. Shared by the proptest below.
fn run_schedule(seed: u64, fail_p: f64, outage_at: u64, stack: Stack, policy: DegradationPolicy) {
    let w = loadgen::generate(&LoadConfig {
        seed: seed ^ 0x9E37,
        groups: 4,
        rows_per_group: 2,
        sources: 2,
        queries: 16,
        global_fraction: 0.3,
        ..LoadConfig::default()
    });
    let service = build(
        &w,
        stack,
        policy,
        ChaosConfig {
            seed,
            fail_p: vec![(SourceId::new(1), fail_p)],
            outages: vec![OutageWindow {
                source: Some(SourceId::new(1)),
                from_op: outage_at,
                to_op: outage_at + 8,
            }],
            ..ChaosConfig::default()
        },
    );
    let mut seen_sources = HashSet::new();
    for (i, q) in w.queries.iter().enumerate() {
        if i % 3 == 0 {
            service.advance_clock(10.0);
        }
        match service.query(&q.sql) {
            Ok(reply) => {
                let degraded = check_reply(&w, q, &reply);
                match policy {
                    DegradationPolicy::Strict => assert!(!degraded),
                    DegradationPolicy::BestEffort => {
                        assert!(reply.result.satisfied || degraded);
                    }
                }
                if let Some(d) = &reply.degraded {
                    seen_sources.extend(d.dark_sources.iter().copied());
                }
            }
            Err(e) => {
                assert!(
                    policy == DegradationPolicy::Strict,
                    "BestEffort must never error, got {e} ({stack:?}, seed {seed})"
                );
                assert_structured(&e);
            }
        }
    }
    // Degradation only ever blames the schedule's one faulty source.
    assert!(
        seen_sources.is_subset(&HashSet::from([SourceId::new(1)])),
        "degradation blamed healthy sources: {seen_sources:?}"
    );
    service.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random seeded fault schedules (per-op failure probability plus an
    /// op-scripted outage window), replayed on the blocking and
    /// completion stacks under both degradation policies: bounds always
    /// contain the exact value, satisfied replies never violate WITHIN,
    /// Strict failures stay structured, BestEffort never errors.
    #[test]
    fn seeded_chaos_schedules_preserve_answer_correctness(
        seed in 0u64..1_000_000,
        fail_p in 0.05f64..0.4,
        outage_at in 0u64..48,
    ) {
        for stack in STACKS {
            run_schedule(seed, fail_p, outage_at, stack, DegradationPolicy::Strict);
            run_schedule(seed, fail_p, outage_at, stack, DegradationPolicy::BestEffort);
        }
    }
}
