//! Batched multi-tuple join refresh rounds vs the §7 one-tuple-per-round
//! baseline: flipping `batch_join_rounds` must never change *what* a join
//! query answers or refreshes — only how many planning rounds it takes.
//!
//! * property: for random join workloads, every answer, refresh set, and
//!   refresh cost is bit-identical between the two modes — on the blocking
//!   transport *and* the completion transport — while the batched mode
//!   never takes more rounds than the baseline;
//! * the TPC-H grouped-over-join suite scatter-gathers bit-identically on
//!   a multi-shard service (the `merge_grouped_partials` path with
//!   cross-shard group keys), and every served group respects the
//!   workload's ground-truth checker.

use proptest::prelude::*;
use trapp_server::{QueryService, ServiceBuilder, ServiceConfig, ServiceReply};
use trapp_workload::loadgen::{self, LoadConfig};
use trapp_workload::tpch::{self, TpchClass, TpchWorkload, Truth};

/// Which transport stack a service is built over.
#[derive(Clone, Copy, Debug)]
enum Stack {
    /// Blocking, synchronous `DirectTransport`.
    Blocking,
    /// Completion-based transport over a 2-thread shared fetch pool.
    Completion,
}

fn config(shards: usize, batch_join_rounds: bool) -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        shards,
        coalesce: true,
        batch_refreshes: true,
        cache_views: true,
        batch_join_rounds,
        ..ServiceConfig::default()
    }
}

fn build_loadgen(
    w: &loadgen::ServiceWorkload,
    shards: usize,
    stack: Stack,
    batch_join_rounds: bool,
) -> QueryService {
    let mut b = ServiceBuilder::new()
        .config(config(shards, batch_join_rounds))
        .partition_by("grp")
        .table(loadgen::table())
        .table(loadgen::segments_table());
    for r in &w.rows {
        b = b.row("metrics", r.source, r.cells.clone());
    }
    for s in &w.segments {
        b = b.row("segments", s.source, s.cells.clone());
    }
    match stack {
        Stack::Blocking => b.build_direct().unwrap(),
        Stack::Completion => b.build_completion(std::time::Duration::ZERO, 2).unwrap(),
    }
}

fn build_tpch(w: &TpchWorkload, shards: usize, batch_join_rounds: bool) -> QueryService {
    let mut b = ServiceBuilder::new()
        .initial_width(1.0)
        .config(config(shards, batch_join_rounds))
        .partition_by("custkey")
        .table(tpch::customer_table())
        .table(tpch::orders_table())
        .table(tpch::lineitem_table());
    for (table, rows) in [
        ("customer", &w.customer),
        ("orders", &w.orders),
        ("lineitem", &w.lineitem),
    ] {
        for r in rows {
            b = b.row(table, r.source, r.cells.clone());
        }
    }
    b.build_completion(std::time::Duration::ZERO, 2).unwrap()
}

/// Asserts the batched reply answers and refreshes exactly what the
/// one-tuple reply did. Rounds are compared by inequality: the safe-prefix
/// batch replays the baseline's refresh sequence, so it may only collapse
/// rounds, never add work.
fn assert_same_work(batched: &ServiceReply, one: &ServiceReply, context: &str) {
    assert_eq!(
        batched.result.answer.range, one.result.answer.range,
        "answer for {context}"
    );
    assert_eq!(
        batched.result.initial_answer.range, one.result.initial_answer.range,
        "initial answer for {context}"
    );
    assert_eq!(batched.result.satisfied, one.result.satisfied, "{context}");
    let (mut br, mut or) = (
        batched.result.refreshed.clone(),
        one.result.refreshed.clone(),
    );
    br.sort();
    or.sort();
    assert_eq!(br, or, "refresh sets for {context}");
    assert_eq!(
        batched.result.refresh_cost, one.result.refresh_cost,
        "refresh cost for {context}"
    );
    assert!(
        batched.result.rounds <= one.result.rounds,
        "batching added rounds for {context}: {} > {}",
        batched.result.rounds,
        one.result.rounds
    );
    assert_eq!(
        batched.groups.len(),
        one.groups.len(),
        "group count for {context}"
    );
    for (gb, go) in batched.groups.iter().zip(&one.groups) {
        assert_eq!(gb.key, go.key, "group keys for {context}");
        assert_eq!(
            gb.result.answer.range, go.result.answer.range,
            "group {:?} answer for {context}",
            gb.key
        );
        assert_eq!(gb.result.satisfied, go.result.satisfied, "{context}");
        let (mut br, mut or) = (gb.result.refreshed.clone(), go.result.refreshed.clone());
        br.sort();
        or.sort();
        assert_eq!(br, or, "group {:?} refresh set for {context}", gb.key);
        assert_eq!(
            gb.result.refresh_cost, go.result.refresh_cost,
            "group {:?} cost for {context}",
            gb.key
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The satellite acceptance property: a join-heavy stream answers
    /// bit-identically with `batch_join_rounds` on and off — same bounded
    /// answers, same refresh sets and costs, no extra rounds — across
    /// clock advances, shard counts, and both transport stacks.
    #[test]
    fn batched_join_rounds_match_one_tuple_planner(
        seed in 0u64..1000,
        groups in 2usize..8,
        rows_per_group in 1usize..4,
        sources in 1usize..4,
        shards in 1usize..4,
    ) {
        let w = loadgen::generate(&LoadConfig {
            seed,
            groups,
            rows_per_group,
            sources,
            queries: 12,
            global_fraction: 0.25,
            join_fraction: 0.7,
            ..LoadConfig::default()
        });
        for stack in [Stack::Blocking, Stack::Completion] {
            let batched = build_loadgen(&w, shards, stack, true);
            let one = build_loadgen(&w, shards, stack, false);
            for (i, q) in w.queries.iter().enumerate() {
                if i % 4 == 0 {
                    batched.advance_clock(25.0);
                    one.advance_clock(25.0);
                }
                let a = batched.query(&q.sql).unwrap();
                let b = one.query(&q.sql).unwrap();
                assert_same_work(
                    &a,
                    &b,
                    &format!("query {i}: {} (shards={shards}, {stack:?})", q.sql),
                );
            }
        }
    }
}

/// TPC-H join queries on a 3-shard completion service: batched and
/// one-tuple modes agree bit-for-bit, and the batched mode strictly
/// collapses rounds on at least one query (the tentpole's reason to
/// exist — without it the 100k+ scaling tiers pay one full planning pass
/// per refreshed tuple).
#[test]
fn tpch_join_suite_agrees_across_modes_and_collapses_rounds() {
    let w = tpch::generate(&tpch::TpchConfig {
        seed: 31,
        total_rows: 1_600,
        sources: 4,
        queries: 12,
        class_weights: [0, 1, 1, 0], // join_agg + join_group only
        ..tpch::TpchConfig::default()
    });
    let batched = build_tpch(&w, 3, true);
    let one = build_tpch(&w, 3, false);
    let mut collapsed = false;
    for q in &w.queries {
        batched.advance_clock(1.0);
        one.advance_clock(1.0);
        let a = batched.query(&q.sql).unwrap();
        let b = one.query(&q.sql).unwrap();
        assert_same_work(&a, &b, &q.sql);
        collapsed |= a.result.rounds < b.result.rounds;
    }
    assert!(
        collapsed,
        "no query collapsed any rounds — the batch planner never engaged"
    );
}

/// Grouped-over-join scatter-gather (satellite: `merge_grouped_partials`
/// with cross-shard keys): the TPC-H `join_group` class runs on 1-shard
/// and 4-shard services with bit-identical per-group answers, and every
/// served group passes the workload's engine-independent checker.
#[test]
fn grouped_join_scatter_matches_single_shard_and_ground_truth() {
    let w = tpch::generate(&tpch::TpchConfig {
        seed: 47,
        total_rows: 1_600,
        sources: 4,
        queries: 10,
        class_weights: [0, 0, 1, 0], // join_group only
        ..tpch::TpchConfig::default()
    });
    assert!(!w.queries.is_empty());
    let single = build_tpch(&w, 1, true);
    let sharded = build_tpch(&w, 4, true);
    for q in &w.queries {
        single.advance_clock(1.0);
        sharded.advance_clock(1.0);
        let a = single.query(&q.sql).unwrap();
        let b = sharded.query(&q.sql).unwrap();
        assert_eq!(a.groups.len(), b.groups.len(), "group count for {}", q.sql);
        for (ga, gb) in a.groups.iter().zip(&b.groups) {
            assert_eq!(ga.key, gb.key, "group keys for {}", q.sql);
            assert_eq!(
                ga.result.answer.range, gb.result.answer.range,
                "group {:?} answer for {}",
                ga.key, q.sql
            );
            assert_eq!(ga.result.satisfied, gb.result.satisfied, "{}", q.sql);
        }
        // Every group the sharded service serves must be satisfied and
        // pass the workload checker (truth groups contained, extra
        // groups containing the empty aggregate).
        let served: Vec<(i64, f64, f64)> = b
            .groups
            .iter()
            .map(|g| {
                let trapp_types::Value::Int(k) = g.key[0] else {
                    panic!("int group key expected for {}", q.sql)
                };
                assert!(g.result.satisfied, "{}: group {k} unsatisfied", q.sql);
                (k, g.result.answer.range.lo(), g.result.answer.range.hi())
            })
            .collect();
        assert!(matches!(q.truth, Truth::Groups(_)), "{}", q.sql);
        assert_eq!(
            tpch::group_violations(q, &served),
            0,
            "{}: served groups violate ground truth",
            q.sql
        );
        assert_eq!(q.class, TpchClass::JoinGroup);
    }
}
